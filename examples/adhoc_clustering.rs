//! Ad-hoc network clustering — the paper's motivating application
//! (Section 1): elect "cluster heads" so routing happens between heads
//! only, using a constant number of communication rounds regardless of
//! network size.
//!
//! Simulates wireless devices dropped uniformly in a unit square (the
//! unit-disk model the paper's ad-hoc references use), elects heads with
//! the KW pipeline, and reports the clustering structure.
//!
//! ```text
//! cargo run --example adhoc_clustering
//! ```

use kw_domset::prelude::*;
use kw_graph::generators;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn solve(
    g: &CsrGraph,
    solver: &dyn DsSolver,
    seed: u64,
) -> Result<SolveReport, Box<dyn std::error::Error>> {
    let report = solver.solve(g, &SolveContext::seeded(seed))?;
    assert!(
        report
            .certificate
            .as_ref()
            .expect("certificates on")
            .dominates
    );
    Ok(report)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 400;
    let radio_range = 0.08;
    let mut rng = SmallRng::seed_from_u64(2024);
    let points: Vec<(f64, f64)> = (0..n).map(|_| (rng.gen(), rng.gen())).collect();
    let g = generators::unit_disk_from_points(&points, radio_range);
    println!(
        "deployed {} devices, radio range {radio_range}: {} links, max degree {}",
        n,
        g.num_edges(),
        g.max_degree()
    );

    let k = 2;
    let solver = kw_domset::default_registry().build(&format!("kw:k={k}"))?;
    let outcome = solve(&g, &solver, 5)?;
    let heads = &outcome.dominating_set;

    // Each device attaches to the first head in its closed neighborhood.
    let mut cluster_sizes = vec![0usize; g.len()];
    let mut attached = 0usize;
    for v in g.node_ids() {
        if let Some(h) = g.closed_neighbors(v).find(|u| heads.contains(*u)) {
            cluster_sizes[h.index()] += 1;
            attached += 1;
        }
    }
    let sizes: Vec<usize> = heads.iter().map(|h| cluster_sizes[h.index()]).collect();
    let avg = sizes.iter().sum::<usize>() as f64 / sizes.len().max(1) as f64;
    let max = sizes.iter().copied().max().unwrap_or(0);

    println!(
        "\ncluster heads elected: {} ({:.1}% of devices)",
        heads.len(),
        100.0 * heads.len() as f64 / n as f64
    );
    println!("devices attached:      {attached} / {n}");
    println!("cluster size:          avg {avg:.1}, max {max}");
    println!(
        "election cost:         {} rounds, {} messages, ≤{} bits/message",
        outcome.rounds(),
        outcome.messages(),
        outcome.metrics.max_message_bits
    );

    // Why constant rounds matter for mobility: re-elect after every device
    // moves. The cost is identical — independent of n and the diameter.
    let moved: Vec<(f64, f64)> = points
        .iter()
        .map(|&(x, y)| {
            let dx = (rng.gen::<f64>() - 0.5) * 0.05;
            let dy = (rng.gen::<f64>() - 0.5) * 0.05;
            ((x + dx).clamp(0.0, 1.0), (y + dy).clamp(0.0, 1.0))
        })
        .collect();
    let g2 = generators::unit_disk_from_points(&moved, radio_range);
    let outcome2 = solve(&g2, &solver, 6)?;
    println!(
        "\nafter mobility step:   {} heads, re-elected in the same {} rounds",
        outcome2.size(),
        outcome2.rounds()
    );
    Ok(())
}
