//! The paper's headline result as a table: the trade-off between the
//! number of rounds (`O(k²)`) and the approximation quality
//! (`O(k·Δ^{2/k}·log Δ)`), parameterized by `k`.
//!
//! The last row sets `k = Θ(log Δ)` — the remark after Theorem 6 — giving
//! an `O(log²Δ)` approximation in `O(log²Δ)` rounds.
//!
//! ```text
//! cargo run --release --example tradeoff
//! ```

use kw_domset::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = SmallRng::seed_from_u64(99);
    let g = kw_graph::generators::barabasi_albert(800, 3, &mut rng);
    let delta = g.max_degree();
    let lower = kw_lp::bounds::lemma1_bound(&g);
    let registry = kw_domset::default_registry();
    let ctx = SolveContext::default();
    let greedy = registry.build("greedy")?.solve(&g, &ctx)?.size();
    println!(
        "graph: n = {}, Δ = {delta}; Lemma-1 lower bound {lower:.1}; greedy {greedy}",
        g.len()
    );
    println!(
        "\n{:>12} {:>8} {:>8} {:>8} {:>10} {:>14}",
        "k", "rounds", "|DS|", "ratio*", "Σx", "Thm6 bound"
    );
    println!("{:-<68}", "");

    let seeds = 10;
    let k_log = kw_core::math::log_delta_k(delta);
    let mut ks: Vec<u32> = vec![1, 2, 3, 4, 5, 6];
    if !ks.contains(&k_log) {
        ks.push(k_log);
    }
    for k in ks {
        let solver = registry.build(&format!("kw:k={k}"))?;
        let mut sizes = Vec::new();
        let mut rounds = 0;
        let mut frac = 0.0;
        for seed in 0..seeds {
            let out = solver.solve(&g, &ctx.with_seed(seed))?;
            assert!(out.certificate.as_ref().expect("certificates on").dominates);
            sizes.push(out.size() as f64);
            rounds = out.rounds();
            frac = out
                .fractional
                .as_ref()
                .expect("fractional stage")
                .objective();
        }
        let mean = sizes.iter().sum::<f64>() / seeds as f64;
        let label = if k == k_log {
            format!("{k} (=⌈lnΔ⌉)")
        } else {
            format!("{k}")
        };
        println!(
            "{:>12} {:>8} {:>8.1} {:>8.2} {:>10.1} {:>14.1}",
            label,
            rounds,
            mean,
            mean / lower,
            frac,
            kw_core::math::theorem6_bound(k, delta)
        );
    }
    println!("\n*ratio = E[|DS|] / Lemma-1 lower bound (an upper bound on the true ratio)");
    println!("Expected shape: rounds grow quadratically in k while the ratio improves,");
    println!("flattening near the greedy/ln Δ quality — exactly the paper's trade-off.");
    Ok(())
}
