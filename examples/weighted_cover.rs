//! Weighted dominating set for energy-heterogeneous sensor networks —
//! the weighted variant from the remark after Theorem 4.
//!
//! Devices with low remaining battery should be expensive cluster heads.
//! This example assigns costs inversely proportional to battery level and
//! compares the weighted algorithm against the cost-blind one.
//!
//! ```text
//! cargo run --example weighted_cover
//! ```

use kw_core::math;
use kw_core::weighted::run_weighted_alg2;
use kw_domset::prelude::*;
use kw_graph::generators;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 300;
    let mut rng = SmallRng::seed_from_u64(77);
    let g = generators::unit_disk(n, 0.1, &mut rng);

    // Battery levels in (0, 1]; cost = 1/battery ∈ [1, 8].
    let costs: Vec<f64> = (0..n).map(|_| 1.0 + rng.gen::<f64>() * 7.0).collect();
    let weights = VertexWeights::from_values(costs)?;
    println!(
        "sensor field: n = {n}, Δ = {}, c_max = {:.1}",
        g.max_degree(),
        weights.c_max()
    );

    let k = 3;
    let registry = kw_domset::default_registry();
    // Weighted fractional solution (the weighted variant has no integral
    // rounding theorem, so it stays a stage-level API rather than a
    // registered solver).
    let weighted = run_weighted_alg2(&g, &weights, k, EngineConfig::seeded(1))?;
    assert!(weighted.x.is_feasible(&g));

    // Cost-blind fractional solution via the solver API, evaluated on the
    // same cost vector.
    let plain_x = registry
        .build(&format!("alg2:k={k}"))?
        .solve(&g, &SolveContext::seeded(1))?
        .fractional
        .expect("fractional stage");
    let plain_cost = plain_x.weighted_objective(&weights);

    // Both rounded to integral head sets with Algorithm 1.
    let round = kw_core::rounding::RoundingConfig::default();
    let w_set = kw_core::rounding::run_rounding(&g, &weighted.x, round, EngineConfig::seeded(2))?;
    let p_set = kw_core::rounding::run_rounding(&g, &plain_x, round, EngineConfig::seeded(2))?;
    assert!(w_set.set.is_dominating(&g) && p_set.set.is_dominating(&g));

    let lp = if n <= 400 {
        kw_lp::bounds::weighted_lemma1_bound(&g, &weights)
    } else {
        0.0
    };
    println!(
        "\n{:<34} {:>12} {:>12}",
        "solution", "Σ c·x (frac)", "cost(DS)"
    );
    println!("{:-<60}", "");
    println!(
        "{:<34} {:>12.1} {:>12.1}",
        format!("weighted KW (k={k})"),
        weighted.cost,
        w_set.set.cost(&weights)
    );
    println!(
        "{:<34} {:>12.1} {:>12.1}",
        "cost-blind KW (same k)",
        plain_cost,
        p_set.set.cost(&weights)
    );
    let wg = kw_baselines::greedy::greedy_weighted_mds(&g, &weights);
    println!(
        "{:<34} {:>12} {:>12.1}",
        "weighted greedy (sequential)",
        "-",
        wg.cost(&weights)
    );
    println!("\nweighted Lemma-1 lower bound: {lp:.1}");
    println!(
        "stated ratio bound k(Δ+1)^(1/k)[c_max(Δ+1)]^(1/k) = {:.1}",
        math::weighted_lp_bound(k, g.max_degree(), weights.c_max())
    );

    // Sanity: an unweighted pipeline run still covers everything — cost is
    // the only thing at stake.
    let unweighted = registry
        .build(&format!("kw:k={k}"))?
        .solve(&g, &SolveContext::seeded(3))?;
    println!(
        "\n(unweighted pipeline picks {} heads at cost {:.1})",
        unweighted.size(),
        unweighted.dominating_set.cost(&weights)
    );
    Ok(())
}
