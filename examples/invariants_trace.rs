//! Watch the paper's proofs hold at runtime: executes Algorithm 2 with the
//! Lemma 2–4 checker attached and prints the Figure-1 covering cascade.
//!
//! Figure 1 of the paper illustrates how, with `k = 4`, nodes with
//! `a(v) ≥ (Δ+1)^{3/4}` active neighbors are covered first, then those
//! with `a(v) ≥ (Δ+1)^{2/4}`, and so on — a staircase of thresholds. The
//! cascade table below reproduces that staircase on a two-scale graph.
//!
//! ```text
//! cargo run --example invariants_trace
//! ```

use kw_core::invariants::{run_alg2_checked, run_alg3_checked};
use kw_domset::prelude::*;
use kw_graph::generators;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let g = generators::star_of_cliques(6, 16);
    let k = 4;
    println!(
        "graph: hub + 6 cliques of 16 (n = {}, Δ = {}), k = {k}\n",
        g.len(),
        g.max_degree()
    );

    let (run, report) = run_alg2_checked(&g, k, EngineConfig::default())?;
    assert!(run.x.is_feasible(&g));
    println!("Algorithm 2 — covering cascade (the content of the paper's Figure 1):");
    println!("{}", report.cascade);
    match report.violations.len() {
        0 => println!("invariants: Lemmas 2, 3, 4 held at every checkpoint ✓"),
        n => {
            println!("invariants: {n} violations!");
            for v in &report.violations {
                println!("  {v}");
            }
        }
    }

    let (run3, report3) = run_alg3_checked(&g, k, EngineConfig::default())?;
    assert!(run3.x.is_feasible(&g));
    println!("\nAlgorithm 3 — same cascade without Δ-knowledge:");
    println!("{}", report3.cascade);
    match report3.violations.len() {
        0 => println!("invariants: Lemmas 5, 6, 7 held at every checkpoint ✓"),
        n => println!("invariants: {n} violations!"),
    }
    println!(
        "\nΣx: alg2 = {:.2}, alg3 = {:.2}; bounds {:.1} / {:.1} × LP_OPT",
        run.x.objective(),
        run3.x.objective(),
        kw_core::math::alg2_lp_bound(k, g.max_degree()),
        kw_core::math::alg3_lp_bound(k, g.max_degree()),
    );
    Ok(())
}
