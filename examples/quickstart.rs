//! Quickstart: run the Kuhn–Wattenhofer pipeline on a random network and
//! compare it against the classical baselines — all through the unified
//! `DsSolver` trait and the solver registry.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use kw_domset::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A sparse random network of 500 nodes.
    let mut rng = SmallRng::seed_from_u64(42);
    let g = kw_graph::generators::gnp(500, 0.012, &mut rng);
    println!(
        "graph: n = {}, m = {}, Δ = {}",
        g.len(),
        g.num_edges(),
        g.max_degree()
    );

    // Every algorithm is a registry spec; every run is `solver.solve`.
    let registry = kw_domset::default_registry();
    let k = 3;
    let specs = [
        format!("kw:k={k}"),            // the paper's algorithm (Theorem 6)
        "jrs".to_string(),              // JRS / LRG (PODC 2001)
        "luby-mis".to_string(),         // MIS-based baseline
        "greedy".to_string(),           // sequential ln Δ yardstick
        "trivial".to_string(),          // all nodes
        format!("connected(kw:k={k})"), // CDS backbone variant
    ];
    let ctx = SolveContext::seeded(7);

    println!(
        "\n{:<28} {:>8} {:>9} {:>12} {:>9}",
        "solver spec", "|DS|", "rounds", "msgs", "ratio*"
    );
    println!("{:-<70}", "");
    let mut kw_report = None;
    for spec in &specs {
        let solver = registry.build(spec)?;
        let report = solver.solve(&g, &ctx)?;
        let cert = report
            .certificate
            .as_ref()
            .expect("certificates default on");
        assert!(cert.dominates, "{spec} failed to dominate");
        println!(
            "{:<28} {:>8} {:>9} {:>12} {:>9.2}",
            spec,
            report.size(),
            if report.rounds() > 0 {
                report.rounds().to_string()
            } else {
                "-".into()
            },
            if report.messages() > 0 {
                report.messages().to_string()
            } else {
                "-".into()
            },
            cert.ratio_vs_lemma1,
        );
        if spec.starts_with("kw:") {
            kw_report = Some(report);
        }
    }
    let kw = kw_report.expect("kw ran");
    let cert = kw.certificate.as_ref().unwrap();

    println!(
        "\n(*) ratio vs the Lemma-1 lower bound {:.1} on OPT",
        cert.lemma1_bound
    );
    println!(
        "KW ratio {:.2} vs Theorem 6 bound {:.1}",
        cert.ratio_vs_lemma1,
        kw_core::math::theorem6_bound(k, g.max_degree())
    );
    println!(
        "largest message: {} bits (O(log Δ) = O(log {}) claim)",
        kw.metrics.max_message_bits,
        g.max_degree()
    );
    println!(
        "fractional stage: Σx = {:.1}, feasible = {}",
        cert.fractional_objective.unwrap(),
        cert.fractional_feasible.unwrap()
    );
    Ok(())
}
