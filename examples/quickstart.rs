//! Quickstart: run the Kuhn–Wattenhofer pipeline on a random network and
//! compare it against the classical baselines.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use kw_domset::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A sparse random network of 500 nodes.
    let mut rng = SmallRng::seed_from_u64(42);
    let g = kw_graph::generators::gnp(500, 0.012, &mut rng);
    println!("graph: n = {}, m = {}, Δ = {}", g.len(), g.num_edges(), g.max_degree());

    // The paper's algorithm: Algorithm 3 (no global knowledge) followed by
    // randomized rounding, k = 3.
    let k = 3;
    let outcome = Pipeline::new(PipelineConfig { k, ..Default::default() }).run(&g, 7)?;
    assert!(outcome.dominating_set.is_dominating(&g));

    // Baselines.
    let greedy = kw_baselines::greedy::greedy_mds(&g);
    let mis = kw_baselines::luby_mis::run_luby_mis(&g, 7)?;
    let jrs = kw_baselines::jrs::run_jrs(&g, 7)?;
    let lower = kw_lp::bounds::lemma1_bound(&g);

    println!("\n{:<28} {:>8} {:>9} {:>12}", "algorithm", "|DS|", "rounds", "msgs");
    println!("{:-<60}", "");
    println!(
        "{:<28} {:>8} {:>9} {:>12}",
        format!("Kuhn-Wattenhofer (k={k})"),
        outcome.dominating_set.len(),
        outcome.total_rounds(),
        outcome.total_messages()
    );
    println!(
        "{:<28} {:>8} {:>9} {:>12}",
        "JRS / LRG [11]",
        jrs.set.len(),
        jrs.metrics.rounds,
        jrs.metrics.messages
    );
    println!(
        "{:<28} {:>8} {:>9} {:>12}",
        "Luby MIS",
        mis.set.len(),
        mis.metrics.rounds,
        mis.metrics.messages
    );
    println!("{:<28} {:>8} {:>9} {:>12}", "sequential greedy", greedy.len(), "-", "-");
    println!("{:<28} {:>8} {:>9} {:>12}", "trivial (all nodes)", g.len(), 0, 0);
    println!("\nLemma 1 lower bound on OPT: {lower:.1}");
    println!(
        "KW ratio vs lower bound: {:.2} (Theorem 6 bound: {:.1})",
        outcome.dominating_set.len() as f64 / lower,
        kw_core::math::theorem6_bound(k, g.max_degree())
    );
    println!(
        "largest message: {} bits (O(log Δ) = O(log {}) claim)",
        outcome.max_message_bits(),
        g.max_degree()
    );
    Ok(())
}
