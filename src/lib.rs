//! # kw-domset
//!
//! A full reproduction of **Kuhn & Wattenhofer, "Constant-time distributed
//! dominating set approximation"** (PODC 2003; journal version *Distributed
//! Computing* 17:303–310, 2005).
//!
//! The paper gives the first distributed algorithm that computes a
//! non-trivial approximation of a minimum dominating set in a **constant**
//! number of communication rounds: for any parameter `k`, an expected
//! `O(k·Δ^{2/k}·log Δ)` approximation in `O(k²)` rounds, with messages of
//! `O(log Δ)` bits.
//!
//! This umbrella crate re-exports the workspace:
//!
//! * [`graph`] ([`kw_graph`]) — CSR graphs, topology generators,
//!   dominating-set verification;
//! * [`sim`] ([`kw_sim`]) — the synchronous LOCAL-model simulator;
//! * [`lp`] ([`kw_lp`]) — simplex, `LP_MDS`/`DLP_MDS`, exact MDS, Lemma-1
//!   bounds;
//! * [`core`] ([`kw_core`]) — the paper's Algorithms 1–3, the weighted
//!   variant, the end-to-end pipeline, and invariant instrumentation;
//! * [`baselines`] ([`kw_baselines`]) — greedy, Jia–Rajaraman–Suel LRG,
//!   Luby-style MIS, and trivial baselines.
//!
//! # Quickstart
//!
//! ```
//! use kw_domset::prelude::*;
//! use rand::{rngs::SmallRng, SeedableRng};
//!
//! // A random ad-hoc-style network.
//! let mut rng = SmallRng::seed_from_u64(42);
//! let g = kw_graph::generators::unit_disk(150, 0.15, &mut rng);
//!
//! // Run the paper's pipeline (Algorithm 3 + Algorithm 1) with k = 2.
//! let outcome = Pipeline::new(PipelineConfig { k: 2, ..Default::default() }).run(&g, 42)?;
//! assert!(outcome.dominating_set.is_dominating(&g));
//!
//! // Compare against the Lemma-1 lower bound.
//! let lower = kw_lp::bounds::lemma1_bound(&g);
//! assert!(outcome.dominating_set.len() as f64 >= lower - 1e-9);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use kw_baselines as baselines;
pub use kw_core as core;
pub use kw_graph as graph;
pub use kw_lp as lp;
pub use kw_sim as sim;

/// The most common imports, for `use kw_domset::prelude::*`.
pub mod prelude {
    pub use kw_core::{Pipeline, PipelineConfig, PipelineOutcome};
    pub use kw_graph::{
        CsrGraph, DominatingSet, FractionalAssignment, GraphBuilder, NodeId, VertexWeights,
    };
    pub use kw_sim::{Engine, EngineConfig, RunMetrics};
}
