//! # kw-domset
//!
//! A full reproduction of **Kuhn & Wattenhofer, "Constant-time distributed
//! dominating set approximation"** (PODC 2003; journal version *Distributed
//! Computing* 17:303–310, 2005).
//!
//! The paper gives the first distributed algorithm that computes a
//! non-trivial approximation of a minimum dominating set in a **constant**
//! number of communication rounds: for any parameter `k`, an expected
//! `O(k·Δ^{2/k}·log Δ)` approximation in `O(k²)` rounds, with messages of
//! `O(log Δ)` bits.
//!
//! This umbrella crate re-exports the workspace:
//!
//! * [`graph`] ([`kw_graph`]) — CSR graphs, topology generators,
//!   dominating-set verification;
//! * [`sim`] ([`kw_sim`]) — the synchronous LOCAL-model simulator;
//! * [`lp`] ([`kw_lp`]) — simplex, `LP_MDS`/`DLP_MDS`, exact MDS, Lemma-1
//!   bounds;
//! * [`core`] ([`kw_core`]) — the paper's Algorithms 1–3, the weighted
//!   variant, the end-to-end pipeline, invariant instrumentation, and the
//!   unified solver API ([`kw_core::solver`]);
//! * [`baselines`] ([`kw_baselines`]) — greedy, Jia–Rajaraman–Suel LRG,
//!   Luby-style MIS, trivial, and CDS baselines;
//! * [`results`] ([`kw_results`]) — the streaming results pipeline:
//!   per-cell run events, the persistent JSONL run store, rollup
//!   summaries, and regression gating;
//! * [`trace`] ([`kw_trace`]) — the span/profiling plane: hierarchical
//!   spans, per-round counter series, Chrome-trace export;
//! * [`serve`] ([`kw_serve`]) — solve-as-a-service: the `kw-serve`
//!   daemon with a persistent answer cache and Prometheus telemetry,
//!   plus the `kw-load` load generator.
//!
//! # Quickstart: the solver API
//!
//! Every algorithm — the paper's pipeline and all baselines — sits behind
//! the [`DsSolver`](kw_core::solver::DsSolver) trait and is constructible
//! by name from [`default_registry`]:
//!
//! ```
//! use kw_domset::prelude::*;
//! use rand::{rngs::SmallRng, SeedableRng};
//!
//! // A random ad-hoc-style network.
//! let mut rng = SmallRng::seed_from_u64(42);
//! let g = kw_graph::generators::unit_disk(150, 0.15, &mut rng);
//!
//! // The paper's pipeline (Algorithm 3 + Algorithm 1) with k = 2.
//! let registry = kw_domset::default_registry();
//! let solver = registry.build("kw:k=2")?;
//! let report = solver.solve(&g, &SolveContext::seeded(42))?;
//! assert!(report.dominating_set.is_dominating(&g));
//!
//! // The report certifies quality against the Lemma-1 lower bound.
//! let cert = report.certificate.as_ref().unwrap();
//! assert!(cert.dominates);
//! assert!(cert.ratio_vs_lemma1 >= 1.0 - 1e-9);
//!
//! // Any other algorithm is one spec string away.
//! for spec in ["greedy", "jrs", "luby-mis", "trivial", "connected(kw:k=2)"] {
//!     let report = registry.build(spec)?.solve(&g, &SolveContext::seeded(42))?;
//!     assert!(report.certificate.as_ref().unwrap().dominates, "{spec}");
//! }
//! # Ok::<(), kw_core::solver::SolveError>(())
//! ```
//!
//! # Registered solver names
//!
//! | spec | algorithm | parameters |
//! |------|-----------|------------|
//! | `kw` | Algorithm 3 + Algorithm 1 rounding (Theorem 6, headline) | `k=<u32≥1>` (default 2), `multiplier=ln\|ln-lnln` |
//! | `alg2` | Algorithm 2 (known `Δ`) + Algorithm 1 rounding | `k`, `multiplier` as above |
//! | `composite` | Theorem-6 algorithm fused into one protocol run | `k`, `multiplier` as above |
//! | `greedy` | sequential greedy (`ln Δ` approximation) | none |
//! | `jrs` | Jia–Rajaraman–Suel LRG (PODC 2001) | none |
//! | `luby-mis` | Luby-style maximal independent set | none |
//! | `trivial` | all nodes (`Δ+1` approximation) | none |
//! | `connected(inner)` | CDS stitch around any other spec | inner spec |
//!
//! Spec grammar: `name`, `name:key=value,key=value`, or `name(inner)` —
//! see [`kw_core::solver::SolverSpec`].
//!
//! # Experiment matrices
//!
//! [`ExperimentRunner`](kw_core::solver::ExperimentRunner) fans a
//! solver × workload × seed matrix into (optionally multi-threaded) runs
//! with aggregated statistics:
//!
//! ```
//! use kw_domset::prelude::*;
//! use kw_graph::generators;
//!
//! let registry = kw_domset::default_registry();
//! let solvers = registry.build_all(["kw:k=2", "greedy", "trivial"])?;
//! let workloads = vec![("grid8".to_string(), generators::grid(8, 8))];
//! let cells = ExperimentRunner::new().run_matrix(&solvers, &workloads, 0..5)?;
//! assert_eq!(cells.len(), 3);
//! assert!(cells.iter().all(|c| c.failures == 0));
//! # Ok::<(), kw_core::solver::SolveError>(())
//! ```
//!
//! # Workloads: generated families and real instances
//!
//! The `kw-bench` crate's `Workload` enum names every topology the
//! experiment drivers sweep — the paper's ad-hoc/unit-disk motivation
//! plus degree-structured families — and, since the instance registry
//! landed, **externally loaded graphs**: `Workload::Dimacs` wraps a
//! real DIMACS-challenge file and flows through the cache, the run
//! store, and session resume exactly like a generated workload.
//!
//! Workloads are CLI-drivable through a spec grammar mirroring the
//! solver one (`exp_t5_endtoend dimacs:instances/queen5_5.col
//! gnp:n=128,p=0.05`):
//!
//! | spec | family |
//! |------|--------|
//! | `gnp:n=1024,p=0.01` | Erdős–Rényi `G(n, p)` |
//! | `udg:n=100,r=0.18` | unit-disk, radius `r` |
//! | `ba:n=100,m=2` | Barabási–Albert |
//! | `grid:side=10` | `side × side` grid |
//! | `tree:b=3,d=4` | complete `b`-ary tree of depth `d` |
//! | `cliques:c=5,size=8` | hub-and-cliques (Figure 1) |
//! | `dimacs:instances/foo.col` | externally loaded DIMACS file |
//!
//! Three contracts keep external graphs trustworthy:
//!
//! * **Strict vs lenient DIMACS** ([`kw_graph::io`]). `parse_dimacs` is
//!   strict — exactly what `write_dimacs` emits; any deviation
//!   (duplicate edges, self-loops, unknown lines, edge-count mismatch)
//!   is an error, which is the right contract for round-trips.
//!   `parse_dimacs_lenient` accepts real challenge downloads: it
//!   deduplicates repeated `e` lines (including the both-orientations
//!   convention), drops self-loops, skips unknown line kinds (`n <id>
//!   <value>` node lines), and reports every cleanup in `DimacsStats`.
//!   Truncation — fewer `e` lines than declared — stays an error in
//!   both modes.
//! * **The instance registry** (`kw_bench::instances`). Bundled files
//!   under `instances/` are pinned by FNV-1a checksum and `(n, m, Δ)`
//!   shape; every load validates both, so an edited or truncated
//!   fixture fails loudly instead of skewing a sweep. Instance
//!   workloads are **seed-invariant**: `build` returns the identical
//!   graph for every seed and says so via `Workload::is_seeded`.
//! * **Labels are cache/store keys.** `Workload::label` keys the
//!   experiment cache and the run store, so labels must be unique
//!   within a sweep — the runner fails fast on duplicates
//!   ([`SolveError::DuplicateWorkload`](kw_core::solver::SolveError)) —
//!   and stable across sites and releases: float parameters render
//!   through one canonical formatter, and every suite label is pinned
//!   by a test.
//!
//! # Persisting and comparing runs
//!
//! Long sweeps should not die with their process. The streaming results
//! pipeline ([`kw_results`]) makes experiment output event-driven and
//! durable:
//!
//! * [`ExperimentRunner::run_matrix_streaming`](kw_core::solver::ExperimentRunner::run_matrix_streaming)
//!   reports every `(solver, workload, seed)` cell over a bounded
//!   channel as it finishes ([`RunEvent`](kw_core::solver::RunEvent)s),
//!   instead of staying silent until the final barrier;
//! * [`SweepSession`](kw_results::pipeline::SweepSession) persists each
//!   solved cell to an append-only JSONL
//!   [`RunStore`](kw_results::store::RunStore) (versioned schema, sweep
//!   manifests with git provenance, crash-safe appends) and replays the
//!   store on re-launch, so a killed sweep resumes by solving only its
//!   missing cells;
//! * [`Summary`](kw_results::summary::Summary) rolls stored records up
//!   per cell and per solver (mean/p50/p95) and renders markdown or CSV;
//! * the `regress` binary diffs a candidate store against a baseline and
//!   exits non-zero on quality or ≥20% time regressions — bench numbers
//!   (`BENCH_engine.jsonl`) share the same store format via
//!   `KW_BENCH_STORE`.
//!
//! ```no_run
//! use kw_domset::prelude::*;
//! use kw_graph::generators;
//!
//! let registry = kw_domset::default_registry();
//! let solvers = registry.build_all(["kw:k=2", "greedy"])?;
//! let workloads = vec![("grid8".to_string(), generators::grid(8, 8))];
//! let mut session = SweepSession::open("target/runs.jsonl").expect("store opens");
//! let out = session.run(&ExperimentRunner::new(), &solvers, &workloads, 0..20, |event| {
//!     if event.is_terminal() {
//!         eprint!("."); // cell-by-cell progress, not a final barrier
//!     }
//! }).expect("sweep runs");
//! println!("{}", Summary::from_records(&out.records).to_markdown());
//! // Re-running replays the store: out.solved == 0, out.cached == 40.
//! # Ok::<(), kw_core::solver::SolveError>(())
//! ```
//!
//! # The simulator's send contract (`Sink`/`Ctx`)
//!
//! Node programs talk to the world only through
//! [`Ctx`](kw_sim::Ctx), and since the arena send plane landed its two
//! send calls follow one eagerly-validated contract (see the
//! [`kw_sim` mailbox docs](kw_sim::Ctx) for the normative statement):
//!
//! * [`Ctx::send`](kw_sim::Ctx::send) **panics at call time** on a port
//!   `>= degree` — an invalid port names a link that does not exist, so
//!   it is a protocol bug, never a silently dropped message. On an
//!   isolated node every `send` panics.
//! * [`Ctx::broadcast`](kw_sim::Ctx::broadcast) is **defined for every
//!   degree**: it stages one copy per incident link and charges
//!   `degree` messages to the run metrics, which on an isolated node is
//!   zero copies and zero charge — a lawful no-op, not an error.
//! * Accepted sends are staged immediately through the opaque
//!   [`Sink`](kw_sim::Sink) trait into per-node runs of a flat send
//!   arena owned by the engine. Sender-side metrics, optional wire
//!   verification, and traffic classification happen at the moment of
//!   the send; no growable send buffer (`&mut Vec` or otherwise) is
//!   ever reachable from algorithm code.
//!
//! **Migration notes (PR 4).** Protocol code needs no changes —
//! `broadcast`/`send`/`inbox`/`rng` keep their signatures and exact
//! semantics (ports, inbox ordering, metrics, and fault keys are
//! bit-identical, for every thread count). Code that *constructed* a
//! `Ctx` by hand (only possible inside `kw-sim`) now supplies the
//! engine's staging sink instead of a `&mut Vec<Outbound>`; test
//! harnesses observe staged traffic through the sink's arena. The
//! engine additionally exposes
//! [`Engine::run_instrumented`](kw_sim::Engine::run_instrumented),
//! returning [`EngineStats`](kw_sim::EngineStats) (the buffer-growth
//! counter) so allocation-stability tests can assert that steady-state
//! rounds are growth-free.
//!
//! # Parallel execution: the persistent worker pool
//!
//! The engine runs its parallel phases on a **persistent worker pool**
//! ([`kw_sim::pool`]) instead of spawning scoped threads per phase:
//! `Engine::run` spawns `threads − 1` workers once, and every parallel
//! phase of every round is dispatched as an *epoch* on that pool — the
//! caller publishes the phase's jobs, runs chunk 0 itself, and waits on
//! the workers' done-count. The trace plane's synthetic *barrier* span
//! measures exactly this epoch-publish lead plus done-wait tail (it
//! used to measure thread spawn + join, which dominated small
//! workloads); per-round pool wakeups and idle ticks ride along as
//! diagnostics in [`RoundSample`](kw_trace::RoundSample).
//!
//! Work is split by **degree-weighted (arc-balanced) chunking**: node
//! ranges are cut so every chunk carries an approximately equal share
//! of arcs rather than an equal node count, so one hub-heavy chunk
//! cannot stall a phase (the trace plane's `imbalance` measures the
//! residual spread). Chunk bounds are a pure function of the CSR plane
//! and are recomputed on every churn rebuild. Message delivery is
//! **per-chunk**: each chunk owns its slice of the inbox plane and
//! reads other chunks' staged traffic in place, so no serial
//! cross-thread splice runs between phases.
//!
//! The contract stays what it always was: outputs, metrics, inbox
//! ordering, trace structure, and chaos behavior are **bit-identical
//! across 1/2/8 threads** (`crates/bench/tests/scaling_invariance.rs`
//! pins this on generated graphs, a bundled DIMACS instance, and a
//! full chaos mix), and a worker panic propagates as the cell's
//! [`SolveError::Panicked`](kw_core::solver::SolveError) with no hung
//! barrier or leaked threads. `threads` is a first-class knob at every
//! layer: [`SolveContext::threads`](kw_core::solver::SolveContext),
//! the run store (schema v4 keys records by it — outcomes are
//! thread-invariant but wall times are not), `POST /solve` bodies and
//! the `scaling` request mix, and the `exp_s0_scaling` experiment plus
//! `regress`'s scaling gate
//! ([`compare_scaling`](kw_results::regress::compare_scaling),
//! `--scaling-drop`), which watches each multi-thread cell's speedup
//! against its own 1-thread anchor.
//!
//! # Chaos, churn, and adversaries
//!
//! The paper's model is synchronous and reliable; the chaos plane
//! ([`ChaosPlan`](kw_sim::ChaosPlan)) measures what happens when it
//! isn't. One spec grammar drives every failure mode, and the same
//! clause string works in [`SolveContext::faults`](kw_core::solver::SolveContext)
//! (via [`ChaosPlan::parse`](kw_sim::ChaosPlan::parse)), in `POST
//! /solve` bodies, and in the run store:
//!
//! ```text
//! chaos:drop=0.1,seed=7,burst=r3-5@0.9/0.5,crash=7@r2-4,byz=3+9,churn=r2re0-1+r4l6
//! ```
//!
//! * `drop=<p>` — iid per-delivery loss with probability `p ∈ [0, 1]`
//!   (`seed=<s>` keys all chaotic randomness; the legacy
//!   [`FaultPlan`](kw_sim::FaultPlan) converts via `.into()`).
//! * `burst=r<a>-<b>@<p>[/<f>]` — correlated loss storm: during rounds
//!   `a..=b`, deliveries drop with probability `p`, optionally scoped
//!   to a seeded region holding fraction `f` of the nodes.
//! * `crash=<v>@r<a>[-<b>]` — node `v` is down from round `a` (to `b`,
//!   or forever): it computes nothing, sends nothing, receives nothing.
//!   A node down forever stops gating termination.
//! * `byz=<v>[+<v>…]` — byzantine senders: every outgoing payload is
//!   garbled by seeded bit flips *on the wire encoding*. Receivers
//!   decode-or-reject — a rejected payload counts in
//!   [`RunMetrics::byz_rejected`](kw_sim::RunMetrics::byz_rejected) and
//!   is dropped, a decodable one is delivered as ordinary garbage — and
//!   the engine never panics either way (every registered decoder is
//!   fuzzed to return errors, not panic, on arbitrary bytes).
//! * `churn=<event>[+<event>…]` — scripted topology changes applied
//!   between rounds against the CSR planes (`r2re0-1` = remove edge
//!   {0,1} before round 2; `ae` adds an edge, `j`/`l` are node
//!   join/leave). The engine rebuilds its message plane per event
//!   ([`RunMetrics::graph_rebuilds`](kw_sim::RunMetrics::graph_rebuilds)),
//!   which is the "continue in place" cost that `exp_c1_chaos` compares
//!   against re-solving the final topology; certificates grade against
//!   the churned graph.
//!
//! **Reproducibility contract.** A chaos run is a pure function of
//! `(graph, solver spec, run seed, chaos spec)`: bit-identical across
//! 1/2/8 engine threads, across process restarts, and across the
//! cache/store/serve boundary. The canonical spec string
//! ([`ChaosPlan::spec`](kw_sim::ChaosPlan::spec)) *is* the fault
//! fingerprint: [`ExperimentCache`](kw_core::solver::ExperimentCache)
//! keys outcomes by it, run-store records persist it (schema v2; v1
//! `fault_drop`/`fault_seed` records are synthesized into iid-only
//! specs on read), sweeps resume chaos cells as cache hits, and
//! `regress` compares cells chaos-aware — a chaotic cell never gates
//! against its clean twin. `exp_c1_chaos` sweeps the chaos ladder and
//! the churn comparison through exactly this pipeline; CI's
//! `chaos_smoke` step re-runs it and schema-validates the store.
//!
//! # Observability: the trace plane (`kw-trace`)
//!
//! Where the chaos plane measures *what* the stack computes under
//! failure, the trace plane ([`kw_trace`]) measures *where the time
//! goes* — and costs nothing when off. A [`Tracer`](kw_trace::Tracer)
//! installed in a thread-local slot records:
//!
//! * **hierarchical spans** — `solve → stage:{fractional,rounding,
//!   composite} → round → {plan,send,deliver,compute,barrier}`
//!   ([`kw_trace::PHASES`]), plus one chunk span per worker per
//!   parallel phase on worker tracks, so pool synchronization overhead
//!   and chunk imbalance are first-class measurements rather than
//!   inferred gaps;
//! * **per-round counter series** — [`RoundSample`](kw_trace::RoundSample)
//!   carries messages, bits, active nodes, arena bytes, and graph
//!   rebuilds per round, a time series the scalar `RunMetrics` totals
//!   cannot express.
//!
//! Instrumentation sites use [`kw_trace::with_active`], which is a
//! single thread-local check when no tracer is installed — the
//! disabled path benches within noise of untraced code
//! (`crates/trace/benches/overhead.rs` is the A/B harness), so the
//! spans stay compiled in unconditionally.
//!
//! **Determinism contract.** Trace *structure* — the span tree, its
//! labels and nesting, the round samples, and the FNV structure hash
//! over both — is a function of the workload alone and is bit-identical
//! across 1/2/8 engine threads; only tick values vary
//! (`crates/bench/tests/trace_determinism.rs` pins this at engine and
//! solver level, chaos included).
//!
//! **Entry points.** [`traced_solve`](kw_core::solver::traced_solve)
//! wraps any [`DsSolver`](kw_core::solver::DsSolver) and attaches a
//! [`TraceSummary`](kw_trace::TraceSummary) (per-phase totals and
//! shares, barrier time, imbalance, structure hash, round series) to
//! the report when [`SolveContext::trace`](kw_core::solver::SolveContext)
//! is set. Summaries persist as `trace` lines in the run store (schema
//! v3, [`TraceRecord`](kw_results::store::TraceRecord)), roll up to a
//! where-does-time-go markdown table
//! ([`TraceRollup`](kw_results::TraceRollup)), and gate in `regress`:
//! [`compare_traces`](kw_results::compare_traces) flags any engine
//! phase whose share of total phase time drifts by more than 15
//! percentage points against the stored baseline. `POST /solve` takes
//! `"trace": true` and answers with the rollup inline; `GET /metrics`
//! exports cumulative per-phase counters
//! (`kw_serve_solve_phase_us_total{phase="..."}`).
//!
//! **Flame views.** [`Tracer::chrome_json`](kw_trace::Tracer::chrome_json)
//! renders the span tree as Chrome trace-event JSON — load the file in
//! [Perfetto](https://ui.perfetto.dev) or `chrome://tracing` (main
//! track plus one track per worker). `exp_o1_profile` is the canonical
//! producer: it attributes flood/ping engine time across 1/2/4/8
//! workers (ROADMAP item (i)), writes the attribution table, the trace
//! store, and a Chrome trace, and `regress --check-json` validates the
//! export in CI's `profile_smoke` step.
//!
//! # Serving solves (`kw-serve` / `kw-load`)
//!
//! The serving layer ([`kw_serve`]) wraps the same solver stack in a
//! long-running daemon, built on nothing but `std` (a hand-rolled,
//! strictly-limited HTTP/1.1 implementation over `TcpListener`):
//!
//! ```text
//! cargo run --release -p kw-serve --bin kw-serve -- \
//!     --addr 127.0.0.1:7341 --store target/serve_runs.jsonl
//! curl -d '{"workload": "gnp:n=128,p=0.05", "solver": "kw:k=2", "seed": 7}' \
//!     http://127.0.0.1:7341/solve
//! ```
//!
//! **Endpoints.** `POST /solve` takes `{"workload", "solver",
//! "seed"?, "chaos"?, "threads"?, "trace"?}` — the exact same spec
//! grammars as the sweep CLIs, chaos clause included; `threads` picks
//! the engine worker count and is normalized into the cache/store key
//! — and answers the run outcome as JSON (`dominates`, `size`,
//! `rounds`, `messages`, `bits`, `ratio_vs_lemma1`, `wall_ms`, plus
//! `threads` and a `cached` flag). Non-reliable
//! chaos requests tick the `kw_serve_chaos_requests_total` counter. `GET /healthz` answers `ok`. `GET /metrics` renders
//! Prometheus text: request/response-class/shed/panic counters, an
//! in-flight gauge, cache hit/miss/warmed counters, and nearest-rank
//! p50/p95/p99 latency from a fixed-bucket histogram —
//! [`kw_results::nearest_rank`] is the *single* percentile definition
//! shared between the daemon and the sweep summaries. `POST /shutdown`
//! starts a graceful drain (the std-only stand-in for SIGTERM).
//!
//! **Caching and persistence.** Answers memoize into the same
//! [`ExperimentCache`](kw_core::solver::ExperimentCache) the sweep
//! runner uses — keyed by `(solver spec, workload label, seed, fault
//! plan)` — and every fresh answer is appended to a
//! [`RunStore`](kw_results::store::RunStore). A restarted daemon
//! replays its store into the cache before accepting traffic, so every
//! answer it ever computed is served as a cache hit across restarts.
//! The store's writer lock means a daemon and a sweep can never corrupt
//! one store by sharing it: the second writer fails fast with a
//! `Locked` error.
//!
//! **Backpressure and robustness.** A bounded worker pool serves
//! connections; when the accept queue is full the daemon sheds load
//! with `503` + `Retry-After` instead of queueing unboundedly. Requests
//! carry a wall-clock deadline, oversized or malformed requests map to
//! 4xx (never a panic — solver panics are caught and answered as 500
//! and counted), and `kw-load` replays named request mixes
//! (`kw_bench::mix`) at a target concurrency, appending latency
//! percentiles to `KW_BENCH_STORE` so `regress` gates serving
//! performance like any other benchmark.
//!
//! # Static analysis (`kw-lint`)
//!
//! The workspace carries its own linter ([`kw_lint`], binary
//! `kw-lint`) — a std-only lexer and lightweight parser over every
//! crate's source that enforces the codebase's *semantic* invariants,
//! the ones `rustc` and clippy cannot see:
//!
//! * **panic-path** — no `unwrap`/`expect`/`panic!`/unchecked indexing
//!   in wire-decode impls or `kw-serve` request paths (a malformed
//!   request must map to a 4xx/5xx, never a panic);
//! * **hot-alloc** — no allocation in engine functions marked
//!   `// kw-lint: hot` (the per-round paths reuse arenas);
//! * **unsafe-audit** — `unsafe` only in the worker pool, each block
//!   under a `// SAFETY:` comment, every other crate gated by
//!   `forbid(unsafe_code)`/`deny(unsafe_code)`;
//! * **schema-drift** — the `RunStore` writers' field sets are
//!   fingerprinted into the checked-in `lint.schema`; changing a line
//!   format without bumping `SCHEMA_VERSION` fails the build;
//! * **spec-roundtrip** — every spec grammar (`SolverSpec`,
//!   `Workload`, `ChaosPlan`) must ship a `spec()` canonicalizer and a
//!   parse → spec → parse round-trip test.
//!
//! Findings are deny-by-default: `kw-lint` exits non-zero unless every
//! diagnostic is either fixed or covered by a justified entry in the
//! checked-in `lint.allow`. `cargo run -p kw-lint` lints the
//! workspace; CI's `lint_smoke` step and the `workspace_is_lint_clean`
//! test both gate on a clean run. `docs/LINTS.md` documents each rule,
//! the allowlist format, and the `--bless-schema` workflow.
//!
//! The lower-level per-algorithm entry points (`Pipeline`, `run_alg2`,
//! `run_rounding`, the invariant checkers, …) remain available from
//! [`kw_core`] for experiments that dissect a single stage.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use kw_baselines as baselines;
pub use kw_core as core;
pub use kw_graph as graph;
pub use kw_lint as lint;
pub use kw_lp as lp;
pub use kw_results as results;
pub use kw_serve as serve;
pub use kw_sim as sim;
pub use kw_trace as trace;

/// The full solver registry: the paper's solvers (`kw`, `alg2`,
/// `composite`) plus all five baselines and the `connected` combinator.
pub fn default_registry() -> kw_core::solver::SolverRegistry {
    kw_baselines::registry()
}

/// The most common imports, for `use kw_domset::prelude::*`.
pub mod prelude {
    pub use kw_core::solver::{
        DsSolver, ExperimentRunner, SolveContext, SolveError, SolveReport, SolverRegistry,
        SolverSpec,
    };
    pub use kw_core::solver::{RunEvent, RunRecord};
    pub use kw_core::{Pipeline, PipelineConfig, PipelineOutcome};
    pub use kw_graph::{
        CsrGraph, DominatingSet, FractionalAssignment, GraphBuilder, NodeId, VertexWeights,
    };
    pub use kw_results::{RunStore, Summary, SweepSession};
    pub use kw_sim::{Engine, EngineConfig, EngineStats, RunMetrics, Sink};
}

#[cfg(test)]
mod tests {
    #[test]
    fn default_registry_has_all_documented_names() {
        let registry = super::default_registry();
        for name in [
            "kw",
            "alg2",
            "composite",
            "greedy",
            "jrs",
            "luby-mis",
            "trivial",
            "connected",
        ] {
            assert!(registry.contains(name), "{name} missing");
        }
    }
}
