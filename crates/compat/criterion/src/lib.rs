//! Offline stand-in for the `criterion` benchmark harness.
//!
//! The build environment has no network access, so this crate implements
//! the criterion API subset the workspace's benches use — benchmark groups,
//! `bench_function` / `bench_with_input`, `BenchmarkId`, and the
//! `criterion_group!` / `criterion_main!` macros — with a simple
//! best-of-N-batches timer printed to stdout. No statistics, plots, or
//! baselines; swap in real criterion via the workspace path dependency for
//! publication-grade numbers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// One completed benchmark's result: the label as printed (e.g.
/// `"engine_flood/threads1/1000"`) and its best-of-N per-iteration time.
#[derive(Clone, Debug)]
pub struct Measurement {
    /// `group/function/param` label.
    pub label: String,
    /// Best per-iteration time, milliseconds.
    pub best_ms: f64,
}

static MEASUREMENTS: Mutex<Vec<Measurement>> = Mutex::new(Vec::new());

/// Every measurement this process has produced so far, in run order —
/// the offline harness's stand-in for criterion's result files, so
/// bench binaries can persist their numbers (e.g. to a `kw_results`
/// run store) after the groups finish.
pub fn collected_measurements() -> Vec<Measurement> {
    MEASUREMENTS.lock().unwrap().clone()
}

/// Returns its argument, preventing the optimizer from deleting the
/// computation that produced it.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Benchmark-run settings (subset: group knobs are accepted and largely
/// advisory).
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            measurement_time: Duration::from_secs(1),
        }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group {name}");
        BenchmarkGroup {
            name,
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            _criterion: self,
        }
    }

    /// Runs a single benchmark outside any group.
    pub fn bench_function(&mut self, id: impl Into<BenchmarkId>, f: impl FnMut(&mut Bencher)) {
        let (sample_size, measurement_time) = (self.sample_size, self.measurement_time);
        run_benchmark(&id.into().label, sample_size, measurement_time, f);
    }
}

/// A named set of benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the time budget per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Sets the warm-up time (accepted for API compatibility; warm-up here
    /// is a single untimed batch).
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Benchmarks `f`.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into().label);
        run_benchmark(&label, self.sample_size, self.measurement_time, f);
        self
    }

    /// Benchmarks `f` against a borrowed input.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// Closes the group.
    pub fn finish(self) {}
}

/// Identifies one benchmark within a group.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter.
    pub fn new(name: impl Into<String>, param: impl fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", name.into(), param),
        }
    }

    /// An id distinguished only by its parameter.
    pub fn from_parameter(param: impl fmt::Display) -> Self {
        BenchmarkId {
            label: param.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            label: s.to_owned(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { label: s }
    }
}

/// Times closures handed to it by a benchmark body.
pub struct Bencher {
    batch: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `batch` iterations of `f`.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        let start = Instant::now();
        for _ in 0..self.batch {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_benchmark(
    label: &str,
    sample_size: usize,
    budget: Duration,
    mut f: impl FnMut(&mut Bencher),
) {
    // Warm-up batch, untimed.
    let mut bencher = Bencher {
        batch: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut bencher);
    let per_iter = bencher.elapsed.max(Duration::from_nanos(1));
    // Choose a batch size that fits the budget across `sample_size` samples.
    let batch = (budget.as_nanos() / per_iter.as_nanos().max(1) / sample_size.max(1) as u128)
        .clamp(1, u128::from(u32::MAX)) as u64;
    let mut best = Duration::MAX;
    for _ in 0..sample_size {
        let mut b = Bencher {
            batch,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        best = best.min(b.elapsed / batch as u32);
    }
    println!("  {label}: {best:?}/iter (best of {sample_size} x {batch})");
    MEASUREMENTS.lock().unwrap().push(Measurement {
        label: label.to_string(),
        best_ms: best.as_secs_f64() * 1e3,
    });
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_times() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("t");
        group
            .sample_size(2)
            .measurement_time(Duration::from_millis(5));
        let mut runs = 0u64;
        group.bench_function("count", |b| b.iter(|| runs += 1));
        group.finish();
        assert!(runs > 0);
    }

    #[test]
    fn ids_format() {
        assert_eq!(BenchmarkId::new("f", 32).label, "f/32");
        assert_eq!(BenchmarkId::from_parameter(32).label, "32");
    }
}
