//! Test-case driving: configuration, failure type, deterministic seeding.

use std::fmt;

use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Per-test configuration (`#![proptest_config(...)]`).
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A failed property-test case (carried by `prop_assert!`).
#[derive(Clone, Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Builds a failure with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

/// Deterministic per-test RNG: seeded from the test's full path (FNV-1a),
/// optionally perturbed by `PROPTEST_RNG_SEED` to explore other streams.
pub fn rng_for_test(name: &str) -> SmallRng {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in name.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    if let Ok(extra) = std::env::var("PROPTEST_RNG_SEED") {
        if let Ok(v) = extra.trim().parse::<u64>() {
            hash ^= v.rotate_left(32);
        }
    }
    SmallRng::seed_from_u64(hash)
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn ranges_stay_in_bounds(n in 3usize..17, x in -2.0f64..2.0, s in any::<u64>()) {
            prop_assert!((3..17).contains(&n));
            prop_assert!((-2.0..2.0).contains(&x));
            let _ = s;
        }

        #[test]
        fn trailing_comma_form(a in 0u32..5,) {
            prop_assert_eq!(a.min(4), a);
        }
    }

    #[test]
    fn deterministic_rng_per_name() {
        use rand::RngCore;
        let a = super::rng_for_test("x::y").next_u64();
        let b = super::rng_for_test("x::y").next_u64();
        let c = super::rng_for_test("x::z").next_u64();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
