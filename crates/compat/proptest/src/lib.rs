//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access, so this crate provides the
//! subset of proptest the workspace's property tests use: the [`proptest!`]
//! macro with `#![proptest_config(...)]`, range and [`strategy::any`]
//! strategies, and
//! the `prop_assert!` / `prop_assert_eq!` macros.
//!
//! Differences from real proptest, by design:
//!
//! * no shrinking — a failing case reports its inputs and panics as-is;
//! * generation is driven by a seed derived from the test's name, so runs
//!   are fully deterministic (set `PROPTEST_RNG_SEED` to explore other
//!   streams);
//! * only the strategy forms used in this workspace are implemented
//!   (numeric ranges and `any::<T>()` for integer types).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod strategy;
pub mod test_runner;

/// The common imports: `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::{any, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, proptest};
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// item becomes a `#[test]` that runs `body` over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (
        ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::rng_for_test(concat!(
                ::core::module_path!(), "::", ::core::stringify!($name)
            ));
            for case in 0..config.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                let inputs = ::std::format!(
                    ::core::concat!($(::core::stringify!($arg), " = {:?}, ",)+),
                    $(&$arg),+
                );
                let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { $body ::core::result::Result::Ok(()) })();
                if let ::core::result::Result::Err(err) = outcome {
                    ::core::panic!(
                        "proptest case {}/{} failed: {}\n  inputs: {}",
                        case + 1, config.cases, err, inputs,
                    );
                }
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// Fails the current property-test case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", ::core::stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(::std::format!($($fmt)*)),
            );
        }
    };
}

/// Fails the current property-test case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            ::core::stringify!($left), ::core::stringify!($right), l, r,
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)*);
    }};
}
