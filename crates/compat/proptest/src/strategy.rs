//! Input-generation strategies.

use core::marker::PhantomData;
use core::ops::{Range, RangeInclusive};

use rand::rngs::SmallRng;
use rand::Rng;

/// A recipe for generating test inputs.
pub trait Strategy {
    /// The generated input type.
    type Value;

    /// Generates one input.
    fn generate(&self, rng: &mut SmallRng) -> Self::Value;
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut SmallRng) -> $t {
                rng.gen_range(self.clone())
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut SmallRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! range_strategy_float {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut SmallRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategy_float!(f32, f64);

/// Types with a whole-domain default strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Generates an unconstrained value.
    fn arbitrary(rng: &mut SmallRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut SmallRng) -> $t {
                rng.gen::<$t>()
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool);

/// The whole-domain strategy for `T`, as returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut SmallRng) -> T {
        T::arbitrary(rng)
    }
}

/// Returns the default whole-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}
