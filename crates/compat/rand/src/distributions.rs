//! Distributions: the `Standard` distribution and uniform ranges.

use crate::RngCore;

/// Types that can produce values of type `T` from raw randomness.
pub trait Distribution<T> {
    /// Samples one value.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// The "natural" distribution for primitives: full range for integers,
/// `[0, 1)` for floats, fair coin for `bool`.
#[derive(Clone, Copy, Debug, Default)]
pub struct Standard;

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Distribution<$t> for Standard {
            fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Distribution<bool> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Distribution<f64> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        // 53 random mantissa bits, uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Distribution<f32> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

pub mod uniform {
    //! Uniform sampling from ranges.

    use core::ops::{Range, RangeInclusive};

    use crate::RngCore;

    /// Marker for types `gen_range` can sample.
    pub trait SampleUniform: PartialOrd + Copy {}

    /// Range forms accepted by `gen_range`.
    pub trait SampleRange<T: SampleUniform> {
        /// Samples one value from the range.
        ///
        /// # Panics
        ///
        /// Panics if the range is empty.
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
    }

    /// Multiplies a raw draw into `[0, span)` without division
    /// (Lemire's widening-multiply reduction; the O(2^-64) bias is
    /// irrelevant at simulation scale).
    fn reduce(raw: u64, span: u64) -> u64 {
        ((raw as u128 * span as u128) >> 64) as u64
    }

    // Spans are computed in the unsigned counterpart type before
    // widening: a direct `as u64` on a signed span would sign-extend
    // whenever the true span exceeds the signed type's max (e.g. any
    // i8 range wider than 127) and produce out-of-range samples.
    macro_rules! uniform_int {
        ($($t:ty => $ut:ty),*) => {$(
            impl SampleUniform for $t {}

            impl SampleRange<$t> for Range<$t> {
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    assert!(self.start < self.end, "cannot sample from empty range");
                    let span = self.end.wrapping_sub(self.start) as $ut as u64;
                    self.start.wrapping_add(reduce(rng.next_u64(), span) as $t)
                }
            }

            impl SampleRange<$t> for RangeInclusive<$t> {
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "cannot sample from empty range");
                    let span = hi.wrapping_sub(lo) as $ut as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    lo.wrapping_add(reduce(rng.next_u64(), span + 1) as $t)
                }
            }
        )*};
    }

    uniform_int!(
        u8 => u8, u16 => u16, u32 => u32, u64 => u64, usize => usize,
        i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize
    );

    macro_rules! uniform_float {
        ($($t:ty),*) => {$(
            impl SampleUniform for $t {}

            impl SampleRange<$t> for Range<$t> {
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    assert!(self.start < self.end, "cannot sample from empty range");
                    let unit = (rng.next_u64() >> 11) as $t * (1.0 / (1u64 << 53) as $t);
                    let x = self.start + unit * (self.end - self.start);
                    // Floating-point rounding can land exactly on `end`.
                    if x >= self.end { self.start } else { x }
                }
            }
        )*};
    }

    uniform_float!(f32, f64);
}
