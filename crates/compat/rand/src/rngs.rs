//! Concrete generators.

use crate::{RngCore, SeedableRng};

/// A small, fast, non-cryptographic generator (xoshiro256++).
///
/// Mirrors `rand::rngs::SmallRng` in role: deterministic for a fixed seed,
/// suitable for simulations, unsuitable for security. The exact output
/// stream differs from crates.io `rand`'s `SmallRng` (which does not commit
/// to a stable algorithm across versions either).
#[derive(Clone, Debug)]
pub struct SmallRng {
    s: [u64; 4],
}

impl RngCore for SmallRng {
    fn next_u64(&mut self) -> u64 {
        // xoshiro256++ (Blackman & Vigna 2019).
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl SeedableRng for SmallRng {
    type Seed = [u8; 32];

    fn from_seed(seed: [u8; 32]) -> Self {
        let mut s = [0u64; 4];
        for (i, word) in s.iter_mut().enumerate() {
            let mut bytes = [0u8; 8];
            bytes.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
            *word = u64::from_le_bytes(bytes);
        }
        // xoshiro requires a nonzero state.
        if s == [0; 4] {
            s = [
                0x9E37_79B9_7F4A_7C15,
                0x6A09_E667_F3BC_C909,
                0xBB67_AE85_84CA_A73B,
                0x3C6E_F372_FE94_F82B,
            ];
        }
        SmallRng { s }
    }
}
