//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! The build environment for this workspace has no network access, so the
//! workspace cannot pull `rand` from crates.io. This crate implements the
//! slice of the 0.8 API the workspace actually uses — [`Rng`],
//! [`SeedableRng`], [`rngs::SmallRng`], uniform ranges, and the `Standard`
//! distribution — with a deterministic xoshiro256++ generator, so all seeds
//! remain reproducible. Swapping in the real crate only requires changing
//! the workspace path dependency.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod distributions;
pub mod rngs;

use distributions::uniform::{SampleRange, SampleUniform};
use distributions::{Distribution, Standard};

/// A low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Returns the next random `u32` (upper half of [`next_u64`]).
    ///
    /// [`next_u64`]: RngCore::next_u64
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// High-level convenience methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of type `T` from the [`Standard`] distribution.
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
    {
        Standard.sample(self)
    }

    /// Samples uniformly from a range (`low..high` or `low..=high`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let w = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&w[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A generator that can be instantiated from a fixed seed.
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Builds the generator from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64`, expanding it with SplitMix64
    /// (identical construction to rand 0.8's default implementation).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            // SplitMix64 (Steele, Lea & Flood 2014).
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = (z as u32).to_le_bytes();
            let len = chunk.len().min(4);
            chunk[..len].copy_from_slice(&bytes[..len]);
        }
        Self::from_seed(seed)
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    fn next(rng: &mut SmallRng) -> u64 {
        rng.next_u64()
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| next(&mut a)).collect::<Vec<_>>(),
            (0..8).map(|_| next(&mut b)).collect::<Vec<_>>()
        );
    }

    #[test]
    fn unit_float_in_range() {
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_integers_hit_all_values() {
        let mut rng = SmallRng::seed_from_u64(4);
        let mut seen = [false; 5];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_range_signed_spans_wider_than_type_max() {
        // Regression: the span of -100i8..100 (200) does not fit in i8;
        // computing it in i8 and sign-extending produced out-of-range
        // samples. The span must widen through the unsigned counterpart.
        let mut rng = SmallRng::seed_from_u64(1);
        let mut lo_seen = false;
        for _ in 0..10_000 {
            let x = rng.gen_range(-100i8..100);
            assert!((-100..100).contains(&x), "{x} out of range");
            lo_seen |= x < -90;
            let y = rng.gen_range(-100i8..=100);
            assert!((-100..=100).contains(&y), "{y} out of range");
            let z = rng.gen_range(i64::MIN..=i64::MAX);
            let _ = z; // full-domain inclusive range must not panic
        }
        assert!(lo_seen, "negative half of the range never sampled");
    }

    #[test]
    fn gen_range_floats_respect_bounds() {
        let mut rng = SmallRng::seed_from_u64(5);
        for _ in 0..10_000 {
            let x = rng.gen_range(2.5f64..3.25);
            assert!((2.5..3.25).contains(&x));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SmallRng::seed_from_u64(6);
        let hits = (0..20_000).filter(|_| rng.gen_bool(0.3)).count();
        let freq = hits as f64 / 20_000.0;
        assert!((freq - 0.3).abs() < 0.02, "freq {freq}");
    }

    #[test]
    fn usable_through_mut_reference() {
        fn draw<R: super::RngCore>(rng: &mut R) -> f64 {
            rng.gen::<f64>()
        }
        let mut rng = SmallRng::seed_from_u64(8);
        let a = draw(&mut rng);
        let b = draw(&mut rng);
        assert_ne!(a, b);
    }
}
