//! Cross-solver consistency: the simplex, the MWU approximation, the
//! exact branch-and-bound, and the closed-form bounds must tell one
//! coherent story on the same instances.

use kw_graph::{generators, VertexWeights};
use kw_lp::approx::solve_covering;
use kw_lp::exact::{brute_force_mds, solve_mds, ExactOptions};
use kw_lp::{bounds, domset};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

#[test]
fn all_solvers_agree_on_vertex_transitive_graphs() {
    // On vertex-transitive graphs LP_OPT = n/(Δ+1) exactly.
    for (g, expect_lp) in [
        (generators::cycle(12), 4.0),
        (generators::complete(8), 1.0),
        (generators::petersen(), 2.5),
        (generators::torus(4, 4), 16.0 / 5.0),
    ] {
        let lp = domset::solve_lp_mds(&g).unwrap().value;
        assert!(
            (lp - expect_lp).abs() < 1e-7,
            "simplex {lp} vs expected {expect_lp} on {g:?}"
        );
        let lemma1 = bounds::lemma1_bound(&g);
        assert!(
            (lemma1 - expect_lp).abs() < 1e-9,
            "lemma1 is tight on regular graphs"
        );
        let approx = solve_covering(&g, &VertexWeights::uniform(&g), 0.05).unwrap();
        assert!(approx.dual_lower_bound <= lp + 1e-7);
        assert!(approx.primal_value >= lp - 1e-7);
    }
}

#[test]
fn exact_is_sandwiched_by_lp_and_greedyish_bound() {
    let mut rng = SmallRng::seed_from_u64(4);
    for _ in 0..6 {
        let g = generators::gnp(42, 0.1, &mut rng);
        let lp = domset::solve_lp_mds(&g).unwrap().value;
        let ip = solve_mds(&g, &ExactOptions::default()).unwrap().len() as f64;
        assert!(lp <= ip + 1e-9);
        // ln-Δ integrality upper bound for domination LPs.
        let cap = (1.0 + (g.max_degree() as f64 + 1.0).ln()) * lp;
        assert!(ip <= cap + 1e-9, "integrality gap {ip}/{lp} beyond ln Δ");
    }
}

#[test]
fn weighted_consistency_across_solvers() {
    let mut rng = SmallRng::seed_from_u64(5);
    let g = generators::gnp(40, 0.12, &mut rng);
    let w = VertexWeights::from_values((0..40).map(|_| 1.0 + rng.gen::<f64>() * 4.0).collect())
        .unwrap();
    let exact_lp = domset::solve_weighted_lp_mds(&g, &w).unwrap().value;
    let approx = solve_covering(&g, &w, 0.05).unwrap();
    let lemma1 = bounds::weighted_lemma1_bound(&g, &w);
    assert!(lemma1 <= exact_lp + 1e-7);
    assert!(approx.dual_lower_bound <= exact_lp + 1e-7);
    assert!(approx.primal_value >= exact_lp - 1e-7);
    assert!(approx.gap() <= 1.1);
}

#[test]
fn simplex_primal_really_is_optimal_not_just_feasible() {
    // Compare against brute-force MDS on instances where LP = IP
    // (trees have integral domination polytopes... not in general, so
    // instead check LP ≤ brute-force IP and the dual certificate).
    let mut rng = SmallRng::seed_from_u64(6);
    for _ in 0..8 {
        let g = generators::gnp(12, 0.25, &mut rng);
        let sol = domset::solve_lp_mds(&g).unwrap();
        let ip = brute_force_mds(&g).unwrap().len() as f64;
        assert!(sol.value <= ip + 1e-9);
        // Certificate: Σy equals Σx (strong duality) and y feasible.
        let w = VertexWeights::uniform(&g);
        assert!(domset::is_dual_feasible(&g, &sol.y, &w));
        let dual_sum: f64 = sol.y.iter().sum();
        assert!((dual_sum - sol.value).abs() < 1e-7);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]
    #[test]
    fn bound_chain_on_random_instances(n in 1usize..26, p in 0.0f64..1.0, seed in any::<u64>()) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let g = generators::gnp(n, p, &mut rng);
        let lemma1 = bounds::lemma1_bound(&g);
        let packing = bounds::packing_lower_bound(&g);
        let lp = domset::solve_lp_mds(&g).unwrap().value;
        let ip = solve_mds(&g, &ExactOptions::default()).unwrap().len() as f64;
        prop_assert!(packing <= lp + 1e-7, "packing {packing} > lp {lp}");
        prop_assert!(lemma1 <= lp + 1e-7, "lemma1 {lemma1} > lp {lp}");
        prop_assert!(lp <= ip + 1e-7, "lp {lp} > ip {ip}");
        prop_assert!(ip <= n as f64 + 1e-9);
    }

    #[test]
    fn approx_always_brackets_simplex(n in 1usize..24, p in 0.0f64..1.0, seed in any::<u64>()) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let g = generators::gnp(n, p, &mut rng);
        let lp = domset::solve_lp_mds(&g).unwrap().value;
        let sol = solve_covering(&g, &VertexWeights::uniform(&g), 0.1).unwrap();
        prop_assert!(sol.x.is_feasible(&g));
        prop_assert!(sol.dual_lower_bound <= lp + 1e-6);
        prop_assert!(sol.primal_value >= lp - 1e-6);
    }
}
