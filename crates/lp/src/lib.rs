//! Linear-programming substrate for the dominating set reproduction.
//!
//! Section 4 of Kuhn & Wattenhofer derives the MDS integer program
//! `IP_MDS`, its LP relaxation `LP_MDS` (minimize `Σ x_i` subject to
//! `N·x ≥ 1`, `x ≥ 0`, where `N` is the adjacency matrix with unit
//! diagonal) and the dual `DLP_MDS` (maximize `Σ y_i` subject to
//! `N·y ≤ 1`, `y ≥ 0`). Every approximation guarantee in the paper is
//! proven against these programs, so reproducing the paper's ratios needs
//! exact optima for them. This crate provides:
//!
//! * [`simplex`] — a dense two-phase primal simplex solver with a Bland
//!   anti-cycling fallback, for `max cᵀx, Ax ≤ b, x ≥ 0` standard form;
//! * [`domset`] — constructing and solving `LP_MDS` / `DLP_MDS` (and the
//!   weighted variant) for a graph, recovering both the fractional
//!   dominating set `x*` and the dual packing `y*`;
//! * [`bounds`] — the closed-form dual-feasible lower bound of Lemma 1,
//!   `Σ_i 1/(δ⁽¹⁾_i + 1) ≤ |DS_OPT|`, and its weighted generalization;
//! * [`exact`] — an exact branch-and-bound MDS solver (with a brute-force
//!   cross-check) so that small-graph experiments can report true
//!   approximation ratios rather than LP-relative ones;
//! * [`approx`] — a self-certifying `(1+ε)` multiplicative-weights solver
//!   for the covering LP (the sequential core of the positive-LP
//!   machinery the paper cites as \[17\] and \[2\]), for `LP_OPT`
//!   denominators far beyond the dense simplex's reach.
//!
//! # Example
//!
//! ```
//! use kw_graph::generators;
//! use kw_lp::{bounds, domset, exact};
//!
//! let g = generators::cycle(9);
//! let lp = domset::solve_lp_mds(&g)?;
//! let opt = exact::solve_mds(&g, &exact::ExactOptions::default())?;
//! let lemma1 = bounds::lemma1_bound(&g);
//! // lemma1 ≤ LP_OPT ≤ |DS_OPT| (here: 3 ≤ 3 ≤ 3 on C9).
//! assert!(lemma1 <= lp.value + 1e-9);
//! assert!(lp.value <= opt.len() as f64 + 1e-9);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod approx;
pub mod bounds;
mod dense;
pub mod domset;
mod error;
pub mod exact;
pub mod simplex;

pub use dense::DenseMatrix;
pub use error::LpError;
