//! Constructing and solving the dominating-set linear programs.
//!
//! `LP_MDS`: `min Σx_i` s.t. `N·x ≥ 1`, `x ≥ 0`, with `N` the closed
//! neighborhood matrix (adjacency + identity). Its dual `DLP_MDS`:
//! `max Σy_i` s.t. `N·y ≤ 1`, `y ≥ 0` (Section 4 of the paper).
//!
//! The solver works on `DLP_MDS`, which is already in `max/≤` standard form
//! with `b = 1 ≥ 0` (no phase 1 needed); by strong duality its optimum
//! equals `LP_MDS`'s, and the dual multipliers it returns *are* the optimal
//! fractional dominating set `x*` (the matrix `N` is symmetric).

use kw_graph::{CsrGraph, FractionalAssignment, VertexWeights, COVERAGE_TOLERANCE};

use crate::simplex::{solve, LpSolution, SimplexOptions, StandardLp};
use crate::{DenseMatrix, LpError};

/// The closed neighborhood matrix `N` (adjacency plus identity) of `g`.
///
/// This is the constraint matrix of both `LP_MDS` and `DLP_MDS`.
pub fn neighborhood_matrix(g: &CsrGraph) -> DenseMatrix {
    let n = g.len();
    let mut m = DenseMatrix::zeros(n, n);
    for v in g.node_ids() {
        for u in g.closed_neighbors(v) {
            m[(v.index(), u.index())] = 1.0;
        }
    }
    m
}

/// `DLP_MDS` for `g` in solver standard form: `max Σy, N·y ≤ c, y ≥ 0`.
///
/// With uniform weights (`c = 1`) this is the paper's `DLP_MDS`; general
/// weights give the dual of the weighted fractional dominating set LP.
pub fn dual_lp(g: &CsrGraph, weights: &VertexWeights) -> StandardLp {
    StandardLp {
        objective: vec![1.0; g.len()],
        constraints: neighborhood_matrix(g),
        rhs: weights.iter().collect(),
    }
}

/// A solved fractional dominating set LP.
#[derive(Clone, Debug)]
pub struct LpMdsSolution {
    /// Optimal objective value (`Σx* = Σy*` by strong duality).
    pub value: f64,
    /// Optimal fractional dominating set (feasible for `LP_MDS`).
    pub x: FractionalAssignment,
    /// Optimal dual packing (feasible for `DLP_MDS`).
    pub y: Vec<f64>,
    /// Simplex iterations used.
    pub iterations: usize,
}

/// Solves `LP_MDS` exactly for `g` (uniform weights).
///
/// Dense simplex: intended for graphs up to a few hundred nodes — the
/// experiment harness falls back to [`crate::bounds::lemma1_bound`] beyond
/// that.
///
/// # Errors
///
/// Propagates solver errors; `LP_MDS` is always feasible and bounded, so an
/// error indicates a configuration problem (e.g. iteration limits).
pub fn solve_lp_mds(g: &CsrGraph) -> Result<LpMdsSolution, LpError> {
    solve_weighted_lp_mds(g, &VertexWeights::uniform(g))
}

/// Solves the weighted fractional dominating set LP
/// `min Σc_i·x_i` s.t. `N·x ≥ 1`, `x ≥ 0`.
///
/// # Errors
///
/// Propagates solver errors (see [`solve_lp_mds`]).
pub fn solve_weighted_lp_mds(
    g: &CsrGraph,
    weights: &VertexWeights,
) -> Result<LpMdsSolution, LpError> {
    if g.is_empty() {
        return Ok(LpMdsSolution {
            value: 0.0,
            x: FractionalAssignment::zeros(g),
            y: vec![],
            iterations: 0,
        });
    }
    let lp = dual_lp(g, weights);
    let LpSolution {
        value,
        x: y,
        duals: x,
        iterations,
    } = solve(&lp, &SimplexOptions::default())?;
    debug_assert!(
        {
            let xa = FractionalAssignment::from_values(x.clone());
            xa.is_feasible(g)
        },
        "recovered primal is infeasible"
    );
    Ok(LpMdsSolution {
        value,
        x: FractionalAssignment::from_values(x),
        y,
        iterations,
    })
}

/// Whether `y` is feasible for the weighted `DLP_MDS`:
/// `Σ_{j ∈ N_i} y_j ≤ c_i` for every node, `y ≥ 0`
/// (within [`COVERAGE_TOLERANCE`]).
///
/// # Panics
///
/// Panics if lengths disagree with `g`.
pub fn is_dual_feasible(g: &CsrGraph, y: &[f64], weights: &VertexWeights) -> bool {
    assert_eq!(y.len(), g.len(), "dual vector length mismatch");
    assert_eq!(weights.len(), g.len(), "weights length mismatch");
    if y.iter().any(|&v| v < -COVERAGE_TOLERANCE) {
        return false;
    }
    g.node_ids().all(|i| {
        let sum: f64 = g.closed_neighbors(i).map(|j| y[j.index()]).sum();
        sum <= weights.get(i) + COVERAGE_TOLERANCE
    })
}

/// The weak-duality gap certificate for a primal/dual pair: returns
/// `Σ c_i x_i − Σ y_i`, which is non-negative whenever `x` is primal
/// feasible and `y` dual feasible (Lemma 1's proof relies on exactly this).
///
/// # Panics
///
/// Panics if lengths disagree with `g`.
pub fn duality_gap(
    g: &CsrGraph,
    x: &FractionalAssignment,
    y: &[f64],
    weights: &VertexWeights,
) -> f64 {
    assert_eq!(x.len(), g.len(), "primal vector length mismatch");
    assert_eq!(y.len(), g.len(), "dual vector length mismatch");
    x.weighted_objective(weights) - y.iter().sum::<f64>()
}

/// The dual-feasible vector used in the proof of Lemma 1:
/// `y_i = min_{j ∈ N_i} c_j / (δ⁽¹⁾_i + 1)` (uniform weights give
/// `1/(δ⁽¹⁾_i + 1)`).
pub fn lemma1_dual(g: &CsrGraph, weights: &VertexWeights) -> Vec<f64> {
    g.node_ids()
        .map(|i| {
            let min_c = g
                .closed_neighbors(i)
                .map(|j| weights.get(j))
                .fold(f64::INFINITY, f64::min);
            let min_c = if min_c.is_finite() {
                min_c
            } else {
                weights.get(i)
            };
            min_c / (g.delta1(i) as f64 + 1.0)
        })
        .collect()
}

/// Convenience: `δ⁽²⁾` for every node (what Algorithm 1 computes in two
/// rounds), exposed here for reference implementations.
pub fn delta2_vector(g: &CsrGraph) -> Vec<usize> {
    g.node_ids().map(|v| g.delta2(v)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use kw_graph::generators;

    #[test]
    fn neighborhood_matrix_structure() {
        let g = generators::path(3);
        let n = neighborhood_matrix(&g);
        // Row 1 (middle) is all ones; rows 0 and 2 have two ones.
        assert_eq!(n.row(1), &[1.0, 1.0, 1.0]);
        assert_eq!(n.row(0), &[1.0, 1.0, 0.0]);
        for i in 0..3 {
            assert_eq!(n[(i, i)], 1.0, "diagonal must be 1");
        }
    }

    #[test]
    fn lp_mds_on_star_is_one() {
        let g = generators::star(8);
        let sol = solve_lp_mds(&g).unwrap();
        assert!(
            (sol.value - 1.0).abs() < 1e-9,
            "star LP optimum is 1, got {}",
            sol.value
        );
        assert!(sol.x.is_feasible(&g));
        assert!(is_dual_feasible(&g, &sol.y, &VertexWeights::uniform(&g)));
    }

    #[test]
    fn lp_mds_on_complete_graph() {
        // K_n: every closed neighborhood is V, optimum is 1 (uniform 1/n).
        let g = generators::complete(5);
        let sol = solve_lp_mds(&g).unwrap();
        assert!((sol.value - 1.0).abs() < 1e-9);
        assert!(sol.x.is_feasible(&g));
    }

    #[test]
    fn lp_mds_on_cycle_is_n_over_three() {
        // C_n: closed neighborhoods have size 3; x = 1/3 is optimal by the
        // matching dual y = 1/3.
        let g = generators::cycle(9);
        let sol = solve_lp_mds(&g).unwrap();
        assert!(
            (sol.value - 3.0).abs() < 1e-9,
            "C9 LP optimum is 3, got {}",
            sol.value
        );
    }

    #[test]
    fn lp_mds_on_petersen() {
        // 3-regular vertex-transitive: LP optimum n/(Δ+1) = 10/4.
        let sol = solve_lp_mds(&generators::petersen()).unwrap();
        assert!((sol.value - 2.5).abs() < 1e-9);
    }

    #[test]
    fn empty_and_isolated() {
        let g = CsrGraph::empty(0);
        let sol = solve_lp_mds(&g).unwrap();
        assert_eq!(sol.value, 0.0);
        // Isolated nodes force x_i = 1 each.
        let g = CsrGraph::empty(3);
        let sol = solve_lp_mds(&g).unwrap();
        assert!((sol.value - 3.0).abs() < 1e-9);
        assert!(sol.x.is_feasible(&g));
    }

    #[test]
    fn strong_duality_holds() {
        let g = generators::grid(3, 4);
        let sol = solve_lp_mds(&g).unwrap();
        let w = VertexWeights::uniform(&g);
        assert!(sol.x.is_feasible(&g), "primal feasible");
        assert!(is_dual_feasible(&g, &sol.y, &w), "dual feasible");
        let gap = duality_gap(&g, &sol.x, &sol.y, &w);
        assert!(gap.abs() < 1e-7, "strong duality gap {gap}");
    }

    #[test]
    fn weighted_lp_prefers_cheap_dominators() {
        // Star where the center costs 100 and leaves cost 1: covering the
        // center's constraint costs min(100·x_c , cheap leaf coverage).
        let g = generators::star(4);
        let w = VertexWeights::from_values(vec![100.0, 1.0, 1.0, 1.0]).unwrap();
        let sol = solve_weighted_lp_mds(&g, &w).unwrap();
        // Each leaf must be covered by itself or the center; center is
        // expensive, so x_leaf = 1 each (cost 3) beats x_center = 1 (100).
        assert!(sol.value <= 4.0 + 1e-9);
        assert!(sol.x.is_feasible(&g));
        assert!(is_dual_feasible(&g, &sol.y, &w));
    }

    #[test]
    fn lemma1_dual_is_feasible_weighted_and_unweighted() {
        use rand::{rngs::SmallRng, Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(3);
        let g = generators::gnp(60, 0.1, &mut rng);
        let uniform = VertexWeights::uniform(&g);
        let y = lemma1_dual(&g, &uniform);
        assert!(is_dual_feasible(&g, &y, &uniform));
        let costs: Vec<f64> = (0..60).map(|_| 1.0 + rng.gen::<f64>() * 9.0).collect();
        let w = VertexWeights::from_values(costs).unwrap();
        let yw = lemma1_dual(&g, &w);
        assert!(is_dual_feasible(&g, &yw, &w));
    }

    #[test]
    fn delta2_vector_matches_graph_method() {
        let g = generators::star_of_cliques(3, 4);
        let v = delta2_vector(&g);
        for u in g.node_ids() {
            assert_eq!(v[u.index()], g.delta2(u));
        }
    }

    mod proptests {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(24))]
            /// LP optimum is sandwiched: lemma1 ≤ LP_OPT ≤ n, and the
            /// returned pair certifies optimality by strong duality.
            #[test]
            fn lp_mds_certificates(n in 1usize..24, p in 0.0f64..1.0, seed in any::<u64>()) {
                use rand::{rngs::SmallRng, SeedableRng};
                let mut rng = SmallRng::seed_from_u64(seed);
                let g = generators::gnp(n, p, &mut rng);
                let w = VertexWeights::uniform(&g);
                let sol = solve_lp_mds(&g).unwrap();
                prop_assert!(sol.x.is_feasible(&g));
                prop_assert!(is_dual_feasible(&g, &sol.y, &w));
                prop_assert!(duality_gap(&g, &sol.x, &sol.y, &w).abs() < 1e-6);
                let lemma1: f64 = lemma1_dual(&g, &w).iter().sum();
                prop_assert!(lemma1 <= sol.value + 1e-6);
                prop_assert!(sol.value <= n as f64 + 1e-6);
            }
        }
    }
}
