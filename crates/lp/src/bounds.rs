//! Closed-form lower bounds on the dominating set optimum.
//!
//! Lemma 1 of the paper: assigning `y_i = 1/(δ⁽¹⁾_i + 1)` is feasible for
//! `DLP_MDS`, so by weak duality
//!
//! ```text
//! Σ_i 1/(δ⁽¹⁾_i + 1)  ≤  LP_OPT  ≤  |DS_OPT|.
//! ```
//!
//! These bounds cost `O(n + m)` and therefore serve as the ratio
//! denominator on graphs too large for the simplex or the exact solver —
//! exactly the role the dual plays in the paper's own proofs.

use kw_graph::{CsrGraph, VertexWeights};

use crate::domset::lemma1_dual;

/// Lemma 1: `Σ_i 1/(δ⁽¹⁾_i + 1) ≤ |DS_OPT|`.
///
/// # Example
///
/// ```
/// use kw_graph::generators;
/// use kw_lp::bounds::lemma1_bound;
///
/// // Star: center has δ⁽¹⁾ = n−1 everywhere, so the bound is n/n = 1,
/// // matching the true optimum exactly.
/// let g = generators::star(10);
/// assert!((lemma1_bound(&g) - 1.0).abs() < 1e-12);
/// ```
pub fn lemma1_bound(g: &CsrGraph) -> f64 {
    g.node_ids().map(|i| 1.0 / (g.delta1(i) as f64 + 1.0)).sum()
}

/// Weighted generalization of Lemma 1:
/// `Σ_i min_{j ∈ N_i} c_j / (δ⁽¹⁾_i + 1)` lower-bounds the weighted
/// dominating set optimum (the vector is dual feasible because for
/// `j ∈ N_i` both `min_{l ∈ N_j} c_l ≤ c_i` and `δ⁽¹⁾_j ≥ δ_i`).
///
/// # Panics
///
/// Panics if `weights` was built for a different node count.
pub fn weighted_lemma1_bound(g: &CsrGraph, weights: &VertexWeights) -> f64 {
    assert_eq!(weights.len(), g.len(), "weights length mismatch");
    lemma1_dual(g, weights).iter().sum()
}

/// The trivial size upper bound used throughout the paper's introduction:
/// any graph's optimum is at least `n/(Δ+1)` (each dominator covers at most
/// `Δ+1` nodes).
pub fn packing_lower_bound(g: &CsrGraph) -> f64 {
    if g.is_empty() {
        0.0
    } else {
        g.len() as f64 / (g.max_degree() as f64 + 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kw_graph::generators;

    #[test]
    fn lemma1_on_regular_graphs_matches_lp() {
        // On a d-regular graph δ⁽¹⁾ = d so the bound is n/(d+1) = LP_OPT.
        let g = generators::cycle(12);
        assert!((lemma1_bound(&g) - 4.0).abs() < 1e-12);
        let p = generators::petersen();
        assert!((lemma1_bound(&p) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn lemma1_never_exceeds_exact_optimum() {
        use crate::exact::{solve_mds, ExactOptions};
        for g in [
            generators::path(7),
            generators::star(9),
            generators::grid(3, 3),
            generators::caterpillar(4, 2),
            generators::star_of_cliques(3, 3),
        ] {
            let opt = solve_mds(&g, &ExactOptions::default()).unwrap().len() as f64;
            let lb = lemma1_bound(&g);
            assert!(lb <= opt + 1e-9, "lemma1 {lb} > opt {opt} on {g:?}");
        }
    }

    #[test]
    fn packing_bound_is_weaker_or_equal_on_stars() {
        let g = generators::star(10);
        assert!((packing_lower_bound(&g) - 1.0).abs() < 1e-12);
        assert_eq!(packing_lower_bound(&CsrGraph::empty(0)), 0.0);
    }

    #[test]
    fn weighted_bound_reduces_to_unweighted() {
        let g = generators::grid(3, 4);
        let w = VertexWeights::uniform(&g);
        assert!((weighted_lemma1_bound(&g, &w) - lemma1_bound(&g)).abs() < 1e-12);
    }

    #[test]
    fn weighted_bound_scales_with_cheap_nodes() {
        let g = generators::star(4);
        // Cheap center: bound should stay ≤ weighted optimum (center alone
        // dominates at cost 1).
        let w = VertexWeights::from_values(vec![1.0, 8.0, 8.0, 8.0]).unwrap();
        let b = weighted_lemma1_bound(&g, &w);
        assert!(b <= 1.0 + 1e-12, "bound {b} exceeds cost of optimal set");
    }
}
