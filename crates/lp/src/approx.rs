//! Width-independent multiplicative-weights solver for the covering LP —
//! a `(1+ε)`-approximate alternative to the simplex for large graphs.
//!
//! The paper's own references \[17\] (Luby–Nisan) and \[2\] (Bartal–Byers–Raz)
//! solve *positive* linear programs like `LP_MDS` approximately in
//! parallel/distributed settings; this module implements the sequential
//! core of that machinery (a Garg–Könemann-style fractional set cover
//! loop) so experiments can use near-exact `LP_OPT` denominators far
//! beyond the dense simplex's reach.
//!
//! The solver is **self-certifying**: along with the feasible primal `x`
//! it extracts a feasible dual `y` from its weight vector, so the returned
//! [`gap`](ApproxLpSolution::gap) is a machine-checked optimality
//! certificate (`1 ≤ primal/dual ≤ 1+O(ε)`), not a trusted theorem.

use kw_graph::{CsrGraph, FractionalAssignment, VertexWeights};

use crate::LpError;

/// Result of an approximate covering-LP solve.
#[derive(Clone, Debug)]
pub struct ApproxLpSolution {
    /// Feasible primal solution of `LP_MDS` (coverage ≥ 1 everywhere).
    pub x: FractionalAssignment,
    /// Primal objective `Σ c_i·x_i`.
    pub primal_value: f64,
    /// Certified lower bound on `LP_OPT` (from the extracted feasible
    /// dual).
    pub dual_lower_bound: f64,
    /// Column-increment iterations performed.
    pub iterations: usize,
}

impl ApproxLpSolution {
    /// The certified optimality gap `primal/dual ≥ 1`.
    pub fn gap(&self) -> f64 {
        if self.dual_lower_bound <= 0.0 {
            f64::INFINITY
        } else {
            self.primal_value / self.dual_lower_bound
        }
    }
}

/// Approximately solves the weighted `LP_MDS`
/// (`min Σc_i·x_i` s.t. `N·x ≥ 1`, `x ≥ 0`) within a certified factor
/// close to `1+ε`.
///
/// Runs the multiplicative-weights covering loop: repeatedly raise the
/// most cost-effective column under exponentially decaying constraint
/// weights, then scale to feasibility. Cost is
/// `O((n + m)·log(n)/ε²)`-ish — comfortably handles `n` in the hundreds of
/// thousands where the dense simplex is hopeless.
///
/// # Errors
///
/// [`LpError::DimensionMismatch`] if `weights` does not match `g`;
/// [`LpError::IterationLimit`] if the loop fails to converge (indicates a
/// bug — the loop provably terminates).
///
/// # Example
///
/// ```
/// use kw_graph::{generators, VertexWeights};
/// use kw_lp::approx::solve_covering;
///
/// let g = generators::cycle(30);
/// let sol = solve_covering(&g, &VertexWeights::uniform(&g), 0.05)?;
/// // C30's LP optimum is 10; the certificate brackets it.
/// assert!(sol.dual_lower_bound <= 10.0 + 1e-9);
/// assert!(sol.primal_value >= 10.0 - 1e-9);
/// assert!(sol.gap() < 1.2);
/// # Ok::<(), kw_lp::LpError>(())
/// ```
pub fn solve_covering(
    g: &CsrGraph,
    weights: &VertexWeights,
    eps: f64,
) -> Result<ApproxLpSolution, LpError> {
    if weights.len() != g.len() {
        return Err(LpError::DimensionMismatch {
            what: format!(
                "graph has {} nodes but weights has {}",
                g.len(),
                weights.len()
            ),
        });
    }
    assert!(eps > 0.0 && eps < 0.5, "eps must be in (0, 0.5)");
    let n = g.len();
    if n == 0 {
        return Ok(ApproxLpSolution {
            x: FractionalAssignment::zeros(g),
            primal_value: 0.0,
            dual_lower_bound: 0.0,
            iterations: 0,
        });
    }
    // Constraint weights y_i start at 1 and decay by (1-ε) whenever
    // constraint i gains a unit of coverage.
    let mut y = vec![1.0f64; n];
    // score[j] = Σ_{i ∈ N[j]} y_i — the covering power of column j.
    let mut score: Vec<f64> = g
        .node_ids()
        .map(|j| g.closed_neighbors(j).len() as f64)
        .collect();
    let mut raw_x = vec![0.0f64; n];
    let mut coverage = vec![0.0f64; n];
    // Backstop target: coverage ≥ ln(n)/ε² everywhere yields the classic
    // MWU guarantee; the adaptive certificate check below usually stops
    // far earlier.
    let target = ((n as f64).ln().max(1.0)) / (eps * eps);
    let max_iterations = 64 * ((target * n as f64) as usize + n);
    let check_every = n.max(64);
    let mut iterations = 0usize;
    let mut best_dual = dual_value(g, weights, &y);
    let raw_cost =
        |raw: &[f64]| -> f64 { raw.iter().zip(weights.iter()).map(|(x, c)| x * c).sum() };
    let mut min_cov;
    loop {
        iterations += 1;
        if iterations > max_iterations {
            return Err(LpError::IterationLimit {
                limit: max_iterations,
            });
        }
        // Most cost-effective column.
        let j = g
            .node_ids()
            .max_by(|&a, &b| {
                let ra = score[a.index()] / weights.get(a);
                let rb = score[b.index()] / weights.get(b);
                ra.partial_cmp(&rb).expect("scores are finite")
            })
            .expect("n > 0");
        raw_x[j.index()] += 1.0;
        // Raising x_j by 1 gives every i ∈ N[j] one unit of coverage.
        for i in g.closed_neighbors(j) {
            coverage[i.index()] += 1.0;
            let old = y[i.index()];
            let fresh = old * (1.0 - eps);
            y[i.index()] = fresh;
            let delta = old - fresh;
            for l in g.closed_neighbors(i) {
                score[l.index()] -= delta;
            }
        }
        // Certificate check (amortized O(1) per iteration): stop as soon
        // as the scaled primal is within 1+ε of the extracted dual, or
        // once the backstop coverage target is met.
        if iterations.is_multiple_of(check_every) || iterations == max_iterations {
            min_cov = coverage.iter().copied().fold(f64::INFINITY, f64::min);
            if min_cov > 0.0 {
                best_dual = best_dual.max(dual_value(g, weights, &y));
                let primal_now = raw_cost(&raw_x) / min_cov;
                if primal_now <= (1.0 + eps) * best_dual || min_cov >= target {
                    break;
                }
            }
            // Renormalize the weights (argmax and dual extraction are both
            // scale-invariant) and rebuild scores from scratch: without
            // this, y underflows to zero after ~14k decays of a constraint
            // and the incremental score updates go silent.
            let max_y = y.iter().copied().fold(0.0f64, f64::max);
            if max_y > 0.0 {
                for w in &mut y {
                    *w /= max_y;
                }
            }
            for j in g.node_ids() {
                score[j.index()] = g.closed_neighbors(j).map(|i| y[i.index()]).sum();
            }
        }
    }
    min_cov = coverage.iter().copied().fold(f64::INFINITY, f64::min);
    best_dual = best_dual.max(dual_value(g, weights, &y));
    // Scale to exact feasibility: coverage/min_cov ≥ 1 everywhere.
    let scale = 1.0 / min_cov;
    let x = FractionalAssignment::from_values(raw_x.iter().map(|&v| v * scale).collect());
    debug_assert!(x.is_feasible(g));
    let primal_value = x.weighted_objective(weights);
    Ok(ApproxLpSolution {
        x,
        primal_value,
        dual_lower_bound: best_dual,
        iterations,
    })
}

/// Normalizes raw weights into a feasible dual and returns its value:
/// `y_i / max_v (Σ_{u ∈ N[v]} y_u / c_v)` satisfies `N·ŷ ≤ c`, so
/// `Σ ŷ ≤ LP_OPT` by weak duality.
fn dual_value(g: &CsrGraph, weights: &VertexWeights, y: &[f64]) -> f64 {
    let mut max_row = 0.0f64;
    for v in g.node_ids() {
        let row: f64 = g.closed_neighbors(v).map(|u| y[u.index()]).sum();
        max_row = max_row.max(row / weights.get(v));
    }
    if max_row <= 0.0 {
        return 0.0;
    }
    y.iter().sum::<f64>() / max_row
}

/// Convenience wrapper: unweighted `LP_MDS` value bracket
/// `(dual_lower_bound, primal_value)`.
///
/// # Errors
///
/// Same as [`solve_covering`].
pub fn lp_mds_bracket(g: &CsrGraph, eps: f64) -> Result<(f64, f64), LpError> {
    let sol = solve_covering(g, &VertexWeights::uniform(g), eps)?;
    Ok((sol.dual_lower_bound, sol.primal_value))
}

#[cfg(test)]
mod tests {
    use super::*;
    use kw_graph::generators;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn brackets_simplex_optimum_on_small_graphs() {
        let mut rng = SmallRng::seed_from_u64(1);
        for g in [
            generators::cycle(15),
            generators::star(20),
            generators::petersen(),
            generators::grid(5, 5),
            generators::gnp(60, 0.1, &mut rng),
        ] {
            let exact = crate::domset::solve_lp_mds(&g).unwrap().value;
            let sol = solve_covering(&g, &VertexWeights::uniform(&g), 0.05).unwrap();
            assert!(sol.x.is_feasible(&g), "approx primal infeasible on {g:?}");
            assert!(
                sol.dual_lower_bound <= exact + 1e-6,
                "dual {} exceeds LP_OPT {exact} on {g:?}",
                sol.dual_lower_bound
            );
            assert!(
                sol.primal_value >= exact - 1e-6,
                "primal {} below LP_OPT {exact} on {g:?}",
                sol.primal_value
            );
            assert!(sol.gap() <= 1.25, "gap {} too large on {g:?}", sol.gap());
        }
    }

    #[test]
    fn tighter_eps_gives_tighter_gap() {
        let g = generators::grid(8, 8);
        let loose = solve_covering(&g, &VertexWeights::uniform(&g), 0.3).unwrap();
        let tight = solve_covering(&g, &VertexWeights::uniform(&g), 0.05).unwrap();
        assert!(
            tight.gap() <= loose.gap() + 0.05,
            "{} vs {}",
            tight.gap(),
            loose.gap()
        );
        assert!(tight.iterations > loose.iterations);
    }

    #[test]
    fn weighted_instances() {
        let mut rng = SmallRng::seed_from_u64(2);
        let g = generators::gnp(50, 0.1, &mut rng);
        let w = VertexWeights::from_values((0..50).map(|_| 1.0 + rng.gen::<f64>() * 9.0).collect())
            .unwrap();
        let exact = crate::domset::solve_weighted_lp_mds(&g, &w).unwrap().value;
        let sol = solve_covering(&g, &w, 0.05).unwrap();
        assert!(sol.x.is_feasible(&g));
        assert!(sol.dual_lower_bound <= exact + 1e-6);
        assert!(sol.primal_value >= exact - 1e-6);
        assert!(sol.gap() <= 1.3, "gap {}", sol.gap());
    }

    #[test]
    fn scales_beyond_simplex_range() {
        let mut rng = SmallRng::seed_from_u64(3);
        let g = generators::gnp(800, 0.01, &mut rng);
        let sol = solve_covering(&g, &VertexWeights::uniform(&g), 0.15).unwrap();
        assert!(sol.x.is_feasible(&g));
        assert!(sol.gap() <= 1.0 + 0.15 + 1e-9, "gap {}", sol.gap());
        // The bracket must contain the Lemma-1 bound from below.
        let lemma1 = crate::bounds::lemma1_bound(&g);
        assert!(sol.primal_value >= lemma1 - 1e-6);
    }

    #[test]
    fn empty_graph() {
        let g = CsrGraph::empty(0);
        let sol = solve_covering(&g, &VertexWeights::uniform(&g), 0.1).unwrap();
        assert_eq!(sol.primal_value, 0.0);
        assert_eq!(sol.iterations, 0);
    }

    #[test]
    fn isolated_nodes() {
        let g = CsrGraph::empty(5);
        let sol = solve_covering(&g, &VertexWeights::uniform(&g), 0.1).unwrap();
        assert!(sol.x.is_feasible(&g));
        // LP_OPT = 5 (each node self-covers); certificate brackets it.
        assert!(sol.dual_lower_bound <= 5.0 + 1e-9);
        assert!(sol.primal_value >= 5.0 - 1e-9);
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let g = generators::path(3);
        let w = VertexWeights::from_values(vec![1.0, 1.0]).unwrap();
        assert!(matches!(
            solve_covering(&g, &w, 0.1),
            Err(LpError::DimensionMismatch { .. })
        ));
    }

    #[test]
    #[should_panic(expected = "eps must be in")]
    fn eps_validated() {
        let g = generators::path(3);
        let _ = solve_covering(&g, &VertexWeights::uniform(&g), 0.9);
    }
}
