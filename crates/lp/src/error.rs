use std::error::Error;
use std::fmt;

/// Errors produced by the LP and exact solvers.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum LpError {
    /// The linear program has no feasible point.
    Infeasible,
    /// The objective is unbounded above on the feasible region.
    Unbounded,
    /// Matrix/vector dimensions disagree.
    DimensionMismatch {
        /// Human-readable description of the mismatch.
        what: String,
    },
    /// The simplex iteration budget was exhausted (indicates an extreme
    /// degeneracy case; the Bland fallback makes this unreachable for
    /// well-posed inputs).
    IterationLimit {
        /// The configured limit that was hit.
        limit: usize,
    },
    /// The exact solver's search-node budget was exhausted.
    SearchBudgetExceeded {
        /// The configured limit that was hit.
        limit: u64,
    },
    /// The instance exceeds a configured size guard.
    TooLarge {
        /// Instance size (e.g. node count).
        size: usize,
        /// The configured maximum.
        limit: usize,
    },
}

impl fmt::Display for LpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LpError::Infeasible => write!(f, "linear program is infeasible"),
            LpError::Unbounded => write!(f, "linear program is unbounded"),
            LpError::DimensionMismatch { what } => write!(f, "dimension mismatch: {what}"),
            LpError::IterationLimit { limit } => {
                write!(f, "simplex exceeded {limit} iterations")
            }
            LpError::SearchBudgetExceeded { limit } => {
                write!(f, "exact search exceeded {limit} nodes")
            }
            LpError::TooLarge { size, limit } => {
                write!(f, "instance size {size} exceeds limit {limit}")
            }
        }
    }
}

impl Error for LpError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays() {
        assert_eq!(
            LpError::Infeasible.to_string(),
            "linear program is infeasible"
        );
        assert_eq!(
            LpError::Unbounded.to_string(),
            "linear program is unbounded"
        );
        assert!(LpError::IterationLimit { limit: 5 }
            .to_string()
            .contains('5'));
        assert!(LpError::SearchBudgetExceeded { limit: 9 }
            .to_string()
            .contains('9'));
        assert!(LpError::TooLarge { size: 10, limit: 4 }
            .to_string()
            .contains("10"));
        assert!(LpError::DimensionMismatch { what: "b".into() }
            .to_string()
            .contains('b'));
    }

    #[test]
    fn send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<LpError>();
    }
}
