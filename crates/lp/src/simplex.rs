//! Dense two-phase primal simplex.
//!
//! Solves linear programs in the standard inequality form
//!
//! ```text
//! maximize    cᵀx
//! subject to  A·x ≤ b
//!             x ≥ 0
//! ```
//!
//! The solver runs phase 1 (artificial variables) only when some `b_i < 0`;
//! the dominating-set programs always have `b ≥ 0`, so they start directly
//! from the slack basis. Entering columns follow Dantzig's rule with an
//! automatic switch to Bland's rule after a configurable number of
//! iterations, which guarantees termination under degeneracy.
//!
//! At optimality the solution carries a *certificate*: the primal point, the
//! dual multipliers (reduced costs of the slack columns), and equal primal
//! and dual objectives — tests verify these rather than trusting the solver.
//!
//! # Example
//!
//! ```
//! use kw_lp::simplex::{solve, SimplexOptions, StandardLp};
//! use kw_lp::DenseMatrix;
//!
//! // max x + y  s.t.  x + 2y ≤ 4,  3x + y ≤ 6  →  optimum at (8/5, 6/5).
//! let lp = StandardLp {
//!     objective: vec![1.0, 1.0],
//!     constraints: DenseMatrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 1.0]]),
//!     rhs: vec![4.0, 6.0],
//! };
//! let sol = solve(&lp, &SimplexOptions::default())?;
//! assert!((sol.value - 14.0 / 5.0).abs() < 1e-9);
//! # Ok::<(), kw_lp::LpError>(())
//! ```

use crate::{DenseMatrix, LpError};

/// A linear program `max cᵀx, A·x ≤ b, x ≥ 0`.
#[derive(Clone, Debug)]
pub struct StandardLp {
    /// Objective coefficients `c` (length = number of variables).
    pub objective: Vec<f64>,
    /// Constraint matrix `A` (`rows × variables`).
    pub constraints: DenseMatrix,
    /// Right-hand side `b` (length = rows; may be negative, triggering
    /// phase 1).
    pub rhs: Vec<f64>,
}

impl StandardLp {
    /// Validates dimensional consistency.
    ///
    /// # Errors
    ///
    /// [`LpError::DimensionMismatch`] when shapes disagree.
    pub fn validate(&self) -> Result<(), LpError> {
        if self.constraints.cols() != self.objective.len() {
            return Err(LpError::DimensionMismatch {
                what: format!(
                    "A has {} columns but c has {} entries",
                    self.constraints.cols(),
                    self.objective.len()
                ),
            });
        }
        if self.constraints.rows() != self.rhs.len() {
            return Err(LpError::DimensionMismatch {
                what: format!(
                    "A has {} rows but b has {} entries",
                    self.constraints.rows(),
                    self.rhs.len()
                ),
            });
        }
        Ok(())
    }
}

/// Solver tuning knobs.
#[derive(Clone, Copy, Debug)]
pub struct SimplexOptions {
    /// Hard iteration cap across both phases.
    pub max_iterations: usize,
    /// Switch from Dantzig's to Bland's entering rule after this many
    /// iterations (anti-cycling).
    pub bland_after: usize,
    /// Numerical tolerance for zero tests.
    pub eps: f64,
}

impl Default for SimplexOptions {
    fn default() -> Self {
        SimplexOptions {
            max_iterations: 200_000,
            bland_after: 20_000,
            eps: 1e-9,
        }
    }
}

/// An optimal solution with its dual certificate.
#[derive(Clone, Debug)]
pub struct LpSolution {
    /// Optimal objective value `cᵀx`.
    pub value: f64,
    /// Optimal primal point.
    pub x: Vec<f64>,
    /// Dual multipliers, one per constraint row (`≥ 0`; `yᵀb` equals
    /// `value` by strong duality).
    pub duals: Vec<f64>,
    /// Simplex iterations used (both phases).
    pub iterations: usize,
}

/// Solves the linear program.
///
/// # Errors
///
/// [`LpError::Infeasible`], [`LpError::Unbounded`],
/// [`LpError::DimensionMismatch`], or [`LpError::IterationLimit`].
pub fn solve(lp: &StandardLp, opts: &SimplexOptions) -> Result<LpSolution, LpError> {
    lp.validate()?;
    let n = lp.objective.len();
    let m = lp.rhs.len();
    if m == 0 {
        // No constraints: optimum is 0 at x = 0 unless some c_j > 0.
        if lp.objective.iter().any(|&c| c > opts.eps) {
            return Err(LpError::Unbounded);
        }
        return Ok(LpSolution {
            value: 0.0,
            x: vec![0.0; n],
            duals: vec![],
            iterations: 0,
        });
    }
    let mut t = Tableau::new(lp, opts);
    let mut iterations = 0usize;
    if t.needs_phase1 {
        t.phase1(&mut iterations)?;
    }
    t.phase2(&mut iterations)?;
    Ok(t.extract(iterations))
}

/// Working tableau: `m` constraint rows over columns
/// `[structural | slack | artificial | rhs]`, plus an explicit reduced-cost
/// row `z`.
struct Tableau<'a> {
    lp: &'a StandardLp,
    opts: SimplexOptions,
    n: usize,
    m: usize,
    art: usize,
    rows: DenseMatrix,
    /// `z[j] = c_B B⁻¹ A_j − c_j`; `z[total]` holds the objective value.
    z: Vec<f64>,
    basis: Vec<usize>,
    needs_phase1: bool,
    /// Rows dropped as redundant after phase 1 (their duals are 0).
    dropped_rows: Vec<usize>,
    /// Original row index of each current tableau row.
    row_origin: Vec<usize>,
}

impl<'a> Tableau<'a> {
    fn new(lp: &'a StandardLp, opts: &SimplexOptions) -> Self {
        let n = lp.objective.len();
        let m = lp.rhs.len();
        let negate: Vec<bool> = lp.rhs.iter().map(|&b| b < 0.0).collect();
        let art = negate.iter().filter(|&&x| x).count();
        let total = n + m + art;
        let mut rows = DenseMatrix::zeros(m, total + 1);
        let mut basis = vec![0usize; m];
        let mut art_idx = 0usize;
        for i in 0..m {
            let sign = if negate[i] { -1.0 } else { 1.0 };
            for j in 0..n {
                rows[(i, j)] = sign * lp.constraints[(i, j)];
            }
            rows[(i, n + i)] = sign; // slack
            rows[(i, total)] = sign * lp.rhs[i];
            if negate[i] {
                rows[(i, n + m + art_idx)] = 1.0;
                basis[i] = n + m + art_idx;
                art_idx += 1;
            } else {
                basis[i] = n + i;
            }
        }
        Tableau {
            lp,
            opts: *opts,
            n,
            m,
            art,
            rows,
            z: vec![0.0; total + 1],
            basis,
            needs_phase1: art > 0,
            dropped_rows: Vec::new(),
            row_origin: (0..m).collect(),
        }
    }

    fn total_cols(&self) -> usize {
        self.n + self.m + self.art
    }

    /// Rebuilds the z-row for objective `c_ext` (indexed over all columns).
    fn rebuild_z(&mut self, c_ext: &[f64]) {
        let total = self.total_cols();
        for j in 0..=total {
            let mut acc = 0.0;
            for (i, &bcol) in self.basis.iter().enumerate() {
                let cb = c_ext[bcol];
                if cb != 0.0 {
                    acc += cb * self.rows[(i, j)];
                }
            }
            self.z[j] = if j < total { acc - c_ext[j] } else { acc };
        }
    }

    fn phase1(&mut self, iterations: &mut usize) -> Result<(), LpError> {
        let total = self.total_cols();
        let mut c1 = vec![0.0; total];
        for cost in c1.iter_mut().skip(self.n + self.m) {
            *cost = -1.0;
        }
        self.rebuild_z(&c1);
        self.iterate(iterations, true)?;
        if self.z[total] < -self.opts.eps {
            return Err(LpError::Infeasible);
        }
        self.evict_artificials();
        Ok(())
    }

    /// Pivots basic artificials out of the basis, dropping redundant rows.
    fn evict_artificials(&mut self) {
        let art_start = self.n + self.m;
        let mut redundant = Vec::new();
        for i in 0..self.rows.rows() {
            if self.basis[i] < art_start {
                continue;
            }
            // Find any non-artificial column to pivot on.
            let col = (0..art_start).find(|&j| self.rows[(i, j)].abs() > self.opts.eps);
            match col {
                Some(j) => self.pivot(i, j),
                None => redundant.push(i),
            }
        }
        if redundant.is_empty() {
            return;
        }
        // Rebuild the tableau without the redundant rows.
        let keep: Vec<usize> = (0..self.rows.rows())
            .filter(|i| !redundant.contains(i))
            .collect();
        let total = self.total_cols();
        let mut rows = DenseMatrix::zeros(keep.len(), total + 1);
        let mut basis = Vec::with_capacity(keep.len());
        let mut origin = Vec::with_capacity(keep.len());
        for (new_i, &old_i) in keep.iter().enumerate() {
            rows.row_mut(new_i).copy_from_slice(self.rows.row(old_i));
            basis.push(self.basis[old_i]);
            origin.push(self.row_origin[old_i]);
        }
        for &r in &redundant {
            self.dropped_rows.push(self.row_origin[r]);
        }
        self.rows = rows;
        self.basis = basis;
        self.row_origin = origin;
    }

    fn phase2(&mut self, iterations: &mut usize) -> Result<(), LpError> {
        let total = self.total_cols();
        let mut c2 = vec![0.0; total];
        c2[..self.n].copy_from_slice(&self.lp.objective);
        self.rebuild_z(&c2);
        self.iterate(iterations, false)
    }

    /// Runs simplex pivots until optimality for the current z-row.
    fn iterate(&mut self, iterations: &mut usize, allow_artificial: bool) -> Result<(), LpError> {
        let eps = self.opts.eps;
        let enter_limit = if allow_artificial {
            self.total_cols()
        } else {
            self.n + self.m
        };
        loop {
            if *iterations >= self.opts.max_iterations {
                return Err(LpError::IterationLimit {
                    limit: self.opts.max_iterations,
                });
            }
            let bland = *iterations >= self.opts.bland_after;
            // Entering column: most negative reduced cost (Dantzig) or the
            // first negative one (Bland).
            let mut entering: Option<usize> = None;
            let mut best = -eps;
            for j in 0..enter_limit {
                let zj = self.z[j];
                if zj < -eps {
                    if bland {
                        entering = Some(j);
                        break;
                    }
                    if zj < best {
                        best = zj;
                        entering = Some(j);
                    }
                }
            }
            let Some(col) = entering else { return Ok(()) };
            // Ratio test; ties broken by smallest basis column (Bland).
            let total = self.total_cols();
            let mut leaving: Option<usize> = None;
            let mut best_ratio = f64::INFINITY;
            for i in 0..self.rows.rows() {
                let a = self.rows[(i, col)];
                if a > eps {
                    let ratio = self.rows[(i, total)] / a;
                    let better = ratio < best_ratio - eps
                        || (ratio < best_ratio + eps
                            && leaving.is_some_and(|l| self.basis[i] < self.basis[l]));
                    if better {
                        best_ratio = ratio;
                        leaving = Some(i);
                    }
                }
            }
            let Some(row) = leaving else {
                return Err(LpError::Unbounded);
            };
            self.pivot(row, col);
            *iterations += 1;
        }
    }

    /// Gauss-Jordan pivot on `(row, col)`, updating the z-row too.
    fn pivot(&mut self, row: usize, col: usize) {
        let total = self.total_cols();
        let pivot = self.rows[(row, col)];
        debug_assert!(pivot.abs() > 0.0, "pivot on a zero element");
        let inv = 1.0 / pivot;
        for j in 0..=total {
            self.rows[(row, j)] *= inv;
        }
        for i in 0..self.rows.rows() {
            if i == row {
                continue;
            }
            let factor = self.rows[(i, col)];
            if factor.abs() <= f64::MIN_POSITIVE {
                continue;
            }
            let (pivot_row, target) = self.rows.two_rows_mut(row, i);
            for j in 0..=total {
                target[j] -= factor * pivot_row[j];
            }
            self.rows[(i, col)] = 0.0;
        }
        let zfactor = self.z[col];
        if zfactor != 0.0 {
            for j in 0..=total {
                self.z[j] -= zfactor * self.rows[(row, j)];
            }
            self.z[col] = 0.0;
        }
        self.basis[row] = col;
    }

    fn extract(&self, iterations: usize) -> LpSolution {
        let total = self.total_cols();
        let mut x = vec![0.0; self.n];
        for (i, &bcol) in self.basis.iter().enumerate() {
            if bcol < self.n {
                x[bcol] = self.rows[(i, total)];
            }
        }
        // Clamp tiny negative noise on degenerate vertices.
        for v in &mut x {
            if *v < 0.0 && *v > -self.opts.eps {
                *v = 0.0;
            }
        }
        // Dual multipliers are the reduced costs of the slack columns; the
        // sign works out identically for rows negated in phase 1 (both the
        // multiplier and the slack coefficient flip).
        let mut duals = vec![0.0; self.m];
        for &orig in &self.row_origin {
            duals[orig] = self.z[self.n + orig].max(0.0);
        }
        for &orig in &self.dropped_rows {
            duals[orig] = 0.0;
        }
        LpSolution {
            value: self.z[total],
            x,
            duals,
            iterations,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lp(c: Vec<f64>, a: &[Vec<f64>], b: Vec<f64>) -> StandardLp {
        StandardLp {
            objective: c,
            constraints: DenseMatrix::from_rows(a),
            rhs: b,
        }
    }

    /// Verifies the optimality certificate: primal feasibility, dual
    /// feasibility (y ≥ 0, yᵀA ≥ c componentwise), and strong duality.
    fn assert_certificate(problem: &StandardLp, sol: &LpSolution) {
        let eps = 1e-6;
        for &xi in &sol.x {
            assert!(xi >= -eps, "negative primal value {xi}");
        }
        let ax = problem.constraints.mul_vec(&sol.x);
        for (i, (&lhs, &rhs)) in ax.iter().zip(&problem.rhs).enumerate() {
            assert!(lhs <= rhs + eps, "constraint {i} violated: {lhs} > {rhs}");
        }
        for &yi in &sol.duals {
            assert!(yi >= -eps, "negative dual {yi}");
        }
        // yᵀA ≥ c (dual feasibility for max/≤/x≥0).
        for j in 0..problem.objective.len() {
            let lhs: f64 = (0..problem.rhs.len())
                .map(|i| sol.duals[i] * problem.constraints[(i, j)])
                .sum();
            assert!(
                lhs >= problem.objective[j] - eps,
                "dual constraint {j}: {lhs}"
            );
        }
        let primal: f64 = problem
            .objective
            .iter()
            .zip(&sol.x)
            .map(|(c, x)| c * x)
            .sum();
        let dual: f64 = sol.duals.iter().zip(&problem.rhs).map(|(y, b)| y * b).sum();
        assert!(
            (primal - sol.value).abs() < eps,
            "reported value {} != cᵀx {primal}",
            sol.value
        );
        assert!(
            (primal - dual).abs() < eps,
            "duality gap: {primal} vs {dual}"
        );
    }

    #[test]
    fn textbook_two_by_two() {
        let p = lp(
            vec![1.0, 1.0],
            &[vec![1.0, 2.0], vec![3.0, 1.0]],
            vec![4.0, 6.0],
        );
        let sol = solve(&p, &SimplexOptions::default()).unwrap();
        assert!((sol.value - 2.8).abs() < 1e-9);
        assert!((sol.x[0] - 1.6).abs() < 1e-9);
        assert!((sol.x[1] - 1.2).abs() < 1e-9);
        assert_certificate(&p, &sol);
    }

    #[test]
    fn unbounded_detected() {
        let p = lp(vec![1.0, 0.0], &[vec![-1.0, 1.0]], vec![1.0]);
        assert_eq!(
            solve(&p, &SimplexOptions::default()).unwrap_err(),
            LpError::Unbounded
        );
    }

    #[test]
    fn infeasible_detected() {
        // x ≤ -1 with x ≥ 0 is infeasible.
        let p = lp(vec![1.0], &[vec![1.0]], vec![-1.0]);
        assert_eq!(
            solve(&p, &SimplexOptions::default()).unwrap_err(),
            LpError::Infeasible
        );
    }

    #[test]
    fn phase1_negative_rhs_feasible() {
        // max -x1 - x2 s.t. -x1 - x2 ≤ -2 (i.e. x1 + x2 ≥ 2), x ≤ 5 each.
        let p = lp(
            vec![-1.0, -1.0],
            &[vec![-1.0, -1.0], vec![1.0, 0.0], vec![0.0, 1.0]],
            vec![-2.0, 5.0, 5.0],
        );
        let sol = solve(&p, &SimplexOptions::default()).unwrap();
        assert!(
            (sol.value + 2.0).abs() < 1e-9,
            "minimum of x1+x2 at 2, got {}",
            sol.value
        );
        assert_certificate(&p, &sol);
    }

    #[test]
    fn degenerate_lp_terminates() {
        // Classic degeneracy: multiple constraints active at the origin.
        let p = lp(
            vec![0.75, -150.0, 0.02, -6.0],
            &[
                vec![0.25, -60.0, -0.04, 9.0],
                vec![0.5, -90.0, -0.02, 3.0],
                vec![0.0, 0.0, 1.0, 0.0],
            ],
            vec![0.0, 0.0, 1.0],
        );
        // Beale's cycling example: must terminate thanks to Bland fallback.
        let opts = SimplexOptions {
            bland_after: 0,
            ..Default::default()
        };
        let sol = solve(&p, &opts).unwrap();
        assert!((sol.value - 0.05).abs() < 1e-9);
        assert_certificate(&p, &sol);
    }

    #[test]
    fn zero_constraint_matrix() {
        let p = lp(vec![-1.0, -2.0], &[vec![0.0, 0.0]], vec![1.0]);
        let sol = solve(&p, &SimplexOptions::default()).unwrap();
        assert_eq!(sol.value, 0.0);
        assert_certificate(&p, &sol);
    }

    #[test]
    fn no_constraints() {
        let p = StandardLp {
            objective: vec![-1.0],
            constraints: DenseMatrix::zeros(0, 1),
            rhs: vec![],
        };
        let sol = solve(&p, &SimplexOptions::default()).unwrap();
        assert_eq!(sol.value, 0.0);
        let p = StandardLp {
            objective: vec![1.0],
            constraints: DenseMatrix::zeros(0, 1),
            rhs: vec![],
        };
        assert_eq!(
            solve(&p, &SimplexOptions::default()).unwrap_err(),
            LpError::Unbounded
        );
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let p = lp(vec![1.0], &[vec![1.0, 2.0]], vec![1.0]);
        assert!(matches!(
            solve(&p, &SimplexOptions::default()).unwrap_err(),
            LpError::DimensionMismatch { .. }
        ));
        let p = StandardLp {
            objective: vec![1.0],
            constraints: DenseMatrix::from_rows(&[vec![1.0]]),
            rhs: vec![1.0, 2.0],
        };
        assert!(matches!(
            solve(&p, &SimplexOptions::default()).unwrap_err(),
            LpError::DimensionMismatch { .. }
        ));
    }

    #[test]
    fn iteration_limit_enforced() {
        let p = lp(
            vec![1.0, 1.0],
            &[vec![1.0, 2.0], vec![3.0, 1.0]],
            vec![4.0, 6.0],
        );
        let opts = SimplexOptions {
            max_iterations: 0,
            ..Default::default()
        };
        assert_eq!(
            solve(&p, &opts).unwrap_err(),
            LpError::IterationLimit { limit: 0 }
        );
    }

    #[test]
    fn redundant_equality_like_rows() {
        // Two copies of the same binding constraint plus its negation pair:
        // x1 + x2 ≤ 1, -x1 - x2 ≤ -1 (forces equality), maximize x1.
        let p = lp(
            vec![1.0, 0.0],
            &[vec![1.0, 1.0], vec![-1.0, -1.0]],
            vec![1.0, -1.0],
        );
        let sol = solve(&p, &SimplexOptions::default()).unwrap();
        assert!((sol.value - 1.0).abs() < 1e-9);
        assert_certificate(&p, &sol);
    }

    mod proptests {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]
            /// With b ≥ 0 the origin is feasible, so the LP is either
            /// optimal or unbounded; optimal claims must carry a valid
            /// certificate.
            #[test]
            fn certificates_hold_on_random_feasible_lps(
                n in 1usize..5,
                m in 1usize..5,
                seed in any::<u64>(),
            ) {
                use rand::{rngs::SmallRng, Rng, SeedableRng};
                let mut rng = SmallRng::seed_from_u64(seed);
                let a: Vec<Vec<f64>> = (0..m)
                    .map(|_| (0..n).map(|_| (rng.gen::<f64>() * 8.0 - 4.0).round() / 2.0).collect())
                    .collect();
                let b: Vec<f64> = (0..m).map(|_| (rng.gen::<f64>() * 8.0).round() / 2.0).collect();
                let c: Vec<f64> =
                    (0..n).map(|_| (rng.gen::<f64>() * 8.0 - 4.0).round() / 2.0).collect();
                let p = lp(c, &a, b);
                match solve(&p, &SimplexOptions::default()) {
                    Ok(sol) => assert_certificate(&p, &sol),
                    Err(LpError::Unbounded) => {}
                    Err(e) => panic!("unexpected error {e}"),
                }
            }
        }
    }
}
