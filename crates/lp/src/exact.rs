//! Exact minimum dominating set via branch and bound.
//!
//! MDS is NP-hard ([Garey & Johnson], cited as the paper's refs [9, 13]),
//! but the ratio experiments on small graphs want the *true* optimum as the
//! denominator. This solver handles graphs of up to ~80 nodes comfortably:
//!
//! * **branching**: pick the uncovered node with the fewest allowed
//!   dominators and branch over who covers it, banning earlier candidates
//!   in later branches so no state is explored twice;
//! * **bounding**: a greedy disjoint-closed-neighborhood packing of the
//!   uncovered nodes lower-bounds the remaining need; an initial greedy
//!   dominating set gives the incumbent;
//! * **budget**: the search aborts with an error after a configurable
//!   number of explored nodes, so callers degrade gracefully to LP bounds.

use kw_graph::{BitSet, CsrGraph, DominatingSet, NodeId};

use crate::LpError;

/// Tuning knobs for [`solve_mds`].
#[derive(Clone, Copy, Debug)]
pub struct ExactOptions {
    /// Refuse instances with more nodes than this.
    pub max_nodes: usize,
    /// Abort after exploring this many search-tree nodes.
    pub search_budget: u64,
}

impl Default for ExactOptions {
    fn default() -> Self {
        ExactOptions {
            max_nodes: 96,
            search_budget: 20_000_000,
        }
    }
}

/// Computes a minimum dominating set of `g`.
///
/// # Errors
///
/// [`LpError::TooLarge`] if `g` exceeds `opts.max_nodes`;
/// [`LpError::SearchBudgetExceeded`] if the branch-and-bound tree outgrows
/// `opts.search_budget`.
///
/// # Example
///
/// ```
/// use kw_graph::generators;
/// use kw_lp::exact::{solve_mds, ExactOptions};
///
/// let opt = solve_mds(&generators::petersen(), &ExactOptions::default())?;
/// assert_eq!(opt.len(), 3); // γ(Petersen) = 3
/// # Ok::<(), kw_lp::LpError>(())
/// ```
pub fn solve_mds(g: &CsrGraph, opts: &ExactOptions) -> Result<DominatingSet, LpError> {
    let n = g.len();
    if n > opts.max_nodes {
        return Err(LpError::TooLarge {
            size: n,
            limit: opts.max_nodes,
        });
    }
    if n == 0 {
        return Ok(DominatingSet::new(g));
    }
    let incumbent = greedy_upper_bound(g);
    let mut search = Search {
        g,
        best: incumbent.iter().map(|v| v.index()).collect(),
        chosen: Vec::new(),
        covered: BitSet::new(n),
        banned: BitSet::new(n),
        explored: 0,
        budget: opts.search_budget,
    };
    search.recurse()?;
    Ok(DominatingSet::from_indices(g, search.best))
}

/// A compact greedy dominating set (the classic `ln Δ` heuristic), used as
/// the initial incumbent. The full-featured instrumented greedy lives in
/// `kw-baselines`; this one is internal on purpose to keep the dependency
/// graph acyclic.
fn greedy_upper_bound(g: &CsrGraph) -> DominatingSet {
    let n = g.len();
    let mut covered = BitSet::new(n);
    let mut ds = DominatingSet::new(g);
    let mut remaining = n;
    while remaining > 0 {
        let mut best = None;
        let mut best_gain = 0usize;
        for v in g.node_ids() {
            if ds.contains(v) {
                continue;
            }
            let gain = g
                .closed_neighbors(v)
                .filter(|u| !covered.contains(u.index()))
                .count();
            if gain > best_gain {
                best_gain = gain;
                best = Some(v);
            }
        }
        let v = best.expect("uncovered nodes always have a coverer (themselves)");
        ds.add(v);
        for u in g.closed_neighbors(v) {
            if covered.insert(u.index()) {
                remaining -= 1;
            }
        }
    }
    ds
}

struct Search<'g> {
    g: &'g CsrGraph,
    best: Vec<usize>,
    chosen: Vec<usize>,
    covered: BitSet,
    banned: BitSet,
    explored: u64,
    budget: u64,
}

impl Search<'_> {
    fn recurse(&mut self) -> Result<(), LpError> {
        self.explored += 1;
        if self.explored > self.budget {
            return Err(LpError::SearchBudgetExceeded { limit: self.budget });
        }
        if self.chosen.len() >= self.best.len() {
            return Ok(()); // cannot improve
        }
        let Some(target) = self.most_constrained_uncovered() else {
            // Everything covered: new incumbent.
            self.best = self.chosen.clone();
            return Ok(());
        };
        let candidates = match target {
            Branch::Candidates(c) => c,
            Branch::Infeasible => return Ok(()),
        };
        // Bound: chosen + disjoint-packing LB on uncovered must beat best.
        if self.chosen.len() + self.packing_bound() >= self.best.len() {
            return Ok(());
        }
        let mut newly_banned = Vec::new();
        for &v in &candidates {
            let vid = NodeId::new(v);
            let newly_covered: Vec<usize> = self
                .g
                .closed_neighbors(vid)
                .map(NodeId::index)
                .filter(|&u| !self.covered.contains(u))
                .collect();
            self.chosen.push(v);
            for &u in &newly_covered {
                self.covered.insert(u);
            }
            self.recurse()?;
            for &u in &newly_covered {
                self.covered.remove(u);
            }
            self.chosen.pop();
            // Later branches must not reuse this candidate.
            if self.banned.insert(v) {
                newly_banned.push(v);
            }
        }
        for v in newly_banned {
            self.banned.remove(v);
        }
        Ok(())
    }

    /// Picks the uncovered node with the fewest allowed dominators and
    /// returns those dominators (ordered by descending fresh coverage).
    fn most_constrained_uncovered(&self) -> Option<Branch> {
        let mut best: Option<(usize, Vec<usize>)> = None;
        for v in self.g.node_ids() {
            if self.covered.contains(v.index()) {
                continue;
            }
            let cands: Vec<usize> = self
                .g
                .closed_neighbors(v)
                .map(NodeId::index)
                .filter(|&u| !self.banned.contains(u))
                .collect();
            if cands.is_empty() {
                return Some(Branch::Infeasible);
            }
            let better = best.as_ref().is_none_or(|(n, _)| cands.len() < *n);
            if better {
                let len = cands.len();
                best = Some((len, cands));
                if len == 1 {
                    break; // cannot be more constrained
                }
            }
        }
        best.map(|(_, mut cands)| {
            cands.sort_by_key(|&u| {
                std::cmp::Reverse(
                    self.g
                        .closed_neighbors(NodeId::new(u))
                        .filter(|w| !self.covered.contains(w.index()))
                        .count(),
                )
            });
            Branch::Candidates(cands)
        })
    }

    /// Greedy disjoint-closed-neighborhood packing over uncovered nodes:
    /// any dominating set needs at least one distinct vertex per packed
    /// neighborhood.
    fn packing_bound(&self) -> usize {
        let mut claimed = BitSet::new(self.g.len());
        let mut count = 0usize;
        for v in self.g.node_ids() {
            if self.covered.contains(v.index()) {
                continue;
            }
            if self
                .g
                .closed_neighbors(v)
                .all(|u| !claimed.contains(u.index()))
            {
                for u in self.g.closed_neighbors(v) {
                    claimed.insert(u.index());
                }
                count += 1;
            }
        }
        count
    }
}

enum Branch {
    Candidates(Vec<usize>),
    Infeasible,
}

/// Brute-force MDS by subset enumeration — the oracle the branch-and-bound
/// solver is tested against.
///
/// # Errors
///
/// [`LpError::TooLarge`] for graphs with more than 20 nodes (2²⁰ subsets).
pub fn brute_force_mds(g: &CsrGraph) -> Result<DominatingSet, LpError> {
    let n = g.len();
    if n > 20 {
        return Err(LpError::TooLarge { size: n, limit: 20 });
    }
    let mut best: Option<DominatingSet> = None;
    for mask in 0u32..(1 << n) {
        if let Some(b) = &best {
            if mask.count_ones() as usize >= b.len() {
                continue;
            }
        }
        let ds = DominatingSet::from_fn(g, |v| mask >> v.index() & 1 == 1);
        if ds.is_dominating(g) {
            best = Some(ds);
        }
    }
    Ok(best.unwrap_or_else(|| DominatingSet::all(g)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use kw_graph::generators;

    fn opt_size(g: &CsrGraph) -> usize {
        solve_mds(g, &ExactOptions::default()).unwrap().len()
    }

    #[test]
    fn known_domination_numbers() {
        assert_eq!(opt_size(&generators::star(9)), 1);
        assert_eq!(opt_size(&generators::complete(7)), 1);
        assert_eq!(opt_size(&generators::path(3)), 1);
        assert_eq!(opt_size(&generators::path(7)), 3); // ⌈7/3⌉
        assert_eq!(opt_size(&generators::cycle(9)), 3); // ⌈9/3⌉
        assert_eq!(opt_size(&generators::cycle(10)), 4); // ⌈10/3⌉
        assert_eq!(opt_size(&generators::petersen()), 3);
        assert_eq!(opt_size(&generators::grid(3, 3)), 3);
        assert_eq!(opt_size(&generators::complete_bipartite(3, 3)), 2);
    }

    #[test]
    fn solution_is_dominating() {
        let g = generators::star_of_cliques(3, 4);
        let ds = solve_mds(&g, &ExactOptions::default()).unwrap();
        assert!(ds.is_dominating(&g));
        // One gateway per clique... or interior + hub; γ = 3 (one per clique).
        assert_eq!(ds.len(), 3);
    }

    #[test]
    fn empty_and_edgeless() {
        let g0 = CsrGraph::empty(0);
        assert_eq!(opt_size(&g0), 0);
        let g = CsrGraph::empty(4);
        assert_eq!(opt_size(&g), 4); // isolated nodes dominate only themselves
    }

    #[test]
    fn size_guard() {
        let g = CsrGraph::empty(10);
        let err = solve_mds(
            &g,
            &ExactOptions {
                max_nodes: 5,
                ..Default::default()
            },
        )
        .unwrap_err();
        assert_eq!(err, LpError::TooLarge { size: 10, limit: 5 });
    }

    #[test]
    fn budget_guard() {
        let g = generators::grid(4, 4);
        let err = solve_mds(
            &g,
            &ExactOptions {
                search_budget: 1,
                ..Default::default()
            },
        )
        .unwrap_err();
        assert_eq!(err, LpError::SearchBudgetExceeded { limit: 1 });
    }

    #[test]
    fn matches_brute_force_on_fixed_fixtures() {
        for g in [
            generators::path(9),
            generators::cycle(11),
            generators::grid(3, 4),
            generators::caterpillar(4, 2),
            generators::balanced_tree(2, 3),
            generators::complete_bipartite(2, 5),
        ] {
            let bb = opt_size(&g);
            let bf = brute_force_mds(&g).unwrap().len();
            assert_eq!(bb, bf, "mismatch on {g:?}");
        }
    }

    #[test]
    fn brute_force_size_guard() {
        let g = CsrGraph::empty(21);
        assert!(matches!(brute_force_mds(&g), Err(LpError::TooLarge { .. })));
    }

    #[test]
    fn moderate_instances_solve_within_default_budget() {
        use rand::{rngs::SmallRng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(12);
        let g = generators::gnp(48, 0.08, &mut rng);
        let ds = solve_mds(&g, &ExactOptions::default()).unwrap();
        assert!(ds.is_dominating(&g));
        let greedy = greedy_upper_bound(&g);
        assert!(ds.len() <= greedy.len());
    }

    mod proptests {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(48))]
            #[test]
            fn branch_and_bound_matches_brute_force(
                n in 1usize..11,
                p in 0.0f64..1.0,
                seed in any::<u64>(),
            ) {
                use rand::{rngs::SmallRng, SeedableRng};
                let mut rng = SmallRng::seed_from_u64(seed);
                let g = generators::gnp(n, p, &mut rng);
                let bb = solve_mds(&g, &ExactOptions::default()).unwrap();
                let bf = brute_force_mds(&g).unwrap();
                prop_assert!(bb.is_dominating(&g));
                prop_assert_eq!(bb.len(), bf.len());
            }
        }
    }
}
