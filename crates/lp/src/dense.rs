use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense row-major `f64` matrix.
///
/// Sized for the simplex tableaux of this workspace (hundreds of rows);
/// deliberately minimal — no BLAS, no views — because the solver only needs
/// row operations and element access.
///
/// # Example
///
/// ```
/// use kw_lp::DenseMatrix;
///
/// let mut m = DenseMatrix::zeros(2, 3);
/// m[(0, 1)] = 4.0;
/// assert_eq!(m[(0, 1)], 4.0);
/// assert_eq!(m.rows(), 2);
/// assert_eq!(m.cols(), 3);
/// ```
#[derive(Clone, PartialEq)]
pub struct DenseMatrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl DenseMatrix {
    /// Creates a `rows × cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        DenseMatrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a matrix from a nested array of rows.
    ///
    /// # Panics
    ///
    /// Panics if rows have unequal lengths.
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, Vec::len);
        let mut m = DenseMatrix::zeros(r, c);
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(
                row.len(),
                c,
                "row {i} has length {} but expected {c}",
                row.len()
            );
            m.data[i * c..(i + 1) * c].copy_from_slice(row);
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Read-only view of row `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= rows`.
    pub fn row(&self, i: usize) -> &[f64] {
        assert!(i < self.rows, "row {i} out of range {}", self.rows);
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutable view of row `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= rows`.
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        assert!(i < self.rows, "row {i} out of range {}", self.rows);
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutable views of two distinct rows at once (for pivot operations).
    ///
    /// # Panics
    ///
    /// Panics if `a == b` or either index is out of range.
    pub fn two_rows_mut(&mut self, a: usize, b: usize) -> (&mut [f64], &mut [f64]) {
        assert!(a != b, "rows must be distinct");
        assert!(a < self.rows && b < self.rows, "row out of range");
        let c = self.cols;
        if a < b {
            let (lo, hi) = self.data.split_at_mut(b * c);
            (&mut lo[a * c..(a + 1) * c], &mut hi[..c])
        } else {
            let (lo, hi) = self.data.split_at_mut(a * c);
            let (bl, _) = (&mut lo[b * c..(b + 1) * c], ());
            (&mut hi[..c], bl)
        }
    }

    /// Matrix–vector product `A·x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != cols`.
    pub fn mul_vec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(
            x.len(),
            self.cols,
            "vector length {} != cols {}",
            x.len(),
            self.cols
        );
        (0..self.rows)
            .map(|i| self.row(i).iter().zip(x).map(|(a, b)| a * b).sum())
            .collect()
    }
}

impl Index<(usize, usize)> for DenseMatrix {
    type Output = f64;

    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        assert!(
            i < self.rows && j < self.cols,
            "index ({i},{j}) out of range"
        );
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for DenseMatrix {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        assert!(
            i < self.rows && j < self.cols,
            "index ({i},{j}) out of range"
        );
        &mut self.data[i * self.cols + j]
    }
}

impl fmt::Debug for DenseMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "DenseMatrix {}x{} [", self.rows, self.cols)?;
        for i in 0..self.rows.min(8) {
            writeln!(f, "  {:?}", self.row(i))?;
        }
        if self.rows > 8 {
            writeln!(f, "  …")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_indexing() {
        let m = DenseMatrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(m[(0, 0)], 1.0);
        assert_eq!(m[(1, 1)], 4.0);
        assert_eq!(m.row(1), &[3.0, 4.0]);
    }

    #[test]
    fn mul_vec() {
        let m = DenseMatrix::from_rows(&[vec![1.0, 2.0], vec![0.0, -1.0]]);
        assert_eq!(m.mul_vec(&[3.0, 4.0]), vec![11.0, -4.0]);
    }

    #[test]
    fn two_rows_mut_either_order() {
        let mut m = DenseMatrix::from_rows(&[vec![1.0], vec![2.0], vec![3.0]]);
        {
            let (a, b) = m.two_rows_mut(0, 2);
            std::mem::swap(&mut a[0], &mut b[0]);
        }
        assert_eq!(m[(0, 0)], 3.0);
        {
            let (a, b) = m.two_rows_mut(2, 1);
            a[0] += b[0];
        }
        assert_eq!(m[(2, 0)], 3.0);
    }

    #[test]
    #[should_panic(expected = "row 2 has length")]
    fn ragged_rows_rejected() {
        DenseMatrix::from_rows(&[vec![1.0], vec![2.0], vec![3.0, 4.0]]);
    }

    #[test]
    fn debug_output_bounded() {
        let m = DenseMatrix::zeros(20, 2);
        let s = format!("{m:?}");
        assert!(s.contains('…'));
    }
}
