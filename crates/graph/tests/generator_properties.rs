//! Property-based validation of every generator: structural invariants
//! the rest of the workspace silently relies on.

use kw_graph::{generators, props, CsrGraph, NodeId};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Invariants every graph in the workspace must satisfy: symmetry, sorted
/// neighbor lists, no loops, no duplicates, consistent counts.
fn assert_well_formed(g: &CsrGraph) {
    let mut arcs = 0usize;
    for v in g.node_ids() {
        let ns: Vec<NodeId> = g.neighbors(v).collect();
        arcs += ns.len();
        let mut sorted = ns.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(ns, sorted, "neighbors of {v} not sorted/deduped");
        assert!(!ns.contains(&v), "self loop at {v}");
        for u in ns {
            assert!(g.has_edge(u, v), "asymmetric edge ({v},{u})");
        }
    }
    assert_eq!(arcs, g.num_arcs());
    assert_eq!(arcs, 2 * g.num_edges());
    assert_eq!(g.edges().count(), g.num_edges());
}

#[test]
fn fixed_generators_well_formed() {
    assert_well_formed(&generators::empty(7));
    assert_well_formed(&generators::path(9));
    assert_well_formed(&generators::cycle(9));
    assert_well_formed(&generators::star(9));
    assert_well_formed(&generators::complete(9));
    assert_well_formed(&generators::complete_bipartite(4, 5));
    assert_well_formed(&generators::grid(4, 6));
    assert_well_formed(&generators::torus(4, 6));
    assert_well_formed(&generators::balanced_tree(3, 3));
    assert_well_formed(&generators::caterpillar(5, 3));
    assert_well_formed(&generators::petersen());
    assert_well_formed(&generators::star_of_cliques(4, 5));
}

#[test]
fn known_structure_facts() {
    // Grid diameter = (r-1)+(c-1).
    assert_eq!(props::diameter(&generators::grid(4, 7)), Some(9));
    // Torus cuts it roughly in half.
    assert_eq!(props::diameter(&generators::torus(4, 4)), Some(4));
    // Balanced binary tree of depth d has diameter 2d.
    assert_eq!(props::diameter(&generators::balanced_tree(2, 4)), Some(8));
    // Caterpillar spine + two legs.
    assert_eq!(props::diameter(&generators::caterpillar(5, 2)), Some(6));
    // Complete bipartite diameter 2.
    assert_eq!(
        props::diameter(&generators::complete_bipartite(3, 4)),
        Some(2)
    );
}

#[test]
fn unit_disk_monotone_in_radius() {
    let mut rng = SmallRng::seed_from_u64(5);
    let pts: Vec<(f64, f64)> = (0..120)
        .map(|_| {
            (
                rand::Rng::gen::<f64>(&mut rng),
                rand::Rng::gen::<f64>(&mut rng),
            )
        })
        .collect();
    let small = generators::unit_disk_from_points(&pts, 0.1);
    let large = generators::unit_disk_from_points(&pts, 0.2);
    assert!(small.num_edges() <= large.num_edges());
    for (u, v) in small.edges() {
        assert!(large.has_edge(u, v), "edge ({u},{v}) lost when radius grew");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]
    #[test]
    fn gnp_well_formed(n in 0usize..80, p in 0.0f64..1.0, seed in any::<u64>()) {
        let mut rng = SmallRng::seed_from_u64(seed);
        assert_well_formed(&generators::gnp(n, p, &mut rng));
    }

    #[test]
    fn gnm_well_formed_and_exact(n in 2usize..40, frac in 0.0f64..1.0, seed in any::<u64>()) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let max_m = n * (n - 1) / 2;
        let m = (frac * max_m as f64) as usize;
        let g = generators::gnm(n, m, &mut rng);
        assert_well_formed(&g);
        prop_assert_eq!(g.num_edges(), m);
    }

    #[test]
    fn unit_disk_well_formed(n in 0usize..60, r in 0.0f64..1.5, seed in any::<u64>()) {
        let mut rng = SmallRng::seed_from_u64(seed);
        assert_well_formed(&generators::unit_disk(n, r, &mut rng));
    }

    #[test]
    fn barabasi_albert_well_formed(n in 6usize..80, m in 1usize..5, seed in any::<u64>()) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let g = generators::barabasi_albert(n, m, &mut rng);
        assert_well_formed(&g);
        // Connected by construction (every new node attaches to the core).
        prop_assert!(props::is_connected(&g));
        // Minimum degree ≥ m.
        prop_assert!(g.node_ids().all(|v| g.degree(v) >= m));
    }

    #[test]
    fn grids_and_tori(r in 1usize..8, c in 1usize..8) {
        let g = generators::grid(r, c);
        assert_well_formed(&g);
        prop_assert_eq!(g.len(), r * c);
        prop_assert!(props::is_connected(&g));
        let t = generators::torus(r, c);
        assert_well_formed(&t);
        // A torus has at least as many edges as its grid.
        prop_assert!(t.num_edges() >= g.num_edges());
    }

    #[test]
    fn trees_have_n_minus_one_edges(arity in 1usize..4, depth in 0usize..5) {
        let g = generators::balanced_tree(arity, depth);
        assert_well_formed(&g);
        prop_assert_eq!(g.num_edges() + 1, g.len());
        prop_assert!(props::is_connected(&g));
        prop_assert_eq!(props::num_components(&g), 1);
    }

    #[test]
    fn delta1_delta2_are_monotone_views(n in 1usize..40, p in 0.0f64..0.5, seed in any::<u64>()) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let g = generators::gnp(n, p, &mut rng);
        for v in g.node_ids() {
            let d = g.degree(v);
            let d1 = g.delta1(v);
            let d2 = g.delta2(v);
            prop_assert!(d <= d1 && d1 <= d2 && d2 <= g.max_degree());
        }
    }
}
