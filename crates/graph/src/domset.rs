use std::fmt;

use crate::{BitSet, CsrGraph, NodeId};

/// Relative tolerance used when checking fractional coverage constraints
/// `Σ_{j ∈ N_i} x_j ≥ 1`.
///
/// The Kuhn–Wattenhofer x-values are sums of terms `(Δ+1)^{-m/k}` computed in
/// `f64`; a strict `>= 1.0` comparison would spuriously fail on sums that are
/// exactly 1 analytically but `1 - ε` numerically. Every feasibility check in
/// the workspace accepts `Σ x_j ≥ 1 − COVERAGE_TOLERANCE` and every coverage
/// decision inside the algorithms uses the same constant, so simulated and
/// analytical behaviour agree.
pub const COVERAGE_TOLERANCE: f64 = 1e-9;

/// A set of nodes intended to dominate a graph.
///
/// A dominating set is a subset `S ⊆ V` such that every node is in `S` or has
/// a neighbor in `S` (coverage is over *closed* neighborhoods).
///
/// # Example
///
/// ```
/// use kw_graph::{generators, DominatingSet, NodeId};
///
/// let g = generators::star(5); // center = node 4... see generators::star docs
/// let center = (0..5).max_by_key(|&v| g.degree(NodeId::new(v))).unwrap();
/// let ds = DominatingSet::from_indices(&g, [center]);
/// assert!(ds.is_dominating(&g));
/// assert_eq!(ds.len(), 1);
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct DominatingSet {
    members: BitSet,
}

impl DominatingSet {
    /// Creates an empty candidate set for `g`.
    pub fn new(g: &CsrGraph) -> Self {
        DominatingSet {
            members: BitSet::new(g.len()),
        }
    }

    /// Creates a set from node indices.
    ///
    /// # Panics
    ///
    /// Panics if an index is out of range for `g`.
    pub fn from_indices<I: IntoIterator<Item = usize>>(g: &CsrGraph, iter: I) -> Self {
        let mut s = Self::new(g);
        for i in iter {
            s.add(NodeId::new(i));
        }
        s
    }

    /// Creates a set from a membership predicate evaluated on every node.
    pub fn from_fn(g: &CsrGraph, mut member: impl FnMut(NodeId) -> bool) -> Self {
        let mut s = Self::new(g);
        for v in g.node_ids() {
            if member(v) {
                s.add(v);
            }
        }
        s
    }

    /// The set of all nodes — the trivial dominating set of size `n` the
    /// paper uses as its triviality benchmark (`O(Δ)` approximation).
    pub fn all(g: &CsrGraph) -> Self {
        DominatingSet {
            members: BitSet::full(g.len()),
        }
    }

    /// Adds `v`; returns whether it was newly added.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn add(&mut self, v: NodeId) -> bool {
        self.members.insert(v.index())
    }

    /// Removes `v`; returns whether it was present.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn remove(&mut self, v: NodeId) -> bool {
        self.members.remove(v.index())
    }

    /// Whether `v` is in the set.
    pub fn contains(&self, v: NodeId) -> bool {
        self.members.contains(v.index())
    }

    /// Number of members `|S|`.
    pub fn len(&self) -> usize {
        self.members.count()
    }

    /// Whether the set has no members.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Iterates over members in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.members.iter().map(NodeId::new)
    }

    /// Whether `v` is dominated: `v ∈ S` or some neighbor of `v` is.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range for `g`.
    pub fn dominates(&self, g: &CsrGraph, v: NodeId) -> bool {
        g.closed_neighbors(v).any(|u| self.contains(u))
    }

    /// Whether every node of `g` is dominated.
    pub fn is_dominating(&self, g: &CsrGraph) -> bool {
        g.node_ids().all(|v| self.dominates(g, v))
    }

    /// All nodes of `g` that are *not* dominated (useful in failure-rate
    /// ablations and error reporting).
    pub fn undominated(&self, g: &CsrGraph) -> Vec<NodeId> {
        g.node_ids().filter(|&v| !self.dominates(g, v)).collect()
    }

    /// Total cost of the set under vertex weights `w` (uniform weight 1 gives
    /// the cardinality).
    ///
    /// # Panics
    ///
    /// Panics if `w` was built for a different node count.
    pub fn cost(&self, w: &VertexWeights) -> f64 {
        self.iter().map(|v| w.get(v)).sum()
    }

    /// View of membership as a `Vec<bool>` indexed by node.
    pub fn to_bool_vec(&self, g: &CsrGraph) -> Vec<bool> {
        g.node_ids().map(|v| self.contains(v)).collect()
    }
}

impl fmt::Debug for DominatingSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.members.iter()).finish()
    }
}

/// A fractional assignment `x: V → R≥0`, a candidate solution of LP_MDS.
///
/// `LP_MDS`: minimize `Σ x_i` subject to `Σ_{j ∈ N_i} x_j ≥ 1` and `x ≥ 0`
/// (Section 4 of the paper).
///
/// # Example
///
/// ```
/// use kw_graph::{generators, FractionalAssignment};
///
/// let g = generators::complete(4);
/// // x = 1/4 everywhere covers every closed neighborhood of a K4 exactly.
/// let x = FractionalAssignment::uniform(&g, 0.25);
/// assert!(x.is_feasible(&g));
/// assert!((x.objective() - 1.0).abs() < 1e-12);
/// ```
#[derive(Clone, PartialEq)]
pub struct FractionalAssignment {
    values: Vec<f64>,
}

impl FractionalAssignment {
    /// The all-zeros assignment for `g`.
    pub fn zeros(g: &CsrGraph) -> Self {
        FractionalAssignment {
            values: vec![0.0; g.len()],
        }
    }

    /// A constant assignment `x_i = value` for `g`.
    pub fn uniform(g: &CsrGraph, value: f64) -> Self {
        FractionalAssignment {
            values: vec![value; g.len()],
        }
    }

    /// Wraps a raw value vector.
    ///
    /// # Panics
    ///
    /// Panics if any value is negative or non-finite.
    pub fn from_values(values: Vec<f64>) -> Self {
        for (i, &x) in values.iter().enumerate() {
            assert!(
                x.is_finite() && x >= 0.0,
                "x[{i}] = {x} is not a finite non-negative value"
            );
        }
        FractionalAssignment { values }
    }

    /// Number of variables (nodes).
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the assignment has zero variables.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Value `x_v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn get(&self, v: NodeId) -> f64 {
        self.values[v.index()]
    }

    /// Sets `x_v = value`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range or `value` is negative/non-finite.
    pub fn set(&mut self, v: NodeId, value: f64) {
        assert!(
            value.is_finite() && value >= 0.0,
            "x[{v}] = {value} is invalid"
        );
        self.values[v.index()] = value;
    }

    /// The LP objective `Σ_i x_i`.
    pub fn objective(&self) -> f64 {
        self.values.iter().sum()
    }

    /// Coverage of `v`: `Σ_{j ∈ N_v} x_j` over the closed neighborhood.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range for `g` or lengths mismatch.
    pub fn coverage(&self, g: &CsrGraph, v: NodeId) -> f64 {
        assert_eq!(self.len(), g.len(), "assignment/graph size mismatch");
        g.closed_neighbors(v).map(|u| self.values[u.index()]).sum()
    }

    /// Whether all coverage constraints hold within [`COVERAGE_TOLERANCE`].
    pub fn is_feasible(&self, g: &CsrGraph) -> bool {
        g.node_ids()
            .all(|v| self.coverage(g, v) >= 1.0 - COVERAGE_TOLERANCE)
    }

    /// The nodes whose coverage constraint is violated (beyond tolerance).
    pub fn violated(&self, g: &CsrGraph) -> Vec<NodeId> {
        g.node_ids()
            .filter(|&v| self.coverage(g, v) < 1.0 - COVERAGE_TOLERANCE)
            .collect()
    }

    /// Weighted objective `Σ_i c_i·x_i`.
    ///
    /// # Panics
    ///
    /// Panics if `w` has a different length.
    pub fn weighted_objective(&self, w: &VertexWeights) -> f64 {
        assert_eq!(self.len(), w.len(), "assignment/weights size mismatch");
        self.values.iter().zip(w.iter()).map(|(x, c)| x * c).sum()
    }

    /// Read-only view of the underlying values.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Consumes the assignment, returning the underlying values.
    pub fn into_values(self) -> Vec<f64> {
        self.values
    }
}

impl fmt::Debug for FractionalAssignment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "FractionalAssignment(n={}, Σx={:.4})",
            self.len(),
            self.objective()
        )
    }
}

/// Positive vertex costs `c: V → [1, c_max]` for the weighted dominating set
/// variant (remark after Theorem 4 of the paper).
///
/// # Example
///
/// ```
/// use kw_graph::VertexWeights;
///
/// let w = VertexWeights::from_values(vec![1.0, 2.0, 4.0])?;
/// assert_eq!(w.c_max(), 4.0);
/// # Ok::<(), kw_graph::GraphError>(())
/// ```
#[derive(Clone, PartialEq)]
pub struct VertexWeights {
    values: Vec<f64>,
    c_max: f64,
}

impl VertexWeights {
    /// Uniform cost 1 for every node of `g` (the unweighted problem).
    pub fn uniform(g: &CsrGraph) -> Self {
        VertexWeights {
            values: vec![1.0; g.len()],
            c_max: 1.0,
        }
    }

    /// Wraps a cost vector, validating the paper's normalization
    /// `1 ≤ c_i ≤ c_max`.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::Parse`](crate::GraphError) if any cost is below
    /// 1 or non-finite.
    pub fn from_values(values: Vec<f64>) -> Result<Self, crate::GraphError> {
        let mut c_max = 1.0f64;
        for (i, &c) in values.iter().enumerate() {
            if !c.is_finite() || c < 1.0 {
                return Err(crate::GraphError::Parse {
                    line: i + 1,
                    reason: format!("vertex cost {c} outside [1, ∞)"),
                });
            }
            c_max = c_max.max(c);
        }
        Ok(VertexWeights { values, c_max })
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether there are zero nodes.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Cost of node `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn get(&self, v: NodeId) -> f64 {
        self.values[v.index()]
    }

    /// The maximum cost `c_max` (at least 1).
    pub fn c_max(&self) -> f64 {
        self.c_max
    }

    /// Iterates over costs in node order.
    pub fn iter(&self) -> impl ExactSizeIterator<Item = f64> + '_ {
        self.values.iter().copied()
    }
}

impl fmt::Debug for VertexWeights {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "VertexWeights(n={}, c_max={})", self.len(), self.c_max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn star_center_dominates() {
        let g = generators::star(8);
        let center = g.node_ids().max_by_key(|&v| g.degree(v)).unwrap();
        let ds = DominatingSet::from_indices(&g, [center.index()]);
        assert!(ds.is_dominating(&g));
        assert!(ds.undominated(&g).is_empty());
    }

    #[test]
    fn leaf_does_not_dominate_star() {
        let g = generators::star(8);
        let center = g.node_ids().max_by_key(|&v| g.degree(v)).unwrap();
        let leaf = g.node_ids().find(|&v| v != center).unwrap();
        let ds = DominatingSet::from_indices(&g, [leaf.index()]);
        assert!(!ds.is_dominating(&g));
        assert_eq!(ds.undominated(&g).len(), 8 - 2); // all leaves except itself
    }

    #[test]
    fn empty_set_dominates_empty_graph_only() {
        let g0 = CsrGraph::empty(0);
        assert!(DominatingSet::new(&g0).is_dominating(&g0));
        let g1 = CsrGraph::empty(1);
        assert!(!DominatingSet::new(&g1).is_dominating(&g1));
        assert!(DominatingSet::all(&g1).is_dominating(&g1));
    }

    #[test]
    fn isolated_nodes_must_be_members() {
        let g = CsrGraph::from_edges(3, [(0, 1)]).unwrap();
        let ds = DominatingSet::from_indices(&g, [0]);
        assert!(!ds.is_dominating(&g));
        let ds = DominatingSet::from_indices(&g, [0, 2]);
        assert!(ds.is_dominating(&g));
    }

    #[test]
    fn add_remove_iter() {
        let g = generators::cycle(5);
        let mut ds = DominatingSet::new(&g);
        assert!(ds.add(NodeId::new(1)));
        assert!(!ds.add(NodeId::new(1)));
        assert!(ds.add(NodeId::new(4)));
        assert_eq!(ds.iter().map(NodeId::index).collect::<Vec<_>>(), vec![1, 4]);
        assert!(ds.remove(NodeId::new(1)));
        assert_eq!(ds.len(), 1);
    }

    #[test]
    fn from_fn_selects_predicate() {
        let g = generators::cycle(6);
        let ds = DominatingSet::from_fn(&g, |v| v.index() % 3 == 0);
        assert_eq!(ds.len(), 2);
        assert!(ds.is_dominating(&g));
    }

    #[test]
    fn cost_with_weights() {
        let g = generators::cycle(3);
        let w = VertexWeights::from_values(vec![1.0, 2.0, 5.0]).unwrap();
        let ds = DominatingSet::from_indices(&g, [0, 2]);
        assert_eq!(ds.cost(&w), 6.0);
        assert_eq!(ds.cost(&VertexWeights::uniform(&g)), 2.0);
    }

    #[test]
    fn fractional_feasibility_cycle() {
        let g = generators::cycle(6);
        // Closed neighborhoods have size 3, so x = 1/3 is exactly feasible.
        let x = FractionalAssignment::uniform(&g, 1.0 / 3.0);
        assert!(x.is_feasible(&g));
        assert!(x.violated(&g).is_empty());
        let bad = FractionalAssignment::uniform(&g, 0.2);
        assert!(!bad.is_feasible(&g));
        assert_eq!(bad.violated(&g).len(), 6);
    }

    #[test]
    fn tolerance_accepts_near_one_sums() {
        let g = generators::complete(3);
        let third = 1.0 / 3.0; // 3*(1/3) = 0.999.. in floating point
        let x = FractionalAssignment::from_values(vec![third; 3]);
        assert!(x.is_feasible(&g));
    }

    #[test]
    fn weighted_objective() {
        let g = generators::cycle(3);
        let w = VertexWeights::from_values(vec![1.0, 2.0, 3.0]).unwrap();
        let mut x = FractionalAssignment::zeros(&g);
        x.set(NodeId::new(1), 0.5);
        x.set(NodeId::new(2), 1.0);
        assert!((x.weighted_objective(&w) - 4.0).abs() < 1e-12);
        assert_eq!(w.c_max(), 3.0);
    }

    #[test]
    fn weights_reject_below_one() {
        assert!(VertexWeights::from_values(vec![0.5]).is_err());
        assert!(VertexWeights::from_values(vec![f64::NAN]).is_err());
    }

    #[test]
    #[should_panic(expected = "not a finite non-negative")]
    fn fractional_rejects_negative() {
        FractionalAssignment::from_values(vec![-0.1]);
    }

    #[test]
    fn debug_formats() {
        let g = generators::cycle(3);
        assert!(!format!("{:?}", DominatingSet::new(&g)).is_empty());
        assert!(format!("{:?}", FractionalAssignment::zeros(&g)).contains("n=3"));
        assert!(format!("{:?}", VertexWeights::uniform(&g)).contains("c_max=1"));
    }
}
