//! Structural graph properties: connectivity, BFS, degree statistics.
//!
//! These helpers support workload construction (e.g. extracting the giant
//! component of a unit-disk graph) and test oracles; none of them are used
//! by the distributed algorithms themselves, which only ever see local
//! state.

use std::collections::VecDeque;

use crate::{CsrGraph, NodeId};

/// Assigns each node a component id in `0..num_components`, in order of
/// first discovery.
///
/// # Example
///
/// ```
/// use kw_graph::{props, CsrGraph};
///
/// let g = CsrGraph::from_edges(4, [(0, 1), (2, 3)])?;
/// let comp = props::connected_components(&g);
/// assert_eq!(comp, vec![0, 0, 1, 1]);
/// # Ok::<(), kw_graph::GraphError>(())
/// ```
pub fn connected_components(g: &CsrGraph) -> Vec<usize> {
    let n = g.len();
    let mut comp = vec![usize::MAX; n];
    let mut next = 0usize;
    let mut queue = VecDeque::new();
    for s in 0..n {
        if comp[s] != usize::MAX {
            continue;
        }
        comp[s] = next;
        queue.push_back(s);
        while let Some(v) = queue.pop_front() {
            for u in g.neighbors(NodeId::new(v)) {
                if comp[u.index()] == usize::MAX {
                    comp[u.index()] = next;
                    queue.push_back(u.index());
                }
            }
        }
        next += 1;
    }
    comp
}

/// Number of connected components (0 for the empty graph).
pub fn num_components(g: &CsrGraph) -> usize {
    connected_components(g)
        .iter()
        .copied()
        .max()
        .map_or(0, |m| m + 1)
}

/// Whether the graph is connected. The empty graph is considered connected.
pub fn is_connected(g: &CsrGraph) -> bool {
    num_components(g) <= 1
}

/// BFS hop distances from `src`; unreachable nodes are `None`.
///
/// # Panics
///
/// Panics if `src` is out of range.
pub fn bfs_distances(g: &CsrGraph, src: NodeId) -> Vec<Option<u32>> {
    let n = g.len();
    assert!(src.index() < n, "source {src} out of range");
    let mut dist = vec![None; n];
    dist[src.index()] = Some(0);
    let mut queue = VecDeque::from([src]);
    while let Some(v) = queue.pop_front() {
        let d = dist[v.index()].expect("queued nodes have distances");
        for u in g.neighbors(v) {
            if dist[u.index()].is_none() {
                dist[u.index()] = Some(d + 1);
                queue.push_back(u);
            }
        }
    }
    dist
}

/// Exact diameter via all-pairs BFS (`O(n·m)`, for test-scale graphs).
///
/// Returns `None` for disconnected or empty graphs.
pub fn diameter(g: &CsrGraph) -> Option<usize> {
    if g.is_empty() {
        return None;
    }
    let mut best = 0u32;
    for v in g.node_ids() {
        let d = bfs_distances(g, v);
        for e in d {
            best = best.max(e?);
        }
    }
    Some(best as usize)
}

/// Histogram `h` with `h[d]` = number of nodes of degree `d`
/// (`h.len() == Δ + 1`, empty for the empty graph).
pub fn degree_histogram(g: &CsrGraph) -> Vec<usize> {
    if g.is_empty() {
        return Vec::new();
    }
    let mut h = vec![0usize; g.max_degree() + 1];
    for v in g.node_ids() {
        h[g.degree(v)] += 1;
    }
    h
}

/// Mean degree `2m/n` (0 for the empty graph).
pub fn average_degree(g: &CsrGraph) -> f64 {
    if g.is_empty() {
        0.0
    } else {
        g.num_arcs() as f64 / g.len() as f64
    }
}

/// The subgraph induced by `nodes`, plus the mapping from new ids to the
/// original ids (`mapping[new] = old`).
///
/// # Panics
///
/// Panics if `nodes` contains duplicates or out-of-range ids.
pub fn induced_subgraph(g: &CsrGraph, nodes: &[NodeId]) -> (CsrGraph, Vec<NodeId>) {
    let mut old_to_new = vec![usize::MAX; g.len()];
    for (new, &v) in nodes.iter().enumerate() {
        assert!(v.index() < g.len(), "node {v} out of range");
        assert!(old_to_new[v.index()] == usize::MAX, "duplicate node {v}");
        old_to_new[v.index()] = new;
    }
    let mut b = crate::GraphBuilder::new(nodes.len());
    for (new_u, &u) in nodes.iter().enumerate() {
        for v in g.neighbors(u) {
            let new_v = old_to_new[v.index()];
            if new_v != usize::MAX && new_u < new_v {
                b.add_edge_unchecked_duplicate(new_u, new_v)
                    .expect("induced edge in range");
            }
        }
    }
    (b.build(), nodes.to_vec())
}

/// The largest connected component as a standalone graph, plus the mapping
/// from new ids to original ids. Ties broken by lowest component id.
///
/// Returns an empty graph for the empty graph.
pub fn largest_component(g: &CsrGraph) -> (CsrGraph, Vec<NodeId>) {
    let comp = connected_components(g);
    let k = comp.iter().copied().max().map_or(0, |m| m + 1);
    if k == 0 {
        return (CsrGraph::empty(0), Vec::new());
    }
    let mut sizes = vec![0usize; k];
    for &c in &comp {
        sizes[c] += 1;
    }
    let big = (0..k)
        .max_by_key(|&c| (sizes[c], std::cmp::Reverse(c)))
        .expect("k > 0");
    let nodes: Vec<NodeId> = g.node_ids().filter(|v| comp[v.index()] == big).collect();
    induced_subgraph(g, &nodes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn components_of_disjoint_paths() {
        let g = CsrGraph::from_edges(6, [(0, 1), (1, 2), (3, 4)]).unwrap();
        assert_eq!(connected_components(&g), vec![0, 0, 0, 1, 1, 2]);
        assert_eq!(num_components(&g), 3);
        assert!(!is_connected(&g));
    }

    #[test]
    fn empty_graph_properties() {
        let g = CsrGraph::empty(0);
        assert_eq!(num_components(&g), 0);
        assert!(is_connected(&g));
        assert_eq!(diameter(&g), None);
        assert!(degree_histogram(&g).is_empty());
        assert_eq!(average_degree(&g), 0.0);
    }

    #[test]
    fn bfs_on_path() {
        let g = generators::path(5);
        let d = bfs_distances(&g, NodeId::new(0));
        assert_eq!(d, vec![Some(0), Some(1), Some(2), Some(3), Some(4)]);
    }

    #[test]
    fn bfs_unreachable() {
        let g = CsrGraph::from_edges(3, [(0, 1)]).unwrap();
        let d = bfs_distances(&g, NodeId::new(0));
        assert_eq!(d[2], None);
    }

    #[test]
    fn diameters() {
        assert_eq!(diameter(&generators::path(6)), Some(5));
        assert_eq!(diameter(&generators::cycle(6)), Some(3));
        assert_eq!(diameter(&generators::complete(4)), Some(1));
        assert_eq!(diameter(&generators::petersen()), Some(2));
        let disconnected = CsrGraph::from_edges(3, [(0, 1)]).unwrap();
        assert_eq!(diameter(&disconnected), None);
    }

    #[test]
    fn histogram_and_average() {
        let g = generators::star(5);
        assert_eq!(degree_histogram(&g), vec![0, 4, 0, 0, 1]);
        assert!((average_degree(&g) - 8.0 / 5.0).abs() < 1e-12);
    }

    #[test]
    fn induced_subgraph_keeps_internal_edges() {
        let g = generators::complete(5);
        let nodes: Vec<NodeId> = [0usize, 2, 4].into_iter().map(NodeId::new).collect();
        let (sub, map) = induced_subgraph(&g, &nodes);
        assert_eq!(sub.len(), 3);
        assert_eq!(sub.num_edges(), 3);
        assert_eq!(map.len(), 3);
    }

    #[test]
    fn largest_component_extraction() {
        let g = CsrGraph::from_edges(7, [(0, 1), (1, 2), (2, 0), (3, 4), (5, 6)]).unwrap();
        let (big, map) = largest_component(&g);
        assert_eq!(big.len(), 3);
        assert_eq!(big.num_edges(), 3);
        assert_eq!(
            map.iter().map(|v| v.index()).collect::<Vec<_>>(),
            vec![0, 1, 2]
        );
    }

    #[test]
    #[should_panic(expected = "duplicate node")]
    fn induced_rejects_duplicates() {
        let g = generators::path(3);
        let nodes = vec![NodeId::new(0), NodeId::new(0)];
        let _ = induced_subgraph(&g, &nodes);
    }
}
