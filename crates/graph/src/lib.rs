//! Static undirected graphs and network-topology generators.
//!
//! This crate is the graph substrate of the `kw-domset` workspace, which
//! reproduces Kuhn & Wattenhofer, *Constant-time distributed dominating set
//! approximation* (PODC 2003). The paper operates on an arbitrary network
//! graph `G = (V, E)`; this crate provides:
//!
//! * [`CsrGraph`] — an immutable compressed-sparse-row adjacency structure,
//!   the representation every algorithm and the simulator run on;
//! * [`GraphBuilder`] — edge-list accumulation with validation (no self
//!   loops, no parallel edges);
//! * [`generators`] — the topology families used by the reproduction
//!   experiments (G(n,p), unit-disk graphs, Barabási–Albert, grids, trees,
//!   and several fixed fixtures);
//! * [`DominatingSet`] / [`FractionalAssignment`] — solution containers with
//!   verification (`is_dominating`, LP feasibility at a documented
//!   tolerance);
//! * [`props`] — connectivity, BFS, degree statistics used by workloads and
//!   tests.
//!
//! # Example
//!
//! ```
//! use kw_graph::{generators, DominatingSet};
//!
//! let g = generators::cycle(5);
//! assert_eq!(g.len(), 5);
//! assert_eq!(g.max_degree(), 2);
//!
//! // Two opposite-ish nodes dominate a 5-cycle.
//! let ds = DominatingSet::from_indices(&g, [0usize, 2]);
//! assert!(ds.is_dominating(&g));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bitset;
mod builder;
pub mod churn;
mod csr;
mod domset;
mod error;
pub mod generators;
pub mod io;
mod node;
pub mod props;

pub use bitset::BitSet;
pub use builder::GraphBuilder;
pub use churn::{apply_churn, ChurnEvent, ChurnKind};
pub use csr::{ClosedNeighbors, CsrGraph, Neighbors};
pub use domset::{DominatingSet, FractionalAssignment, VertexWeights, COVERAGE_TOLERANCE};
pub use error::GraphError;
pub use node::NodeId;
