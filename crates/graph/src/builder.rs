use crate::{CsrGraph, GraphError};

/// Incremental, validating constructor for [`CsrGraph`].
///
/// Collects undirected edges, rejecting self loops and duplicates eagerly,
/// then sorts adjacency into CSR form in `build`.
///
/// # Example
///
/// ```
/// use kw_graph::GraphBuilder;
///
/// let mut b = GraphBuilder::new(3);
/// b.add_edge(0, 1)?;
/// b.add_edge(2, 1)?;
/// let g = b.build();
/// assert_eq!(g.num_edges(), 2);
/// # Ok::<(), kw_graph::GraphError>(())
/// ```
#[derive(Clone, Debug, Default)]
pub struct GraphBuilder {
    n: usize,
    /// Edges normalized to `(min, max)`.
    edges: Vec<(u32, u32)>,
}

impl GraphBuilder {
    /// Creates a builder for a graph on `n` nodes.
    pub fn new(n: usize) -> Self {
        GraphBuilder {
            n,
            edges: Vec::new(),
        }
    }

    /// Number of nodes of the graph under construction.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the graph under construction has zero nodes.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Number of edges added so far.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Adds the undirected edge `{u, v}`.
    ///
    /// Duplicate detection is deferred to [`build`](Self::build) for edges
    /// added through [`add_edge_unchecked_duplicate`]; this method checks
    /// nothing beyond range and loops eagerly but catches duplicates in
    /// `build` as a panic-free error path would complicate the hot loop of
    /// generators. Instead duplicates are detected here via a sorted probe
    /// only in debug builds and always at `build` time.
    ///
    /// # Errors
    ///
    /// [`GraphError::NodeOutOfRange`] or [`GraphError::SelfLoop`]; duplicate
    /// edges are reported by the eager scan as [`GraphError::DuplicateEdge`].
    ///
    /// [`add_edge_unchecked_duplicate`]: Self::add_edge_unchecked_duplicate
    pub fn add_edge(&mut self, u: usize, v: usize) -> Result<(), GraphError> {
        self.validate_endpoints(u, v)?;
        let key = Self::normalize(u, v);
        if self.edges.contains(&key) {
            return Err(GraphError::DuplicateEdge {
                a: key.0 as usize,
                b: key.1 as usize,
            });
        }
        self.edges.push(key);
        Ok(())
    }

    /// Adds the undirected edge `{u, v}` without scanning for duplicates.
    ///
    /// Generators that are duplicate-free by construction (grids, trees,
    /// G(n,p) upper-triangle sweeps) use this to avoid the `O(m)` probe of
    /// [`add_edge`](Self::add_edge). `build` deduplicates defensively, so a
    /// violated promise degrades to a slightly smaller graph, never a corrupt
    /// one.
    ///
    /// # Errors
    ///
    /// [`GraphError::NodeOutOfRange`] or [`GraphError::SelfLoop`].
    pub fn add_edge_unchecked_duplicate(&mut self, u: usize, v: usize) -> Result<(), GraphError> {
        self.validate_endpoints(u, v)?;
        self.edges.push(Self::normalize(u, v));
        Ok(())
    }

    fn validate_endpoints(&self, u: usize, v: usize) -> Result<(), GraphError> {
        if u >= self.n {
            return Err(GraphError::NodeOutOfRange {
                node: u,
                len: self.n,
            });
        }
        if v >= self.n {
            return Err(GraphError::NodeOutOfRange {
                node: v,
                len: self.n,
            });
        }
        if u == v {
            return Err(GraphError::SelfLoop { node: u });
        }
        Ok(())
    }

    #[inline]
    fn normalize(u: usize, v: usize) -> (u32, u32) {
        let (a, b) = if u < v { (u, v) } else { (v, u) };
        (a as u32, b as u32)
    }

    /// Finalizes the builder into an immutable [`CsrGraph`].
    ///
    /// Sorts and deduplicates edges, then lays out CSR arrays.
    pub fn build(mut self) -> CsrGraph {
        self.edges.sort_unstable();
        self.edges.dedup();
        let n = self.n;
        let mut degree = vec![0u32; n];
        for &(a, b) in &self.edges {
            degree[a as usize] += 1;
            degree[b as usize] += 1;
        }
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0u32);
        let mut acc = 0u32;
        for d in &degree {
            acc += d;
            offsets.push(acc);
        }
        let mut cursor: Vec<u32> = offsets[..n].to_vec();
        let mut targets = vec![0u32; acc as usize];
        // Edges are sorted by (a, b); writing b into a's list in this order
        // keeps a's list sorted. b's list receives a values in sorted order
        // as well because a is the primary sort key.
        for &(a, b) in &self.edges {
            targets[cursor[a as usize] as usize] = b;
            cursor[a as usize] += 1;
        }
        for &(a, b) in &self.edges {
            targets[cursor[b as usize] as usize] = a;
            cursor[b as usize] += 1;
        }
        // The second pass appends `a`s after `b`s in each list, so lists are
        // two sorted runs; merge by sorting each list (cheap, lists are
        // typically short and nearly sorted).
        for v in 0..n {
            let (lo, hi) = (offsets[v] as usize, offsets[v + 1] as usize);
            targets[lo..hi].sort_unstable();
        }
        CsrGraph::from_parts(offsets, targets)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NodeId;

    #[test]
    fn build_sorts_and_symmetrizes() {
        let mut b = GraphBuilder::new(4);
        b.add_edge(3, 0).unwrap();
        b.add_edge(1, 0).unwrap();
        b.add_edge(2, 0).unwrap();
        let g = b.build();
        let ns: Vec<_> = g.neighbors(NodeId::new(0)).map(NodeId::index).collect();
        assert_eq!(ns, vec![1, 2, 3]);
        for v in 1..4 {
            assert!(g.has_edge(NodeId::new(v), NodeId::new(0)));
        }
    }

    #[test]
    fn duplicate_rejected_eagerly_in_either_orientation() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1).unwrap();
        assert!(b.add_edge(1, 0).is_err());
        assert_eq!(b.num_edges(), 1);
    }

    #[test]
    fn unchecked_duplicates_are_deduped_at_build() {
        let mut b = GraphBuilder::new(2);
        b.add_edge_unchecked_duplicate(0, 1).unwrap();
        b.add_edge_unchecked_duplicate(1, 0).unwrap();
        let g = b.build();
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn empty_builder() {
        let b = GraphBuilder::new(0);
        assert!(b.is_empty());
        let g = b.build();
        assert_eq!(g.len(), 0);
    }

    #[test]
    fn len_reports_node_count() {
        let b = GraphBuilder::new(5);
        assert_eq!(b.len(), 5);
        assert!(!b.is_empty());
    }
}
