use std::fmt;

/// Identifier of a node in a [`CsrGraph`](crate::CsrGraph).
///
/// Node ids are dense indices `0..n`. The paper labels nodes `v_1..v_n` and
/// notes the labels are not used by the algorithms themselves; here they only
/// index data structures and seed per-node RNGs.
///
/// ```
/// use kw_graph::NodeId;
///
/// let v = NodeId::new(3);
/// assert_eq!(v.index(), 3);
/// assert_eq!(format!("{v}"), "v3");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct NodeId(u32);

impl NodeId {
    /// Creates a node id from a dense index.
    ///
    /// # Panics
    ///
    /// Panics if `index` does not fit in `u32`.
    #[inline]
    pub fn new(index: usize) -> Self {
        NodeId(u32::try_from(index).expect("node index exceeds u32::MAX"))
    }

    /// Returns the dense index of this node.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Returns the raw `u32` value.
    #[inline]
    pub fn raw(self) -> u32 {
        self.0
    }
}

impl From<u32> for NodeId {
    #[inline]
    fn from(value: u32) -> Self {
        NodeId(value)
    }
}

impl From<NodeId> for u32 {
    #[inline]
    fn from(value: NodeId) -> Self {
        value.0
    }
}

impl From<usize> for NodeId {
    #[inline]
    fn from(value: usize) -> Self {
        NodeId::new(value)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_index() {
        for i in [0usize, 1, 17, 65_535] {
            assert_eq!(NodeId::new(i).index(), i);
        }
    }

    #[test]
    fn conversions() {
        let v: NodeId = 7u32.into();
        assert_eq!(u32::from(v), 7);
        let w: NodeId = 9usize.into();
        assert_eq!(w.index(), 9);
    }

    #[test]
    fn ordering_follows_index() {
        assert!(NodeId::new(1) < NodeId::new(2));
    }

    #[test]
    fn display() {
        assert_eq!(NodeId::new(42).to_string(), "v42");
    }
}
