//! Plain-text graph serialization.
//!
//! Two formats round-trip losslessly:
//!
//! * the workspace's minimal edge list ([`to_edge_list`] /
//!   [`parse_edge_list`]):
//!
//!   ```text
//!   # comment lines start with '#'
//!   n <num_nodes>
//!   <u> <v>
//!   ...
//!   ```
//!
//! * the DIMACS graph format ([`write_dimacs`] / [`parse_dimacs`]),
//!   which real-world benchmark files (DIMACS challenges, SNAP exports)
//!   ship in — node ids are **1-based** on the wire:
//!
//!   ```text
//!   c comment lines start with 'c'
//!   p edge <num_nodes> <num_edges>
//!   e <u> <v>
//!   ...
//!   ```
//!
//! # Strict vs lenient DIMACS
//!
//! [`parse_dimacs`] is **strict**: it accepts exactly what
//! [`write_dimacs`] emits (plus the `p col` alias) and rejects anything
//! else — duplicate edges, self-loops, unknown line kinds, and any
//! mismatch between the declared edge count and the number of `e`
//! lines. Strictness is the right contract for round-trips: a file this
//! workspace wrote that fails to parse back is corrupt.
//!
//! Real DIMACS-challenge downloads are messier: coloring instances
//! carry `n <id> <value>` node lines, several families list every edge
//! in both orientations (so the declared `m` counts *lines*, not
//! undirected edges), and ad-hoc exports contain stray self-loops.
//! [`parse_dimacs_lenient`] accepts those files, cleaning as it goes —
//! duplicate edges are deduplicated, self-loops dropped, unknown line
//! kinds skipped — and reports what it cleaned in [`DimacsStats`] so
//! callers can log (or assert on) the cleanup instead of silently
//! trusting it. Truncation is still an error in lenient mode: a file
//! with *fewer* `e` lines than its problem line declares is a broken
//! download, not a messy one.
//!
//! # Example
//!
//! ```
//! use kw_graph::{generators, io};
//!
//! let g = generators::cycle(4);
//! let back = io::parse_edge_list(&io::to_edge_list(&g))?;
//! assert_eq!(g, back);
//! let back = io::parse_dimacs(&io::write_dimacs(&g))?;
//! assert_eq!(g, back);
//! # Ok::<(), kw_graph::GraphError>(())
//! ```

use std::collections::HashSet;
use std::fmt::Write as _;

use crate::{CsrGraph, GraphBuilder, GraphError};

/// Serializes a graph to the edge-list text format.
pub fn to_edge_list(g: &CsrGraph) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "n {}", g.len());
    for (u, v) in g.edges() {
        let _ = writeln!(out, "{} {}", u.index(), v.index());
    }
    out
}

/// Parses the edge-list text format produced by [`to_edge_list`].
///
/// Blank lines and lines starting with `#` are ignored. The `n <count>`
/// header must appear before any edge.
///
/// # Errors
///
/// Returns [`GraphError::Parse`] on malformed input and the usual
/// construction errors on invalid edges.
pub fn parse_edge_list(text: &str) -> Result<CsrGraph, GraphError> {
    let mut builder: Option<GraphBuilder> = None;
    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some(rest) = line.strip_prefix("n ") {
            if builder.is_some() {
                return Err(GraphError::Parse {
                    line: line_no,
                    reason: "duplicate node-count header".to_string(),
                });
            }
            let n: usize = rest.trim().parse().map_err(|_| GraphError::Parse {
                line: line_no,
                reason: format!("invalid node count {rest:?}"),
            })?;
            builder = Some(GraphBuilder::new(n));
            continue;
        }
        let b = builder.as_mut().ok_or_else(|| GraphError::Parse {
            line: line_no,
            reason: "edge before 'n <count>' header".to_string(),
        })?;
        let mut parts = line.split_whitespace();
        let (u, v) = match (parts.next(), parts.next(), parts.next()) {
            (Some(u), Some(v), None) => (u, v),
            _ => {
                return Err(GraphError::Parse {
                    line: line_no,
                    reason: format!("expected 'u v', got {line:?}"),
                })
            }
        };
        let parse = |s: &str| -> Result<usize, GraphError> {
            s.parse().map_err(|_| GraphError::Parse {
                line: line_no,
                reason: format!("invalid node id {s:?}"),
            })
        };
        b.add_edge(parse(u)?, parse(v)?)?;
    }
    Ok(builder
        .ok_or(GraphError::Parse {
            line: 0,
            reason: "missing 'n <count>' header".to_string(),
        })?
        .build())
}

/// Serializes a graph to the DIMACS graph format (`p edge n m` header,
/// 1-based `e u v` lines).
pub fn write_dimacs(g: &CsrGraph) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "c kw-graph export");
    let _ = writeln!(out, "p edge {} {}", g.len(), g.num_edges());
    for (u, v) in g.edges() {
        let _ = writeln!(out, "e {} {}", u.index() + 1, v.index() + 1);
    }
    out
}

/// What [`parse_dimacs_lenient`] saw and cleaned up while reading one
/// file. All counters refer to the raw text, before cleanup.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DimacsStats {
    /// Node count declared by the problem line.
    pub declared_nodes: usize,
    /// Edge count declared by the problem line. Files that list both
    /// orientations declare the *line* count here, so this may exceed
    /// the parsed graph's [`CsrGraph::num_edges`].
    pub declared_edges: usize,
    /// Total `e` lines in the file (valid ones, before deduplication).
    pub edge_lines: usize,
    /// `e` lines dropped because the same undirected edge appeared
    /// earlier (either orientation).
    pub duplicate_edges: usize,
    /// `e` lines dropped because both endpoints were equal.
    pub self_loops: usize,
    /// Lines of unknown kind (e.g. `n <id> <value>` node lines in
    /// coloring instances) skipped entirely.
    pub skipped_lines: usize,
}

/// How the DIMACS parser treats real-world messiness. See the
/// [module docs](self) for the full contract.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum DimacsMode {
    /// Exactly [`write_dimacs`]'s output: every deviation is an error.
    Strict,
    /// DIMACS-challenge downloads: dedup, drop loops, skip unknowns.
    Lenient,
}

/// Parses the DIMACS graph format produced by [`write_dimacs`],
/// **strictly**: `c ...` comments (ignored), one `p edge <n> <m>`
/// problem line before any edge (`p col` is accepted as an alias, as
/// coloring instances use it), and `e <u> <v>` edges with **1-based**
/// endpoints. The declared edge count `m` must match the number of edge
/// lines — a mismatch usually means a truncated download, exactly what
/// a parser should refuse to feed into an experiment.
///
/// For files fetched from the wild (duplicate edges, self-loops, node
/// lines), use [`parse_dimacs_lenient`] instead.
///
/// # Errors
///
/// Returns [`GraphError::Parse`] on malformed input and the usual
/// construction errors on invalid edges (out-of-range ids, self-loops,
/// duplicates).
pub fn parse_dimacs(text: &str) -> Result<CsrGraph, GraphError> {
    parse_dimacs_inner(text, DimacsMode::Strict).map(|(g, _)| g)
}

/// Parses real DIMACS-challenge files, tolerating (and counting) the
/// messiness they actually ship with:
///
/// * repeated `e` lines — including the both-orientations convention
///   several challenge families use — are deduplicated;
/// * self-loops are dropped (the dominating-set formulation uses closed
///   neighborhoods, so they carry no information);
/// * unknown line kinds (`n <id> <value>` node lines of coloring
///   instances, `d`/`x`/`v` extensions) are skipped;
/// * any `p <format> <n> <m>` problem line is accepted, not just
///   `p edge`/`p col`;
/// * extra tokens after the two endpoints of an `e` line (edge weights)
///   are ignored.
///
/// Each cleanup is counted in the returned [`DimacsStats`]. The
/// edge-count check is mode-aware: where strict mode demands equality,
/// lenient mode only rejects files with *fewer* `e` lines than the
/// problem line declares — that is a truncated download, while a
/// surplus is the both-orientations convention.
///
/// # Errors
///
/// [`GraphError::Parse`] on malformed problem/edge lines or a truncated
/// file; [`GraphError::NodeOutOfRange`] on endpoints past the declared
/// node count (out-of-range ids mean a broken file, not a messy one).
pub fn parse_dimacs_lenient(text: &str) -> Result<(CsrGraph, DimacsStats), GraphError> {
    parse_dimacs_inner(text, DimacsMode::Lenient)
}

fn parse_dimacs_inner(text: &str, mode: DimacsMode) -> Result<(CsrGraph, DimacsStats), GraphError> {
    let lenient = mode == DimacsMode::Lenient;
    let mut builder: Option<GraphBuilder> = None;
    let mut stats = DimacsStats::default();
    // Normalized `(min, max)` endpoint pairs already added, for lenient
    // deduplication (strict mode lets the builder reject duplicates).
    let mut seen: HashSet<(u32, u32)> = HashSet::new();
    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('c') {
            continue;
        }
        let mut parts = line.split_whitespace();
        match parts.next() {
            Some("p") => {
                if builder.is_some() {
                    return Err(GraphError::Parse {
                        line: line_no,
                        reason: "duplicate problem line".to_string(),
                    });
                }
                let format = parts.next().unwrap_or("");
                // Strict: only the formats write_dimacs round-trips.
                // Lenient: any named format (sp, cnf exports, …).
                let accepted = match mode {
                    DimacsMode::Strict => format == "edge" || format == "col",
                    DimacsMode::Lenient => !format.is_empty(),
                };
                if !accepted {
                    return Err(GraphError::Parse {
                        line: line_no,
                        reason: format!("expected 'p edge <n> <m>', got format {format:?}"),
                    });
                }
                let mut number = |what: &str| -> Result<usize, GraphError> {
                    parts
                        .next()
                        .and_then(|s| s.parse().ok())
                        .ok_or_else(|| GraphError::Parse {
                            line: line_no,
                            reason: format!("invalid or missing {what} in problem line"),
                        })
                };
                stats.declared_nodes = number("node count")?;
                stats.declared_edges = number("edge count")?;
                builder = Some(GraphBuilder::new(stats.declared_nodes));
            }
            Some("e") => {
                let b = builder.as_mut().ok_or_else(|| GraphError::Parse {
                    line: line_no,
                    reason: "edge before the 'p edge' problem line".to_string(),
                })?;
                let mut endpoint = |what: &str| -> Result<usize, GraphError> {
                    let id: usize = parts.next().and_then(|s| s.parse().ok()).ok_or_else(|| {
                        GraphError::Parse {
                            line: line_no,
                            reason: format!("invalid or missing {what}"),
                        }
                    })?;
                    // DIMACS ids are 1-based.
                    id.checked_sub(1).ok_or(GraphError::Parse {
                        line: line_no,
                        reason: format!("{what} is 0 (DIMACS ids are 1-based)"),
                    })
                };
                let u = endpoint("edge endpoint u")?;
                let v = endpoint("edge endpoint v")?;
                if parts.next().is_some() && !lenient {
                    return Err(GraphError::Parse {
                        line: line_no,
                        reason: format!("expected 'e u v', got {line:?}"),
                    });
                }
                stats.edge_lines += 1;
                if lenient {
                    // Range errors stay fatal even here: an endpoint past
                    // the declared node count is a broken file.
                    for id in [u, v] {
                        if id >= b.len() {
                            return Err(GraphError::NodeOutOfRange {
                                node: id,
                                len: b.len(),
                            });
                        }
                    }
                    if u == v {
                        stats.self_loops += 1;
                    } else if !seen.insert(normalize_pair(u, v)) {
                        stats.duplicate_edges += 1;
                    } else {
                        b.add_edge_unchecked_duplicate(u, v)?;
                    }
                } else {
                    b.add_edge(u, v)?;
                }
            }
            _ if lenient => stats.skipped_lines += 1,
            _ => {
                return Err(GraphError::Parse {
                    line: line_no,
                    reason: format!("unknown line type {line:?}"),
                })
            }
        }
    }
    let builder = builder.ok_or(GraphError::Parse {
        line: 0,
        reason: "missing 'p edge <n> <m>' problem line".to_string(),
    })?;
    // Mode-aware edge-count check: strict demands exact agreement with
    // the problem line; lenient only refuses truncation (fewer lines
    // than declared), since real files routinely declare the line count
    // of a both-orientations listing.
    let truncated = stats.edge_lines < stats.declared_edges;
    if truncated || (!lenient && stats.edge_lines != stats.declared_edges) {
        return Err(GraphError::Parse {
            line: 0,
            reason: format!(
                "problem line declares {} edges but {} were listed{}",
                stats.declared_edges,
                stats.edge_lines,
                if truncated { " (truncated file?)" } else { "" },
            ),
        });
    }
    Ok((builder.build(), stats))
}

fn normalize_pair(u: usize, v: usize) -> (u32, u32) {
    let (a, b) = if u < v { (u, v) } else { (v, u) };
    (a as u32, b as u32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn roundtrip_petersen() {
        let g = generators::petersen();
        let text = to_edge_list(&g);
        assert_eq!(parse_edge_list(&text).unwrap(), g);
    }

    #[test]
    fn roundtrip_empty_graph() {
        let g = CsrGraph::empty(4);
        assert_eq!(parse_edge_list(&to_edge_list(&g)).unwrap(), g);
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let g = parse_edge_list("# header\n\nn 3\n# edge below\n0 1\n").unwrap();
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn missing_header_rejected() {
        let err = parse_edge_list("0 1\n").unwrap_err();
        assert!(matches!(err, GraphError::Parse { line: 1, .. }));
        let err = parse_edge_list("").unwrap_err();
        assert!(matches!(err, GraphError::Parse { .. }));
    }

    #[test]
    fn duplicate_header_rejected() {
        let err = parse_edge_list("n 2\nn 3\n").unwrap_err();
        assert!(matches!(err, GraphError::Parse { line: 2, .. }));
    }

    #[test]
    fn malformed_edges_rejected() {
        assert!(parse_edge_list("n 2\n0\n").is_err());
        assert!(parse_edge_list("n 2\n0 1 2\n").is_err());
        assert!(parse_edge_list("n 2\na b\n").is_err());
        assert!(parse_edge_list("n 2\n0 5\n").is_err());
    }

    #[test]
    fn text_roundtrip_preserves_adjacency_of_random_graph() {
        use rand::{rngs::SmallRng, SeedableRng};
        let g = generators::gnp(40, 0.15, &mut SmallRng::seed_from_u64(2));
        assert_eq!(parse_edge_list(&to_edge_list(&g)).unwrap(), g);
    }

    #[test]
    fn dimacs_roundtrip_petersen_and_empty() {
        let g = generators::petersen();
        let text = write_dimacs(&g);
        assert!(text.contains("p edge 10 15"));
        assert_eq!(parse_dimacs(&text).unwrap(), g);
        let empty = CsrGraph::empty(4);
        assert_eq!(parse_dimacs(&write_dimacs(&empty)).unwrap(), empty);
    }

    #[test]
    fn dimacs_parses_handwritten_instance_with_comments() {
        let g = parse_dimacs(
            "c a triangle plus an isolated node\n\
             \n\
             p edge 4 3\n\
             e 1 2\n\
             c mid-file comment\n\
             e 2 3\n\
             e 3 1\n",
        )
        .unwrap();
        assert_eq!(g.len(), 4);
        assert_eq!(g.num_edges(), 3);
        // 'p col' alias of coloring instances is accepted.
        let colored = parse_dimacs("p col 2 1\ne 1 2\n").unwrap();
        assert_eq!(colored.num_edges(), 1);
    }

    #[test]
    fn dimacs_rejects_malformed_instances() {
        // Missing / duplicate / alien problem lines.
        assert!(parse_dimacs("e 1 2\n").is_err());
        assert!(parse_dimacs("p edge 2 1\np edge 2 1\ne 1 2\n").is_err());
        assert!(parse_dimacs("p matrix 2 1\ne 1 2\n").is_err());
        assert!(parse_dimacs("p edge x 1\n").is_err());
        // Edge-count mismatch (truncated file).
        assert!(parse_dimacs("p edge 3 2\ne 1 2\n").is_err());
        // 0-based or out-of-range endpoints, malformed edge lines.
        assert!(parse_dimacs("p edge 2 1\ne 0 1\n").is_err());
        assert!(parse_dimacs("p edge 2 1\ne 1 3\n").is_err());
        assert!(parse_dimacs("p edge 2 1\ne 1\n").is_err());
        assert!(parse_dimacs("p edge 2 1\ne 1 2 3\n").is_err());
        assert!(parse_dimacs("p edge 2 1\nq 1 2\n").is_err());
    }

    #[test]
    fn lenient_dedups_drops_loops_and_skips_node_lines() {
        // A miniature of a real coloring download: node lines, a self
        // loop, both-orientations duplicates, an edge weight, and a
        // declared edge count that counts lines, not undirected edges.
        let text = "c messy challenge instance\n\
                    p edge 4 6\n\
                    n 1 10\n\
                    n 2 20\n\
                    e 1 2\n\
                    e 2 1\n\
                    e 2 3\n\
                    e 3 3\n\
                    e 3 4 7\n\
                    e 1 2\n";
        let (g, stats) = parse_dimacs_lenient(text).unwrap();
        assert_eq!(g.len(), 4);
        assert_eq!(g.num_edges(), 3); // {1,2}, {2,3}, {3,4}
        assert_eq!(
            stats,
            DimacsStats {
                declared_nodes: 4,
                declared_edges: 6,
                edge_lines: 6,
                duplicate_edges: 2,
                self_loops: 1,
                skipped_lines: 2,
            }
        );
        // Strict mode rejects the same file (node lines come first).
        assert!(parse_dimacs(text).is_err());
    }

    #[test]
    fn lenient_edge_count_check_rejects_truncation_only() {
        // Surplus e lines (both-orientations files): accepted.
        let surplus = "p edge 3 2\ne 1 2\ne 2 1\ne 2 3\n";
        let (g, stats) = parse_dimacs_lenient(surplus).unwrap();
        assert_eq!(g.num_edges(), 2);
        assert_eq!(stats.duplicate_edges, 1);
        // Fewer e lines than declared: a truncated download, rejected.
        let truncated = "p edge 3 3\ne 1 2\ne 2 3\n";
        let err = parse_dimacs_lenient(truncated).unwrap_err();
        assert!(err.to_string().contains("truncated"), "{err}");
        // Strict rejects both.
        assert!(parse_dimacs(surplus).is_err());
        assert!(parse_dimacs(truncated).is_err());
    }

    #[test]
    fn lenient_accepts_alien_problem_formats_but_not_garbage() {
        // `p sp` (shortest-path family) parses in lenient mode.
        let (g, _) = parse_dimacs_lenient("p sp 2 1\ne 1 2\n").unwrap();
        assert_eq!(g.num_edges(), 1);
        // Hard failures stay hard in lenient mode.
        assert!(parse_dimacs_lenient("e 1 2\n").is_err()); // no problem line
        assert!(parse_dimacs_lenient("p edge 2 1\ne 1 5\n").is_err()); // out of range
        assert!(parse_dimacs_lenient("p edge 2 1\ne 0 1\n").is_err()); // 0-based id
        assert!(parse_dimacs_lenient("p edge 2 1\ne 1\n").is_err()); // missing endpoint
        assert!(parse_dimacs_lenient("p edge 2 1\np edge 2 1\ne 1 2\n").is_err());
        assert!(parse_dimacs_lenient("p 2 1\ne 1 2\n").is_err()); // numeric format token eats n
    }

    #[test]
    fn lenient_agrees_with_strict_on_clean_files() {
        use rand::{rngs::SmallRng, SeedableRng};
        let g = generators::gnp(30, 0.2, &mut SmallRng::seed_from_u64(3));
        let text = write_dimacs(&g);
        let (lenient, stats) = parse_dimacs_lenient(&text).unwrap();
        assert_eq!(lenient, parse_dimacs(&text).unwrap());
        assert_eq!(
            stats.duplicate_edges + stats.self_loops + stats.skipped_lines,
            0
        );
        assert_eq!(stats.edge_lines, g.num_edges());
    }

    #[test]
    fn dimacs_and_edge_list_agree_on_random_graphs() {
        use rand::{rngs::SmallRng, SeedableRng};
        let g = generators::gnp(40, 0.15, &mut SmallRng::seed_from_u64(7));
        assert_eq!(parse_dimacs(&write_dimacs(&g)).unwrap(), g);
        assert_eq!(
            parse_dimacs(&write_dimacs(&g)).unwrap(),
            parse_edge_list(&to_edge_list(&g)).unwrap()
        );
    }
}
