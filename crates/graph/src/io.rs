//! Plain-text graph serialization.
//!
//! The format is a minimal edge list:
//!
//! ```text
//! # comment lines start with '#'
//! n <num_nodes>
//! <u> <v>
//! <u> <v>
//! ...
//! ```
//!
//!
//! # Example
//!
//! ```
//! use kw_graph::{generators, io};
//!
//! let g = generators::cycle(4);
//! let text = io::to_edge_list(&g);
//! let back = io::parse_edge_list(&text)?;
//! assert_eq!(g, back);
//! # Ok::<(), kw_graph::GraphError>(())
//! ```

use std::fmt::Write as _;

use crate::{CsrGraph, GraphBuilder, GraphError};

/// Serializes a graph to the edge-list text format.
pub fn to_edge_list(g: &CsrGraph) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "n {}", g.len());
    for (u, v) in g.edges() {
        let _ = writeln!(out, "{} {}", u.index(), v.index());
    }
    out
}

/// Parses the edge-list text format produced by [`to_edge_list`].
///
/// Blank lines and lines starting with `#` are ignored. The `n <count>`
/// header must appear before any edge.
///
/// # Errors
///
/// Returns [`GraphError::Parse`] on malformed input and the usual
/// construction errors on invalid edges.
pub fn parse_edge_list(text: &str) -> Result<CsrGraph, GraphError> {
    let mut builder: Option<GraphBuilder> = None;
    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some(rest) = line.strip_prefix("n ") {
            if builder.is_some() {
                return Err(GraphError::Parse {
                    line: line_no,
                    reason: "duplicate node-count header".to_string(),
                });
            }
            let n: usize = rest.trim().parse().map_err(|_| GraphError::Parse {
                line: line_no,
                reason: format!("invalid node count {rest:?}"),
            })?;
            builder = Some(GraphBuilder::new(n));
            continue;
        }
        let b = builder.as_mut().ok_or_else(|| GraphError::Parse {
            line: line_no,
            reason: "edge before 'n <count>' header".to_string(),
        })?;
        let mut parts = line.split_whitespace();
        let (u, v) = match (parts.next(), parts.next(), parts.next()) {
            (Some(u), Some(v), None) => (u, v),
            _ => {
                return Err(GraphError::Parse {
                    line: line_no,
                    reason: format!("expected 'u v', got {line:?}"),
                })
            }
        };
        let parse = |s: &str| -> Result<usize, GraphError> {
            s.parse().map_err(|_| GraphError::Parse {
                line: line_no,
                reason: format!("invalid node id {s:?}"),
            })
        };
        b.add_edge(parse(u)?, parse(v)?)?;
    }
    Ok(builder
        .ok_or(GraphError::Parse {
            line: 0,
            reason: "missing 'n <count>' header".to_string(),
        })?
        .build())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn roundtrip_petersen() {
        let g = generators::petersen();
        let text = to_edge_list(&g);
        assert_eq!(parse_edge_list(&text).unwrap(), g);
    }

    #[test]
    fn roundtrip_empty_graph() {
        let g = CsrGraph::empty(4);
        assert_eq!(parse_edge_list(&to_edge_list(&g)).unwrap(), g);
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let g = parse_edge_list("# header\n\nn 3\n# edge below\n0 1\n").unwrap();
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn missing_header_rejected() {
        let err = parse_edge_list("0 1\n").unwrap_err();
        assert!(matches!(err, GraphError::Parse { line: 1, .. }));
        let err = parse_edge_list("").unwrap_err();
        assert!(matches!(err, GraphError::Parse { .. }));
    }

    #[test]
    fn duplicate_header_rejected() {
        let err = parse_edge_list("n 2\nn 3\n").unwrap_err();
        assert!(matches!(err, GraphError::Parse { line: 2, .. }));
    }

    #[test]
    fn malformed_edges_rejected() {
        assert!(parse_edge_list("n 2\n0\n").is_err());
        assert!(parse_edge_list("n 2\n0 1 2\n").is_err());
        assert!(parse_edge_list("n 2\na b\n").is_err());
        assert!(parse_edge_list("n 2\n0 5\n").is_err());
    }

    #[test]
    fn text_roundtrip_preserves_adjacency_of_random_graph() {
        use rand::{rngs::SmallRng, SeedableRng};
        let g = generators::gnp(40, 0.15, &mut SmallRng::seed_from_u64(2));
        assert_eq!(parse_edge_list(&to_edge_list(&g)).unwrap(), g);
    }
}
