//! Plain-text graph serialization.
//!
//! Two formats round-trip losslessly:
//!
//! * the workspace's minimal edge list ([`to_edge_list`] /
//!   [`parse_edge_list`]):
//!
//!   ```text
//!   # comment lines start with '#'
//!   n <num_nodes>
//!   <u> <v>
//!   ...
//!   ```
//!
//! * the DIMACS graph format ([`write_dimacs`] / [`parse_dimacs`]),
//!   which real-world benchmark files (DIMACS challenges, SNAP exports)
//!   ship in — node ids are **1-based** on the wire:
//!
//!   ```text
//!   c comment lines start with 'c'
//!   p edge <num_nodes> <num_edges>
//!   e <u> <v>
//!   ...
//!   ```
//!
//! # Example
//!
//! ```
//! use kw_graph::{generators, io};
//!
//! let g = generators::cycle(4);
//! let back = io::parse_edge_list(&io::to_edge_list(&g))?;
//! assert_eq!(g, back);
//! let back = io::parse_dimacs(&io::write_dimacs(&g))?;
//! assert_eq!(g, back);
//! # Ok::<(), kw_graph::GraphError>(())
//! ```

use std::fmt::Write as _;

use crate::{CsrGraph, GraphBuilder, GraphError};

/// Serializes a graph to the edge-list text format.
pub fn to_edge_list(g: &CsrGraph) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "n {}", g.len());
    for (u, v) in g.edges() {
        let _ = writeln!(out, "{} {}", u.index(), v.index());
    }
    out
}

/// Parses the edge-list text format produced by [`to_edge_list`].
///
/// Blank lines and lines starting with `#` are ignored. The `n <count>`
/// header must appear before any edge.
///
/// # Errors
///
/// Returns [`GraphError::Parse`] on malformed input and the usual
/// construction errors on invalid edges.
pub fn parse_edge_list(text: &str) -> Result<CsrGraph, GraphError> {
    let mut builder: Option<GraphBuilder> = None;
    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some(rest) = line.strip_prefix("n ") {
            if builder.is_some() {
                return Err(GraphError::Parse {
                    line: line_no,
                    reason: "duplicate node-count header".to_string(),
                });
            }
            let n: usize = rest.trim().parse().map_err(|_| GraphError::Parse {
                line: line_no,
                reason: format!("invalid node count {rest:?}"),
            })?;
            builder = Some(GraphBuilder::new(n));
            continue;
        }
        let b = builder.as_mut().ok_or_else(|| GraphError::Parse {
            line: line_no,
            reason: "edge before 'n <count>' header".to_string(),
        })?;
        let mut parts = line.split_whitespace();
        let (u, v) = match (parts.next(), parts.next(), parts.next()) {
            (Some(u), Some(v), None) => (u, v),
            _ => {
                return Err(GraphError::Parse {
                    line: line_no,
                    reason: format!("expected 'u v', got {line:?}"),
                })
            }
        };
        let parse = |s: &str| -> Result<usize, GraphError> {
            s.parse().map_err(|_| GraphError::Parse {
                line: line_no,
                reason: format!("invalid node id {s:?}"),
            })
        };
        b.add_edge(parse(u)?, parse(v)?)?;
    }
    Ok(builder
        .ok_or(GraphError::Parse {
            line: 0,
            reason: "missing 'n <count>' header".to_string(),
        })?
        .build())
}

/// Serializes a graph to the DIMACS graph format (`p edge n m` header,
/// 1-based `e u v` lines).
pub fn write_dimacs(g: &CsrGraph) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "c kw-graph export");
    let _ = writeln!(out, "p edge {} {}", g.len(), g.num_edges());
    for (u, v) in g.edges() {
        let _ = writeln!(out, "e {} {}", u.index() + 1, v.index() + 1);
    }
    out
}

/// Parses the DIMACS graph format produced by [`write_dimacs`] (and by
/// the DIMACS challenge / coloring instance files it mirrors).
///
/// Accepted lines: `c ...` comments (ignored), one `p edge <n> <m>`
/// problem line before any edge (`p col` is accepted as an alias, as
/// coloring instances use it), and `e <u> <v>` edges with **1-based**
/// endpoints. The declared edge count `m` must match the number of edge
/// lines — a mismatch usually means a truncated download, exactly what
/// a parser should refuse to feed into an experiment.
///
/// # Errors
///
/// Returns [`GraphError::Parse`] on malformed input and the usual
/// construction errors on invalid edges (out-of-range ids, self-loops,
/// duplicates).
pub fn parse_dimacs(text: &str) -> Result<CsrGraph, GraphError> {
    let mut builder: Option<GraphBuilder> = None;
    let mut declared_edges = 0usize;
    let mut seen_edges = 0usize;
    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('c') {
            continue;
        }
        let mut parts = line.split_whitespace();
        match parts.next() {
            Some("p") => {
                if builder.is_some() {
                    return Err(GraphError::Parse {
                        line: line_no,
                        reason: "duplicate problem line".to_string(),
                    });
                }
                let format = parts.next().unwrap_or("");
                if format != "edge" && format != "col" {
                    return Err(GraphError::Parse {
                        line: line_no,
                        reason: format!("expected 'p edge <n> <m>', got format {format:?}"),
                    });
                }
                let mut number = |what: &str| -> Result<usize, GraphError> {
                    parts
                        .next()
                        .and_then(|s| s.parse().ok())
                        .ok_or_else(|| GraphError::Parse {
                            line: line_no,
                            reason: format!("invalid or missing {what} in problem line"),
                        })
                };
                let n = number("node count")?;
                declared_edges = number("edge count")?;
                builder = Some(GraphBuilder::new(n));
            }
            Some("e") => {
                let b = builder.as_mut().ok_or_else(|| GraphError::Parse {
                    line: line_no,
                    reason: "edge before the 'p edge' problem line".to_string(),
                })?;
                let mut endpoint = |what: &str| -> Result<usize, GraphError> {
                    let id: usize = parts.next().and_then(|s| s.parse().ok()).ok_or_else(|| {
                        GraphError::Parse {
                            line: line_no,
                            reason: format!("invalid or missing {what}"),
                        }
                    })?;
                    // DIMACS ids are 1-based.
                    id.checked_sub(1).ok_or(GraphError::Parse {
                        line: line_no,
                        reason: format!("{what} is 0 (DIMACS ids are 1-based)"),
                    })
                };
                let u = endpoint("edge endpoint u")?;
                let v = endpoint("edge endpoint v")?;
                if parts.next().is_some() {
                    return Err(GraphError::Parse {
                        line: line_no,
                        reason: format!("expected 'e u v', got {line:?}"),
                    });
                }
                b.add_edge(u, v)?;
                seen_edges += 1;
            }
            _ => {
                return Err(GraphError::Parse {
                    line: line_no,
                    reason: format!("unknown line type {line:?}"),
                })
            }
        }
    }
    let builder = builder.ok_or(GraphError::Parse {
        line: 0,
        reason: "missing 'p edge <n> <m>' problem line".to_string(),
    })?;
    if seen_edges != declared_edges {
        return Err(GraphError::Parse {
            line: 0,
            reason: format!(
                "problem line declares {declared_edges} edges but {seen_edges} were listed"
            ),
        });
    }
    Ok(builder.build())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn roundtrip_petersen() {
        let g = generators::petersen();
        let text = to_edge_list(&g);
        assert_eq!(parse_edge_list(&text).unwrap(), g);
    }

    #[test]
    fn roundtrip_empty_graph() {
        let g = CsrGraph::empty(4);
        assert_eq!(parse_edge_list(&to_edge_list(&g)).unwrap(), g);
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let g = parse_edge_list("# header\n\nn 3\n# edge below\n0 1\n").unwrap();
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn missing_header_rejected() {
        let err = parse_edge_list("0 1\n").unwrap_err();
        assert!(matches!(err, GraphError::Parse { line: 1, .. }));
        let err = parse_edge_list("").unwrap_err();
        assert!(matches!(err, GraphError::Parse { .. }));
    }

    #[test]
    fn duplicate_header_rejected() {
        let err = parse_edge_list("n 2\nn 3\n").unwrap_err();
        assert!(matches!(err, GraphError::Parse { line: 2, .. }));
    }

    #[test]
    fn malformed_edges_rejected() {
        assert!(parse_edge_list("n 2\n0\n").is_err());
        assert!(parse_edge_list("n 2\n0 1 2\n").is_err());
        assert!(parse_edge_list("n 2\na b\n").is_err());
        assert!(parse_edge_list("n 2\n0 5\n").is_err());
    }

    #[test]
    fn text_roundtrip_preserves_adjacency_of_random_graph() {
        use rand::{rngs::SmallRng, SeedableRng};
        let g = generators::gnp(40, 0.15, &mut SmallRng::seed_from_u64(2));
        assert_eq!(parse_edge_list(&to_edge_list(&g)).unwrap(), g);
    }

    #[test]
    fn dimacs_roundtrip_petersen_and_empty() {
        let g = generators::petersen();
        let text = write_dimacs(&g);
        assert!(text.contains("p edge 10 15"));
        assert_eq!(parse_dimacs(&text).unwrap(), g);
        let empty = CsrGraph::empty(4);
        assert_eq!(parse_dimacs(&write_dimacs(&empty)).unwrap(), empty);
    }

    #[test]
    fn dimacs_parses_handwritten_instance_with_comments() {
        let g = parse_dimacs(
            "c a triangle plus an isolated node\n\
             \n\
             p edge 4 3\n\
             e 1 2\n\
             c mid-file comment\n\
             e 2 3\n\
             e 3 1\n",
        )
        .unwrap();
        assert_eq!(g.len(), 4);
        assert_eq!(g.num_edges(), 3);
        // 'p col' alias of coloring instances is accepted.
        let colored = parse_dimacs("p col 2 1\ne 1 2\n").unwrap();
        assert_eq!(colored.num_edges(), 1);
    }

    #[test]
    fn dimacs_rejects_malformed_instances() {
        // Missing / duplicate / alien problem lines.
        assert!(parse_dimacs("e 1 2\n").is_err());
        assert!(parse_dimacs("p edge 2 1\np edge 2 1\ne 1 2\n").is_err());
        assert!(parse_dimacs("p matrix 2 1\ne 1 2\n").is_err());
        assert!(parse_dimacs("p edge x 1\n").is_err());
        // Edge-count mismatch (truncated file).
        assert!(parse_dimacs("p edge 3 2\ne 1 2\n").is_err());
        // 0-based or out-of-range endpoints, malformed edge lines.
        assert!(parse_dimacs("p edge 2 1\ne 0 1\n").is_err());
        assert!(parse_dimacs("p edge 2 1\ne 1 3\n").is_err());
        assert!(parse_dimacs("p edge 2 1\ne 1\n").is_err());
        assert!(parse_dimacs("p edge 2 1\ne 1 2 3\n").is_err());
        assert!(parse_dimacs("p edge 2 1\nq 1 2\n").is_err());
    }

    #[test]
    fn dimacs_and_edge_list_agree_on_random_graphs() {
        use rand::{rngs::SmallRng, SeedableRng};
        let g = generators::gnp(40, 0.15, &mut SmallRng::seed_from_u64(7));
        assert_eq!(parse_dimacs(&write_dimacs(&g)).unwrap(), g);
        assert_eq!(
            parse_dimacs(&write_dimacs(&g)).unwrap(),
            parse_edge_list(&to_edge_list(&g)).unwrap()
        );
    }
}
