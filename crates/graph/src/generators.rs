//! Network-topology generators used by the reproduction experiments.
//!
//! The paper's motivation is mobile ad-hoc networks, whose standard model is
//! the unit-disk graph ([`unit_disk`]); the bound experiments additionally
//! sweep Erdős–Rényi graphs ([`gnp`], [`gnm`]), preferential-attachment
//! graphs ([`barabasi_albert`]), and structured families (grids, trees,
//! stars, cliques) that stress the `Δ`-dependent bounds from both ends.
//!
//! All randomized generators take a caller-provided [`rand::Rng`] so that
//! every experiment in the workspace is reproducible from a single seed.
//!
//! # Example
//!
//! ```
//! use kw_graph::generators;
//! use rand::{rngs::SmallRng, SeedableRng};
//!
//! let mut rng = SmallRng::seed_from_u64(7);
//! let g = generators::gnp(100, 0.05, &mut rng);
//! assert_eq!(g.len(), 100);
//! ```

use rand::Rng;

use crate::{CsrGraph, GraphBuilder};

/// The graph with `n` nodes and no edges.
pub fn empty(n: usize) -> CsrGraph {
    CsrGraph::empty(n)
}

/// The path `v_0 — v_1 — … — v_{n-1}`.
pub fn path(n: usize) -> CsrGraph {
    let mut b = GraphBuilder::new(n);
    for v in 1..n {
        b.add_edge_unchecked_duplicate(v - 1, v)
            .expect("path edges are in range");
    }
    b.build()
}

/// The cycle on `n` nodes.
///
/// # Panics
///
/// Panics if `n < 3` (smaller cycles would need self loops or multi-edges).
pub fn cycle(n: usize) -> CsrGraph {
    assert!(n >= 3, "cycle requires n >= 3, got {n}");
    let mut b = GraphBuilder::new(n);
    for v in 1..n {
        b.add_edge_unchecked_duplicate(v - 1, v)
            .expect("cycle edges are in range");
    }
    b.add_edge_unchecked_duplicate(n - 1, 0)
        .expect("cycle closing edge");
    b.build()
}

/// The star with center `0` and `n − 1` leaves.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn star(n: usize) -> CsrGraph {
    assert!(n >= 1, "star requires at least the center node");
    let mut b = GraphBuilder::new(n);
    for v in 1..n {
        b.add_edge_unchecked_duplicate(0, v)
            .expect("star edges are in range");
    }
    b.build()
}

/// The complete graph `K_n`.
pub fn complete(n: usize) -> CsrGraph {
    let mut b = GraphBuilder::new(n);
    for u in 0..n {
        for v in (u + 1)..n {
            b.add_edge_unchecked_duplicate(u, v)
                .expect("complete edges are in range");
        }
    }
    b.build()
}

/// The complete bipartite graph `K_{a,b}` with parts `0..a` and `a..a+b`.
pub fn complete_bipartite(a: usize, b: usize) -> CsrGraph {
    let mut builder = GraphBuilder::new(a + b);
    for u in 0..a {
        for v in a..(a + b) {
            builder
                .add_edge_unchecked_duplicate(u, v)
                .expect("bipartite edges are in range");
        }
    }
    builder.build()
}

/// A `rows × cols` grid; node `(r, c)` has index `r·cols + c`.
pub fn grid(rows: usize, cols: usize) -> CsrGraph {
    let mut b = GraphBuilder::new(rows * cols);
    let idx = |r: usize, c: usize| r * cols + c;
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                b.add_edge_unchecked_duplicate(idx(r, c), idx(r, c + 1))
                    .expect("grid edge");
            }
            if r + 1 < rows {
                b.add_edge_unchecked_duplicate(idx(r, c), idx(r + 1, c))
                    .expect("grid edge");
            }
        }
    }
    b.build()
}

/// A `rows × cols` torus (grid with wraparound in both dimensions).
///
/// Wrap edges are only added along dimensions of length ≥ 3; for length-2
/// dimensions the wrap edge would duplicate the interior edge, and for
/// length-1 dimensions it would be a self loop.
pub fn torus(rows: usize, cols: usize) -> CsrGraph {
    let mut b = GraphBuilder::new(rows * cols);
    let idx = |r: usize, c: usize| (r % rows) * cols + (c % cols);
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                b.add_edge_unchecked_duplicate(idx(r, c), idx(r, c + 1))
                    .expect("torus edge");
            } else if cols >= 3 {
                b.add_edge_unchecked_duplicate(idx(r, c), idx(r, 0))
                    .expect("torus wrap edge");
            }
            if r + 1 < rows {
                b.add_edge_unchecked_duplicate(idx(r, c), idx(r + 1, c))
                    .expect("torus edge");
            } else if rows >= 3 {
                b.add_edge_unchecked_duplicate(idx(r, c), idx(0, c))
                    .expect("torus wrap edge");
            }
        }
    }
    b.build()
}

/// A complete `arity`-ary tree of the given `depth` (depth 0 = single root).
///
/// Node 0 is the root; children of node `v` are appended in breadth-first
/// order.
///
/// # Panics
///
/// Panics if `arity == 0`.
pub fn balanced_tree(arity: usize, depth: usize) -> CsrGraph {
    assert!(arity >= 1, "tree arity must be positive");
    let mut parents: Vec<usize> = vec![0]; // current frontier
    let mut edges: Vec<(usize, usize)> = Vec::new();
    let mut next_id = 1usize;
    for _ in 0..depth {
        let mut frontier = Vec::with_capacity(parents.len() * arity);
        for &p in &parents {
            for _ in 0..arity {
                edges.push((p, next_id));
                frontier.push(next_id);
                next_id += 1;
            }
        }
        parents = frontier;
    }
    let mut b = GraphBuilder::new(next_id);
    for (u, v) in edges {
        b.add_edge_unchecked_duplicate(u, v).expect("tree edge");
    }
    b.build()
}

/// A caterpillar: a spine path of `spine` nodes, each with `legs` pendant
/// leaves. Spine nodes are `0..spine`; leaves follow in spine order.
///
/// # Panics
///
/// Panics if `spine == 0`.
pub fn caterpillar(spine: usize, legs: usize) -> CsrGraph {
    assert!(spine >= 1, "caterpillar requires a nonempty spine");
    let n = spine + spine * legs;
    let mut b = GraphBuilder::new(n);
    for v in 1..spine {
        b.add_edge_unchecked_duplicate(v - 1, v)
            .expect("spine edge");
    }
    let mut leaf = spine;
    for s in 0..spine {
        for _ in 0..legs {
            b.add_edge_unchecked_duplicate(s, leaf).expect("leg edge");
            leaf += 1;
        }
    }
    b.build()
}

/// The Petersen graph (10 nodes, 3-regular) — a fixed fixture for tests.
pub fn petersen() -> CsrGraph {
    // Outer 5-cycle 0..5, inner 5-star-polygon 5..10, spokes i — i+5.
    let edges = [
        (0, 1),
        (1, 2),
        (2, 3),
        (3, 4),
        (4, 0),
        (5, 7),
        (7, 9),
        (9, 6),
        (6, 8),
        (8, 5),
        (0, 5),
        (1, 6),
        (2, 7),
        (3, 8),
        (4, 9),
    ];
    CsrGraph::from_edges(10, edges).expect("petersen edges are valid")
}

/// A hub node `0` joined to one "gateway" node of each of `cliques` cliques
/// of size `clique_size`.
///
/// This family has the two-scale degree structure that drives the paper's
/// Figure 1 cascade: gateway nodes and the hub see very different
/// active-neighbor counts `a(v)` than clique-interior nodes.
///
/// # Panics
///
/// Panics if `clique_size == 0`.
pub fn star_of_cliques(cliques: usize, clique_size: usize) -> CsrGraph {
    assert!(clique_size >= 1, "cliques must be nonempty");
    let n = 1 + cliques * clique_size;
    let mut b = GraphBuilder::new(n);
    for c in 0..cliques {
        let base = 1 + c * clique_size;
        for i in 0..clique_size {
            for j in (i + 1)..clique_size {
                b.add_edge_unchecked_duplicate(base + i, base + j)
                    .expect("clique edge");
            }
        }
        b.add_edge_unchecked_duplicate(0, base).expect("spoke edge");
    }
    b.build()
}

/// The `d`-dimensional hypercube `Q_d` (`2^d` nodes, `d`-regular): node
/// indices are bit strings, edges connect Hamming-distance-1 pairs.
///
/// A useful stress case for the bounds: vertex-transitive with
/// logarithmic degree, so `LP_OPT = 2^d/(d+1)` exactly.
///
/// # Panics
///
/// Panics if `d > 20` (guards accidental 2²⁰⁺-node allocations).
pub fn hypercube(d: u32) -> CsrGraph {
    assert!(d <= 20, "hypercube dimension {d} too large");
    let n = 1usize << d;
    let mut b = GraphBuilder::new(n);
    for v in 0..n {
        for bit in 0..d {
            let u = v ^ (1 << bit);
            if v < u {
                b.add_edge_unchecked_duplicate(v, u)
                    .expect("hypercube edge");
            }
        }
    }
    b.build()
}

/// A random `d`-regular graph via the configuration model with retries
/// (pairs half-edges uniformly; resamples on self loops or duplicates).
///
/// # Panics
///
/// Panics if `n·d` is odd or `d ≥ n` (no simple `d`-regular graph
/// exists), or if pairing repeatedly fails (astronomically unlikely for
/// `d ≪ n`).
pub fn random_regular<R: Rng + ?Sized>(n: usize, d: usize, rng: &mut R) -> CsrGraph {
    assert!(
        (n * d).is_multiple_of(2),
        "n·d must be even for a {d}-regular graph on {n} nodes"
    );
    assert!(d < n, "degree {d} must be below n = {n}");
    if d == 0 {
        return CsrGraph::empty(n);
    }
    'attempt: for _ in 0..1000 {
        let mut stubs: Vec<usize> = (0..n).flat_map(|v| std::iter::repeat_n(v, d)).collect();
        // Fisher–Yates pairing.
        let mut edges = Vec::with_capacity(n * d / 2);
        let mut seen = std::collections::HashSet::with_capacity(n * d);
        while stubs.len() > 1 {
            let last = stubs.len() - 1;
            let j = rng.gen_range(0..last);
            let (u, v) = (stubs[last], stubs[j]);
            stubs.truncate(last);
            stubs.swap_remove(j);
            if u == v {
                continue 'attempt;
            }
            let key = if u < v { (u, v) } else { (v, u) };
            if !seen.insert(key) {
                continue 'attempt;
            }
            edges.push(key);
        }
        let mut b = GraphBuilder::new(n);
        for (u, v) in edges {
            b.add_edge_unchecked_duplicate(u, v)
                .expect("regular edge in range");
        }
        return b.build();
    }
    panic!("configuration model failed to produce a simple {d}-regular graph on {n} nodes");
}

/// Erdős–Rényi `G(n, p)`: each of the `n(n−1)/2` possible edges is present
/// independently with probability `p`.
///
/// Uses geometric gap-skipping, so the cost is `O(n + m)` rather than
/// `O(n²)` for sparse graphs.
///
/// # Panics
///
/// Panics if `p` is not in `[0, 1]`.
pub fn gnp<R: Rng + ?Sized>(n: usize, p: f64, rng: &mut R) -> CsrGraph {
    assert!(
        (0.0..=1.0).contains(&p),
        "edge probability {p} outside [0, 1]"
    );
    if p <= 0.0 || n < 2 {
        return CsrGraph::empty(n);
    }
    if p >= 1.0 {
        return complete(n);
    }
    let mut b = GraphBuilder::new(n);
    // Batagelj–Brandes skip sampling over the lower triangle: row v, column
    // w < v, advancing by geometrically distributed gaps.
    let log_q = (1.0 - p).ln();
    let mut v = 1usize;
    let mut w = -1i64;
    while v < n {
        let r: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        w += 1 + (r.ln() / log_q).floor() as i64;
        while w >= v as i64 && v < n {
            w -= v as i64;
            v += 1;
        }
        if v < n {
            b.add_edge_unchecked_duplicate(w as usize, v)
                .expect("gnp edge in range");
        }
    }
    b.build()
}

/// Erdős–Rényi `G(n, m)`: exactly `m` distinct edges chosen uniformly.
///
/// # Panics
///
/// Panics if `m` exceeds the number of possible edges `n(n−1)/2`.
pub fn gnm<R: Rng + ?Sized>(n: usize, m: usize, rng: &mut R) -> CsrGraph {
    let max_m = n.saturating_mul(n.saturating_sub(1)) / 2;
    assert!(
        m <= max_m,
        "requested {m} edges but only {max_m} are possible"
    );
    let mut b = GraphBuilder::new(n);
    let mut chosen = std::collections::HashSet::with_capacity(m * 2);
    while chosen.len() < m {
        let u = rng.gen_range(0..n);
        let v = rng.gen_range(0..n);
        if u == v {
            continue;
        }
        let key = if u < v { (u, v) } else { (v, u) };
        if chosen.insert(key) {
            b.add_edge_unchecked_duplicate(key.0, key.1)
                .expect("gnm edge in range");
        }
    }
    b.build()
}

/// Random geometric / unit-disk graph: `n` points uniform in the unit
/// square, an edge whenever two points are within Euclidean distance
/// `radius`.
///
/// This is the standard connectivity model for the wireless ad-hoc networks
/// that motivate the paper (Section 1). Uses spatial hashing, so the cost is
/// `O(n + m)` in expectation.
///
/// # Panics
///
/// Panics if `radius` is negative or non-finite.
pub fn unit_disk<R: Rng + ?Sized>(n: usize, radius: f64, rng: &mut R) -> CsrGraph {
    assert!(
        radius.is_finite() && radius >= 0.0,
        "radius {radius} must be finite and non-negative"
    );
    let pts: Vec<(f64, f64)> = (0..n)
        .map(|_| (rng.gen::<f64>(), rng.gen::<f64>()))
        .collect();
    unit_disk_from_points(&pts, radius)
}

/// Unit-disk graph over caller-supplied points (exposed so examples can keep
/// the geometry for visualization).
///
/// # Panics
///
/// Panics if `radius` is negative or non-finite.
pub fn unit_disk_from_points(pts: &[(f64, f64)], radius: f64) -> CsrGraph {
    assert!(
        radius.is_finite() && radius >= 0.0,
        "radius {radius} must be finite and non-negative"
    );
    let n = pts.len();
    let mut b = GraphBuilder::new(n);
    if radius == 0.0 || n < 2 {
        return b.build();
    }
    let cell = radius;
    let cells_per_axis = (1.0 / cell).ceil().max(1.0) as i64;
    let key = |x: f64, y: f64| -> (i64, i64) {
        (
            ((x / cell) as i64).min(cells_per_axis - 1),
            ((y / cell) as i64).min(cells_per_axis - 1),
        )
    };
    let mut buckets: std::collections::HashMap<(i64, i64), Vec<usize>> =
        std::collections::HashMap::new();
    for (i, &(x, y)) in pts.iter().enumerate() {
        buckets.entry(key(x, y)).or_default().push(i);
    }
    let r2 = radius * radius;
    for (&(cx, cy), members) in &buckets {
        for dx in -1..=1i64 {
            for dy in -1..=1i64 {
                let Some(other) = buckets.get(&(cx + dx, cy + dy)) else {
                    continue;
                };
                for &i in members {
                    for &j in other {
                        if i < j {
                            let (xi, yi) = pts[i];
                            let (xj, yj) = pts[j];
                            let d2 = (xi - xj).powi(2) + (yi - yj).powi(2);
                            if d2 <= r2 {
                                b.add_edge_unchecked_duplicate(i, j)
                                    .expect("udg edge in range");
                            }
                        }
                    }
                }
            }
        }
    }
    b.build()
}

/// Barabási–Albert preferential attachment: starts from a clique on
/// `m_attach + 1` nodes, then each new node attaches to `m_attach` distinct
/// existing nodes with probability proportional to degree.
///
/// Produces the heavy-tailed degree distributions under which the paper's
/// `Δ^{2/k}` factors are most visible.
///
/// # Panics
///
/// Panics if `m_attach == 0` or `n < m_attach + 1`.
pub fn barabasi_albert<R: Rng + ?Sized>(n: usize, m_attach: usize, rng: &mut R) -> CsrGraph {
    assert!(m_attach >= 1, "attachment count must be positive");
    assert!(
        n > m_attach,
        "need at least m_attach + 1 = {} nodes",
        m_attach + 1
    );
    let mut b = GraphBuilder::new(n);
    // Repeated-endpoint list: sampling an index uniformly is preferential
    // attachment by degree.
    let mut endpoints: Vec<usize> = Vec::with_capacity(2 * n * m_attach);
    for u in 0..=m_attach {
        for v in (u + 1)..=m_attach {
            b.add_edge_unchecked_duplicate(u, v)
                .expect("seed clique edge");
            endpoints.push(u);
            endpoints.push(v);
        }
    }
    // Insertion-ordered (not hashed) so the construction is deterministic
    // in the RNG: the order targets enter `endpoints` affects later draws.
    let mut targets: Vec<usize> = Vec::with_capacity(m_attach);
    for v in (m_attach + 1)..n {
        targets.clear();
        while targets.len() < m_attach {
            let t = endpoints[rng.gen_range(0..endpoints.len())];
            if !targets.contains(&t) {
                targets.push(t);
            }
        }
        for &t in &targets {
            b.add_edge_unchecked_duplicate(t, v)
                .expect("ba edge in range");
            endpoints.push(t);
            endpoints.push(v);
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NodeId;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn path_and_cycle_degrees() {
        let p = path(5);
        assert_eq!(p.num_edges(), 4);
        assert_eq!(p.degree(NodeId::new(0)), 1);
        assert_eq!(p.degree(NodeId::new(2)), 2);
        let c = cycle(5);
        assert_eq!(c.num_edges(), 5);
        assert!(c.node_ids().all(|v| c.degree(v) == 2));
    }

    #[test]
    fn single_node_path() {
        let p = path(1);
        assert_eq!(p.len(), 1);
        assert_eq!(p.num_edges(), 0);
    }

    #[test]
    fn star_shape() {
        let s = star(6);
        assert_eq!(s.degree(NodeId::new(0)), 5);
        for v in 1..6 {
            assert_eq!(s.degree(NodeId::new(v)), 1);
        }
    }

    #[test]
    fn complete_graphs() {
        let k = complete(6);
        assert_eq!(k.num_edges(), 15);
        assert!(k.node_ids().all(|v| k.degree(v) == 5));
        let kb = complete_bipartite(2, 3);
        assert_eq!(kb.num_edges(), 6);
        assert_eq!(kb.degree(NodeId::new(0)), 3);
        assert_eq!(kb.degree(NodeId::new(4)), 2);
    }

    #[test]
    fn grid_and_torus() {
        let g = grid(3, 4);
        assert_eq!(g.len(), 12);
        assert_eq!(g.num_edges(), 3 * 3 + 2 * 4); // horizontal + vertical
        assert_eq!(g.max_degree(), 4);
        let t = torus(3, 4);
        assert!(t.node_ids().all(|v| t.degree(v) == 4));
        assert_eq!(t.num_edges(), 2 * 12);
    }

    #[test]
    fn degenerate_torus_has_no_duplicate_edges() {
        let t = torus(2, 2); // wraps suppressed, reduces to a 4-cycle
        assert_eq!(t.num_edges(), 4);
        let t = torus(1, 5); // single row: a cycle
        assert_eq!(t.num_edges(), 5);
        let t = torus(1, 2); // single edge
        assert_eq!(t.num_edges(), 1);
    }

    #[test]
    fn balanced_tree_sizes() {
        let t = balanced_tree(2, 3);
        assert_eq!(t.len(), 15);
        assert_eq!(t.num_edges(), 14);
        assert_eq!(t.degree(NodeId::new(0)), 2);
        let unary = balanced_tree(1, 4); // a path
        assert_eq!(unary.len(), 5);
        let root_only = balanced_tree(3, 0);
        assert_eq!(root_only.len(), 1);
    }

    #[test]
    fn caterpillar_shape() {
        let c = caterpillar(3, 2);
        assert_eq!(c.len(), 9);
        assert_eq!(c.num_edges(), 2 + 6);
        assert_eq!(c.degree(NodeId::new(1)), 4); // middle spine: 2 spine + 2 legs
    }

    #[test]
    fn petersen_is_three_regular() {
        let p = petersen();
        assert_eq!(p.len(), 10);
        assert_eq!(p.num_edges(), 15);
        assert!(p.node_ids().all(|v| p.degree(v) == 3));
        // Girth 5: no triangles through node 0.
        for u in p.neighbors(NodeId::new(0)) {
            for v in p.neighbors(NodeId::new(0)) {
                if u < v {
                    assert!(!p.has_edge(u, v));
                }
            }
        }
    }

    #[test]
    fn star_of_cliques_structure() {
        let g = star_of_cliques(3, 4);
        assert_eq!(g.len(), 13);
        assert_eq!(g.degree(NodeId::new(0)), 3);
        // Gateways have clique_size-1 + 1 neighbors.
        assert_eq!(g.degree(NodeId::new(1)), 4);
        // Interior clique nodes have clique_size-1 neighbors.
        assert_eq!(g.degree(NodeId::new(2)), 3);
    }

    #[test]
    fn gnp_extremes() {
        let mut rng = SmallRng::seed_from_u64(1);
        assert_eq!(gnp(10, 0.0, &mut rng).num_edges(), 0);
        assert_eq!(gnp(10, 1.0, &mut rng).num_edges(), 45);
        assert_eq!(gnp(0, 0.5, &mut rng).len(), 0);
        assert_eq!(gnp(1, 0.5, &mut rng).len(), 1);
    }

    #[test]
    fn gnp_edge_count_near_expectation() {
        let mut rng = SmallRng::seed_from_u64(42);
        let n = 400;
        let p = 0.1;
        let g = gnp(n, p, &mut rng);
        let expected = (n * (n - 1) / 2) as f64 * p;
        let m = g.num_edges() as f64;
        // 5 sigma tolerance.
        let sigma = (expected * (1.0 - p)).sqrt();
        assert!(
            (m - expected).abs() < 5.0 * sigma,
            "m = {m}, expected {expected} ± {}",
            5.0 * sigma
        );
    }

    #[test]
    fn gnp_deterministic_for_seed() {
        let g1 = gnp(50, 0.2, &mut SmallRng::seed_from_u64(9));
        let g2 = gnp(50, 0.2, &mut SmallRng::seed_from_u64(9));
        assert_eq!(g1, g2);
    }

    #[test]
    fn gnm_exact_edge_count() {
        let mut rng = SmallRng::seed_from_u64(5);
        let g = gnm(30, 100, &mut rng);
        assert_eq!(g.num_edges(), 100);
        let g = gnm(5, 10, &mut rng); // the complete graph
        assert_eq!(g.num_edges(), 10);
    }

    #[test]
    fn unit_disk_radius_extremes() {
        let mut rng = SmallRng::seed_from_u64(3);
        let g = unit_disk(50, 0.0, &mut rng);
        assert_eq!(g.num_edges(), 0);
        let g = unit_disk(50, 2.0, &mut rng); // diameter of unit square < 2
        assert_eq!(g.num_edges(), 50 * 49 / 2);
    }

    #[test]
    fn unit_disk_matches_naive_check() {
        let mut rng = SmallRng::seed_from_u64(11);
        let pts: Vec<(f64, f64)> = (0..80).map(|_| (rng.gen(), rng.gen())).collect();
        let r = 0.17;
        let g = unit_disk_from_points(&pts, r);
        for i in 0..pts.len() {
            for j in (i + 1)..pts.len() {
                let d2 = (pts[i].0 - pts[j].0).powi(2) + (pts[i].1 - pts[j].1).powi(2);
                assert_eq!(
                    g.has_edge(NodeId::new(i), NodeId::new(j)),
                    d2 <= r * r,
                    "pair ({i},{j}) disagreement"
                );
            }
        }
    }

    #[test]
    fn barabasi_albert_edge_count() {
        let mut rng = SmallRng::seed_from_u64(8);
        let n = 200;
        let m = 3;
        let g = barabasi_albert(n, m, &mut rng);
        assert_eq!(g.len(), n);
        // Seed clique + m per subsequent node.
        assert_eq!(g.num_edges(), m * (m + 1) / 2 + (n - m - 1) * m);
        // Hubs exist: max degree well above m.
        assert!(g.max_degree() > 2 * m);
    }

    #[test]
    fn hypercube_structure() {
        let q3 = hypercube(3);
        assert_eq!(q3.len(), 8);
        assert_eq!(q3.num_edges(), 12);
        assert!(q3.node_ids().all(|v| q3.degree(v) == 3));
        // Bipartite: no odd cycles through 0 at distance 1 (no triangles).
        for u in q3.neighbors(NodeId::new(0)) {
            for v in q3.neighbors(NodeId::new(0)) {
                if u < v {
                    assert!(!q3.has_edge(u, v));
                }
            }
        }
        let q0 = hypercube(0);
        assert_eq!(q0.len(), 1);
        assert_eq!(q0.num_edges(), 0);
    }

    #[test]
    fn random_regular_is_regular_and_simple() {
        let mut rng = SmallRng::seed_from_u64(14);
        for (n, d) in [(20usize, 3usize), (30, 4), (16, 2), (10, 0)] {
            let g = random_regular(n, d, &mut rng);
            assert_eq!(g.len(), n);
            assert!(g.node_ids().all(|v| g.degree(v) == d), "not {d}-regular");
        }
    }

    #[test]
    fn random_regular_deterministic() {
        let a = random_regular(24, 3, &mut SmallRng::seed_from_u64(4));
        let b = random_regular(24, 3, &mut SmallRng::seed_from_u64(4));
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "must be even")]
    fn random_regular_rejects_odd_product() {
        random_regular(5, 3, &mut SmallRng::seed_from_u64(0));
    }

    #[test]
    #[should_panic(expected = "outside [0, 1]")]
    fn gnp_rejects_bad_probability() {
        gnp(5, 1.5, &mut SmallRng::seed_from_u64(0));
    }

    #[test]
    #[should_panic(expected = "only")]
    fn gnm_rejects_too_many_edges() {
        gnm(3, 4, &mut SmallRng::seed_from_u64(0));
    }
}
