use std::fmt;

/// A fixed-capacity bit set over dense indices `0..len`.
///
/// Used for dominating-set membership, color vectors, and the branch-and-bound
/// solver's cover bookkeeping. Out-of-range queries return `false`; mutations
/// panic (the distinction mirrors `slice::get` vs indexing).
///
/// # Example
///
/// ```
/// use kw_graph::BitSet;
///
/// let mut s = BitSet::new(10);
/// s.insert(3);
/// s.insert(7);
/// assert!(s.contains(3));
/// assert_eq!(s.count(), 2);
/// assert_eq!(s.iter().collect::<Vec<_>>(), vec![3, 7]);
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct BitSet {
    len: usize,
    words: Vec<u64>,
}

impl BitSet {
    /// Creates an empty set with capacity for indices `0..len`.
    pub fn new(len: usize) -> Self {
        BitSet {
            len,
            words: vec![0; len.div_ceil(64)],
        }
    }

    /// Creates a set containing every index in `0..len`.
    pub fn full(len: usize) -> Self {
        let mut s = BitSet::new(len);
        for w in &mut s.words {
            *w = u64::MAX;
        }
        if !len.is_multiple_of(64) {
            if let Some(last) = s.words.last_mut() {
                *last = (1u64 << (len % 64)) - 1;
            }
        }
        s
    }

    /// Capacity (number of addressable indices).
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the set contains no elements.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Whether `i` is in the set (`false` if `i >= len`).
    #[inline]
    pub fn contains(&self, i: usize) -> bool {
        i < self.len && (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Inserts `i`; returns whether it was newly inserted.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    #[inline]
    pub fn insert(&mut self, i: usize) -> bool {
        assert!(i < self.len, "bitset index {i} out of range {}", self.len);
        let w = &mut self.words[i / 64];
        let mask = 1u64 << (i % 64);
        let fresh = *w & mask == 0;
        *w |= mask;
        fresh
    }

    /// Removes `i`; returns whether it was present.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    #[inline]
    pub fn remove(&mut self, i: usize) -> bool {
        assert!(i < self.len, "bitset index {i} out of range {}", self.len);
        let w = &mut self.words[i / 64];
        let mask = 1u64 << (i % 64);
        let present = *w & mask != 0;
        *w &= !mask;
        present
    }

    /// Number of elements in the set.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Removes all elements.
    pub fn clear(&mut self) {
        for w in &mut self.words {
            *w = 0;
        }
    }

    /// Iterates over the contained indices in ascending order.
    pub fn iter(&self) -> Iter<'_> {
        Iter {
            set: self,
            word_idx: 0,
            current: self.words.first().copied().unwrap_or(0),
        }
    }

    /// In-place union with `other`.
    ///
    /// # Panics
    ///
    /// Panics if capacities differ.
    pub fn union_with(&mut self, other: &BitSet) {
        assert_eq!(self.len, other.len, "bitset capacity mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// Whether `self` and `other` share no elements.
    ///
    /// # Panics
    ///
    /// Panics if capacities differ.
    pub fn is_disjoint(&self, other: &BitSet) -> bool {
        assert_eq!(self.len, other.len, "bitset capacity mismatch");
        self.words.iter().zip(&other.words).all(|(a, b)| a & b == 0)
    }
}

impl fmt::Debug for BitSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

impl FromIterator<usize> for BitSet {
    /// Collects indices into a set sized to the maximum element + 1.
    fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> Self {
        let items: Vec<usize> = iter.into_iter().collect();
        let len = items.iter().max().map_or(0, |&m| m + 1);
        let mut s = BitSet::new(len);
        for i in items {
            s.insert(i);
        }
        s
    }
}

impl Extend<usize> for BitSet {
    fn extend<I: IntoIterator<Item = usize>>(&mut self, iter: I) {
        for i in iter {
            self.insert(i);
        }
    }
}

/// Ascending iterator over set elements, created by [`BitSet::iter`].
#[derive(Clone, Debug)]
pub struct Iter<'a> {
    set: &'a BitSet,
    word_idx: usize,
    current: u64,
}

impl Iterator for Iter<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        loop {
            if self.current != 0 {
                let bit = self.current.trailing_zeros() as usize;
                self.current &= self.current - 1;
                return Some(self.word_idx * 64 + bit);
            }
            self.word_idx += 1;
            if self.word_idx >= self.set.words.len() {
                return None;
            }
            self.current = self.set.words[self.word_idx];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_contains() {
        let mut s = BitSet::new(130);
        assert!(s.insert(0));
        assert!(s.insert(64));
        assert!(s.insert(129));
        assert!(!s.insert(64));
        assert!(s.contains(0) && s.contains(64) && s.contains(129));
        assert!(!s.contains(1));
        assert!(!s.contains(1000)); // out of range -> false, no panic
        assert!(s.remove(64));
        assert!(!s.remove(64));
        assert_eq!(s.count(), 2);
    }

    #[test]
    fn full_and_clear() {
        let mut s = BitSet::full(70);
        assert_eq!(s.count(), 70);
        assert!(s.contains(69));
        assert!(!s.contains(70));
        s.clear();
        assert!(s.is_empty());
    }

    #[test]
    fn full_at_word_boundary() {
        let s = BitSet::full(128);
        assert_eq!(s.count(), 128);
        assert!(s.contains(127));
    }

    #[test]
    fn iter_ascending() {
        let s: BitSet = [5usize, 1, 99, 64].into_iter().collect();
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![1, 5, 64, 99]);
    }

    #[test]
    fn union_and_disjoint() {
        let a: BitSet = [1usize, 2].into_iter().collect();
        let mut b = BitSet::new(3);
        b.insert(0);
        assert!(a.is_disjoint(&b));
        b.union_with(&a);
        assert_eq!(b.count(), 3);
        assert!(!a.is_disjoint(&b));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn insert_out_of_range_panics() {
        BitSet::new(4).insert(4);
    }

    #[test]
    fn debug_nonempty() {
        assert_eq!(format!("{:?}", BitSet::new(0)), "{}");
    }

    #[test]
    fn extend_grows_content_not_capacity() {
        let mut s = BitSet::new(10);
        s.extend([1usize, 3]);
        assert_eq!(s.count(), 2);
    }
}
