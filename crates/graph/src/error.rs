use std::error::Error;
use std::fmt;

/// Errors produced while constructing or parsing graphs.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum GraphError {
    /// An edge endpoint referenced a node index `>= n`.
    NodeOutOfRange {
        /// The offending node index.
        node: usize,
        /// The number of nodes in the graph under construction.
        len: usize,
    },
    /// A self loop `(v, v)` was supplied; the dominating-set formulation uses
    /// closed neighborhoods, so self loops are redundant and rejected.
    SelfLoop {
        /// The node with the loop.
        node: usize,
    },
    /// The same undirected edge was supplied more than once.
    DuplicateEdge {
        /// Smaller endpoint.
        a: usize,
        /// Larger endpoint.
        b: usize,
    },
    /// A textual graph description could not be parsed.
    Parse {
        /// 1-based line number of the offending input line.
        line: usize,
        /// Human-readable reason.
        reason: String,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::NodeOutOfRange { node, len } => {
                write!(
                    f,
                    "node index {node} out of range for graph with {len} nodes"
                )
            }
            GraphError::SelfLoop { node } => write!(f, "self loop at node {node}"),
            GraphError::DuplicateEdge { a, b } => write!(f, "duplicate edge ({a}, {b})"),
            GraphError::Parse { line, reason } => {
                write!(f, "parse error at line {line}: {reason}")
            }
        }
    }
}

impl Error for GraphError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = GraphError::NodeOutOfRange { node: 9, len: 4 };
        assert_eq!(
            e.to_string(),
            "node index 9 out of range for graph with 4 nodes"
        );
        let e = GraphError::SelfLoop { node: 2 };
        assert_eq!(e.to_string(), "self loop at node 2");
        let e = GraphError::DuplicateEdge { a: 1, b: 3 };
        assert_eq!(e.to_string(), "duplicate edge (1, 3)");
        let e = GraphError::Parse {
            line: 7,
            reason: "bad token".into(),
        };
        assert!(e.to_string().contains("line 7"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<GraphError>();
    }
}
