//! Inter-round churn scripts: edge/node add/remove events against a
//! [`CsrGraph`].
//!
//! A churn script is a list of [`ChurnEvent`]s, each stamped with the
//! round *before* which it applies. The graph substrate keeps a fixed
//! node universe (`n` never changes): a leaving node stays addressable
//! but loses every incident edge, and a joining node merely becomes
//! live again (edges return via explicit [`ChurnKind::AddEdge`]
//! events). Liveness itself — who may send and receive — is the
//! simulator's concern (`kw_sim`'s chaos plane); this module only
//! rewrites edges.
//!
//! Out-of-range endpoints, self loops, already-present additions, and
//! already-absent removals are **no-ops**, never errors: a chaos script
//! is a hostile-environment description, and a hostile environment does
//! not validate itself against the topology. Applying the same script
//! twice is therefore idempotent.

use std::collections::BTreeSet;

use crate::CsrGraph;

/// One churn mutation kind.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum ChurnKind {
    /// Insert the undirected edge `{u, v}` (no-op if present, out of
    /// range, or a self loop).
    AddEdge(u32, u32),
    /// Delete the undirected edge `{u, v}` (no-op if absent).
    RemoveEdge(u32, u32),
    /// Node `v` joins (comes up). No edge effect; the simulator flips
    /// the node live.
    Join(u32),
    /// Node `v` leaves (goes down). Every edge incident to `v` is
    /// deleted; the simulator flips the node down.
    Leave(u32),
}

/// One scripted churn mutation, applied *before* round `round`'s
/// compute phase.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct ChurnEvent {
    /// Round before which the event applies (events at round 0 apply
    /// before the protocol's first compute).
    pub round: usize,
    /// What happens.
    pub kind: ChurnKind,
}

/// Applies `events` (in the order given, rounds ignored) to `g` and
/// rebuilds the CSR planes. The caller filters by round; see
/// [`churn_rounds`] for the schedule.
///
/// Node count is preserved. All invalid mutations are no-ops (module
/// docs), so this never fails.
pub fn apply_churn(g: &CsrGraph, events: &[ChurnEvent]) -> CsrGraph {
    let n = g.len();
    let mut edges: BTreeSet<(u32, u32)> = g
        .edges()
        .map(|(u, v)| (u.raw().min(v.raw()), u.raw().max(v.raw())))
        .collect();
    for ev in events {
        match ev.kind {
            ChurnKind::AddEdge(u, v) => {
                if u != v && (u as usize) < n && (v as usize) < n {
                    edges.insert((u.min(v), u.max(v)));
                }
            }
            ChurnKind::RemoveEdge(u, v) => {
                edges.remove(&(u.min(v), u.max(v)));
            }
            ChurnKind::Join(_) => {}
            ChurnKind::Leave(v) => {
                edges.retain(|&(a, b)| a != v && b != v);
            }
        }
    }
    CsrGraph::from_edges(n, edges.iter().map(|&(u, v)| (u as usize, v as usize)))
        .expect("churned edge set is deduplicated, in range, and loop-free")
}

/// The sorted, deduplicated set of rounds at which `events` fire — the
/// schedule a simulator checks each round against.
pub fn churn_rounds(events: &[ChurnEvent]) -> Vec<usize> {
    let mut rounds: Vec<usize> = events.iter().map(|e| e.round).collect();
    rounds.sort_unstable();
    rounds.dedup();
    rounds
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NodeId;

    fn ev(round: usize, kind: ChurnKind) -> ChurnEvent {
        ChurnEvent { round, kind }
    }

    #[test]
    fn add_and_remove_edges() {
        let g = CsrGraph::from_edges(4, [(0, 1), (1, 2)]).unwrap();
        let g2 = apply_churn(
            &g,
            &[
                ev(0, ChurnKind::AddEdge(2, 3)),
                ev(1, ChurnKind::RemoveEdge(0, 1)),
            ],
        );
        assert_eq!(g2.len(), 4);
        assert!(g2.has_edge(NodeId::new(2), NodeId::new(3)));
        assert!(!g2.has_edge(NodeId::new(0), NodeId::new(1)));
        assert!(g2.has_edge(NodeId::new(1), NodeId::new(2)));
    }

    #[test]
    fn leave_strips_incident_edges_and_join_adds_none() {
        let g = CsrGraph::from_edges(4, [(0, 1), (1, 2), (1, 3)]).unwrap();
        let g2 = apply_churn(&g, &[ev(2, ChurnKind::Leave(1))]);
        assert_eq!(g2.num_edges(), 0);
        let g3 = apply_churn(&g2, &[ev(3, ChurnKind::Join(1))]);
        assert_eq!(g3.num_edges(), 0);
        assert_eq!(g3.len(), 4);
    }

    #[test]
    fn invalid_mutations_are_noops() {
        let g = CsrGraph::from_edges(3, [(0, 1)]).unwrap();
        let g2 = apply_churn(
            &g,
            &[
                ev(0, ChurnKind::AddEdge(0, 1)),    // already present
                ev(0, ChurnKind::AddEdge(2, 2)),    // self loop
                ev(0, ChurnKind::AddEdge(0, 99)),   // out of range
                ev(0, ChurnKind::RemoveEdge(1, 2)), // absent
                ev(0, ChurnKind::Leave(50)),        // out of range
            ],
        );
        assert_eq!(g2, g);
    }

    #[test]
    fn applying_twice_is_idempotent() {
        let g = CsrGraph::from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4)]).unwrap();
        let script = [
            ev(1, ChurnKind::RemoveEdge(1, 2)),
            ev(1, ChurnKind::AddEdge(0, 4)),
            ev(2, ChurnKind::Leave(3)),
        ];
        let once = apply_churn(&g, &script);
        let twice = apply_churn(&once, &script);
        assert_eq!(once, twice);
    }

    #[test]
    fn churn_rounds_sorted_dedup() {
        let script = [
            ev(5, ChurnKind::Join(0)),
            ev(1, ChurnKind::Leave(0)),
            ev(5, ChurnKind::AddEdge(0, 1)),
        ];
        assert_eq!(churn_rounds(&script), vec![1, 5]);
    }

    #[test]
    fn edge_order_of_events_matters_last_wins() {
        let g = CsrGraph::empty(2);
        let g2 = apply_churn(
            &g,
            &[
                ev(0, ChurnKind::AddEdge(0, 1)),
                ev(0, ChurnKind::RemoveEdge(0, 1)),
            ],
        );
        assert_eq!(g2.num_edges(), 0);
    }
}
