use std::fmt;

use crate::{GraphBuilder, GraphError, NodeId};

/// An immutable undirected graph in compressed-sparse-row form.
///
/// This is the representation every algorithm in the workspace runs on:
/// neighbor lists are stored sorted in one contiguous arena, so neighborhood
/// scans (the dominant operation of the Kuhn–Wattenhofer algorithms and of
/// the simulator's delivery phase) are cache-friendly and allocation-free.
///
/// Invariants (enforced by [`GraphBuilder`] and the deserialization
/// validator):
///
/// * no self loops, no parallel edges;
/// * adjacency is symmetric (`u ∈ N(v) ⇔ v ∈ N(u)`);
/// * each node's neighbor list is sorted ascending.
///
/// # Example
///
/// ```
/// use kw_graph::{CsrGraph, NodeId};
///
/// // A triangle plus a pendant: 0-1, 1-2, 2-0, 2-3.
/// let g = CsrGraph::from_edges(4, [(0, 1), (1, 2), (2, 0), (2, 3)])?;
/// assert_eq!(g.len(), 4);
/// assert_eq!(g.num_edges(), 4);
/// assert_eq!(g.degree(NodeId::new(2)), 3);
/// assert_eq!(g.max_degree(), 3);
/// assert!(g.has_edge(NodeId::new(0), NodeId::new(2)));
/// assert!(!g.has_edge(NodeId::new(0), NodeId::new(3)));
/// # Ok::<(), kw_graph::GraphError>(())
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct CsrGraph {
    offsets: Vec<u32>,
    targets: Vec<u32>,
}

impl CsrGraph {
    /// Builds a graph from an iterator of undirected edges over `n` nodes.
    ///
    /// Edges may be given in either orientation but each undirected edge at
    /// most once.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError`] on out-of-range endpoints, self loops, or
    /// duplicate edges.
    pub fn from_edges<I>(n: usize, edges: I) -> Result<Self, GraphError>
    where
        I: IntoIterator<Item = (usize, usize)>,
    {
        let mut b = GraphBuilder::new(n);
        for (u, v) in edges {
            b.add_edge(u, v)?;
        }
        Ok(b.build())
    }

    /// Builds a graph with no edges on `n` nodes.
    pub fn empty(n: usize) -> Self {
        GraphBuilder::new(n).build()
    }

    pub(crate) fn from_parts(offsets: Vec<u32>, targets: Vec<u32>) -> Self {
        debug_assert!(!offsets.is_empty());
        CsrGraph { offsets, targets }
    }

    /// Number of nodes `n`.
    #[inline]
    pub fn len(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Whether the graph has zero nodes.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of undirected edges `|E|`.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.targets.len() / 2
    }

    /// Degree `δ_v` of node `v` (number of open neighbors).
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[inline]
    pub fn degree(&self, v: NodeId) -> usize {
        let i = v.index();
        (self.offsets[i + 1] - self.offsets[i]) as usize
    }

    /// Maximum degree `Δ` over all nodes (`0` for the empty graph).
    pub fn max_degree(&self) -> usize {
        (0..self.len())
            .map(|v| self.degree(NodeId::new(v)))
            .max()
            .unwrap_or(0)
    }

    /// Iterates over the open neighborhood of `v` in ascending order.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[inline]
    pub fn neighbors(&self, v: NodeId) -> Neighbors<'_> {
        let i = v.index();
        let (lo, hi) = (self.offsets[i] as usize, self.offsets[i + 1] as usize);
        Neighbors {
            inner: self.targets[lo..hi].iter(),
        }
    }

    /// Iterates over the closed neighborhood `N_v = {v} ∪ N(v)` of `v`,
    /// yielding `v` first, then its neighbors ascending.
    ///
    /// The paper's constraints and degree quantities (`δ̃`, `a(v)`, coverage
    /// sums) are all over closed neighborhoods, so this is the iterator the
    /// algorithms use.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[inline]
    pub fn closed_neighbors(&self, v: NodeId) -> ClosedNeighbors<'_> {
        ClosedNeighbors {
            me: Some(v),
            rest: self.neighbors(v),
        }
    }

    /// Neighbor list of `v` as a slice of raw `u32` indices.
    ///
    /// This is the zero-cost view used by hot loops (simulator delivery,
    /// greedy bucket updates).
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[inline]
    pub fn neighbor_slice(&self, v: NodeId) -> &[u32] {
        let i = v.index();
        &self.targets[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }

    /// Whether the undirected edge `{u, v}` is present (binary search).
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.neighbor_slice(u).binary_search(&v.raw()).is_ok()
    }

    /// Iterates over all node ids `0..n`.
    pub fn node_ids(&self) -> impl ExactSizeIterator<Item = NodeId> + Clone {
        (0..self.len() as u32).map(NodeId::from)
    }

    /// Iterates over each undirected edge once, as `(u, v)` with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.node_ids().flat_map(move |u| {
            self.neighbors(u)
                .filter(move |&v| u < v)
                .map(move |v| (u, v))
        })
    }

    /// The maximum degree within the closed neighborhood of `v`:
    /// `δ⁽¹⁾_v = max_{u ∈ N_v} δ_u` (Section 3 of the paper).
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn delta1(&self, v: NodeId) -> usize {
        self.closed_neighbors(v)
            .map(|u| self.degree(u))
            .max()
            .unwrap_or(0)
    }

    /// The maximum degree among nodes within distance 2 of `v`:
    /// `δ⁽²⁾_v = max_{u ∈ N_v} δ⁽¹⁾_u` (Section 3 of the paper).
    ///
    /// This is the quantity Algorithm 1 computes in two communication rounds;
    /// the centralized helper exists for reference implementations and tests.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn delta2(&self, v: NodeId) -> usize {
        self.closed_neighbors(v)
            .map(|u| self.delta1(u))
            .max()
            .unwrap_or(0)
    }

    /// Sum of all degrees (`2|E|`), i.e. the number of directed arcs.
    #[inline]
    pub fn num_arcs(&self) -> usize {
        self.targets.len()
    }

    /// The raw CSR offset array (`n + 1` entries).
    ///
    /// Node `v`'s directed arcs occupy
    /// `offsets()[v] as usize .. offsets()[v + 1] as usize` of
    /// [`targets`](Self::targets), and arc `offsets()[v] + q` is port `q` of
    /// `v` — the simulator's port numbering *is* CSR arc order, so flat
    /// per-arc state (reverse-arc tables, message arenas) can be indexed by
    /// these offsets directly.
    #[inline]
    pub fn offsets(&self) -> &[u32] {
        &self.offsets
    }

    /// The raw CSR target array (one entry per directed arc).
    ///
    /// `targets()[offsets()[v] as usize + q]` is the id of `v`'s `q`-th
    /// neighbor. Together with [`offsets`](Self::offsets) this is the
    /// zero-copy edge-array view used by the simulator's flat message plane.
    #[inline]
    pub fn targets(&self) -> &[u32] {
        &self.targets
    }

    /// The directed-arc index range of `v`: arc `arc_range(v).start + q`
    /// corresponds to port `q` of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[inline]
    pub fn arc_range(&self, v: NodeId) -> std::ops::Range<usize> {
        let i = v.index();
        self.offsets[i] as usize..self.offsets[i + 1] as usize
    }
}

impl fmt::Debug for CsrGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "CsrGraph {{ n: {}, m: {} }}",
            self.len(),
            self.num_edges()
        )
    }
}

/// Iterator over the open neighborhood of a node.
///
/// Created by [`CsrGraph::neighbors`].
#[derive(Clone, Debug)]
pub struct Neighbors<'a> {
    inner: std::slice::Iter<'a, u32>,
}

impl Iterator for Neighbors<'_> {
    type Item = NodeId;

    #[inline]
    fn next(&mut self) -> Option<NodeId> {
        self.inner.next().map(|&v| NodeId::from(v))
    }

    #[inline]
    fn size_hint(&self) -> (usize, Option<usize>) {
        self.inner.size_hint()
    }
}

impl ExactSizeIterator for Neighbors<'_> {}

/// Iterator over the closed neighborhood of a node (the node itself first).
///
/// Created by [`CsrGraph::closed_neighbors`].
#[derive(Clone, Debug)]
pub struct ClosedNeighbors<'a> {
    me: Option<NodeId>,
    rest: Neighbors<'a>,
}

impl Iterator for ClosedNeighbors<'_> {
    type Item = NodeId;

    #[inline]
    fn next(&mut self) -> Option<NodeId> {
        self.me.take().or_else(|| self.rest.next())
    }

    #[inline]
    fn size_hint(&self) -> (usize, Option<usize>) {
        let (lo, hi) = self.rest.size_hint();
        let extra = usize::from(self.me.is_some());
        (lo + extra, hi.map(|h| h + extra))
    }
}

impl ExactSizeIterator for ClosedNeighbors<'_> {}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle_plus_pendant() -> CsrGraph {
        CsrGraph::from_edges(4, [(0, 1), (1, 2), (2, 0), (2, 3)]).unwrap()
    }

    #[test]
    fn basic_accessors() {
        let g = triangle_plus_pendant();
        assert_eq!(g.len(), 4);
        assert!(!g.is_empty());
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.num_arcs(), 8);
        assert_eq!(g.degree(NodeId::new(0)), 2);
        assert_eq!(g.degree(NodeId::new(2)), 3);
        assert_eq!(g.degree(NodeId::new(3)), 1);
        assert_eq!(g.max_degree(), 3);
    }

    #[test]
    fn neighbors_sorted_and_symmetric() {
        let g = triangle_plus_pendant();
        for u in g.node_ids() {
            let ns: Vec<_> = g.neighbors(u).collect();
            let mut sorted = ns.clone();
            sorted.sort();
            assert_eq!(ns, sorted, "neighbors of {u} not sorted");
            for v in ns {
                assert!(g.has_edge(v, u), "edge ({u},{v}) not symmetric");
            }
        }
    }

    #[test]
    fn closed_neighbors_includes_self_first() {
        let g = triangle_plus_pendant();
        let ns: Vec<_> = g
            .closed_neighbors(NodeId::new(2))
            .map(NodeId::index)
            .collect();
        assert_eq!(ns, vec![2, 0, 1, 3]);
        assert_eq!(g.closed_neighbors(NodeId::new(2)).len(), 4);
    }

    #[test]
    fn edges_listed_once() {
        let g = triangle_plus_pendant();
        let es: Vec<_> = g.edges().map(|(u, v)| (u.index(), v.index())).collect();
        assert_eq!(es, vec![(0, 1), (0, 2), (1, 2), (2, 3)]);
    }

    #[test]
    fn delta1_delta2() {
        // Path 0-1-2-3-4: degrees 1,2,2,2,1.
        let g = CsrGraph::from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4)]).unwrap();
        assert_eq!(g.delta1(NodeId::new(0)), 2); // sees node 1 of degree 2
        assert_eq!(g.delta1(NodeId::new(2)), 2);
        assert_eq!(g.delta2(NodeId::new(0)), 2);
        // Star center dominates delta1 of the leaves.
        let star = crate::generators::star(6);
        assert_eq!(star.delta1(NodeId::new(1)), 5);
        assert_eq!(star.delta2(NodeId::new(1)), 5);
    }

    #[test]
    fn empty_graph() {
        let g = CsrGraph::empty(3);
        assert_eq!(g.len(), 3);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.max_degree(), 0);
        assert_eq!(g.delta1(NodeId::new(0)), 0);
        let g0 = CsrGraph::empty(0);
        assert!(g0.is_empty());
        assert_eq!(g0.max_degree(), 0);
    }

    #[test]
    fn construction_errors() {
        assert_eq!(
            CsrGraph::from_edges(2, [(0, 2)]).unwrap_err(),
            GraphError::NodeOutOfRange { node: 2, len: 2 }
        );
        assert_eq!(
            CsrGraph::from_edges(2, [(1, 1)]).unwrap_err(),
            GraphError::SelfLoop { node: 1 }
        );
        assert_eq!(
            CsrGraph::from_edges(2, [(0, 1), (1, 0)]).unwrap_err(),
            GraphError::DuplicateEdge { a: 0, b: 1 }
        );
    }

    #[test]
    fn edge_array_views_are_consistent() {
        let g = triangle_plus_pendant();
        assert_eq!(g.offsets().len(), g.len() + 1);
        assert_eq!(g.targets().len(), g.num_arcs());
        for v in g.node_ids() {
            let r = g.arc_range(v);
            assert_eq!(r.len(), g.degree(v));
            assert_eq!(&g.targets()[r], g.neighbor_slice(v));
        }
    }

    #[test]
    fn debug_is_nonempty() {
        let g = CsrGraph::empty(0);
        assert!(!format!("{g:?}").is_empty());
    }
}
