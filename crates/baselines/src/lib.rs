//! Baseline dominating set algorithms the paper compares against.
//!
//! * [`greedy`] — the classical sequential greedy algorithm
//!   (refs [4, 12, 16, 21] of the paper): repeatedly pick the node covering
//!   the most uncovered nodes; `ln Δ` approximation, the quality yardstick;
//! * [`jrs`] — the Jia–Rajaraman–Suel LRG algorithm (PODC 2001, the
//!   paper's ref \[11\]): the only prior sub-diameter algorithm with a
//!   non-trivial ratio, `O(log Δ)` expected in `O(log n·log Δ)` rounds;
//! * [`luby_mis`] — a Luby-style randomized maximal independent set; any
//!   MIS is a dominating set, giving a simple `O(log n)`-round baseline;
//! * [`trivial`] — the all-nodes dominating set (the `O(Δ)`-trivial bound
//!   discussed in the paper's related-work section);
//! * [`cds`] — connected dominating set stitching (the routing-backbone
//!   variant discussed in the paper's related work, refs [1, 6, 10, 22]):
//!   turns any dominating set into a connected one at ≤ 3× cost.
//!
//! All distributed baselines run on the same [`kw_sim`] engine as the
//! paper's algorithms, so round and message counts are directly
//! comparable — and every baseline is also exposed through the unified
//! [`kw_core::solver::DsSolver`] trait via [`solvers`], whose
//! [`solvers::registry`] is the full default solver registry
//! (paper pipeline + all baselines).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cds;
pub mod greedy;
pub mod jrs;
pub mod luby_mis;
pub mod solvers;
pub mod trivial;

pub use solvers::{register_baselines, registry};
