//! The sequential greedy dominating set algorithm.
//!
//! While there are uncovered nodes, pick a node covering the most uncovered
//! nodes (ties by lowest id) — the `ln Δ` approximation the paper cites as
//! the best possible for polynomial algorithms [4, 12, 16, 21, 7], and the
//! algorithm whose distributed emulation is the whole point of the paper
//! (Section 6: "The algorithm can be seen as a distributed implementation
//! of the greedy dominating set algorithm").
//!
//! Uses a bucket queue over spans with lazy revalidation, so the total cost
//! is `O(n + m + Δ²)`-ish rather than `O(n²)`.

use kw_graph::{BitSet, CsrGraph, DominatingSet, NodeId, VertexWeights};

/// Computes a greedy dominating set.
///
/// # Example
///
/// ```
/// use kw_graph::generators;
/// use kw_baselines::greedy::greedy_mds;
///
/// let g = generators::star(9);
/// let ds = greedy_mds(&g);
/// assert!(ds.is_dominating(&g));
/// assert_eq!(ds.len(), 1); // picks the center
/// ```
pub fn greedy_mds(g: &CsrGraph) -> DominatingSet {
    let n = g.len();
    let mut ds = DominatingSet::new(g);
    if n == 0 {
        return ds;
    }
    let mut covered = BitSet::new(n);
    let mut remaining = n;
    // span[v] = upper bound on fresh coverage by v; buckets indexed by span.
    let mut span: Vec<usize> = g.node_ids().map(|v| g.degree(v) + 1).collect();
    let max_span = span.iter().copied().max().unwrap_or(1);
    let mut buckets: Vec<Vec<u32>> = vec![Vec::new(); max_span + 1];
    for v in 0..n {
        buckets[span[v]].push(v as u32);
    }
    let mut cursor = max_span;
    while remaining > 0 {
        // Find the true best via lazy bucket revalidation.
        let v = loop {
            while buckets[cursor].is_empty() {
                cursor -= 1;
            }
            let cand = *buckets[cursor].last().expect("bucket non-empty") as usize;
            if ds.contains(NodeId::new(cand)) {
                buckets[cursor].pop();
                continue;
            }
            let true_span = g
                .closed_neighbors(NodeId::new(cand))
                .filter(|u| !covered.contains(u.index()))
                .count();
            if true_span == span[cand] {
                buckets[cursor].pop();
                break cand;
            }
            // Stale: move to the correct (lower) bucket.
            buckets[cursor].pop();
            span[cand] = true_span;
            buckets[true_span].push(cand as u32);
        };
        debug_assert!(span[v] > 0, "picked a useless node");
        ds.add(NodeId::new(v));
        for u in g.closed_neighbors(NodeId::new(v)) {
            if covered.insert(u.index()) {
                remaining -= 1;
            }
        }
    }
    ds
}

/// Weighted greedy: picks the node maximizing fresh-coverage per unit cost
/// (the classical `H_Δ`-approximate weighted set cover heuristic).
///
/// # Panics
///
/// Panics if `weights` was built for a different node count.
pub fn greedy_weighted_mds(g: &CsrGraph, weights: &VertexWeights) -> DominatingSet {
    assert_eq!(weights.len(), g.len(), "weights length mismatch");
    let n = g.len();
    let mut ds = DominatingSet::new(g);
    let mut covered = BitSet::new(n);
    let mut remaining = n;
    while remaining > 0 {
        let mut best: Option<(f64, usize, usize)> = None; // (ratio, span, v)
        for v in g.node_ids() {
            if ds.contains(v) {
                continue;
            }
            let span = g
                .closed_neighbors(v)
                .filter(|u| !covered.contains(u.index()))
                .count();
            if span == 0 {
                continue;
            }
            let ratio = span as f64 / weights.get(v);
            let better = match &best {
                None => true,
                Some((r, _, _)) => ratio > *r,
            };
            if better {
                best = Some((ratio, span, v.index()));
            }
        }
        let (_, _, v) = best.expect("uncovered node covers itself");
        ds.add(NodeId::new(v));
        for u in g.closed_neighbors(NodeId::new(v)) {
            if covered.insert(u.index()) {
                remaining -= 1;
            }
        }
    }
    ds
}

#[cfg(test)]
mod tests {
    use super::*;
    use kw_graph::generators;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn dominates_on_families() {
        let mut rng = SmallRng::seed_from_u64(1);
        for g in [
            generators::star(20),
            generators::cycle(17),
            generators::grid(6, 7),
            generators::petersen(),
            generators::gnp(120, 0.05, &mut rng),
            generators::barabasi_albert(120, 2, &mut rng),
            CsrGraph::empty(5),
            CsrGraph::empty(0),
        ] {
            let ds = greedy_mds(&g);
            assert!(ds.is_dominating(&g), "greedy failed on {g:?}");
        }
    }

    #[test]
    fn optimal_on_easy_cases() {
        assert_eq!(greedy_mds(&generators::star(30)).len(), 1);
        assert_eq!(greedy_mds(&generators::complete(12)).len(), 1);
        assert_eq!(greedy_mds(&generators::star_of_cliques(4, 6)).len(), 4);
    }

    #[test]
    fn matches_ln_delta_bound_against_exact() {
        let mut rng = SmallRng::seed_from_u64(2);
        for _ in 0..10 {
            let g = generators::gnp(40, 0.1, &mut rng);
            let ds = greedy_mds(&g);
            let opt = kw_lp::exact::solve_mds(&g, &kw_lp::exact::ExactOptions::default())
                .unwrap()
                .len();
            let bound = ((g.max_degree() as f64 + 1.0).ln() + 1.0) * opt as f64;
            assert!(
                ds.len() as f64 <= bound + 1e-9,
                "greedy {} vs bound {bound} (opt {opt})",
                ds.len()
            );
        }
    }

    #[test]
    fn weighted_prefers_cheap_cover() {
        // Star where the center is absurdly expensive: weighted greedy
        // still picks it only if cost-effective; with cost 100 vs 9 leaves
        // at cost 1, picking all leaves costs 9 < 100.
        let g = generators::star(10);
        let mut costs = vec![1.0; 10];
        costs[0] = 100.0;
        let w = VertexWeights::from_values(costs).unwrap();
        let ds = greedy_weighted_mds(&g, &w);
        assert!(ds.is_dominating(&g));
        assert!(ds.cost(&w) <= 10.0, "cost {}", ds.cost(&w));
    }

    #[test]
    fn weighted_with_uniform_weights_matches_unweighted_size() {
        let mut rng = SmallRng::seed_from_u64(3);
        let g = generators::gnp(60, 0.08, &mut rng);
        let w = VertexWeights::uniform(&g);
        let a = greedy_mds(&g).len();
        let b = greedy_weighted_mds(&g, &w).len();
        // Tie-breaking may differ; sizes should be very close.
        assert!((a as i64 - b as i64).abs() <= 2, "{a} vs {b}");
    }

    mod proptests {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(40))]
            #[test]
            fn greedy_always_dominates(n in 0usize..60, p in 0.0f64..1.0, seed in any::<u64>()) {
                let mut rng = SmallRng::seed_from_u64(seed);
                let g = generators::gnp(n, p, &mut rng);
                prop_assert!(greedy_mds(&g).is_dominating(&g));
            }

            #[test]
            fn weighted_greedy_always_dominates(
                n in 0usize..40,
                p in 0.0f64..1.0,
                seed in any::<u64>(),
            ) {
                let mut rng = SmallRng::seed_from_u64(seed);
                let g = generators::gnp(n, p, &mut rng);
                let w = VertexWeights::from_values(
                    (0..n).map(|_| 1.0 + rand::Rng::gen::<f64>(&mut rng) * 5.0).collect(),
                ).unwrap();
                prop_assert!(greedy_weighted_mds(&g, &w).is_dominating(&g));
            }
        }
    }
}
