//! [`DsSolver`] implementations for the five baselines, and the full
//! default registry.
//!
//! Registry names added by [`register_baselines`]:
//!
//! | name | algorithm | parameters |
//! |------|-----------|------------|
//! | `greedy` | sequential greedy (`ln Δ` approximation) | none |
//! | `jrs` | Jia–Rajaraman–Suel LRG | none |
//! | `luby-mis` | Luby-style MIS (any MIS dominates) | none |
//! | `trivial` | all nodes (`Δ+1` approximation) | none |
//! | `connected(inner)` | CDS stitch around any other solver | inner spec |
//!
//! [`registry`] returns these plus the paper's solvers from
//! `kw_core::solver` — the registry every experiment driver starts from.

use kw_core::solver::{
    DsSolver, ReportBuilder, SolveContext, SolveError, SolveReport, SolverRegistry,
};
use kw_graph::CsrGraph;
use kw_sim::RunMetrics;

use crate::{cds, greedy, jrs, luby_mis, trivial};

/// The full registry: the paper's solvers (`kw`, `alg2`, `composite`)
/// plus all five baselines.
pub fn registry() -> SolverRegistry {
    let mut registry = SolverRegistry::with_core_solvers();
    register_baselines(&mut registry);
    registry
}

/// Registers the baseline solvers into an existing registry.
pub fn register_baselines(registry: &mut SolverRegistry) {
    registry.register("greedy", |spec, _| {
        spec.expect_params(&[])?;
        Ok(Box::new(GreedySolver))
    });
    registry.register("jrs", |spec, _| {
        spec.expect_params(&[])?;
        Ok(Box::new(JrsSolver))
    });
    registry.register("luby-mis", |spec, _| {
        spec.expect_params(&[])?;
        Ok(Box::new(LubyMisSolver))
    });
    registry.register("trivial", |spec, _| {
        spec.expect_params(&[])?;
        Ok(Box::new(TrivialSolver))
    });
    registry.register("connected", |spec, registry| {
        spec.expect_params(&[])?;
        let inner = registry.build_spec(spec.require_inner()?)?;
        Ok(Box::new(ConnectedSolver::new(inner)))
    });
}

/// The sequential greedy algorithm (`ln Δ` approximation) as a solver.
///
/// Centralized: its stage metrics are all-zero and `ctx.seed` is ignored.
#[derive(Clone, Copy, Debug, Default)]
pub struct GreedySolver;

impl DsSolver for GreedySolver {
    fn spec(&self) -> String {
        "greedy".to_string()
    }

    fn solve(&self, g: &CsrGraph, ctx: &SolveContext) -> Result<SolveReport, SolveError> {
        let set = greedy::greedy_mds(g);
        Ok(ReportBuilder::new(self.spec(), set)
            .stage("greedy", RunMetrics::default())
            .finish(g, ctx))
    }

    fn randomized(&self) -> bool {
        false
    }
}

/// The Jia–Rajaraman–Suel LRG distributed baseline as a solver.
#[derive(Clone, Copy, Debug, Default)]
pub struct JrsSolver;

impl DsSolver for JrsSolver {
    fn spec(&self) -> String {
        "jrs".to_string()
    }

    fn solve(&self, g: &CsrGraph, ctx: &SolveContext) -> Result<SolveReport, SolveError> {
        let run = jrs::run_jrs(g, ctx.seed)?;
        Ok(ReportBuilder::new(self.spec(), run.set)
            .stage("lrg", run.metrics)
            .finish(g, ctx))
    }
}

/// The Luby-style MIS distributed baseline as a solver.
#[derive(Clone, Copy, Debug, Default)]
pub struct LubyMisSolver;

impl DsSolver for LubyMisSolver {
    fn spec(&self) -> String {
        "luby-mis".to_string()
    }

    fn solve(&self, g: &CsrGraph, ctx: &SolveContext) -> Result<SolveReport, SolveError> {
        let run = luby_mis::run_luby_mis(g, ctx.seed)?;
        Ok(ReportBuilder::new(self.spec(), run.set)
            .stage("mis", run.metrics)
            .finish(g, ctx))
    }
}

/// The all-nodes baseline as a solver.
#[derive(Clone, Copy, Debug, Default)]
pub struct TrivialSolver;

impl DsSolver for TrivialSolver {
    fn spec(&self) -> String {
        "trivial".to_string()
    }

    fn solve(&self, g: &CsrGraph, ctx: &SolveContext) -> Result<SolveReport, SolveError> {
        Ok(ReportBuilder::new(self.spec(), trivial::all_nodes(g))
            .stage("trivial", RunMetrics::default())
            .finish(g, ctx))
    }

    fn randomized(&self) -> bool {
        false
    }
}

/// The CDS combinator: runs any inner solver, then stitches its output
/// into a connected dominating set (≤ 3× cost per component).
///
/// The stitch is a centralized post-pass, so it adds a zero-metrics
/// stage; rounds and messages come from the inner solver. If the inner
/// output fails to dominate (possible under message loss), the stitch is
/// skipped and the inner set is reported as-is — the certificate records
/// the failure.
pub struct ConnectedSolver {
    inner: Box<dyn DsSolver>,
}

impl ConnectedSolver {
    /// Wraps `inner` with the CDS stitch.
    pub fn new(inner: Box<dyn DsSolver>) -> Self {
        ConnectedSolver { inner }
    }
}

impl DsSolver for ConnectedSolver {
    fn spec(&self) -> String {
        format!("connected({})", self.inner.spec())
    }

    fn solve(&self, g: &CsrGraph, ctx: &SolveContext) -> Result<SolveReport, SolveError> {
        // The stitch needs a dominating input; always verify, whatever the
        // caller's certificate preference.
        let inner_ctx = SolveContext {
            check_certificates: true,
            ..ctx.clone()
        };
        let inner_report = self.inner.solve(g, &inner_ctx)?;
        let dominates = inner_report
            .certificate
            .as_ref()
            .is_some_and(|c| c.dominates);
        let set = if dominates {
            cds::connect(g, &inner_report.dominating_set)
        } else {
            inner_report.dominating_set
        };
        let mut builder = ReportBuilder::new(self.spec(), set);
        if let Some(x) = inner_report.fractional {
            builder = builder.fractional(x);
        }
        for stage in inner_report.stages {
            builder = builder.stage(stage.stage, stage.metrics);
        }
        Ok(builder
            .stage("stitch", RunMetrics::default())
            .finish(g, ctx))
    }

    fn randomized(&self) -> bool {
        self.inner.randomized()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kw_graph::generators;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn all_names_registered() {
        let registry = registry();
        let names: Vec<&str> = registry.names().collect();
        for name in [
            "kw",
            "alg2",
            "composite",
            "greedy",
            "jrs",
            "luby-mis",
            "trivial",
            "connected",
        ] {
            assert!(names.contains(&name), "{name} missing from {names:?}");
        }
    }

    #[test]
    fn every_baseline_dominates_via_trait() {
        let registry = registry();
        let mut rng = SmallRng::seed_from_u64(9);
        let g = generators::gnp(60, 0.08, &mut rng);
        for spec in ["greedy", "jrs", "luby-mis", "trivial"] {
            let report = registry
                .build(spec)
                .unwrap()
                .solve(&g, &SolveContext::seeded(3))
                .unwrap();
            assert!(report.certificate.unwrap().dominates, "{spec}");
            assert_eq!(report.solver, spec);
        }
    }

    #[test]
    fn deterministic_solvers_ignore_seed() {
        let g = generators::grid(5, 6);
        for spec in ["greedy", "trivial"] {
            let solver = registry().build(spec).unwrap();
            assert!(!solver.randomized());
            let a = solver.solve(&g, &SolveContext::seeded(1)).unwrap();
            let b = solver.solve(&g, &SolveContext::seeded(2)).unwrap();
            assert_eq!(
                a.dominating_set.to_bool_vec(&g),
                b.dominating_set.to_bool_vec(&g),
                "{spec}"
            );
        }
    }

    #[test]
    fn distributed_baselines_report_rounds_and_messages() {
        let g = generators::grid(6, 6);
        for spec in ["jrs", "luby-mis"] {
            let report = registry()
                .build(spec)
                .unwrap()
                .solve(&g, &SolveContext::seeded(5))
                .unwrap();
            assert!(report.rounds() > 0, "{spec}");
            assert!(report.messages() > 0, "{spec}");
        }
        for spec in ["greedy", "trivial"] {
            let report = registry()
                .build(spec)
                .unwrap()
                .solve(&g, &SolveContext::seeded(5))
                .unwrap();
            assert_eq!(report.rounds(), 0, "{spec} is centralized");
        }
    }

    #[test]
    fn connected_combinator_stitches_any_inner() {
        let g = generators::grid(7, 7);
        for spec in [
            "connected(greedy)",
            "connected(kw:k=2)",
            "connected(trivial)",
        ] {
            let solver = registry().build(spec).unwrap();
            assert_eq!(solver.spec(), spec);
            let report = solver.solve(&g, &SolveContext::seeded(11)).unwrap();
            assert!(report.certificate.unwrap().dominates, "{spec}");
            assert!(
                cds::is_connected_within(&g, &report.dominating_set),
                "{spec} output not connected"
            );
        }
    }

    #[test]
    fn connected_preserves_inner_metrics_and_bounds_cost() {
        let g = generators::grid(6, 8);
        let registry = registry();
        let plain = registry
            .build("kw:k=2")
            .unwrap()
            .solve(&g, &SolveContext::seeded(4))
            .unwrap();
        let wrapped = registry
            .build("connected(kw:k=2)")
            .unwrap()
            .solve(&g, &SolveContext::seeded(4))
            .unwrap();
        assert_eq!(wrapped.rounds(), plain.rounds());
        assert_eq!(wrapped.messages(), plain.messages());
        assert!(wrapped.size() <= 3 * plain.size());
        assert!(wrapped.size() >= plain.size());
        assert_eq!(wrapped.stages.len(), plain.stages.len() + 1);
    }

    #[test]
    fn connected_requires_inner_spec() {
        assert!(registry().build("connected").is_err());
        assert!(registry().build("connected(nope)").is_err());
    }

    #[test]
    fn baselines_reject_parameters() {
        for spec in ["greedy:k=2", "trivial:x=1", "jrs:seed=3", "luby-mis:k=1"] {
            assert!(registry().build(spec).is_err(), "{spec} should be rejected");
        }
    }
}
