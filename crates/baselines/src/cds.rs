//! Connected dominating set construction on top of a dominating set.
//!
//! The paper's introduction motivates dominating sets as routing
//! backbones, and its related-work section discusses the *connected*
//! variant (refs [1, 6, 10, 22]): for a backbone, cluster heads must be
//! able to route among themselves without leaving the set. Any dominating
//! set can be stitched into a connected one at a constant-factor cost:
//! in a connected graph, contracting each dominator's cluster leaves
//! dominators pairwise within 3 hops, so connecting them through at most
//! 2 intermediate nodes per link costs ≤ 2 extra nodes per tree edge
//! (`|CDS| ≤ 3|DS|` on connected graphs).
//!
//! [`connect`] implements that stitch with a BFS over the "dominator
//! adjacency" structure; on disconnected graphs each component is stitched
//! independently.

use std::collections::VecDeque;

use kw_graph::{CsrGraph, DominatingSet, NodeId};

/// Whether `set` is connected *within* each connected component of `g`
/// (i.e. the subgraph induced by `set` has exactly one piece per
/// `set`-containing component of `g`).
pub fn is_connected_within(g: &CsrGraph, set: &DominatingSet) -> bool {
    let n = g.len();
    let mut seen = vec![false; n];
    // For each graph component, BFS inside the induced subgraph from the
    // first member; all members of that component must be reached.
    let comp = kw_graph::props::connected_components(g);
    let mut handled: Vec<bool> = vec![false; n];
    for start in g.node_ids() {
        if !set.contains(start) || handled[start.index()] {
            continue;
        }
        // BFS within the induced subgraph.
        let mut queue = VecDeque::from([start]);
        seen[start.index()] = true;
        while let Some(v) = queue.pop_front() {
            handled[v.index()] = true;
            for u in g.neighbors(v) {
                if set.contains(u) && !seen[u.index()] {
                    seen[u.index()] = true;
                    queue.push_back(u);
                }
            }
        }
        // Any unvisited member in the same graph component breaks
        // connectivity.
        for v in g.node_ids() {
            if set.contains(v) && comp[v.index()] == comp[start.index()] && !seen[v.index()] {
                return false;
            }
        }
    }
    true
}

/// Extends `ds` into a connected dominating set (per graph component).
///
/// Grows a BFS forest over the dominators: starting from one dominator per
/// component, repeatedly absorbs the nearest unconnected dominator
/// together with the ≤ 2 connector nodes on a shortest path (dominators
/// are pairwise within 3 hops through their clusters, so the growth step
/// always finds one).
///
/// The result contains `ds`, is dominating whenever `ds` is, and its size
/// is at most `3·|ds|` per component.
///
/// # Panics
///
/// Panics if `ds` is not a dominating set of `g` (the 3-hop growth
/// argument needs domination).
///
/// # Example
///
/// ```
/// use kw_graph::{generators, DominatingSet};
/// use kw_baselines::{cds, greedy};
///
/// let g = generators::grid(6, 6);
/// let ds = greedy::greedy_mds(&g);
/// let backbone = cds::connect(&g, &ds);
/// assert!(backbone.is_dominating(&g));
/// assert!(cds::is_connected_within(&g, &backbone));
/// assert!(backbone.len() <= 3 * ds.len());
/// ```
pub fn connect(g: &CsrGraph, ds: &DominatingSet) -> DominatingSet {
    assert!(ds.is_dominating(g), "connect requires a dominating set");
    let n = g.len();
    let mut out = ds.clone();
    if n == 0 {
        return out;
    }
    let comp = kw_graph::props::connected_components(g);
    // Process each component independently.
    let num_comp = comp.iter().copied().max().map_or(0, |m| m + 1);
    for c in 0..num_comp {
        let Some(root) = g
            .node_ids()
            .find(|v| comp[v.index()] == c && out.contains(*v))
        else {
            continue; // component without members (empty component impossible: ds dominates)
        };
        // `connected[v]`: dominator already attached to the backbone.
        let mut connected = vec![false; n];
        connected[root.index()] = true;
        loop {
            // Multi-source BFS from all connected backbone nodes, looking
            // for the nearest unconnected dominator (≤ 3 hops away).
            let mut parent: Vec<Option<NodeId>> = vec![None; n];
            let mut dist = vec![u32::MAX; n];
            let mut queue = VecDeque::new();
            for v in g.node_ids() {
                if comp[v.index()] == c && out.contains(v) && connected[v.index()] {
                    dist[v.index()] = 0;
                    queue.push_back(v);
                }
            }
            let mut found: Option<NodeId> = None;
            'bfs: while let Some(v) = queue.pop_front() {
                for u in g.neighbors(v) {
                    if dist[u.index()] != u32::MAX {
                        continue;
                    }
                    dist[u.index()] = dist[v.index()] + 1;
                    parent[u.index()] = Some(v);
                    if out.contains(u) && !connected[u.index()] {
                        found = Some(u);
                        break 'bfs;
                    }
                    queue.push_back(u);
                }
            }
            let Some(target) = found else { break };
            // Absorb the path (≤ 2 connectors) and the target.
            connected[target.index()] = true;
            let mut cur = parent[target.index()];
            while let Some(v) = cur {
                if dist[v.index()] == 0 {
                    break;
                }
                out.add(v);
                connected[v.index()] = true;
                cur = parent[v.index()];
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::greedy::greedy_mds;
    use kw_graph::generators;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn check(g: &CsrGraph) {
        let ds = greedy_mds(g);
        let cds = connect(g, &ds);
        assert!(cds.is_dominating(g), "stitched set lost domination");
        assert!(is_connected_within(g, &cds), "stitched set not connected");
        for v in ds.iter() {
            assert!(cds.contains(v), "stitch must be a superset");
        }
        // Component-wise 3x bound implies the global one.
        assert!(
            cds.len() <= 3 * ds.len().max(1),
            "{} > 3·{}",
            cds.len(),
            ds.len()
        );
    }

    #[test]
    fn stitches_fixed_families() {
        check(&generators::path(17));
        check(&generators::cycle(20));
        check(&generators::grid(6, 7));
        check(&generators::star(12));
        check(&generators::petersen());
        check(&generators::star_of_cliques(4, 6));
        check(&generators::balanced_tree(3, 4));
    }

    #[test]
    fn handles_disconnected_graphs() {
        // Two separate paths.
        let g = CsrGraph::from_edges(10, [(0, 1), (1, 2), (2, 3), (5, 6), (6, 7), (7, 8)]).unwrap();
        check(&g);
        // Isolated nodes only.
        check(&CsrGraph::empty(5));
        check(&CsrGraph::empty(0));
    }

    #[test]
    fn already_connected_sets_unchanged() {
        let g = generators::star(9);
        let ds = DominatingSet::from_indices(&g, [0]);
        let cds = connect(&g, &ds);
        assert_eq!(cds.len(), 1);
    }

    #[test]
    fn pipeline_output_stitches() {
        use kw_core::{Pipeline, PipelineConfig};
        let mut rng = SmallRng::seed_from_u64(7);
        let g = generators::unit_disk(120, 0.18, &mut rng);
        let out = Pipeline::new(PipelineConfig::default()).run(&g, 3).unwrap();
        let cds = connect(&g, &out.dominating_set);
        assert!(cds.is_dominating(&g));
        assert!(is_connected_within(&g, &cds));
    }

    #[test]
    #[should_panic(expected = "requires a dominating set")]
    fn rejects_non_dominating_input() {
        let g = generators::path(5);
        let ds = DominatingSet::from_indices(&g, [0]);
        let _ = connect(&g, &ds);
    }

    mod proptests {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(32))]
            #[test]
            fn stitching_random_graphs(n in 1usize..40, p in 0.0f64..0.6, seed in any::<u64>()) {
                let mut rng = SmallRng::seed_from_u64(seed);
                let g = generators::gnp(n, p, &mut rng);
                let ds = greedy_mds(&g);
                let cds = connect(&g, &ds);
                prop_assert!(cds.is_dominating(&g));
                prop_assert!(is_connected_within(&g, &cds));
                prop_assert!(cds.len() <= 3 * ds.len().max(1));
            }
        }
    }
}
