//! The trivial baseline: take every node.
//!
//! The paper's related-work section notes that an `O(Δ)` approximation is
//! trivial "since the set V of all nodes of G forms a dominating set of
//! size at most (Δ+1) times the size of an optimal one". This module makes
//! the envelope explicit so experiment tables can show where each
//! algorithm lands between trivial and optimal.

use kw_graph::{CsrGraph, DominatingSet};

/// The all-nodes dominating set.
///
/// # Example
///
/// ```
/// use kw_graph::generators;
/// use kw_baselines::trivial::all_nodes;
///
/// let g = generators::cycle(5);
/// let ds = all_nodes(&g);
/// assert!(ds.is_dominating(&g));
/// assert_eq!(ds.len(), 5);
/// ```
pub fn all_nodes(g: &CsrGraph) -> DominatingSet {
    DominatingSet::all(g)
}

/// The trivial approximation guarantee `|V| ≤ (Δ+1)·|DS_OPT|` as a ratio
/// bound (`Δ+1`), for table annotations.
pub fn trivial_ratio_bound(g: &CsrGraph) -> f64 {
    g.max_degree() as f64 + 1.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use kw_graph::generators;

    #[test]
    fn all_nodes_always_dominates() {
        for g in [
            generators::path(6),
            generators::petersen(),
            CsrGraph::empty(4),
        ] {
            assert!(all_nodes(&g).is_dominating(&g));
        }
        assert!(all_nodes(&CsrGraph::empty(0)).is_dominating(&CsrGraph::empty(0)));
    }

    #[test]
    fn ratio_bound_holds_against_packing() {
        // n/(Δ+1) ≤ OPT, so n ≤ (Δ+1)·OPT: check via the packing bound.
        let g = generators::grid(5, 5);
        let lower = kw_lp::bounds::packing_lower_bound(&g);
        assert!(g.len() as f64 <= trivial_ratio_bound(&g) * lower + 1e-9);
    }
}
