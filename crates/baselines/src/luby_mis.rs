//! Luby-style randomized maximal independent set.
//!
//! A maximal independent set is automatically a dominating set (an
//! undominated node could be added, contradicting maximality), so MIS
//! gives a simple randomized `O(log n)`-round baseline for the end-to-end
//! comparison tables. The variant implemented is the classic random
//! priority scheme: each phase, every undecided node draws a random 64-bit
//! ticket; a node joins the MIS when its `(ticket, id)` pair is strictly
//! smallest among its undecided closed neighbors; neighbors of joiners
//! drop out. Two rounds per phase, `O(log n)` phases with high
//! probability.

use rand::Rng;

use kw_graph::{CsrGraph, DominatingSet, NodeId};
use kw_sim::wire::{self, BitReader, BitWriter, WireEncode};
use kw_sim::{Ctx, Engine, EngineConfig, Protocol, RunMetrics, Status};

/// Messages of the MIS protocol.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MisMsg {
    /// A lottery ticket `(value, id)` from an undecided node.
    Ticket {
        /// Random 64-bit draw for this phase.
        value: u64,
        /// The sender's id (tie-break).
        id: u32,
    },
    /// The sender just joined the MIS.
    Joined,
}

impl WireEncode for MisMsg {
    fn encode(&self, w: &mut BitWriter) {
        match self {
            MisMsg::Ticket { value, id } => {
                w.write_bit(false);
                w.write_bits(*value, 64);
                w.write_gamma(u64::from(*id));
            }
            MisMsg::Joined => w.write_bit(true),
        }
    }

    fn decode(r: &mut BitReader<'_>) -> Option<Self> {
        Some(if r.read_bit()? {
            MisMsg::Joined
        } else {
            MisMsg::Ticket {
                value: r.read_bits(64)?,
                id: u32::try_from(r.read_gamma()?).ok()?,
            }
        })
    }

    fn encoded_bits(&self) -> usize {
        match self {
            MisMsg::Ticket { id, .. } => 1 + 64 + wire::gamma_len(u64::from(*id)),
            MisMsg::Joined => 1,
        }
    }
}

/// The Luby MIS node program.
///
/// Phase layout (2 rounds): even rounds ingest `Joined` announcements and
/// broadcast a fresh ticket; odd rounds compare tickets, with the local
/// minimum joining and announcing.
#[derive(Clone, Debug)]
pub struct LubyProtocol {
    id: u32,
    in_mis: bool,
    ticket: u64,
}

impl LubyProtocol {
    /// Creates the program for one node.
    pub fn new(id: NodeId) -> Self {
        LubyProtocol {
            id: id.raw(),
            in_mis: false,
            ticket: 0,
        }
    }
}

/// Broadcast-only (ticket or join announcements): rides the engine's
/// solo-broadcast fast path end to end.
impl Protocol for LubyProtocol {
    type Msg = MisMsg;
    type Output = bool;

    fn on_round(&mut self, ctx: &mut Ctx<'_, MisMsg>) -> Status {
        if ctx.round() % 2 == 0 {
            // A neighbor joined last phase → this node is dominated; out.
            if ctx.inbox().iter().any(|(_, m)| matches!(m, MisMsg::Joined)) {
                return Status::Halted;
            }
            self.ticket = ctx.rng().gen();
            ctx.broadcast(MisMsg::Ticket {
                value: self.ticket,
                id: self.id,
            });
            Status::Running
        } else {
            let smallest = ctx.inbox().iter().all(|(_, m)| match m {
                MisMsg::Ticket { value, id } => (self.ticket, self.id) < (*value, *id),
                MisMsg::Joined => true,
            });
            if smallest {
                self.in_mis = true;
                ctx.broadcast(MisMsg::Joined);
                Status::Halted
            } else {
                Status::Running
            }
        }
    }

    fn finish(self) -> bool {
        self.in_mis
    }
}

/// Result of a distributed MIS run.
#[derive(Clone, Debug)]
pub struct MisRun {
    /// The computed maximal independent set (also a dominating set).
    pub set: DominatingSet,
    /// Communication metrics.
    pub metrics: RunMetrics,
}

/// Runs the Luby MIS protocol on `g` with randomness from `seed`.
///
/// # Errors
///
/// Propagates [`kw_sim::SimError`]; the round budget is far beyond the
/// with-high-probability bound, so hitting it indicates a bug.
///
/// # Example
///
/// ```
/// use kw_graph::generators;
/// use kw_baselines::luby_mis::run_luby_mis;
///
/// let g = generators::petersen();
/// let run = run_luby_mis(&g, 7)?;
/// assert!(run.set.is_dominating(&g));
/// # Ok::<(), kw_sim::SimError>(())
/// ```
pub fn run_luby_mis(g: &CsrGraph, seed: u64) -> Result<MisRun, kw_sim::SimError> {
    let budget = 128 * ((g.len().max(2)).ilog2() as usize + 1);
    let config = EngineConfig {
        seed,
        max_rounds: budget,
        ..Default::default()
    };
    let report = Engine::new(g, config, |info| LubyProtocol::new(info.id)).run()?;
    let mut set = DominatingSet::new(g);
    for (i, &in_mis) in report.outputs.iter().enumerate() {
        if in_mis {
            set.add(NodeId::new(i));
        }
    }
    Ok(MisRun {
        set,
        metrics: report.metrics,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use kw_graph::generators;
    use kw_sim::wire::roundtrip;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn assert_valid_mis(g: &CsrGraph, set: &DominatingSet) {
        // Independent…
        for v in set.iter() {
            for u in g.neighbors(v) {
                assert!(!set.contains(u), "MIS contains adjacent pair {v}, {u}");
            }
        }
        // …and maximal ⇒ dominating.
        assert!(set.is_dominating(g), "MIS not dominating");
    }

    #[test]
    fn message_roundtrip() {
        for m in [
            MisMsg::Ticket {
                value: u64::MAX,
                id: 3,
            },
            MisMsg::Joined,
        ] {
            assert_eq!(roundtrip(&m), Some(m.clone()));
        }
    }

    #[test]
    fn valid_on_fixed_families() {
        for seed in 0..5u64 {
            for g in [
                generators::star(15),
                generators::cycle(20),
                generators::petersen(),
                generators::grid(6, 6),
                generators::complete(9),
                CsrGraph::empty(4),
            ] {
                let run = run_luby_mis(&g, seed).unwrap();
                assert_valid_mis(&g, &run.set);
            }
        }
    }

    #[test]
    fn complete_graph_yields_singleton() {
        let g = generators::complete(20);
        let run = run_luby_mis(&g, 3).unwrap();
        assert_eq!(run.set.len(), 1);
    }

    #[test]
    fn empty_graph_takes_everyone() {
        let g = CsrGraph::empty(7);
        let run = run_luby_mis(&g, 0).unwrap();
        assert_eq!(run.set.len(), 7);
        // Isolated nodes decide in a single phase.
        assert_eq!(run.metrics.rounds, 2);
    }

    #[test]
    fn deterministic_for_seed_and_fast() {
        let mut rng = SmallRng::seed_from_u64(4);
        let g = generators::gnp(300, 0.03, &mut rng);
        let a = run_luby_mis(&g, 11).unwrap();
        let b = run_luby_mis(&g, 11).unwrap();
        let av: Vec<bool> = g.node_ids().map(|v| a.set.contains(v)).collect();
        let bv: Vec<bool> = g.node_ids().map(|v| b.set.contains(v)).collect();
        assert_eq!(av, bv);
        assert_valid_mis(&g, &a.set);
        // O(log n) phases whp: generous check.
        assert!(a.metrics.rounds <= 60, "{} rounds", a.metrics.rounds);
    }

    mod proptests {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(32))]
            #[test]
            fn mis_is_independent_and_dominating(
                n in 0usize..50,
                p in 0.0f64..1.0,
                seed in any::<u64>(),
            ) {
                let mut rng = SmallRng::seed_from_u64(seed);
                let g = generators::gnp(n, p, &mut rng);
                let run = run_luby_mis(&g, seed).unwrap();
                assert_valid_mis(&g, &run.set);
            }
        }
    }
}
