//! The Jia–Rajaraman–Suel "Local Randomized Greedy" (LRG) algorithm
//! (PODC 2001) — the paper's reference \[11\] and the only prior algorithm
//! with a non-trivial approximation ratio in a sub-diameter number of
//! rounds: expected `O(log Δ)` ratio in `O(log n·log Δ)` rounds with high
//! probability.
//!
//! Reconstruction notes (the paper being reproduced only summarizes LRG;
//! this follows the PODC'01 description):
//!
//! 1. every node computes its *span* (uncovered nodes in its closed
//!    neighborhood) and rounds it up to a power of two — its *class*;
//! 2. *candidates* are nodes whose class is maximal within distance 2;
//! 3. every uncovered node computes its *support* — the number of
//!    candidates covering it;
//! 4. each candidate joins with probability `1 / median(supports of its
//!    uncovered closed neighbors)`;
//! 5. repeat until everything is covered.
//!
//! Each phase costs 6 synchronous rounds here (cover, class, max-class,
//! candidacy, support, join). Nodes maintain per-port covered flags, so a
//! node halts once its closed neighborhood is fully covered without
//! breaking its neighbors' bookkeeping (covering is monotone).

use rand::Rng;

use kw_graph::{CsrGraph, DominatingSet, NodeId};
use kw_sim::wire::{self, BitReader, BitWriter, WireEncode};
use kw_sim::{Ctx, Engine, EngineConfig, Protocol, RunMetrics, Status};

/// Messages of the LRG protocol (one kind per schedule slot).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum JrsMsg {
    /// Whether the sender is covered (slot 0).
    Covered(bool),
    /// The sender's span class `⌈log₂ span⌉`, `None` when span = 0
    /// (slot 1).
    Class(Option<u8>),
    /// Maximum class within the sender's closed neighborhood (slot 2).
    MaxClass(Option<u8>),
    /// Candidacy announcement (slot 3; only candidates send).
    Candidate,
    /// The sender's support count (slot 4; only uncovered nodes send).
    Support(u64),
    /// The sender joined the dominating set (slot 5; only joiners send).
    Joined,
}

fn encode_opt_class(w: &mut BitWriter, c: Option<u8>) {
    w.write_gamma(c.map_or(0, |c| u64::from(c) + 1));
}

fn decode_opt_class(r: &mut BitReader<'_>) -> Option<Option<u8>> {
    Some(match r.read_gamma()? {
        0 => None,
        c => Some(u8::try_from(c - 1).ok()?),
    })
}

impl WireEncode for JrsMsg {
    fn encode(&self, w: &mut BitWriter) {
        match self {
            JrsMsg::Covered(b) => {
                w.write_bits(0b000, 3);
                w.write_bit(*b);
            }
            JrsMsg::Class(c) => {
                w.write_bits(0b001, 3);
                encode_opt_class(w, *c);
            }
            JrsMsg::MaxClass(c) => {
                w.write_bits(0b010, 3);
                encode_opt_class(w, *c);
            }
            JrsMsg::Candidate => w.write_bits(0b011, 3),
            JrsMsg::Support(s) => {
                w.write_bits(0b100, 3);
                w.write_gamma(*s);
            }
            JrsMsg::Joined => w.write_bits(0b101, 3),
        }
    }

    fn decode(r: &mut BitReader<'_>) -> Option<Self> {
        Some(match r.read_bits(3)? {
            0b000 => JrsMsg::Covered(r.read_bit()?),
            0b001 => JrsMsg::Class(decode_opt_class(r)?),
            0b010 => JrsMsg::MaxClass(decode_opt_class(r)?),
            0b011 => JrsMsg::Candidate,
            0b100 => JrsMsg::Support(r.read_gamma()?),
            0b101 => JrsMsg::Joined,
            _ => return None,
        })
    }

    fn encoded_bits(&self) -> usize {
        let opt_class_len = |c: &Option<u8>| wire::gamma_len(c.map_or(0, |c| u64::from(c) + 1));
        match self {
            JrsMsg::Covered(_) => 4,
            JrsMsg::Class(c) | JrsMsg::MaxClass(c) => 3 + opt_class_len(c),
            JrsMsg::Candidate | JrsMsg::Joined => 3,
            JrsMsg::Support(s) => 3 + wire::gamma_len(*s),
        }
    }
}

/// `⌈log₂ d⌉` for `d ≥ 1`.
fn ceil_log2(d: u64) -> u8 {
    debug_assert!(d >= 1);
    d.next_power_of_two().trailing_zeros() as u8
}

/// The LRG node program.
#[derive(Clone, Debug)]
pub struct JrsProtocol {
    covered: bool,
    covered_ports: Vec<bool>,
    in_set: bool,
    span_class: Option<u8>,
    max_class1: Option<u8>,
    is_candidate: bool,
    support: u64,
}

impl JrsProtocol {
    /// Creates the program for a node of the given degree.
    pub fn new(degree: usize) -> Self {
        JrsProtocol {
            covered: false,
            covered_ports: vec![false; degree],
            in_set: false,
            span_class: None,
            max_class1: None,
            is_candidate: false,
            support: 0,
        }
    }

    fn span(&self) -> u64 {
        u64::from(!self.covered) + self.covered_ports.iter().filter(|&&c| !c).count() as u64
    }
}

/// Broadcast-only (one `Ctx::broadcast` at most per round of the 6-round
/// phase): rides the engine's solo-broadcast fast path end to end.
impl Protocol for JrsProtocol {
    type Msg = JrsMsg;
    type Output = bool;

    fn on_round(&mut self, ctx: &mut Ctx<'_, JrsMsg>) -> Status {
        match ctx.round() % 6 {
            0 => {
                // Ingest joins from the previous phase.
                for (port, msg) in ctx.inbox() {
                    if matches!(msg, JrsMsg::Joined) {
                        self.covered_ports[port as usize] = true;
                        self.covered = true;
                    }
                }
                if self.in_set {
                    self.covered = true;
                }
                ctx.broadcast(JrsMsg::Covered(self.covered));
                Status::Running
            }
            1 => {
                for (port, msg) in ctx.inbox() {
                    if let JrsMsg::Covered(c) = msg {
                        self.covered_ports[port as usize] |= c;
                    }
                }
                if self.covered && self.covered_ports.iter().all(|&c| c) {
                    // The entire closed neighborhood is covered; this node
                    // can no longer contribute (span 0 forever).
                    return Status::Halted;
                }
                let span = self.span();
                self.span_class = (span > 0).then(|| ceil_log2(span));
                ctx.broadcast(JrsMsg::Class(self.span_class));
                Status::Running
            }
            2 => {
                let mut best = self.span_class;
                for (_, msg) in ctx.inbox() {
                    if let JrsMsg::Class(c) = msg {
                        best = best.max(*c);
                    }
                }
                self.max_class1 = best;
                ctx.broadcast(JrsMsg::MaxClass(self.max_class1));
                Status::Running
            }
            3 => {
                let mut best2 = self.max_class1;
                for (_, msg) in ctx.inbox() {
                    if let JrsMsg::MaxClass(c) = msg {
                        best2 = best2.max(*c);
                    }
                }
                self.is_candidate = self.span_class.is_some() && self.span_class == best2;
                if self.is_candidate {
                    ctx.broadcast(JrsMsg::Candidate);
                }
                Status::Running
            }
            4 => {
                if !self.covered {
                    let mut s = u64::from(self.is_candidate);
                    for (_, msg) in ctx.inbox() {
                        if matches!(msg, JrsMsg::Candidate) {
                            s += 1;
                        }
                    }
                    self.support = s;
                    ctx.broadcast(JrsMsg::Support(s));
                }
                Status::Running
            }
            _ => {
                if self.is_candidate {
                    let mut supports: Vec<u64> = ctx
                        .inbox()
                        .iter()
                        .filter_map(|(_, m)| match m {
                            JrsMsg::Support(s) => Some(*s),
                            _ => None,
                        })
                        .collect();
                    if !self.covered {
                        supports.push(self.support);
                    }
                    // On reliable links a candidate always has at least
                    // one uncovered closed neighbor here; message loss
                    // can starve the list, in which case the draw is
                    // skipped this phase.
                    if !supports.is_empty() {
                        supports.sort_unstable();
                        let median = supports[(supports.len() - 1) / 2].max(1);
                        let p = 1.0 / median as f64;
                        if ctx.rng().gen::<f64>() < p {
                            self.in_set = true;
                            ctx.broadcast(JrsMsg::Joined);
                        }
                    }
                }
                Status::Running
            }
        }
    }

    fn finish(self) -> bool {
        self.in_set
    }
}

/// Result of a distributed LRG run.
#[derive(Clone, Debug)]
pub struct JrsRun {
    /// The computed dominating set.
    pub set: DominatingSet,
    /// Communication metrics (`rounds / 6` ≈ number of phases).
    pub metrics: RunMetrics,
}

/// Runs LRG on `g` with randomness from `seed`.
///
/// # Errors
///
/// Propagates [`kw_sim::SimError`]; the round budget is far above the
/// `O(log n·log Δ)` w.h.p. bound, so exhaustion indicates a bug.
///
/// # Example
///
/// ```
/// use kw_graph::generators;
/// use kw_baselines::jrs::run_jrs;
///
/// let g = generators::grid(5, 5);
/// let run = run_jrs(&g, 3)?;
/// assert!(run.set.is_dominating(&g));
/// # Ok::<(), kw_sim::SimError>(())
/// ```
pub fn run_jrs(g: &CsrGraph, seed: u64) -> Result<JrsRun, kw_sim::SimError> {
    let logn = (g.len().max(2)).ilog2() as usize + 1;
    let config = EngineConfig {
        seed,
        max_rounds: 6 * 200 * logn * logn,
        ..Default::default()
    };
    let report = Engine::new(g, config, |info| JrsProtocol::new(info.degree)).run()?;
    let mut set = DominatingSet::new(g);
    for (i, &joined) in report.outputs.iter().enumerate() {
        if joined {
            set.add(NodeId::new(i));
        }
    }
    Ok(JrsRun {
        set,
        metrics: report.metrics,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use kw_graph::generators;
    use kw_sim::wire::roundtrip;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn message_roundtrip() {
        for m in [
            JrsMsg::Covered(true),
            JrsMsg::Class(None),
            JrsMsg::Class(Some(5)),
            JrsMsg::MaxClass(Some(0)),
            JrsMsg::Candidate,
            JrsMsg::Support(17),
            JrsMsg::Joined,
        ] {
            assert_eq!(roundtrip(&m), Some(m.clone()));
        }
    }

    #[test]
    fn ceil_log2_values() {
        assert_eq!(ceil_log2(1), 0);
        assert_eq!(ceil_log2(2), 1);
        assert_eq!(ceil_log2(3), 2);
        assert_eq!(ceil_log2(4), 2);
        assert_eq!(ceil_log2(5), 3);
    }

    #[test]
    fn dominates_fixed_families() {
        for seed in 0..5u64 {
            for g in [
                generators::star(15),
                generators::cycle(18),
                generators::petersen(),
                generators::grid(5, 6),
                generators::star_of_cliques(3, 5),
                CsrGraph::empty(4),
            ] {
                let run = run_jrs(&g, seed).unwrap();
                assert!(run.set.is_dominating(&g), "seed {seed} failed on {g:?}");
            }
        }
    }

    #[test]
    fn star_selects_few() {
        // On a star, the center is the unique max-class node; LRG should
        // find a tiny set (center, possibly plus the odd leaf).
        let g = generators::star(40);
        let run = run_jrs(&g, 1).unwrap();
        assert!(
            run.set.len() <= 3,
            "LRG picked {} nodes on a star",
            run.set.len()
        );
    }

    #[test]
    fn quality_close_to_log_delta_on_random_graphs() {
        let mut rng = SmallRng::seed_from_u64(5);
        let g = generators::gnp(80, 0.08, &mut rng);
        let opt = kw_lp::exact::solve_mds(&g, &kw_lp::exact::ExactOptions::default())
            .unwrap()
            .len();
        let mut total = 0usize;
        let trials = 10;
        for seed in 0..trials {
            let run = run_jrs(&g, seed).unwrap();
            assert!(run.set.is_dominating(&g));
            total += run.set.len();
        }
        let mean = total as f64 / trials as f64;
        // Expected O(log Δ) ratio; allow a loose constant.
        let bound = 4.0 * ((g.max_degree() as f64 + 1.0).ln() + 1.0) * opt as f64;
        assert!(mean <= bound, "mean {mean} vs bound {bound} (opt {opt})");
    }

    #[test]
    fn rounds_polylogarithmic() {
        let mut rng = SmallRng::seed_from_u64(6);
        let g = generators::gnp(400, 0.02, &mut rng);
        let run = run_jrs(&g, 2).unwrap();
        assert!(run.set.is_dominating(&g));
        // log2(400) ≈ 8.6, log2(Δ) small; generous polylog budget.
        assert!(
            run.metrics.rounds <= 6 * 120,
            "{} rounds",
            run.metrics.rounds
        );
    }

    #[test]
    fn deterministic_for_seed() {
        let g = generators::grid(7, 7);
        let a = run_jrs(&g, 9).unwrap();
        let b = run_jrs(&g, 9).unwrap();
        let av: Vec<bool> = g.node_ids().map(|v| a.set.contains(v)).collect();
        let bv: Vec<bool> = g.node_ids().map(|v| b.set.contains(v)).collect();
        assert_eq!(av, bv);
    }

    mod proptests {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(24))]
            #[test]
            fn lrg_always_dominates(
                n in 0usize..40,
                p in 0.0f64..1.0,
                seed in any::<u64>(),
            ) {
                let mut rng = SmallRng::seed_from_u64(seed);
                let g = generators::gnp(n, p, &mut rng);
                let run = run_jrs(&g, seed).unwrap();
                prop_assert!(run.set.is_dominating(&g));
            }
        }
    }
}
