//! # kw-trace — the in-engine span/profiling plane
//!
//! `RunMetrics` says *how much* a run communicated; this crate says
//! *where the time went*. A [`Tracer`] records hierarchical spans
//! (`solve → stage → round → phase{plan/send/deliver/compute/barrier}`)
//! as monotonic microsecond tick pairs in flat per-track buffers — no
//! locks on the record path, no allocation per span beyond amortized
//! `Vec` growth — plus a per-round counter series ([`RoundSample`]:
//! messages, bits, active nodes, inbox-arena bytes, plane rebuilds, and
//! worker-pool wakeup/idle diagnostics) sampled at round boundaries.
//!
//! ## Activation model
//!
//! Tracing is **off by default and free when off**. A tracer reaches the
//! engine through a thread-local slot ([`install`]/[`take`]): the engine
//! checks [`is_active`] once per run and records through [`with_active`]
//! only when a tracer is installed. Worker threads never touch the
//! slot — parallel phases report `(start, end)` tick pairs *by value*
//! back to the driving thread, which flushes them onto per-chunk worker
//! tracks after the join ([`Tracer::end_parallel`]). The [`NullTracer`]
//! implements the same [`SpanSink`] surface as a compile-out reference;
//! `benches/overhead.rs` A/B-times all three states (null / installed /
//! empty slot).
//!
//! ## Determinism contract
//!
//! Tick *values* vary run to run, but trace *structure* — the main-track
//! `(depth, label)` span sequence plus the full counter series — is a
//! pure function of `(graph, protocol, seed, chaos spec)` and must be
//! bit-identical across engine thread counts. [`Tracer::structure_hash`]
//! fingerprints exactly that (worker-track chunk spans are excluded:
//! their *count* is the chunk count, which legitimately varies with
//! `threads`). Synthetic `barrier` spans are emitted even on the
//! single-chunk path so the main track keeps one shape everywhere.
//!
//! ## Exports
//!
//! [`Tracer::chrome_json`] renders the Chrome trace-event format — load
//! the file at <https://ui.perfetto.dev> or `chrome://tracing` to see
//! rounds, phases, per-worker chunk spans, and barrier gaps on a
//! timeline. [`TraceSummary::to_markdown`] renders the self-profile
//! table (per-phase totals and shares, imbalance) that `exp_o1_profile`
//! and the run-store rollups print.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::cell::RefCell;
use std::fmt::Write as _;
use std::time::Instant;

/// The engine's phase taxonomy, in the canonical reporting order.
/// `plan` = the sequential per-arc delivery count/prefix pass, `send` =
/// parallel sender-major staging, `deliver` = parallel placement into
/// the inbox arena (plus the buffer swap), `compute` = the parallel
/// `on_round` pass, `barrier` = synchronization overhead of the parallel
/// phases (epoch-publish lead + done-wait tail on the persistent worker
/// pool, synthesized by [`Tracer::end_parallel`]).
pub const PHASES: [&str; 5] = ["plan", "send", "deliver", "compute", "barrier"];

/// One closed span: a labeled `[start, end)` microsecond interval at a
/// nesting depth within its track.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Span {
    /// Static label (`"round"`, `"compute"`, `"stage:fractional"`, …).
    pub label: &'static str,
    /// Nesting depth on the main track (0 = root; worker-track chunk
    /// spans are always depth 0).
    pub depth: u16,
    /// Start tick, microseconds since the tracer's origin.
    pub start_us: u64,
    /// End tick, microseconds since the tracer's origin.
    pub end_us: u64,
}

impl Span {
    /// Span duration in microseconds.
    pub fn duration_us(&self) -> u64 {
        self.end_us.saturating_sub(self.start_us)
    }
}

/// Counter values sampled at one round boundary (after the round's
/// compute phase). The six *structural* fields (`round` through
/// `rebuilds`) are deterministic for a given
/// `(graph, protocol, seed, chaos)` and invariant across thread counts —
/// capacities that depend on chunk layout are deliberately excluded. The
/// two *pool* fields are timing-dependent diagnostics of the persistent
/// worker pool and are excluded from both equality and
/// [`Tracer::structure_hash`], so the thread-invariance contract keeps
/// holding on the full sample series.
#[derive(Clone, Copy, Debug, Default)]
pub struct RoundSample {
    /// Round index (0-based).
    pub round: u32,
    /// Messages sent this round.
    pub messages: u64,
    /// Payload bits sent this round.
    pub bits: u64,
    /// Nodes still running (not halted) after this round's compute.
    pub active: u64,
    /// Bytes of the inbox arena read by this round's compute phase
    /// (`entries × size_of::<(u32, Msg)>` — delivered traffic, not
    /// capacity, so the value is thread-count invariant).
    pub arena_bytes: u64,
    /// Cumulative churn-forced message-plane rebuilds so far.
    pub rebuilds: u64,
    /// Worker-pool condvar wakeups attributed to this sample (delta
    /// since the previous sample; covers this round's compute plus the
    /// previous round's delivery). 0 on the single-chunk path and with
    /// no tracer installed.
    pub pool_wakeups: u64,
    /// Pool idle ticks (worker waits that found no new epoch) attributed
    /// to this sample, same windowing as `pool_wakeups`.
    pub pool_idle: u64,
}

/// Equality over the six structural fields only: pool counters are
/// timing diagnostics and two samples that differ only there describe
/// the same deterministic round.
impl PartialEq for RoundSample {
    fn eq(&self, other: &Self) -> bool {
        self.round == other.round
            && self.messages == other.messages
            && self.bits == other.bits
            && self.active == other.active
            && self.arena_bytes == other.arena_bytes
            && self.rebuilds == other.rebuilds
    }
}

impl Eq for RoundSample {}

/// Spans of one worker (chunk) track.
#[derive(Clone, Debug)]
struct Track {
    name: String,
    spans: Vec<Span>,
}

/// The recording half of the profiling plane: one main track (the
/// driving thread's span stack) plus one flat track per worker chunk,
/// and the round counter series. See the crate docs for the activation
/// and determinism contracts.
#[derive(Debug)]
pub struct Tracer {
    origin: Instant,
    main: Vec<Span>,
    /// Indices into `main` of currently-open spans, innermost last.
    open: Vec<usize>,
    workers: Vec<Track>,
    samples: Vec<RoundSample>,
}

impl Default for Tracer {
    fn default() -> Self {
        Self::new()
    }
}

impl Tracer {
    /// A fresh tracer; ticks are measured from this moment.
    pub fn new() -> Self {
        Tracer {
            origin: Instant::now(),
            main: Vec::new(),
            open: Vec::new(),
            workers: Vec::new(),
            samples: Vec::new(),
        }
    }

    /// The instant ticks are measured from. `Copy` — the engine hands
    /// copies to worker threads so they can compute tick pairs without
    /// ever touching the tracer.
    pub fn origin(&self) -> Instant {
        self.origin
    }

    /// Microseconds elapsed since the origin.
    pub fn now_us(&self) -> u64 {
        tick_us(self.origin)
    }

    /// Opens a span on the main track.
    pub fn begin(&mut self, label: &'static str) {
        let depth = self.open.len() as u16;
        let start = self.now_us();
        self.open.push(self.main.len());
        self.main.push(Span {
            label,
            depth,
            start_us: start,
            end_us: start,
        });
    }

    /// Closes the innermost open span (no-op with none open).
    pub fn end(&mut self) {
        if let Some(i) = self.open.pop() {
            self.main[i].end_us = self.now_us();
        }
    }

    /// Closes the innermost open span as a parallel phase: records one
    /// worker-track span per `(start, end)` tick pair in `ticks` (chunk
    /// index = position), then emits a synthetic sibling `barrier` span
    /// whose duration is the phase wall time minus the workers' combined
    /// busy window — under the persistent pool this is the epoch-publish
    /// lead plus the done-wait tail (the residual overhead ROADMAP item
    /// (i) attacks), measured in the same units as the old spawn/join
    /// numbers. Called with `ticks` for a single chunk (or none, for a
    /// skipped phase) it still emits the `barrier` span, keeping the
    /// main-track structure invariant across thread counts.
    pub fn end_parallel(&mut self, label: &'static str, ticks: &[(u64, u64)]) {
        let now = self.now_us();
        let Some(i) = self.open.pop() else { return };
        self.main[i].end_us = now;
        let (start, end, depth) = (self.main[i].start_us, now, self.main[i].depth);
        let mut lo = end;
        let mut hi = start;
        for (chunk, &(s, e)) in ticks.iter().enumerate() {
            let (s, e) = (s.clamp(start, end), e.clamp(start, end));
            lo = lo.min(s);
            hi = hi.max(e);
            self.worker_track(chunk).spans.push(Span {
                label,
                depth: 0,
                start_us: s,
                end_us: e.max(s),
            });
        }
        let busy = hi.saturating_sub(lo);
        let overhead = (end - start).saturating_sub(busy);
        self.main.push(Span {
            label: "barrier",
            depth,
            start_us: end - overhead,
            end_us: end,
        });
    }

    /// Appends one round's counter sample.
    pub fn sample(&mut self, s: RoundSample) {
        self.samples.push(s);
    }

    /// Closes every still-open span at the current tick (error/unwind
    /// paths can leave spans open; harvesting calls this first).
    pub fn finish(&mut self) {
        let now = self.now_us();
        while let Some(i) = self.open.pop() {
            self.main[i].end_us = now;
        }
    }

    fn worker_track(&mut self, chunk: usize) -> &mut Track {
        while self.workers.len() <= chunk {
            let name = format!("worker{}", self.workers.len());
            self.workers.push(Track {
                name,
                spans: Vec::new(),
            });
        }
        &mut self.workers[chunk]
    }

    /// Main-track spans in begin order (the deterministic span tree).
    pub fn spans(&self) -> &[Span] {
        &self.main
    }

    /// The round counter series.
    pub fn samples(&self) -> &[RoundSample] {
        &self.samples
    }

    /// The structural fingerprint's raw material: the main track's
    /// `(depth, label)` sequence. Tick values and worker tracks are
    /// excluded — this is what must match bit-for-bit across thread
    /// counts.
    pub fn structure(&self) -> Vec<(u16, &'static str)> {
        self.main.iter().map(|s| (s.depth, s.label)).collect()
    }

    /// FNV-1a hash over [`structure`](Self::structure) and the full
    /// counter series.
    pub fn structure_hash(&self) -> u64 {
        let mut h = Fnv::new();
        for s in &self.main {
            h.write_u64(u64::from(s.depth));
            h.write_bytes(s.label.as_bytes());
        }
        for s in &self.samples {
            for v in [
                u64::from(s.round),
                s.messages,
                s.bits,
                s.active,
                s.arena_bytes,
                s.rebuilds,
            ] {
                h.write_u64(v);
            }
        }
        h.finish()
    }

    /// Rolls the trace up into a [`TraceSummary`].
    pub fn summarize(&self) -> TraceSummary {
        let mut phase_us: Vec<(String, u64)> = Vec::new();
        for s in &self.main {
            match phase_us.iter_mut().find(|(l, _)| l == s.label) {
                Some((_, total)) => *total += s.duration_us(),
                None => phase_us.push((s.label.to_string(), s.duration_us())),
            }
        }
        phase_us.sort_by(|a, b| a.0.cmp(&b.0));
        let barrier_us = phase_us
            .iter()
            .find(|(l, _)| l == "barrier")
            .map_or(0, |&(_, t)| t);
        let busy: Vec<u64> = self
            .workers
            .iter()
            .map(|t| t.spans.iter().map(Span::duration_us).sum())
            .collect();
        let imbalance = match busy.iter().copied().max() {
            Some(max) if !busy.is_empty() => {
                let mean = busy.iter().sum::<u64>() as f64 / busy.len() as f64;
                if mean > 0.0 {
                    max as f64 / mean
                } else {
                    1.0
                }
            }
            _ => 1.0,
        };
        TraceSummary {
            threads: self.workers.len(),
            rounds: self.main.iter().filter(|s| s.label == "round").count() as u64,
            total_us: self.main.iter().map(|s| s.end_us).max().unwrap_or(0),
            phase_us,
            barrier_us,
            imbalance,
            pool_wakeups: self.samples.iter().map(|s| s.pool_wakeups).sum(),
            pool_idle: self.samples.iter().map(|s| s.pool_idle).sum(),
            structure_hash: self.structure_hash(),
            samples: self.samples.clone(),
        }
    }

    /// Renders the whole trace (main track + worker tracks) as Chrome
    /// trace-event JSON — one complete (`"ph": "X"`) event per span,
    /// microsecond timestamps, plus thread-name metadata. Load the
    /// output in Perfetto (<https://ui.perfetto.dev>) or
    /// `chrome://tracing`.
    pub fn chrome_json(&self) -> String {
        let mut out = String::with_capacity(64 * (self.main.len() + 2));
        out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
        let mut first = true;
        let mut event = |text: String, out: &mut String| {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&text);
        };
        let meta = |tid: usize, name: &str| {
            format!(
                "{{\"ph\":\"M\",\"pid\":0,\"tid\":{tid},\"name\":\"thread_name\",\
                 \"args\":{{\"name\":\"{}\"}}}}",
                escape(name)
            )
        };
        event(meta(0, "main"), &mut out);
        for (i, t) in self.workers.iter().enumerate() {
            event(meta(i + 1, &t.name), &mut out);
        }
        let complete = |tid: usize, s: &Span| {
            format!(
                "{{\"ph\":\"X\",\"pid\":0,\"tid\":{tid},\"name\":\"{}\",\"cat\":\"kw\",\
                 \"ts\":{},\"dur\":{}}}",
                escape(s.label),
                s.start_us,
                s.duration_us()
            )
        };
        for s in &self.main {
            event(complete(0, s), &mut out);
        }
        for (i, t) in self.workers.iter().enumerate() {
            for s in &t.spans {
                event(complete(i + 1, s), &mut out);
            }
        }
        out.push_str("]}");
        out
    }
}

/// The where-does-time-go rollup of one traced run: per-label span
/// totals, fork/join overhead, worker imbalance, the structural
/// fingerprint, and the round counter series. This is what solvers
/// attach to `SolveReport`s, what the run store persists as `trace`
/// lines, and what `regress` gates phase-share drift on.
#[derive(Clone, Debug, PartialEq)]
pub struct TraceSummary {
    /// Worker tracks observed (= engine chunks; 1 on the sequential path).
    pub threads: usize,
    /// `round` spans recorded.
    pub rounds: u64,
    /// Last tick of the main track, microseconds from the origin.
    pub total_us: u64,
    /// Total span duration per label, sorted by label.
    pub phase_us: Vec<(String, u64)>,
    /// Total synthetic `barrier` (fork/join overhead) time.
    pub barrier_us: u64,
    /// Max worker busy time over mean worker busy time (1.0 when there
    /// is at most one worker or no recorded work).
    pub imbalance: f64,
    /// Total worker-pool condvar wakeups over the run (sum of the
    /// per-round deltas; 0 on the single-chunk path).
    pub pool_wakeups: u64,
    /// Total pool idle ticks over the run (waits that found no new
    /// epoch), same provenance as `pool_wakeups`.
    pub pool_idle: u64,
    /// FNV-1a fingerprint of the main-track structure + counter series;
    /// bit-identical across thread counts for a deterministic run.
    pub structure_hash: u64,
    /// The per-round counter series.
    pub samples: Vec<RoundSample>,
}

impl TraceSummary {
    /// Total recorded duration of `label` spans (0 when absent).
    pub fn phase_total(&self, label: &str) -> u64 {
        self.phase_us
            .iter()
            .find(|(l, _)| l == label)
            .map_or(0, |&(_, t)| t)
    }

    /// `label`'s share of the time attributed to the five engine phases
    /// ([`PHASES`]); 0.0 when no phase time was recorded. Shares are
    /// computed against the phase total, not `total_us`, so nesting
    /// containers (`round`, `solve`) don't dilute them.
    pub fn phase_share(&self, label: &str) -> f64 {
        let denom: u64 = PHASES.iter().map(|p| self.phase_total(p)).sum();
        if denom == 0 {
            return 0.0;
        }
        self.phase_total(label) as f64 / denom as f64
    }

    /// The self-profile markdown table: per-label totals and shares of
    /// the engine-phase time, plus the rollup scalars.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "| span | total ms | phase share |");
        let _ = writeln!(out, "|------|---------:|------------:|");
        for (label, us) in &self.phase_us {
            let share = if PHASES.contains(&label.as_str()) {
                format!("{:.1}%", 100.0 * self.phase_share(label))
            } else {
                "—".to_string()
            };
            let _ = writeln!(out, "| {label} | {:.3} | {share} |", *us as f64 / 1e3);
        }
        let _ = writeln!(
            out,
            "\nrounds: {} · total: {:.3} ms · workers: {} · imbalance: {:.2} · structure: {:016x}",
            self.rounds,
            self.total_us as f64 / 1e3,
            self.threads,
            self.imbalance,
            self.structure_hash
        );
        let _ = writeln!(
            out,
            "pool: {} wakeups · {} idle ticks",
            self.pool_wakeups, self.pool_idle
        );
        out
    }
}

/// Minimal recording surface shared by [`Tracer`] and [`NullTracer`],
/// so the overhead bench can time the same call sequence against both.
pub trait SpanSink {
    /// Opens a span.
    fn begin(&mut self, label: &'static str);
    /// Closes the innermost span.
    fn end(&mut self);
    /// Records one round sample.
    fn sample(&mut self, s: RoundSample);
}

impl SpanSink for Tracer {
    fn begin(&mut self, label: &'static str) {
        Tracer::begin(self, label);
    }

    fn end(&mut self) {
        Tracer::end(self);
    }

    fn sample(&mut self, s: RoundSample) {
        Tracer::sample(self, s);
    }
}

/// The compile-out reference: every operation is an inlined no-op, so
/// code generic over [`SpanSink`] monomorphizes to nothing. The A/B
/// bench proves the "zero cost when disabled" claim against this.
#[derive(Clone, Copy, Debug, Default)]
pub struct NullTracer;

impl SpanSink for NullTracer {
    #[inline(always)]
    fn begin(&mut self, _label: &'static str) {}

    #[inline(always)]
    fn end(&mut self) {}

    #[inline(always)]
    fn sample(&mut self, _s: RoundSample) {}
}

/// Microseconds elapsed since `origin`. Free function so engine worker
/// threads can tick against a copied origin without any tracer access.
#[inline]
pub fn tick_us(origin: Instant) -> u64 {
    Instant::now().saturating_duration_since(origin).as_micros() as u64
}

thread_local! {
    static ACTIVE: RefCell<Option<Tracer>> = const { RefCell::new(None) };
}

/// Installs `tracer` into this thread's slot; recording via
/// [`with_active`] hits it until [`take`] removes it. Installing over an
/// existing tracer replaces (and drops) it.
pub fn install(tracer: Tracer) {
    ACTIVE.with(|slot| *slot.borrow_mut() = Some(tracer));
}

/// Removes and returns this thread's tracer, if any.
pub fn take() -> Option<Tracer> {
    ACTIVE.with(|slot| slot.borrow_mut().take())
}

/// Whether a tracer is installed on this thread. This is the *only*
/// cost tracing adds to an untraced run: one thread-local read per
/// engine drive.
pub fn is_active() -> bool {
    ACTIVE.with(|slot| slot.borrow().is_some())
}

/// Runs `f` against the installed tracer; `None` (and `f` unevaluated)
/// without one. Re-entrant calls from within `f` see no tracer rather
/// than panicking on the `RefCell`.
pub fn with_active<R>(f: impl FnOnce(&mut Tracer) -> R) -> Option<R> {
    ACTIVE.with(|slot| {
        let mut guard = slot.try_borrow_mut().ok()?;
        guard.as_mut().map(f)
    })
}

/// The installed tracer's tick origin, for handing to worker threads.
pub fn origin() -> Option<Instant> {
    with_active(|t| t.origin())
}

/// FNV-1a, 64-bit.
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    fn write_u64(&mut self, v: u64) {
        self.write_bytes(&v.to_le_bytes());
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

/// Escapes a string for embedding in a JSON string literal.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record_round(t: &mut Tracer, round: u32, ticks: &[(u64, u64)]) {
        t.begin("round");
        t.begin("compute");
        t.end_parallel("compute", ticks);
        t.sample(RoundSample {
            round,
            messages: 10,
            bits: 80,
            active: 4,
            arena_bytes: 96,
            rebuilds: 0,
            pool_wakeups: 3,
            pool_idle: 1,
        });
        t.begin("plan");
        t.end();
        t.begin("send");
        t.end_parallel("send", ticks);
        t.begin("deliver");
        t.end_parallel("deliver", ticks);
        t.end();
    }

    #[test]
    fn span_nesting_depths_and_order() {
        let mut t = Tracer::new();
        t.begin("solve");
        record_round(&mut t, 0, &[(0, 0)]);
        t.end();
        let structure = t.structure();
        assert_eq!(
            structure,
            vec![
                (0, "solve"),
                (1, "round"),
                (2, "compute"),
                (2, "barrier"),
                (2, "plan"),
                (2, "send"),
                (2, "barrier"),
                (2, "deliver"),
                (2, "barrier"),
            ]
        );
        assert!(t.open.is_empty());
    }

    #[test]
    fn structure_hash_ignores_ticks_but_not_counters() {
        let build = |messages: u64| {
            let mut t = Tracer::new();
            record_round(&mut t, 0, &[(0, 5), (1, 9)]);
            t.samples[0].messages = messages;
            t
        };
        let a = build(10);
        // Sleep-free tick divergence: the second tracer's ticks differ
        // simply because it was created later.
        let b = build(10);
        assert_eq!(a.structure_hash(), b.structure_hash());
        let c = build(11);
        assert_ne!(a.structure_hash(), c.structure_hash());
    }

    #[test]
    fn pool_counters_are_diagnostics_not_structure() {
        let build = |wakeups: u64| {
            let mut t = Tracer::new();
            record_round(&mut t, 0, &[(0, 5)]);
            t.samples[0].pool_wakeups = wakeups;
            t.samples[0].pool_idle = wakeups / 2;
            t
        };
        let a = build(8);
        let b = build(800);
        // Same round, different pool timing: equal samples, equal hash —
        // the thread-invariance contract ignores pool diagnostics...
        assert_eq!(a.samples(), b.samples());
        assert_eq!(a.structure_hash(), b.structure_hash());
        // ...but the summary still surfaces their totals.
        assert_eq!(a.summarize().pool_wakeups, 8);
        assert_eq!(a.summarize().pool_idle, 4);
        assert!(a.summarize().to_markdown().contains("pool: 8 wakeups"));
    }

    #[test]
    fn end_parallel_attributes_overhead_to_barrier() {
        let mut t = Tracer::new();
        t.begin("compute");
        // Pretend the phase ran [start, now]; the worker ticks cover a
        // sub-window, so the barrier span gets the rest. Tick values far
        // in the future are clamped into the phase interval.
        std::thread::sleep(std::time::Duration::from_millis(2));
        t.end_parallel("compute", &[(0, u64::MAX)]);
        let summary = t.summarize();
        assert_eq!(summary.threads, 1);
        assert_eq!(summary.phase_total("barrier"), summary.barrier_us);
        let compute = summary.phase_total("compute");
        assert!(compute >= 2_000, "slept 2ms inside the span, got {compute}");
    }

    #[test]
    fn summary_rollup_and_shares() {
        let mut t = Tracer::new();
        record_round(&mut t, 0, &[(0, 1)]);
        record_round(&mut t, 1, &[(0, 1)]);
        let s = t.summarize();
        assert_eq!(s.rounds, 2);
        assert_eq!(s.samples.len(), 2);
        let share_sum: f64 = PHASES.iter().map(|p| s.phase_share(p)).sum();
        assert!(
            share_sum == 0.0 || (share_sum - 1.0).abs() < 1e-9,
            "phase shares must partition the phase time, got {share_sum}"
        );
        assert!(s.imbalance >= 1.0);
        let md = s.to_markdown();
        assert!(md.contains("| span | total ms | phase share |"));
        assert!(md.contains("rounds: 2"));
    }

    #[test]
    fn finish_closes_unwound_spans() {
        let mut t = Tracer::new();
        t.begin("solve");
        t.begin("round");
        t.finish();
        assert!(t.open.is_empty());
        assert!(t.spans().iter().all(|s| s.end_us >= s.start_us));
    }

    #[test]
    fn chrome_json_is_wellformed_and_complete() {
        let mut t = Tracer::new();
        t.begin("solve");
        record_round(&mut t, 0, &[(0, 2), (2, 4)]);
        t.end();
        let json = t.chrome_json();
        assert!(json.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["));
        assert!(json.ends_with("]}"));
        // Metadata rows for main + both worker tracks, then one X event
        // per recorded span (main + 2 tracks × 3 chunk spans).
        assert_eq!(json.matches("\"ph\":\"M\"").count(), 3);
        assert_eq!(
            json.matches("\"ph\":\"X\"").count(),
            t.spans().len() + t.workers.iter().map(|w| w.spans.len()).sum::<usize>()
        );
        assert!(json.contains("\"name\":\"worker1\""));
        // Balanced braces is a cheap well-formedness proxy; the real
        // parse check runs in kw-results against its JSON parser.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn thread_local_install_take_roundtrip() {
        assert!(!is_active());
        assert!(with_active(|_| ()).is_none());
        assert!(origin().is_none());
        install(Tracer::new());
        assert!(is_active());
        assert!(origin().is_some());
        with_active(|t| t.begin("solve"));
        with_active(|t| t.end());
        let t = take().expect("installed above");
        assert_eq!(t.spans().len(), 1);
        assert!(!is_active());
        assert!(take().is_none());
    }

    #[test]
    fn thread_local_is_per_thread() {
        install(Tracer::new());
        std::thread::spawn(|| {
            assert!(!is_active(), "tracer slots are thread-local");
        })
        .join()
        .unwrap();
        assert!(take().is_some());
    }

    #[test]
    fn escape_handles_specials() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }
}
