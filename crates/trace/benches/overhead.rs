//! A/B cost of the tracing plane, in three states:
//!
//! * `null` — the [`NullTracer`] compile-out path: the same call shape
//!   monomorphized to nothing (the zero-cost floor);
//! * `disabled` — no tracer installed in the thread-local slot, checked
//!   the way the engine checks it (`is_active` once per run plus the
//!   `with_active` misses a traced drive would take);
//! * `recording` — a live [`Tracer`] taking real spans and samples.
//!
//! The claim under test: `disabled` is indistinguishable from `null`
//! (the engine pays one thread-local read per drive and nothing per
//! round), and `recording` stays cheap enough to leave on for
//! experiments. Run with `KW_BENCH_QUICK=1` for a smoke pass.

use std::time::Duration;

use criterion::{black_box, criterion_group, Criterion};
use kw_trace::{NullTracer, RoundSample, SpanSink, Tracer};

const ROUNDS: u32 = 1_000;

fn quick() -> bool {
    std::env::var_os("KW_BENCH_QUICK").is_some_and(|v| v != "0")
}

fn configure(group: &mut criterion::BenchmarkGroup<'_>) {
    if quick() {
        group
            .sample_size(3)
            .measurement_time(Duration::from_millis(100));
    } else {
        group
            .sample_size(10)
            .measurement_time(Duration::from_secs(2));
    }
    group.warm_up_time(Duration::from_millis(200));
}

/// The engine's per-round recording shape against any sink.
fn drive_rounds<S: SpanSink>(sink: &mut S) {
    for round in 0..ROUNDS {
        sink.begin("round");
        sink.begin("compute");
        sink.end();
        sink.begin("plan");
        sink.end();
        sink.begin("deliver");
        sink.end();
        sink.sample(RoundSample {
            round,
            messages: u64::from(round),
            bits: u64::from(round) * 8,
            active: 100,
            arena_bytes: 4_096,
            rebuilds: 0,
            pool_wakeups: 0,
            pool_idle: 0,
        });
        sink.end();
    }
}

fn bench_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("trace_overhead");
    configure(&mut group);
    group.bench_function("null", |b| {
        b.iter(|| {
            let mut sink = NullTracer;
            drive_rounds(black_box(&mut sink));
        })
    });
    group.bench_function("disabled", |b| {
        b.iter(|| {
            // The engine's untraced cost: one is_active check per drive;
            // with_active short-circuits without evaluating the closure.
            if black_box(kw_trace::is_active()) {
                kw_trace::with_active(|t| t.begin("round"));
            }
        })
    });
    group.bench_function("recording", |b| {
        b.iter(|| {
            let mut t = Tracer::new();
            drive_rounds(&mut t);
            black_box(t.summarize().total_us)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_overhead);

fn main() {
    benches();
}
