//! Workspace loading: which files get linted, and the full run.
//!
//! [`Workspace::load`] walks the repository for `.rs` sources,
//! excluding build output (`target/`), VCS metadata, and the lint
//! crate's own fixture corpus (`crates/lint/tests/fixtures/` — those
//! files *deliberately* violate rules). Integration-test directories
//! are included but their contents are test-masked by the source
//! model, so code-contract rules skip them while structural rules
//! (crate-root gates) still see everything.
//!
//! [`Workspace::run`] is the whole pipeline: rules → allowlist →
//! surviving diagnostics, sorted for stable output.

use std::path::{Path, PathBuf};

use crate::source::{relative, SourceFile};
use crate::{allowlist, rules, Diagnostic};

/// A set of parsed sources plus the root-level config files.
pub struct Workspace {
    /// Filesystem root, when loaded from disk.
    pub root: Option<PathBuf>,
    /// Every linted source file, sorted by path.
    pub files: Vec<SourceFile>,
    /// Contents of `lint.schema`, if present.
    pub schema: Option<String>,
    /// Contents of `lint.allow`, if present.
    pub allow: Option<String>,
}

/// Directory names never descended into.
const SKIP_DIRS: [&str; 2] = ["target", "fixtures"];

impl Workspace {
    /// Builds a workspace from in-memory `(rel_path, source)` pairs —
    /// the constructor rule unit tests and fixtures use.
    pub fn from_sources(sources: Vec<(String, String)>) -> Workspace {
        let mut files: Vec<SourceFile> = sources
            .iter()
            .map(|(rel, src)| SourceFile::parse(rel, src))
            .collect();
        files.sort_by(|a, b| a.rel_path.cmp(&b.rel_path));
        Workspace {
            root: None,
            files,
            schema: None,
            allow: None,
        }
    }

    /// Loads every lintable `.rs` file under `root`, plus `lint.schema`
    /// and `lint.allow` when present.
    pub fn load(root: &Path) -> std::io::Result<Workspace> {
        let mut paths = Vec::new();
        walk(root, &mut paths)?;
        paths.sort();
        let mut files = Vec::with_capacity(paths.len());
        for path in &paths {
            let rel = relative(root, path);
            let text = std::fs::read_to_string(path)?;
            files.push(SourceFile::parse(&rel, &text));
        }
        Ok(Workspace {
            root: Some(root.to_path_buf()),
            files,
            schema: std::fs::read_to_string(root.join(crate::rules::schema_drift::SCHEMA_FILE))
                .ok(),
            allow: std::fs::read_to_string(root.join(allowlist::ALLOW_FILE)).ok(),
        })
    }

    /// The full lint run: every rule, then the allowlist (suppression,
    /// staleness, and its own syntax problems), sorted by location.
    pub fn run(&self) -> Vec<Diagnostic> {
        let raw = rules::all(self);
        let (entries, mut problems) = match &self.allow {
            Some(text) => allowlist::parse(text),
            None => (Vec::new(), Vec::new()),
        };
        let mut out = allowlist::apply(raw, &entries);
        out.append(&mut problems);
        out.sort_by(|a, b| {
            (a.file.as_str(), a.line, a.rule).cmp(&(b.file.as_str(), b.line, b.rule))
        });
        out
    }

    /// Recomputes the store fingerprints and returns the new
    /// `lint.schema` contents: the current version's line replaced (or
    /// appended), all other versions' history preserved.
    pub fn bless_schema(&self) -> Result<String, Vec<Diagnostic>> {
        let shape = rules::schema_drift::compute_shape(self)?;
        let fresh = shape.schema_line();
        let prefix = format!("v{} ", shape.version);
        let mut lines: Vec<String> = self
            .schema
            .as_deref()
            .unwrap_or(
                "# Store writer fingerprints, one line per SCHEMA_VERSION.\n\
                 # Maintained by `kw-lint --bless-schema`; see docs/LINTS.md (schema-drift).",
            )
            .lines()
            .filter(|l| !l.trim().starts_with(&prefix))
            .map(str::to_string)
            .collect();
        lines.push(fresh);
        Ok(lines.join("\n") + "\n")
    }
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name.starts_with('.') || SKIP_DIRS.contains(&name.as_ref()) {
                continue;
            }
            walk(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_sources_sorts_and_parses() {
        let ws = Workspace::from_sources(vec![
            ("b.rs".to_string(), "fn b() {}".to_string()),
            ("a.rs".to_string(), "fn a() {}".to_string()),
        ]);
        assert_eq!(ws.files[0].rel_path, "a.rs");
        assert_eq!(ws.files[1].fns[0].name, "b");
    }

    #[test]
    fn run_applies_allowlist_and_reports_stale() {
        let mut ws = Workspace::from_sources(vec![(
            "crates/serve/src/h.rs".to_string(),
            "fn f(o: Option<u8>) -> u8 { o.unwrap() }".to_string(),
        )]);
        // Unsuppressed: the unwrap diagnostic survives.
        assert!(ws.run().iter().any(|d| d.rule == "panic-path"));
        // Suppressed by a justified entry: clean.
        ws.allow =
            Some("panic-path | crates/serve/src/h.rs | o.unwrap() | test: proven some\n".into());
        assert!(ws.run().is_empty(), "{:?}", ws.run());
        // A second, stale entry becomes its own diagnostic.
        ws.allow = Some(
            "panic-path | crates/serve/src/h.rs | o.unwrap() | test: proven some\n\
             panic-path | crates/serve/src/h.rs | nothing_like_this | stale\n"
                .into(),
        );
        let out = ws.run();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].rule, "allowlist");
    }

    #[test]
    fn bless_schema_replaces_current_and_keeps_history() {
        let mut ws = Workspace::from_sources(vec![(
            "crates/results/src/store.rs".to_string(),
            "pub const SCHEMA_VERSION: u64 = 4;\n\
             fn append_manifest(w: &mut W) { w.field(\"v\"); }\n\
             fn append_record(w: &mut W) { w.field(\"v\"); }\n\
             fn append_bench(w: &mut W) { w.field(\"v\"); }\n\
             fn append_trace(w: &mut W) { w.field(\"v\"); }\n"
                .to_string(),
        )]);
        ws.schema = Some("v3 manifest=aa record=bb bench=cc trace=dd\nv4 manifest=00 record=00 bench=00 trace=00\n".into());
        let blessed = ws.bless_schema().unwrap();
        assert!(blessed.contains("v3 manifest=aa"), "history kept");
        assert!(!blessed.contains("manifest=00"), "old v4 line replaced");
        assert_eq!(blessed.matches("v4 ").count(), 1);
        // Blessing makes the schema-drift rule clean.
        ws.schema = Some(blessed);
        assert!(ws.run().is_empty(), "{:?}", ws.run());
    }
}
