//! The checked-in allowlist: `lint.allow` at the workspace root.
//!
//! Rules are deny-by-default; the allowlist is where intentional
//! exceptions live, in review-able form. One entry per line:
//!
//! ```text
//! rule-id | path/to/file.rs | snippet needle | justification
//! ```
//!
//! An entry suppresses a diagnostic when the rule id and file match
//! and the *needle* is a substring of the flagged source line (`*`
//! matches any line — use sparingly). Matching on the snippet rather
//! than the line number keeps entries stable across unrelated edits to
//! the same file.
//!
//! The allowlist polices itself:
//!
//! * a **justification is mandatory** — an entry without one is a
//!   diagnostic, because "trust me" does not review well a year later;
//! * a **stale entry** (suppressing nothing this run) is a diagnostic,
//!   so fixed violations get their exceptions deleted instead of
//!   lingering as blanket suppressions;
//! * a **malformed line** is a diagnostic, never silently skipped.

use crate::Diagnostic;

/// The allowlist file name, at the workspace root.
pub const ALLOW_FILE: &str = "lint.allow";

const RULE: &str = "allowlist";

/// One parsed allowlist entry.
#[derive(Clone, Debug)]
pub struct Entry {
    /// Rule id this entry suppresses.
    pub rule: String,
    /// Workspace-relative file the violation lives in.
    pub file: String,
    /// Substring of the flagged source line (`*` = any).
    pub needle: String,
    /// Why the violation is acceptable. Mandatory.
    pub justification: String,
    /// 1-based line in `lint.allow`, for staleness diagnostics.
    pub line: usize,
}

impl Entry {
    fn matches(&self, d: &Diagnostic) -> bool {
        self.rule == d.rule
            && self.file == d.file
            && (self.needle == "*" || d.snippet.contains(&self.needle))
    }
}

/// Parses allowlist text. Malformed lines and empty justifications
/// come back as diagnostics, not errors — the lint run carries on.
pub fn parse(text: &str) -> (Vec<Entry>, Vec<Diagnostic>) {
    let mut entries = Vec::new();
    let mut diags = Vec::new();
    let problem = |line: usize, message: String| Diagnostic {
        rule: RULE,
        file: ALLOW_FILE.to_string(),
        line,
        message,
        snippet: String::new(),
    };
    for (i, raw) in text.lines().enumerate() {
        let line_no = i + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let parts: Vec<&str> = line.splitn(4, '|').map(str::trim).collect();
        if parts.len() != 4 {
            diags.push(problem(
                line_no,
                format!(
                    "malformed allowlist entry (expected `rule | file | needle | \
                     justification`, got {} field(s))",
                    parts.len()
                ),
            ));
            continue;
        }
        let (rule, file, needle, justification) = (parts[0], parts[1], parts[2], parts[3]);
        if !crate::RULES.contains(&rule) {
            diags.push(problem(
                line_no,
                format!("unknown rule id `{rule}` in allowlist entry"),
            ));
            continue;
        }
        if needle.is_empty() {
            diags.push(problem(
                line_no,
                "empty needle — use `*` explicitly to match any line".to_string(),
            ));
            continue;
        }
        if justification.is_empty() {
            diags.push(problem(
                line_no,
                format!(
                    "allowlist entry for `{rule}` in {file} has no justification — \
                     every exception must say why it cannot fire"
                ),
            ));
            continue;
        }
        entries.push(Entry {
            rule: rule.to_string(),
            file: file.to_string(),
            needle: needle.to_string(),
            justification: justification.to_string(),
            line: line_no,
        });
    }
    (entries, diags)
}

/// Applies `entries` to `diags`: returns surviving diagnostics plus a
/// staleness diagnostic for every entry that suppressed nothing.
pub fn apply(diags: Vec<Diagnostic>, entries: &[Entry]) -> Vec<Diagnostic> {
    let mut used = vec![false; entries.len()];
    let mut out: Vec<Diagnostic> = diags
        .into_iter()
        .filter(|d| {
            let hit = entries.iter().position(|e| e.matches(d));
            if let Some(k) = hit {
                used[k] = true;
            }
            hit.is_none()
        })
        .collect();
    for (k, entry) in entries.iter().enumerate() {
        if !used[k] {
            out.push(Diagnostic {
                rule: RULE,
                file: ALLOW_FILE.to_string(),
                line: entry.line,
                message: format!(
                    "stale allowlist entry: no `{}` finding in {} matches `{}` — the \
                     violation was fixed (or the code moved); delete the entry",
                    entry.rule, entry.file, entry.needle
                ),
                snippet: String::new(),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diag(rule: &'static str, file: &str, snippet: &str) -> Diagnostic {
        Diagnostic {
            rule,
            file: file.to_string(),
            line: 10,
            message: "m".to_string(),
            snippet: snippet.to_string(),
        }
    }

    #[test]
    fn matching_entry_suppresses() {
        let (entries, problems) = parse(
            "panic-path | crates/serve/src/server.rs | .expect(\"bind\") | startup-only; daemon may die before serving\n",
        );
        assert!(problems.is_empty(), "{problems:?}");
        let d = vec![diag(
            "panic-path",
            "crates/serve/src/server.rs",
            "listener.local_addr().expect(\"bind\")",
        )];
        assert!(apply(d, &entries).is_empty());
    }

    #[test]
    fn stale_entries_are_diagnostics() {
        let (entries, _) = parse("panic-path | a.rs | gone_code | was needed once\n");
        let out = apply(Vec::new(), &entries);
        assert_eq!(out.len(), 1);
        assert!(out[0].message.contains("stale"));
        assert_eq!(out[0].line, 1);
    }

    #[test]
    fn missing_justification_is_rejected() {
        let (entries, problems) = parse("panic-path | a.rs | x.unwrap() | \n");
        assert!(entries.is_empty());
        assert_eq!(problems.len(), 1);
        assert!(problems[0].message.contains("no justification"));
    }

    #[test]
    fn malformed_and_unknown_rule_lines() {
        let (entries, problems) =
            parse("just three | fields | here\nno-such-rule | a.rs | x | because\n");
        assert!(entries.is_empty());
        assert_eq!(problems.len(), 2);
        assert!(problems[0].message.contains("malformed"));
        assert!(problems[1].message.contains("unknown rule id"));
    }

    #[test]
    fn comments_and_blanks_are_skipped() {
        let (entries, problems) = parse("# header\n\n  # indented comment\n");
        assert!(entries.is_empty() && problems.is_empty());
    }

    #[test]
    fn wildcard_needle_matches_any_line() {
        let (entries, _) = parse("hot-alloc | e.rs | * | setup-phase alloc, measured cold\n");
        let d = vec![diag("hot-alloc", "e.rs", "let v = Vec::new();")];
        assert!(apply(d, &entries).is_empty());
    }

    #[test]
    fn wrong_rule_or_file_does_not_suppress() {
        let (entries, _) = parse("panic-path | a.rs | unwrap | reason\n");
        let d = vec![diag("hot-alloc", "a.rs", "x.unwrap()")];
        let out = apply(d, &entries);
        // Finding survives AND the entry reads as stale.
        assert_eq!(out.len(), 2);
    }
}
