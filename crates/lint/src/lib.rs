//! # kw-lint — the workspace invariant analyzer
//!
//! The workspace rests on contracts that used to exist only as prose
//! and runtime assertions: wire decoders must *decode-or-reject* without
//! panicking, the engine's round loop must stay allocation-stable,
//! `unsafe` is confined to the worker pool, every store-line shape
//! change requires a [`SCHEMA_VERSION`] bump, and every spec grammar
//! must round-trip through its canonicalizer. This crate turns each of
//! those contracts into a deny-by-default static rule over the
//! workspace source, checked by the `kw-lint` binary (and CI's
//! `lint_smoke` step) with file:line diagnostics.
//!
//! [`SCHEMA_VERSION`]: https://docs.rs/kw-results
//!
//! # Rules
//!
//! | id | contract |
//! |----|----------|
//! | `panic-path`     | no `unwrap`/`expect`/`panic!`/indexing in wire-decode impls and `kw_serve` request paths |
//! | `hot-alloc`      | no allocation idioms in `// kw-lint: hot` engine round-loop functions |
//! | `unsafe-audit`   | `unsafe` only in `kw_sim::pool`, always under `// SAFETY:`, every crate `forbid`/`deny(unsafe_code)` |
//! | `schema-drift`   | store line writers' field sets fingerprinted per `SCHEMA_VERSION` |
//! | `spec-roundtrip` | every spec grammar has `parse`, `spec()`, and a round-trip test |
//!
//! Architecture: a hand-rolled [`lexer`] (comments kept as tokens,
//! strings opaque) feeds a [`source`] item model (functions, impl
//! blocks, test regions), rules pattern-match over that, and the
//! [`allowlist`] (`lint.allow` at the workspace root) suppresses
//! individual findings — each entry carries a mandatory justification
//! and goes stale (its own diagnostic) when the finding it covered
//! disappears. See `docs/LINTS.md` for the rule catalog and the
//! allowlisting workflow.

#![forbid(unsafe_code)]

pub mod allowlist;
pub mod lexer;
pub mod rules;
pub mod source;
pub mod workspace;

use std::fmt;

/// One finding: a rule violation at a source location.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diagnostic {
    /// Rule id (`panic-path`, `hot-alloc`, …).
    pub rule: &'static str,
    /// Workspace-relative file path, forward slashes.
    pub file: String,
    /// 1-based line.
    pub line: usize,
    /// What the rule objects to, and which contract it enforces.
    pub message: String,
    /// The trimmed source line, for allowlist matching and display.
    pub snippet: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}\n    {}",
            self.file, self.line, self.rule, self.message, self.snippet
        )
    }
}

/// Every rule id, in report order.
pub const RULES: [&str; 6] = [
    "panic-path",
    "hot-alloc",
    "unsafe-audit",
    "schema-drift",
    "spec-roundtrip",
    "allowlist",
];
