//! A lightweight item model over the token stream.
//!
//! Rules do not need a real Rust AST — they need to know, for a file:
//! which token ranges are **test-only** (`#[cfg(test)]` modules,
//! `#[test]` functions, anything under a `tests/` directory), where each
//! **function body** starts and ends, which **impl block** a function
//! belongs to (trait and type names), and which **comment block**
//! precedes an item (for `// SAFETY:` and `// kw-lint:` markers). This
//! module derives exactly that by brace matching over the lexed tokens.
//!
//! The parser is intentionally forgiving: on confusing input it errs
//! toward *including* code in scope (a rule may then flag something a
//! human must allowlist) rather than silently skipping it.

use std::path::{Path, PathBuf};

use crate::lexer::{lex, TokKind, Token};

/// One parsed function item.
#[derive(Clone, Debug)]
pub struct FnItem {
    /// The function's name.
    pub name: String,
    /// Line of the `fn` keyword.
    pub line: usize,
    /// Token index of the `fn` keyword.
    pub fn_index: usize,
    /// Token range of the body, **exclusive** of the outer braces
    /// (`start..end` indexes into [`SourceFile::tokens`]); empty for
    /// bodyless trait-method declarations.
    pub body: std::ops::Range<usize>,
    /// Whether the function is test-only (`#[test]`, inside a
    /// `#[cfg(test)]` region, or in a `tests/` file).
    pub is_test: bool,
    /// Index into [`SourceFile::impls`] of the enclosing impl block.
    pub impl_index: Option<usize>,
    /// Text of the comment block immediately preceding the function
    /// (doc comments, attributes-adjacent comments), newline-joined.
    pub leading_comments: String,
}

/// One parsed `impl` block header.
#[derive(Clone, Debug)]
pub struct ImplItem {
    /// `Trait` of `impl Trait for Type`, if any.
    pub trait_name: Option<String>,
    /// The `Type` (the first path segment after `for`, or after `impl`).
    pub type_name: String,
    /// Token range of the impl body (exclusive of braces).
    pub body: std::ops::Range<usize>,
}

/// A lexed and item-parsed source file.
#[derive(Debug)]
pub struct SourceFile {
    /// Workspace-relative path, forward slashes.
    pub rel_path: String,
    /// Every token, comments included.
    pub tokens: Vec<Token>,
    /// Per-token flag: inside a test-only region.
    pub test_mask: Vec<bool>,
    /// All functions, in source order.
    pub fns: Vec<FnItem>,
    /// All impl blocks, in source order.
    pub impls: Vec<ImplItem>,
    /// The source split into lines (for diagnostics' snippets).
    pub lines: Vec<String>,
}

impl SourceFile {
    /// Lexes and parses `source`. `rel_path` decides whether the whole
    /// file is test scope (any `tests/` path component).
    pub fn parse(rel_path: &str, source: &str) -> SourceFile {
        let tokens = lex(source);
        let whole_file_test = Path::new(rel_path)
            .components()
            .any(|c| c.as_os_str() == "tests");
        let mut test_mask = vec![whole_file_test; tokens.len()];
        if !whole_file_test {
            mark_test_regions(&tokens, &mut test_mask);
        }
        let impls = find_impls(&tokens);
        let fns = find_fns(&tokens, &test_mask, &impls);
        SourceFile {
            rel_path: rel_path.to_string(),
            tokens,
            test_mask,
            fns,
            impls,
            lines: source.lines().map(str::to_string).collect(),
        }
    }

    /// The trimmed source text of `line` (1-based), for diagnostics.
    pub fn snippet(&self, line: usize) -> String {
        self.lines
            .get(line.saturating_sub(1))
            .map(|l| l.trim().to_string())
            .unwrap_or_default()
    }

    /// Non-comment tokens of `range` with their original indexes.
    pub fn code_tokens(
        &self,
        range: std::ops::Range<usize>,
    ) -> impl Iterator<Item = (usize, &Token)> {
        self.tokens[range.clone()]
            .iter()
            .enumerate()
            .map(move |(i, t)| (range.start + i, t))
            .filter(|(_, t)| !t.is_comment())
    }

    /// The nearest preceding non-comment token before index `i`.
    pub fn prev_code_token(&self, i: usize) -> Option<&Token> {
        self.tokens[..i].iter().rev().find(|t| !t.is_comment())
    }
}

/// Marks `#[cfg(test)]` / `#[test]`-attributed items in `mask`.
fn mark_test_regions(tokens: &[Token], mask: &mut [bool]) {
    let mut i = 0usize;
    while i < tokens.len() {
        if is_test_attribute(tokens, i) {
            // Cover from the attribute through the end of the item it
            // decorates (its `{…}` body or a terminating `;`).
            let end = item_end(tokens, i);
            for flag in &mut mask[i..end] {
                *flag = true;
            }
            i = end;
        } else {
            i += 1;
        }
    }
}

/// Whether tokens at `i` start `#[cfg(test)]`, `#[cfg(all(test, …))]`,
/// or `#[test]` (also matching the `#[cfg(any(test, …))]` forms — any
/// `test` inside a `cfg` attribute conservatively marks the item).
fn is_test_attribute(tokens: &[Token], i: usize) -> bool {
    if !(tokens[i].is_punct('#') && tokens.get(i + 1).is_some_and(|t| t.is_punct('['))) {
        return false;
    }
    let Some(head) = tokens.get(i + 2) else {
        return false;
    };
    if head.is_ident("test") {
        return true;
    }
    if !head.is_ident("cfg") {
        return false;
    }
    // Scan the bracketed attribute for a bare `test` ident.
    let mut depth = 0usize;
    for t in &tokens[i + 1..] {
        if t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(']') {
            depth -= 1;
            if depth == 0 {
                break;
            }
        } else if depth > 0 && t.is_ident("test") {
            return true;
        }
    }
    false
}

/// Given the index of an item's first token (an attribute `#`), returns
/// the index one past the item's end: past the matching `}` of its first
/// top-level brace, or past the first top-level `;`.
fn item_end(tokens: &[Token], start: usize) -> usize {
    let mut i = start;
    // Skip leading attributes (`#[…]` groups, however many).
    while i < tokens.len()
        && tokens[i].is_punct('#')
        && tokens.get(i + 1).is_some_and(|t| t.is_punct('['))
    {
        let mut depth = 0usize;
        while i < tokens.len() {
            if tokens[i].is_punct('[') {
                depth += 1;
            } else if tokens[i].is_punct(']') {
                depth -= 1;
                if depth == 0 {
                    i += 1;
                    break;
                }
            }
            i += 1;
        }
    }
    // Find the first `{` or `;` at zero bracket depth, then close it.
    let mut paren = 0isize;
    while i < tokens.len() {
        let t = &tokens[i];
        if t.is_punct('(') || t.is_punct('[') {
            paren += 1;
        } else if t.is_punct(')') || t.is_punct(']') {
            paren -= 1;
        } else if paren == 0 && t.is_punct(';') {
            return i + 1;
        } else if paren == 0 && t.is_punct('{') {
            return matching_brace(tokens, i) + 1;
        }
        i += 1;
    }
    tokens.len()
}

/// Index of the `}` matching the `{` at `open` (or the last token).
fn matching_brace(tokens: &[Token], open: usize) -> usize {
    let mut depth = 0usize;
    for (i, t) in tokens.iter().enumerate().skip(open) {
        if t.is_punct('{') {
            depth += 1;
        } else if t.is_punct('}') {
            depth -= 1;
            if depth == 0 {
                return i;
            }
        }
    }
    tokens.len().saturating_sub(1)
}

fn find_impls(tokens: &[Token]) -> Vec<ImplItem> {
    let mut impls = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        if tokens[i].is_ident("impl") && !tokens[i].is_comment() {
            // Header runs to the body `{` at zero bracket depth (angle
            // brackets in generics hold no `{`, so this is safe).
            let mut j = i + 1;
            let mut paren = 0isize;
            while j < tokens.len() {
                let t = &tokens[j];
                if t.is_punct('(') || t.is_punct('[') {
                    paren += 1;
                } else if t.is_punct(')') || t.is_punct(']') {
                    paren -= 1;
                } else if paren == 0 && (t.is_punct('{') || t.is_punct(';')) {
                    break;
                }
                j += 1;
            }
            if j < tokens.len() && tokens[j].is_punct('{') {
                let header: Vec<&Token> = tokens[i + 1..j]
                    .iter()
                    .filter(|t| !t.is_comment())
                    .collect();
                let for_pos = header.iter().position(|t| t.is_ident("for"));
                let name_of = |slice: &[&Token]| -> String {
                    // First identifier outside generic params: skip a
                    // leading `<…>` generics list.
                    let mut angle = 0isize;
                    for t in slice {
                        if t.is_punct('<') {
                            angle += 1;
                        } else if t.is_punct('>') {
                            angle -= 1;
                        } else if angle == 0 && t.kind == TokKind::Ident && !t.is_ident("dyn") {
                            return t.text.clone();
                        }
                    }
                    String::new()
                };
                let (trait_name, type_name) = match for_pos {
                    Some(p) => {
                        let tn = name_of(&header[..p]);
                        (
                            if tn.is_empty() { None } else { Some(tn) },
                            name_of(&header[p + 1..]),
                        )
                    }
                    None => (None, name_of(&header)),
                };
                let close = matching_brace(tokens, j);
                impls.push(ImplItem {
                    trait_name,
                    type_name,
                    body: j + 1..close,
                });
                i = j + 1; // descend into the body (nested fns matter)
                continue;
            }
        }
        i += 1;
    }
    impls
}

fn find_fns(tokens: &[Token], test_mask: &[bool], impls: &[ImplItem]) -> Vec<FnItem> {
    let mut fns = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        let t = &tokens[i];
        if t.is_ident("fn") {
            let name = match tokens.get(i + 1) {
                Some(n) if n.kind == TokKind::Ident => n.text.clone(),
                _ => {
                    i += 1;
                    continue;
                }
            };
            // Body: first `{` at zero () depth after the signature, or a
            // `;` for bodyless declarations.
            let mut j = i + 2;
            let mut paren = 0isize;
            let mut body = 0..0;
            while j < tokens.len() {
                let t = &tokens[j];
                if t.is_punct('(') || t.is_punct('[') {
                    paren += 1;
                } else if t.is_punct(')') || t.is_punct(']') {
                    paren -= 1;
                } else if paren == 0 && t.is_punct(';') {
                    break;
                } else if paren == 0 && t.is_punct('{') {
                    let close = matching_brace(tokens, j);
                    body = j + 1..close;
                    break;
                }
                j += 1;
            }
            let impl_index = impls
                .iter()
                .enumerate()
                .filter(|(_, im)| im.body.contains(&i))
                // Innermost enclosing impl: the one starting latest.
                .max_by_key(|(_, im)| im.body.start)
                .map(|(k, _)| k);
            fns.push(FnItem {
                name,
                line: t.line,
                fn_index: i,
                body: body.clone(),
                is_test: test_mask[i],
                impl_index,
                leading_comments: leading_comments(tokens, i),
            });
            // Continue scanning *inside* the body too (closures, nested
            // fns): just advance past the name.
            i += 2;
        } else {
            i += 1;
        }
    }
    fns
}

/// The comment block above the item whose first token (attributes
/// included) sits at index `i`: walk back over attributes, then collect
/// contiguous comments.
fn leading_comments(tokens: &[Token], i: usize) -> String {
    let mut j = i;
    // Walk back over modifier keywords (`pub`, `unsafe`, `const`,
    // `async`, `extern`) and whole bracketed groups — `#[…]` attributes
    // (contents arbitrary) and `pub(crate)` visibility parens.
    loop {
        if j == 0 {
            break;
        }
        let prev = &tokens[j - 1];
        if prev.is_punct(']') || prev.is_punct(')') {
            let (open, close) = if prev.is_punct(']') {
                ('[', ']')
            } else {
                ('(', ')')
            };
            let mut depth = 0usize;
            let mut k = j - 1;
            loop {
                if tokens[k].is_punct(close) {
                    depth += 1;
                } else if tokens[k].is_punct(open) {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                if k == 0 {
                    break;
                }
                k -= 1;
            }
            j = k;
            continue;
        }
        let is_modifier = prev.kind == TokKind::Ident
            && matches!(
                prev.text.as_str(),
                "pub" | "unsafe" | "const" | "async" | "extern"
            );
        if is_modifier || prev.is_punct('#') || prev.is_punct('!') {
            j -= 1;
            continue;
        }
        break;
    }
    let mut comments = Vec::new();
    while j > 0 && tokens[j - 1].is_comment() {
        comments.push(tokens[j - 1].text.clone());
        j -= 1;
    }
    comments.reverse();
    comments.join("\n")
}

/// Reads and parses a file from disk.
pub fn load(root: &Path, rel_path: &str) -> std::io::Result<SourceFile> {
    let text = std::fs::read_to_string(root.join(rel_path))?;
    Ok(SourceFile::parse(rel_path, &text))
}

/// `path` relative to `root`, with forward slashes.
pub fn relative(root: &Path, path: &Path) -> String {
    let rel: PathBuf = path.strip_prefix(root).unwrap_or(path).to_path_buf();
    rel.to_string_lossy().replace('\\', "/")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_functions_and_bodies() {
        let f = SourceFile::parse(
            "x.rs",
            "fn a() { b(); }\npub fn c(x: u32) -> u32 { x }\nfn decl();",
        );
        let names: Vec<_> = f.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, ["a", "c", "decl"]);
        assert!(f.fns[2].body.is_empty());
        assert!(!f.fns[0].body.is_empty());
    }

    #[test]
    fn cfg_test_modules_are_masked() {
        let src =
            "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\nfn live2() {}";
        let f = SourceFile::parse("x.rs", src);
        let by_name = |n: &str| f.fns.iter().find(|f| f.name == n).unwrap();
        assert!(!by_name("live").is_test);
        assert!(by_name("t").is_test);
        assert!(!by_name("live2").is_test);
    }

    #[test]
    fn test_attribute_marks_single_fn() {
        let src = "#[test]\nfn t() {}\nfn live() {}";
        let f = SourceFile::parse("x.rs", src);
        assert!(f.fns[0].is_test);
        assert!(!f.fns[1].is_test);
    }

    #[test]
    fn tests_directory_masks_whole_file() {
        let f = SourceFile::parse("crates/x/tests/e2e.rs", "fn helper() {}");
        assert!(f.fns[0].is_test);
    }

    #[test]
    fn impls_carry_trait_and_type() {
        let src = "impl WireEncode for Msg { fn decode() {} }\nimpl Plain { fn m() {} }\nimpl<T: Clone> Generic<T> { fn g() {} }";
        let f = SourceFile::parse("x.rs", src);
        assert_eq!(f.impls[0].trait_name.as_deref(), Some("WireEncode"));
        assert_eq!(f.impls[0].type_name, "Msg");
        assert_eq!(f.impls[1].trait_name, None);
        assert_eq!(f.impls[1].type_name, "Plain");
        assert_eq!(f.impls[2].type_name, "Generic");
        let decode = f.fns.iter().find(|f| f.name == "decode").unwrap();
        assert_eq!(
            f.impls[decode.impl_index.unwrap()].trait_name.as_deref(),
            Some("WireEncode")
        );
        let g = f.fns.iter().find(|f| f.name == "g").unwrap();
        assert_eq!(f.impls[g.impl_index.unwrap()].type_name, "Generic");
    }

    #[test]
    fn leading_comments_reach_past_attributes() {
        let src = "// kw-lint: hot\n// more context\n#[inline]\npub fn hot_loop() {}";
        let f = SourceFile::parse("x.rs", src);
        assert!(f.fns[0].leading_comments.contains("kw-lint: hot"));
        assert!(f.fns[0].leading_comments.contains("more context"));
    }

    #[test]
    fn cfg_any_including_test_is_masked() {
        let src = "#[cfg(any(test, feature = \"x\"))]\nmod helpers { fn h() {} }";
        let f = SourceFile::parse("x.rs", src);
        assert!(f.fns[0].is_test);
    }
}
