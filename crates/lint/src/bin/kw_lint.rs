//! `kw-lint` — run the workspace invariant rules.
//!
//! ```text
//! kw-lint [ROOT] [--bless-schema]
//! ```
//!
//! * `ROOT` — workspace root to lint (default: current directory).
//! * `--bless-schema` — recompute the store writer fingerprints and
//!   rewrite `lint.schema`'s entry for the current `SCHEMA_VERSION`
//!   (history lines for older versions are preserved), then lint.
//!
//! Exit codes: `0` clean, `1` findings, `2` internal error (bad
//! arguments, unreadable workspace). CI's `lint_smoke` step treats
//! each accordingly.

use std::path::PathBuf;
use std::process::ExitCode;

use kw_lint::workspace::Workspace;

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut bless = false;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--bless-schema" => bless = true,
            "--help" | "-h" => {
                println!("usage: kw-lint [ROOT] [--bless-schema]");
                return ExitCode::SUCCESS;
            }
            _ if arg.starts_with('-') => {
                eprintln!("kw-lint: unknown flag `{arg}` (try --help)");
                return ExitCode::from(2);
            }
            _ => root = PathBuf::from(arg),
        }
    }

    let mut ws = match Workspace::load(&root) {
        Ok(ws) => ws,
        Err(e) => {
            eprintln!("kw-lint: cannot load workspace at {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    if bless {
        match ws.bless_schema() {
            Ok(contents) => {
                let path = root.join(kw_lint::rules::schema_drift::SCHEMA_FILE);
                if let Err(e) = std::fs::write(&path, &contents) {
                    eprintln!("kw-lint: cannot write {}: {e}", path.display());
                    return ExitCode::from(2);
                }
                println!("kw-lint: blessed {}", path.display());
                ws.schema = Some(contents);
            }
            Err(diags) => {
                for d in &diags {
                    eprintln!("{d}");
                }
                return ExitCode::from(2);
            }
        }
    }

    let findings = ws.run();
    if findings.is_empty() {
        println!(
            "kw-lint: clean ({} files, {} rules)",
            ws.files.len(),
            kw_lint::RULES.len()
        );
        ExitCode::SUCCESS
    } else {
        for d in &findings {
            println!("{d}");
        }
        println!("kw-lint: {} finding(s)", findings.len());
        ExitCode::from(1)
    }
}
