//! A hand-rolled Rust lexer: just enough to analyze the workspace.
//!
//! Produces a flat token stream with 1-based line numbers. Comments are
//! kept as tokens (rules read `// SAFETY:` and `// kw-lint:` markers);
//! string/char literals are single tokens so rule pattern matching never
//! fires on text inside them. The lexer is deliberately lossy about
//! things no rule needs (numeric suffix grammar, float exponents split
//! across tokens) and exact about the things rules do need: nested block
//! comments, raw/byte strings, and the char-literal vs. lifetime
//! ambiguity after `'`.

/// What a token is, at the granularity rules care about.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`fn`, `unsafe`, `Vec`, …).
    Ident,
    /// A lifetime (`'a`, `'static`) — distinct from char literals.
    Lifetime,
    /// Numeric literal (integers and floats, suffixes included).
    Num,
    /// String, raw-string, byte-string, or char literal, quotes included.
    Str,
    /// One punctuation character (`{`, `[`, `!`, `.`, …).
    Punct,
    /// `// …` comment, text included (doc comments too).
    LineComment,
    /// `/* … */` comment, text included, nesting handled.
    BlockComment,
}

/// One lexed token.
#[derive(Clone, Debug)]
pub struct Token {
    /// Classification.
    pub kind: TokKind,
    /// The exact source text of the token.
    pub text: String,
    /// 1-based line of the token's first character.
    pub line: usize,
}

impl Token {
    /// Whether this token is a comment (skipped by code-pattern rules).
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, TokKind::LineComment | TokKind::BlockComment)
    }

    /// Whether this token is exactly the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.len() == 1 && self.text.as_bytes()[0] == c as u8
    }

    /// Whether this token is the identifier `name`.
    pub fn is_ident(&self, name: &str) -> bool {
        self.kind == TokKind::Ident && self.text == name
    }
}

/// Lexes `source` into tokens. Never fails: unterminated constructs
/// (string, block comment) consume to end-of-file, which is the useful
/// behavior for an analyzer that must not panic on the code it reads.
pub fn lex(source: &str) -> Vec<Token> {
    let bytes = source.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0usize;
    let mut line = 1usize;
    while i < bytes.len() {
        let c = bytes[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            _ if c.is_ascii_whitespace() => i += 1,
            b'/' if bytes.get(i + 1) == Some(&b'/') => {
                let start = i;
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
                tokens.push(tok(TokKind::LineComment, &source[start..i], line));
            }
            b'/' if bytes.get(i + 1) == Some(&b'*') => {
                let (start, start_line) = (i, line);
                let mut depth = 1usize;
                i += 2;
                while i < bytes.len() && depth > 0 {
                    if bytes[i] == b'\n' {
                        line += 1;
                        i += 1;
                    } else if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        i += 2;
                    } else if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                tokens.push(tok(TokKind::BlockComment, &source[start..i], start_line));
            }
            b'"' => {
                let (start, start_line) = (i, line);
                i = scan_string(bytes, i, &mut line);
                tokens.push(tok(TokKind::Str, &source[start..i], start_line));
            }
            b'\'' => {
                // Lifetime or char literal. `'\…'` and `'x'` are chars;
                // `'ident` not closed by a quote is a lifetime.
                let is_char = match bytes.get(i + 1) {
                    Some(b'\\') => true,
                    Some(_) => bytes.get(i + 2) == Some(&b'\''),
                    None => false,
                };
                if is_char {
                    let (start, start_line) = (i, line);
                    i += 1; // opening quote
                    if bytes.get(i) == Some(&b'\\') {
                        i += 2; // escape lead-in: skip `\` and the next byte
                        while i < bytes.len() && bytes[i] != b'\'' {
                            i += 1; // `\u{…}` tails
                        }
                    } else if i < bytes.len() {
                        // One char, possibly multi-byte UTF-8.
                        i += utf8_len(bytes[i]);
                    }
                    i += 1; // closing quote
                    let end = i.min(bytes.len());
                    tokens.push(tok(TokKind::Str, &source[start..end], start_line));
                } else {
                    let start = i;
                    i += 1;
                    while i < bytes.len() && (bytes[i] == b'_' || bytes[i].is_ascii_alphanumeric())
                    {
                        i += 1;
                    }
                    tokens.push(tok(TokKind::Lifetime, &source[start..i], line));
                }
            }
            _ if c == b'_' || c.is_ascii_alphabetic() => {
                // Raw/byte string prefixes lex as part of the literal.
                let start_line = line;
                if let Some(end) = scan_raw_or_byte_string(bytes, i, &mut line) {
                    tokens.push(tok(TokKind::Str, &source[i..end], start_line));
                    i = end;
                    continue;
                }
                let start = i;
                while i < bytes.len() && (bytes[i] == b'_' || bytes[i].is_ascii_alphanumeric()) {
                    i += 1;
                }
                tokens.push(tok(TokKind::Ident, &source[start..i], line));
            }
            _ if c.is_ascii_digit() => {
                let start = i;
                i += 1;
                while i < bytes.len() {
                    let b = bytes[i];
                    if b == b'_' || b.is_ascii_alphanumeric() {
                        i += 1;
                    } else if b == b'.'
                        && bytes.get(i + 1).is_some_and(u8::is_ascii_digit)
                        && !source[start..i].contains('.')
                    {
                        i += 1; // the one decimal point of a float
                    } else {
                        break;
                    }
                }
                tokens.push(tok(TokKind::Num, &source[start..i], line));
            }
            _ => {
                let len = utf8_len(c);
                tokens.push(tok(TokKind::Punct, &source[i..i + len], line));
                i += len;
            }
        }
    }
    tokens
}

fn tok(kind: TokKind, text: &str, line: usize) -> Token {
    Token {
        kind,
        text: text.to_string(),
        line,
    }
}

fn utf8_len(lead: u8) -> usize {
    match lead {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

/// Scans a `"…"` string starting at the opening quote; returns the index
/// one past the closing quote (or end of file).
fn scan_string(bytes: &[u8], mut i: usize, line: &mut usize) -> usize {
    i += 1;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' => {
                // Escapes are two bytes — and a line continuation
                // (`\` before a newline) still ends a source line.
                if bytes.get(i + 1) == Some(&b'\n') {
                    *line += 1;
                }
                i += 2;
            }
            b'"' => return i + 1,
            b'\n' => {
                *line += 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    i
}

/// If an identifier-looking position starts a raw or byte string
/// (`r"…"`, `r#"…"#`, `b"…"`, `br#"…"#`), scans it and returns the end
/// index; otherwise `None`.
fn scan_raw_or_byte_string(bytes: &[u8], start: usize, line: &mut usize) -> Option<usize> {
    let mut i = start;
    let mut raw = false;
    match bytes[i] {
        b'b' => {
            i += 1;
            if bytes.get(i) == Some(&b'r') {
                raw = true;
                i += 1;
            }
        }
        b'r' => {
            raw = true;
            i += 1;
        }
        _ => return None,
    }
    if raw {
        let mut hashes = 0usize;
        while bytes.get(i) == Some(&b'#') {
            hashes += 1;
            i += 1;
        }
        if bytes.get(i) != Some(&b'"') {
            return None; // plain ident starting with r/b (`record`, …)
        }
        i += 1;
        // Scan to `"` followed by `hashes` hash marks.
        while i < bytes.len() {
            if bytes[i] == b'\n' {
                *line += 1;
                i += 1;
            } else if bytes[i] == b'"'
                && bytes
                    .get(i + 1..i + 1 + hashes)
                    .is_some_and(|tail| tail.iter().all(|&b| b == b'#'))
            {
                return Some(i + 1 + hashes);
            } else {
                i += 1;
            }
        }
        Some(i)
    } else {
        // `b"…"` byte string (non-raw): same escape rules as strings.
        if bytes.get(i) != Some(&b'"') {
            return None;
        }
        Some(scan_string(bytes, i, line))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn idents_numbers_punct() {
        let toks = kinds("fn foo(x: u32) -> bool { x[0] == 1.5 }");
        assert!(toks.contains(&(TokKind::Ident, "fn".into())));
        assert!(toks.contains(&(TokKind::Num, "1.5".into())));
        assert!(toks.contains(&(TokKind::Punct, "[".into())));
    }

    #[test]
    fn strings_swallow_code_like_text() {
        let toks = kinds(r#"let s = "call .unwrap() here";"#);
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokKind::Str && t.contains("unwrap")));
        assert!(!toks
            .iter()
            .any(|(k, t)| *k == TokKind::Ident && t == "unwrap"));
    }

    #[test]
    fn raw_and_byte_strings() {
        let toks = kinds(r##"let s = r#"has "quotes" and .expect("x")"#; let b = b"bytes";"##);
        let strs: Vec<_> = toks.iter().filter(|(k, _)| *k == TokKind::Str).collect();
        assert_eq!(strs.len(), 2);
        assert!(!toks
            .iter()
            .any(|(k, t)| *k == TokKind::Ident && t == "expect"));
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let toks = kinds("fn f<'a>(x: &'a str) -> char { '\\n' } // 'x'");
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokKind::Lifetime && t == "'a"));
        assert!(toks.iter().any(|(k, t)| *k == TokKind::Str && t == "'\\n'"));
        let plain = kinds("let c = 'q'; let underscore = '_';");
        assert!(plain.iter().any(|(k, t)| *k == TokKind::Str && t == "'q'"));
        assert!(plain.iter().any(|(k, t)| *k == TokKind::Str && t == "'_'"));
    }

    #[test]
    fn nested_block_comments_and_line_numbers() {
        let src = "a\n/* outer /* inner */ still */\nb";
        let toks = lex(src);
        assert_eq!(toks.len(), 3);
        assert_eq!(toks[1].kind, TokKind::BlockComment);
        assert_eq!(toks[2].line, 3, "line count survives block comments");
    }

    #[test]
    fn comments_are_tokens_with_text() {
        let toks = lex("// kw-lint: hot\nfn f() {}");
        assert_eq!(toks[0].kind, TokKind::LineComment);
        assert!(toks[0].text.contains("kw-lint: hot"));
        assert_eq!(toks[1].line, 2);
    }

    #[test]
    fn unterminated_constructs_consume_to_eof_without_panic() {
        for src in ["\"never closed", "/* never closed", "r#\"never closed"] {
            let toks = lex(src);
            assert!(!toks.is_empty());
        }
    }

    #[test]
    fn string_line_continuations_count_lines() {
        let src = "let s = \"first \\\n    second\";\nfn after() {}";
        let toks = lex(src);
        let after = toks.iter().find(|t| t.is_ident("after")).unwrap();
        assert_eq!(after.line, 3);
    }

    #[test]
    fn prefixed_idents_are_not_strings() {
        let toks = kinds("let record = 5; let b = r_value;");
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokKind::Ident && t == "record"));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokKind::Ident && t == "r_value"));
    }
}
