//! `hot-alloc`: allocation-stability of the engine round loop.
//!
//! The engine's steady-state guarantee (PR 3 onward) is that once the
//! arenas are sized, a round executes with **zero heap allocation** —
//! that is what makes per-round timings comparable across runs and
//! keeps the worker pool's chunks cache-resident. The guarantee is
//! opt-in per function: a `// kw-lint: hot` marker in the comment block
//! above a function puts its body in scope, and this rule then bans the
//! easy-to-miss allocation idioms:
//!
//! * `Vec::new(…)` / `vec![…]` / `.to_vec()`
//! * `.push(…)` (growth may reallocate)
//! * `format!` / `String` (any use — construction or conversion)
//! * `.to_string()` / `.to_owned()` / `Box::new(…)` / `.clone()` on
//!   obvious owners is *not* banned wholesale — only the idioms above,
//!   which cover every regression the engine has actually had.
//!
//! The rule also guards its own coverage: if the engine source
//! (`crates/sim/src/engine.rs`) is present but carries **no** hot
//! markers at all, that is a diagnostic — deleting the annotations must
//! not silently disable the rule.

use crate::lexer::TokKind;
use crate::source::SourceFile;
use crate::workspace::Workspace;
use crate::Diagnostic;

const RULE: &str = "hot-alloc";

/// The annotation that opts a function into this rule.
pub const HOT_MARKER: &str = "kw-lint: hot";

/// The engine source whose round loop must carry hot markers.
const ENGINE_FILE: &str = "crates/sim/src/engine.rs";

pub fn check(ws: &Workspace) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for file in &ws.files {
        let mut hot_fns = 0usize;
        for f in &file.fns {
            if f.is_test || !f.leading_comments.contains(HOT_MARKER) {
                continue;
            }
            hot_fns += 1;
            scan_body(file, f, &mut out);
        }
        if file.rel_path == ENGINE_FILE && hot_fns == 0 {
            out.push(Diagnostic {
                rule: RULE,
                file: file.rel_path.clone(),
                line: 1,
                message: format!(
                    "engine round loop carries no `// {HOT_MARKER}` annotations — the \
                     allocation-stability rule has nothing to check; re-annotate the \
                     round-loop functions (removing a marker needs a lint.allow entry)"
                ),
                snippet: String::new(),
            });
        }
    }
    out
}

fn scan_body(file: &SourceFile, f: &crate::source::FnItem, out: &mut Vec<Diagnostic>) {
    let toks: Vec<(usize, &crate::lexer::Token)> = file.code_tokens(f.body.clone()).collect();
    let diag = |line: usize, what: &str| Diagnostic {
        rule: RULE,
        file: file.rel_path.clone(),
        line,
        message: format!(
            "{what} in hot fn `{}` — round-loop code must not allocate; reuse an arena \
             buffer sized at setup, or drop the `// {HOT_MARKER}` marker if this \
             function left the round loop",
            f.name
        ),
        snippet: file.snippet(line),
    };
    for (k, (_, t)) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident {
            continue;
        }
        let prev_dot = k > 0 && toks[k - 1].1.is_punct('.');
        let next_paren = toks.get(k + 1).is_some_and(|(_, n)| n.is_punct('('));
        let next_bang = toks.get(k + 1).is_some_and(|(_, n)| n.is_punct('!'));
        let next_colons = toks.get(k + 1).is_some_and(|(_, n)| n.is_punct(':'))
            && toks.get(k + 2).is_some_and(|(_, n)| n.is_punct(':'));
        match t.text.as_str() {
            "Vec" if next_colons => {
                // `Vec::new`, `Vec::with_capacity`, `Vec::from` — any
                // associated constructor allocates (or may).
                out.push(diag(t.line, "`Vec::…` constructor"));
            }
            "vec" if next_bang => out.push(diag(t.line, "`vec![…]`")),
            "format" if next_bang => out.push(diag(t.line, "`format!`")),
            "String" => out.push(diag(t.line, "`String` use")),
            "push" | "to_vec" | "to_string" | "to_owned" if prev_dot && next_paren => {
                out.push(diag(t.line, &format!("`.{}(…)`", t.text)));
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workspace::Workspace;

    fn ws_with(rel: &str, src: &str) -> Workspace {
        Workspace::from_sources(vec![(rel.to_string(), src.to_string())])
    }

    #[test]
    fn unannotated_functions_are_out_of_scope() {
        let ws = ws_with(
            "crates/x/src/lib.rs",
            "fn cold() { let mut v = Vec::new(); v.push(1); }",
        );
        assert!(check(&ws).is_empty());
    }

    #[test]
    fn hot_function_allocations_are_flagged() {
        let ws = ws_with(
            "crates/x/src/lib.rs",
            "// kw-lint: hot\nfn hot() { let mut v = Vec::new(); v.push(1); let s = format!(\"x\"); }",
        );
        let d = check(&ws);
        assert_eq!(d.len(), 3, "{d:?}");
        assert!(d.iter().all(|d| d.rule == "hot-alloc"));
    }

    #[test]
    fn string_and_to_vec_are_flagged() {
        let ws = ws_with(
            "crates/x/src/lib.rs",
            "// kw-lint: hot\nfn hot(b: &[u8]) { let s = String::new(); let v = b.to_vec(); drop((s, v)); }",
        );
        assert_eq!(check(&ws).len(), 2);
    }

    #[test]
    fn arena_reuse_idioms_pass() {
        let ws = ws_with(
            "crates/x/src/lib.rs",
            "// kw-lint: hot\nfn hot(buf: &mut [u64]) { for b in buf.iter_mut() { *b = b.wrapping_add(1); } }",
        );
        assert!(check(&ws).is_empty());
    }

    #[test]
    fn engine_without_markers_is_a_finding() {
        let ws = ws_with("crates/sim/src/engine.rs", "fn round() {}");
        let d = check(&ws);
        assert_eq!(d.len(), 1);
        assert!(d[0].message.contains("no `// kw-lint: hot`"));
    }

    #[test]
    fn pushdown_named_idents_without_dot_are_fine() {
        // `push` as a field or free fn isn't the Vec method.
        let ws = ws_with(
            "crates/x/src/lib.rs",
            "// kw-lint: hot\nfn hot(p: &P) -> u32 { p.push_count + push_estimate(p) }",
        );
        assert!(check(&ws).is_empty(), "{:?}", check(&ws));
    }
}
