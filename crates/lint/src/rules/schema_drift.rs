//! `schema-drift`: the store's lines-are-forever contract, enforced.
//!
//! `kw_results::store` appends JSONL lines that downstream tooling
//! (`kw-results`, `kw-serve`'s cache, the trace viewer) parses by field
//! name, and ROADMAP policy says every shape change bumps
//! `SCHEMA_VERSION` so old stores remain readable. The runtime tests
//! catch *incompatible* readers; this rule catches the quieter failure
//! where someone adds or renames a field and forgets the bump.
//!
//! Mechanism: for each line-writer function in the store source, the
//! rule hashes (FNV-1a 64) the ordered sequence of string literals in
//! its body — which is exactly the field-name/key sequence of the
//! written line — and compares against the checked-in fingerprint file
//! (`lint.schema` at the workspace root), keyed by schema version:
//!
//! ```text
//! v4 manifest=… record=… bench=… trace=…
//! ```
//!
//! Changing a writer's literals without bumping `SCHEMA_VERSION` makes
//! the current version's fingerprint mismatch → diagnostic. Bumping the
//! version makes the entry *missing* → diagnostic telling you to run
//! `kw-lint --bless-schema`, which appends the new line (history stays;
//! old versions' lines are never rewritten).

use crate::workspace::Workspace;
use crate::Diagnostic;

const RULE: &str = "schema-drift";

/// The store source whose writers are fingerprinted.
const STORE_FILE: &str = "crates/results/src/store.rs";

/// The checked-in fingerprint file at the workspace root.
pub const SCHEMA_FILE: &str = "lint.schema";

/// The line-writer functions, with the short keys used in `lint.schema`.
const WRITERS: [(&str, &str); 4] = [
    ("append_manifest", "manifest"),
    ("append_record", "record"),
    ("append_bench", "bench"),
    ("append_trace", "trace"),
];

/// The computed shape of the store source: schema version plus one
/// fingerprint per writer, in [`WRITERS`] order.
pub struct StoreShape {
    pub version: u64,
    pub fingerprints: Vec<(&'static str, u64)>,
}

impl StoreShape {
    /// The `lint.schema` line for this shape.
    pub fn schema_line(&self) -> String {
        let mut line = format!("v{}", self.version);
        for (key, fp) in &self.fingerprints {
            line.push_str(&format!(" {key}={fp:016x}"));
        }
        line
    }
}

pub fn check(ws: &Workspace) -> Vec<Diagnostic> {
    let Some(file) = ws.files.iter().find(|f| f.rel_path == STORE_FILE) else {
        return Vec::new(); // unit-test workspaces without a store
    };
    let mut out = Vec::new();
    let shape = match compute_shape(ws) {
        Ok(shape) => shape,
        Err(diags) => return diags,
    };
    let Some(schema) = &ws.schema else {
        out.push(Diagnostic {
            rule: RULE,
            file: SCHEMA_FILE.to_string(),
            line: 1,
            message: format!(
                "missing {SCHEMA_FILE} — run `kw-lint --bless-schema` to record the \
                 current writer fingerprints for schema v{}",
                shape.version
            ),
            snippet: String::new(),
        });
        return out;
    };
    let want_prefix = format!("v{} ", shape.version);
    let Some((line_no, entry)) = schema
        .lines()
        .enumerate()
        .find(|(_, l)| l.trim().starts_with(&want_prefix))
    else {
        out.push(Diagnostic {
            rule: RULE,
            file: SCHEMA_FILE.to_string(),
            line: 1,
            message: format!(
                "no fingerprint entry for schema v{} — if the version bump is \
                 intentional, run `kw-lint --bless-schema` to append the new entry",
                shape.version
            ),
            snippet: String::new(),
        });
        return out;
    };
    for (key, fp) in &shape.fingerprints {
        let want = format!("{key}={fp:016x}");
        if !entry.split_whitespace().any(|tok| tok == want) {
            out.push(Diagnostic {
                rule: RULE,
                file: file.rel_path.clone(),
                line: writer_line(file, key),
                message: format!(
                    "`{}`'s serialized field set changed under schema v{} (fingerprint \
                     {fp:016x} does not match {SCHEMA_FILE}:{}) — bump SCHEMA_VERSION \
                     in kw_results::store, then `kw-lint --bless-schema`",
                    writer_fn(key),
                    shape.version,
                    line_no + 1,
                ),
                snippet: file.snippet(writer_line(file, key)),
            });
        }
    }
    out
}

/// Computes the store shape: schema version + per-writer fingerprints.
/// `Err` carries diagnostics for structural problems (missing version
/// constant or writer function).
pub fn compute_shape(ws: &Workspace) -> Result<StoreShape, Vec<Diagnostic>> {
    let Some(file) = ws.files.iter().find(|f| f.rel_path == STORE_FILE) else {
        return Err(Vec::new());
    };
    let structural = |line: usize, message: String| Diagnostic {
        rule: RULE,
        file: file.rel_path.clone(),
        line,
        message,
        snippet: file.snippet(line),
    };
    let Some(version) = schema_version(file) else {
        return Err(vec![structural(
            1,
            "cannot find `SCHEMA_VERSION: u64 = <n>` in the store source — the \
             drift rule needs it to key fingerprints"
                .to_string(),
        )]);
    };
    let mut fingerprints = Vec::with_capacity(WRITERS.len());
    let mut missing = Vec::new();
    for (fn_name, key) in WRITERS {
        match file.fns.iter().find(|f| f.name == fn_name && !f.is_test) {
            Some(f) => fingerprints.push((key, fingerprint(file, f))),
            None => missing.push(structural(
                1,
                format!(
                    "line writer `{fn_name}` not found in the store source — update \
                     the schema-drift rule's writer list if it was renamed"
                ),
            )),
        }
    }
    if missing.is_empty() {
        Ok(StoreShape {
            version,
            fingerprints,
        })
    } else {
        Err(missing)
    }
}

fn writer_fn(key: &str) -> &'static str {
    WRITERS
        .iter()
        .find(|(_, k)| *k == key)
        .map(|(f, _)| *f)
        .unwrap_or("?")
}

fn writer_line(file: &crate::source::SourceFile, key: &str) -> usize {
    file.fns
        .iter()
        .find(|f| f.name == writer_fn(key))
        .map(|f| f.line)
        .unwrap_or(1)
}

/// Extracts `SCHEMA_VERSION`'s numeric value from the token stream.
fn schema_version(file: &crate::source::SourceFile) -> Option<u64> {
    let toks: Vec<_> = file.tokens.iter().filter(|t| !t.is_comment()).collect();
    for (k, t) in toks.iter().enumerate() {
        if t.is_ident("SCHEMA_VERSION") {
            // `SCHEMA_VERSION : u64 = <num>` — find the first numeric
            // token after the `=`.
            let after_eq = toks[k + 1..]
                .iter()
                .skip_while(|t| !t.is_punct('='))
                .find(|t| t.kind == crate::lexer::TokKind::Num)?;
            return after_eq.text.replace('_', "").parse().ok();
        }
    }
    None
}

/// FNV-1a 64 over the ordered string literals of the writer's body.
/// Literal *text* (quotes included) is hashed with a separator, so both
/// renames and re-orderings change the fingerprint.
fn fingerprint(file: &crate::source::SourceFile, f: &crate::source::FnItem) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut hash = OFFSET;
    for (_, t) in file.code_tokens(f.body.clone()) {
        if t.kind == crate::lexer::TokKind::Str {
            for &b in t.text.as_bytes() {
                hash = (hash ^ u64::from(b)).wrapping_mul(PRIME);
            }
            hash = (hash ^ 0x1f).wrapping_mul(PRIME); // literal separator
        }
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workspace::Workspace;

    const STORE_SRC: &str = r#"
pub const SCHEMA_VERSION: u64 = 4;
fn append_manifest(w: &mut W) { w.field("v"); w.field("kind"); }
fn append_record(w: &mut W) { w.field("v"); w.field("solver"); }
fn append_bench(w: &mut W) { w.field("v"); w.field("bench"); }
fn append_trace(w: &mut W) { w.field("v"); w.field("rounds"); }
"#;

    fn store_ws(src: &str, schema: Option<&str>) -> Workspace {
        let mut ws = Workspace::from_sources(vec![(
            "crates/results/src/store.rs".to_string(),
            src.to_string(),
        )]);
        ws.schema = schema.map(str::to_string);
        ws
    }

    fn blessed(src: &str) -> String {
        compute_shape(&store_ws(src, None)).unwrap().schema_line()
    }

    #[test]
    fn blessed_fingerprints_are_clean() {
        let line = blessed(STORE_SRC);
        assert!(line.starts_with("v4 manifest="), "{line}");
        let ws = store_ws(STORE_SRC, Some(&line));
        assert!(check(&ws).is_empty(), "{:?}", check(&ws));
    }

    #[test]
    fn field_change_without_bump_is_flagged() {
        let line = blessed(STORE_SRC);
        let mutated = STORE_SRC.replace("\"solver\"", "\"solver_id\"");
        let d = check(&store_ws(&mutated, Some(&line)));
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("append_record"));
        assert!(d[0].message.contains("bump SCHEMA_VERSION"));
    }

    #[test]
    fn field_reordering_is_also_drift() {
        let line = blessed(STORE_SRC);
        let mutated = STORE_SRC.replace(
            "w.field(\"v\"); w.field(\"bench\")",
            "w.field(\"bench\"); w.field(\"v\")",
        );
        let d = check(&store_ws(&mutated, Some(&line)));
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("append_bench"));
    }

    #[test]
    fn version_bump_asks_for_bless_not_drift() {
        let line = blessed(STORE_SRC);
        let bumped = STORE_SRC.replace("u64 = 4", "u64 = 5");
        let d = check(&store_ws(&bumped, Some(&line)));
        assert_eq!(d.len(), 1);
        assert!(d[0].message.contains("no fingerprint entry for schema v5"));
        assert!(d[0].message.contains("--bless-schema"));
    }

    #[test]
    fn missing_schema_file_is_reported() {
        let d = check(&store_ws(STORE_SRC, None));
        assert_eq!(d.len(), 1);
        assert!(d[0].message.contains("missing lint.schema"));
    }

    #[test]
    fn history_lines_are_preserved_alongside_current() {
        let schema = format!(
            "v3 manifest=dead record=beef bench=00 trace=00\n{}",
            blessed(STORE_SRC)
        );
        let ws = store_ws(STORE_SRC, Some(&schema));
        assert!(check(&ws).is_empty());
    }

    #[test]
    fn missing_writer_is_structural() {
        let src = STORE_SRC.replace("append_trace", "append_span");
        let d = check(&store_ws(&src, Some("v4 x=0")));
        assert_eq!(d.len(), 1);
        assert!(d[0].message.contains("append_trace"));
    }
}
