//! The rule set. Each rule is a function from a parsed [`Workspace`]
//! to diagnostics; `all` runs every rule in catalog order.
//!
//! Rules are *deny by default*: they report every occurrence they can
//! see, and intentional exceptions live in the checked-in allowlist
//! (`lint.allow`) with per-entry justifications — never as silent
//! special cases inside the rule code.

pub mod hot_alloc;
pub mod panic_path;
pub mod schema_drift;
pub mod spec_roundtrip;
pub mod unsafe_audit;

use crate::workspace::Workspace;
use crate::Diagnostic;

/// Runs every rule over the workspace, in catalog order.
pub fn all(ws: &Workspace) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    out.extend(panic_path::check(ws));
    out.extend(hot_alloc::check(ws));
    out.extend(unsafe_audit::check(ws));
    out.extend(schema_drift::check(ws));
    out.extend(spec_roundtrip::check(ws));
    out
}
