//! `spec-roundtrip`: every spec grammar canonicalizes and round-trips.
//!
//! The workspace has three user-facing spec grammars — solver specs
//! (`greedy`, `kw:k=2,rounds=auto`, …), workload specs
//! (`random:n=1000,deg=16`, …), and chaos plans (`churn:rate=0.1`, …).
//! Each is a `parse` function, and the contract (ROADMAP, "specs are
//! data") is that each parsed value can print itself back to a
//! canonical spec string that re-parses to the same value. That is what
//! makes stored manifests replayable and cache keys stable.
//!
//! For every registered grammar type this rule requires, anywhere in
//! the workspace:
//!
//! 1. an `impl` of the type with a `parse` function;
//! 2. an `impl` of the type with a `spec` canonicalizer;
//! 3. a test that exercises the round trip — its body must mention
//!    both `<Type>::parse` and `.spec(`.

use crate::lexer::TokKind;
use crate::workspace::Workspace;
use crate::Diagnostic;

const RULE: &str = "spec-roundtrip";

/// The registered spec-grammar types. Adding a grammar to the
/// workspace means adding it here (the fixture tests keep this list
/// honest: a registered type with no parse impl anywhere would fail
/// the workspace-clean check).
const SPEC_TYPES: [&str; 3] = ["SolverSpec", "Workload", "ChaosPlan"];

pub fn check(ws: &Workspace) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for ty in SPEC_TYPES {
        let mut parse_at: Option<(String, usize)> = None;
        let mut has_spec = false;
        let mut has_roundtrip_test = false;
        for file in &ws.files {
            for f in &file.fns {
                let of_type = f.impl_index.is_some_and(|k| file.impls[k].type_name == ty);
                if of_type && !f.is_test && f.name == "parse" {
                    parse_at.get_or_insert((file.rel_path.clone(), f.line));
                }
                if of_type && !f.is_test && f.name == "spec" {
                    has_spec = true;
                }
                if f.is_test && mentions_roundtrip(file, f, ty) {
                    has_roundtrip_test = true;
                }
            }
        }
        // A type with no `parse` impl anywhere is out of scope: the
        // rule anchors on the parser (unit-test workspaces opt in by
        // including the grammar's file; the fixture suite checks the
        // real workspace has all three).
        let Some((parse_file, parse_line)) = parse_at else {
            continue;
        };
        if !has_spec {
            out.push(Diagnostic {
                rule: RULE,
                file: parse_file.clone(),
                line: parse_line,
                message: format!(
                    "`{ty}::parse` has no matching `{ty}::spec` canonicalizer — every \
                     spec grammar must print back a string that re-parses to the same \
                     value (manifests and cache keys depend on it)"
                ),
                snippet: String::new(),
            });
        }
        if !has_roundtrip_test {
            out.push(Diagnostic {
                rule: RULE,
                file: parse_file,
                line: parse_line,
                message: format!(
                    "no round-trip test found for `{ty}` — add a test whose body calls \
                     `{ty}::parse` on the output of `.spec()`"
                ),
                snippet: String::new(),
            });
        }
    }
    out
}

/// Whether test fn `f` exercises `<ty>::parse` and `.spec(`.
fn mentions_roundtrip(
    file: &crate::source::SourceFile,
    f: &crate::source::FnItem,
    ty: &str,
) -> bool {
    let toks: Vec<(usize, &crate::lexer::Token)> = file.code_tokens(f.body.clone()).collect();
    let mut calls_parse = false;
    let mut calls_spec = false;
    for (k, (_, t)) in toks.iter().enumerate() {
        if t.is_ident(ty)
            && toks.get(k + 1).is_some_and(|(_, n)| n.is_punct(':'))
            && toks.get(k + 2).is_some_and(|(_, n)| n.is_punct(':'))
            && toks.get(k + 3).is_some_and(|(_, n)| n.is_ident("parse"))
        {
            calls_parse = true;
        }
        if t.kind == TokKind::Ident
            && t.text == "spec"
            && k > 0
            && toks[k - 1].1.is_punct('.')
            && toks.get(k + 1).is_some_and(|(_, n)| n.is_punct('('))
        {
            calls_spec = true;
        }
    }
    calls_parse && calls_spec
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workspace::Workspace;

    const COMPLETE: &str = r#"
impl ChaosPlan {
    pub fn parse(s: &str) -> Option<ChaosPlan> { None }
    pub fn spec(&self) -> String { String::new() }
}
#[cfg(test)]
mod tests {
    #[test]
    fn roundtrip() {
        let p = ChaosPlan::parse("churn:rate=0.1").unwrap();
        assert_eq!(ChaosPlan::parse(&p.spec()), Some(p));
    }
}
"#;

    fn ws_with(src: &str) -> Workspace {
        Workspace::from_sources(vec![(
            "crates/sim/src/chaos.rs".to_string(),
            src.to_string(),
        )])
    }

    #[test]
    fn complete_grammar_is_clean() {
        assert!(
            check(&ws_with(COMPLETE)).is_empty(),
            "{:?}",
            check(&ws_with(COMPLETE))
        );
    }

    #[test]
    fn missing_spec_canonicalizer_is_flagged() {
        let src = COMPLETE.replace("pub fn spec(&self) -> String { String::new() }", "");
        let d = check(&ws_with(&src));
        assert!(
            d.iter()
                .any(|d| d.message.contains("no matching `ChaosPlan::spec`")),
            "{d:?}"
        );
    }

    #[test]
    fn missing_roundtrip_test_is_flagged() {
        let src = COMPLETE.replace("ChaosPlan::parse(&p.spec())", "p.clone()");
        let d = check(&ws_with(&src));
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("round-trip test"));
    }

    #[test]
    fn grammars_absent_from_small_workspaces_are_skipped() {
        let ws = Workspace::from_sources(vec![(
            "crates/x/src/lib.rs".to_string(),
            "fn f() {}".to_string(),
        )]);
        assert!(check(&ws).is_empty());
    }
}
