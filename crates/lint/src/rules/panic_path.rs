//! `panic-path`: the never-panic-on-input contract, statically.
//!
//! Two code regions must never reach a panic from untrusted bytes:
//!
//! * **wire decoders** — every `fn decode` (and `decode_*` helper) in
//!   non-test code. The simulator's byzantine chaos garbles payloads at
//!   the wire, and PR 7 found a *live* daemon panic when a decoder
//!   trusted its input; the contract since then is decode-or-reject:
//!   return `None`, never panic.
//! * **`kw_serve` request paths** — everything under `crates/serve/src/`
//!   except the client-side binaries. A malformed or adversarial HTTP
//!   request must map to a 4xx/5xx response; a panic in a worker thread
//!   is an outage.
//!
//! Flagged constructs: `.unwrap()`, `.expect(…)`, the panicking macros
//! (`panic!`, `unreachable!`, `todo!`, `unimplemented!`), and indexing
//! (`x[…]` — slice and map indexing panic on out-of-range/missing).
//! Provably-infallible sites (e.g. a mutex lock whose poisoning is
//! recovered elsewhere, an index bounded by construction) belong in
//! `lint.allow` with a justification saying *why* they cannot fire.

use crate::lexer::TokKind;
use crate::source::{FnItem, SourceFile};
use crate::workspace::Workspace;
use crate::Diagnostic;

const RULE: &str = "panic-path";

/// Whether `file` is part of the daemon's request-handling surface.
fn is_serve_request_path(rel_path: &str) -> bool {
    rel_path.starts_with("crates/serve/src/") && !rel_path.contains("/bin/")
}

/// Whether `f` is a wire-decode function: `decode` itself or a
/// `decode_*` helper feeding one.
fn is_decode_fn(f: &FnItem) -> bool {
    f.name == "decode" || f.name.starts_with("decode_")
}

pub fn check(ws: &Workspace) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for file in &ws.files {
        let serve = is_serve_request_path(&file.rel_path);
        for f in &file.fns {
            if f.is_test || f.body.is_empty() {
                continue;
            }
            let (in_scope, region) = if is_decode_fn(f) {
                (true, "wire-decode")
            } else if serve {
                (true, "serve request path")
            } else {
                (false, "")
            };
            if !in_scope {
                continue;
            }
            scan_body(file, f, region, &mut out);
        }
    }
    out
}

fn scan_body(file: &SourceFile, f: &FnItem, region: &str, out: &mut Vec<Diagnostic>) {
    let toks: Vec<(usize, &crate::lexer::Token)> = file.code_tokens(f.body.clone()).collect();
    let diag = |line: usize, what: String| Diagnostic {
        rule: RULE,
        file: file.rel_path.clone(),
        line,
        message: format!(
            "{what} in {region} fn `{}` — this path must never panic on input; \
             return an error (decoders: `None`, serve: 4xx/5xx) or allowlist with \
             a proof of infallibility",
            f.name
        ),
        snippet: file.snippet(line),
    };
    for (k, (_, t)) in toks.iter().enumerate() {
        match t.kind {
            TokKind::Ident => {
                let next_bang = toks.get(k + 1).is_some_and(|(_, n)| n.is_punct('!'));
                if next_bang
                    && matches!(
                        t.text.as_str(),
                        "panic" | "unreachable" | "todo" | "unimplemented"
                    )
                {
                    out.push(diag(t.line, format!("`{}!`", t.text)));
                }
                let prev_dot = k > 0 && toks[k - 1].1.is_punct('.');
                let next_paren = toks.get(k + 1).is_some_and(|(_, n)| n.is_punct('('));
                if prev_dot && next_paren && matches!(t.text.as_str(), "unwrap" | "expect") {
                    out.push(diag(t.line, format!("`.{}(…)`", t.text)));
                }
            }
            TokKind::Punct if t.is_punct('[') => {
                // Indexing: `expr[…]` — the previous code token closes an
                // expression. `vec![…]`, attributes, types, and array
                // literals have a non-expression token before `[`.
                let indexes = k > 0
                    && match toks[k - 1].1 {
                        p if p.is_punct(')') || p.is_punct(']') => true,
                        // `self.0[i]`: tuple-field access then indexing.
                        p if p.kind == TokKind::Num => true,
                        p if p.kind == TokKind::Ident => !matches!(
                            p.text.as_str(),
                            // Keywords that may directly precede an array
                            // *type, literal, or slice pattern* — those
                            // brackets are not an indexing base.
                            "mut"
                                | "dyn"
                                | "return"
                                | "break"
                                | "in"
                                | "as"
                                | "const"
                                | "let"
                                | "ref"
                                | "box"
                                | "move"
                                | "else"
                                | "if"
                                | "match"
                        ),
                        _ => false,
                    };
                if indexes {
                    out.push(diag(t.line, "indexing `…[…]`".to_string()));
                }
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workspace::Workspace;

    fn ws_with(rel: &str, src: &str) -> Workspace {
        Workspace::from_sources(vec![(rel.to_string(), src.to_string())])
    }

    #[test]
    fn decode_unwrap_is_flagged_anywhere() {
        let ws = ws_with(
            "crates/x/src/wire.rs",
            "impl WireEncode for M { fn decode(r: &mut R) -> Option<M> { Some(r.get().unwrap()) } }",
        );
        let d = check(&ws);
        assert_eq!(d.len(), 1);
        assert!(d[0].message.contains("unwrap"));
        assert!(d[0].message.contains("wire-decode"));
    }

    #[test]
    fn serve_code_is_in_scope_but_bins_are_not() {
        let flagged = check(&ws_with(
            "crates/serve/src/http.rs",
            "fn route(b: &[u8]) { let x = b[0]; }",
        ));
        assert_eq!(flagged.len(), 1, "{flagged:?}");
        let bins = check(&ws_with(
            "crates/serve/src/bin/kw_serve.rs",
            "fn main() { run().unwrap(); }",
        ));
        assert!(bins.is_empty(), "client bins may panic at startup");
    }

    #[test]
    fn test_code_is_out_of_scope() {
        let ws = ws_with(
            "crates/serve/src/http.rs",
            "#[cfg(test)]\nmod tests { fn t() { x.unwrap(); } }",
        );
        assert!(check(&ws).is_empty());
    }

    #[test]
    fn panicking_macros_are_flagged() {
        let ws = ws_with(
            "crates/serve/src/service.rs",
            "fn handle() { unreachable!(\"no\"); }",
        );
        let d = check(&ws);
        assert_eq!(d.len(), 1);
        assert!(d[0].message.contains("unreachable"));
    }

    #[test]
    fn non_indexing_brackets_are_not_flagged() {
        let ws = ws_with(
            "crates/serve/src/http.rs",
            "fn f() -> [u8; 2] { let v = vec![1, 2]; let a: [u8; 2] = [0u8; 2]; a }",
        );
        assert!(check(&ws).is_empty(), "{:?}", check(&ws));
    }

    #[test]
    fn unwrap_or_variants_are_fine() {
        let ws = ws_with(
            "crates/serve/src/service.rs",
            "fn f(o: Option<u32>) -> u32 { o.unwrap_or(0).max(o.unwrap_or_default()) }",
        );
        assert!(check(&ws).is_empty());
    }
}
