//! `unsafe-audit`: the workspace's unsafe confinement policy.
//!
//! The only justified `unsafe` in this workspace is the worker pool's
//! lifetime-erasing job pointer (`crates/sim/src/pool.rs`): a scoped
//! borrow published to persistent worker threads, made sound by the
//! epoch barrier. Everything else is safe Rust, and stays that way by
//! construction:
//!
//! * every crate root (`src/lib.rs`) must carry an inner
//!   `#![forbid(unsafe_code)]` or `#![deny(unsafe_code)]` attribute;
//! * the `unsafe` keyword may appear only in the pool file;
//! * within the pool file, every `unsafe` token must sit under a
//!   `// SAFETY:` comment within the few lines above it, stating the
//!   invariant that makes the block sound.

use crate::workspace::Workspace;
use crate::Diagnostic;

const RULE: &str = "unsafe-audit";

/// The one file allowed to contain `unsafe`.
const POOL_FILE: &str = "crates/sim/src/pool.rs";

/// How many lines above an `unsafe` token a `// SAFETY:` comment may
/// sit (covers a multi-line justification plus the item header).
const SAFETY_WINDOW: usize = 8;

pub fn check(ws: &Workspace) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for file in &ws.files {
        let is_crate_root = file.rel_path == "src/lib.rs" || file.rel_path.ends_with("/src/lib.rs");
        if is_crate_root && !has_unsafe_gate(file) {
            out.push(Diagnostic {
                rule: RULE,
                file: file.rel_path.clone(),
                line: 1,
                message: "crate root lacks `#![forbid(unsafe_code)]` (or `deny`) — \
                          unsafe is confined to kw_sim's worker pool by policy"
                    .to_string(),
                snippet: file.snippet(1),
            });
        }
        for (k, t) in file.tokens.iter().enumerate() {
            if !t.is_ident("unsafe") || file.test_mask[k] {
                continue;
            }
            if file.rel_path != POOL_FILE {
                out.push(Diagnostic {
                    rule: RULE,
                    file: file.rel_path.clone(),
                    line: t.line,
                    message: "`unsafe` outside the worker pool — the confinement policy \
                              allows unsafe only in crates/sim/src/pool.rs"
                        .to_string(),
                    snippet: file.snippet(t.line),
                });
            } else if !has_safety_comment(file, t.line) {
                out.push(Diagnostic {
                    rule: RULE,
                    file: file.rel_path.clone(),
                    line: t.line,
                    message: format!(
                        "`unsafe` without a `// SAFETY:` comment in the {SAFETY_WINDOW} \
                         lines above it — state the invariant that makes this sound"
                    ),
                    snippet: file.snippet(t.line),
                });
            }
        }
    }
    out
}

/// Whether the crate root carries an inner forbid/deny of unsafe code.
fn has_unsafe_gate(file: &crate::source::SourceFile) -> bool {
    file.tokens.iter().enumerate().any(|(k, t)| {
        t.is_ident("unsafe_code")
            && file.tokens[..k]
                .iter()
                .rev()
                .filter(|p| !p.is_comment())
                .take(2)
                .any(|p| p.is_ident("forbid") || p.is_ident("deny"))
    })
}

/// Whether a `// SAFETY:` comment appears on `line` or within the
/// window of lines above it.
fn has_safety_comment(file: &crate::source::SourceFile, line: usize) -> bool {
    let lo = line.saturating_sub(SAFETY_WINDOW);
    (lo..=line).any(|l| {
        file.lines
            .get(l.saturating_sub(1))
            .is_some_and(|text| text.contains("SAFETY:"))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workspace::Workspace;

    #[test]
    fn unsafe_outside_pool_is_flagged() {
        let ws = Workspace::from_sources(vec![(
            "crates/core/src/graph.rs".to_string(),
            "fn f(p: *const u8) -> u8 { unsafe { *p } }".to_string(),
        )]);
        let d = check(&ws);
        assert_eq!(d.len(), 1);
        assert!(d[0].message.contains("outside the worker pool"));
    }

    #[test]
    fn pool_unsafe_needs_safety_comment() {
        let bare = Workspace::from_sources(vec![(
            "crates/sim/src/pool.rs".to_string(),
            "fn f(p: *const u8) -> u8 { unsafe { *p } }".to_string(),
        )]);
        assert_eq!(check(&bare).len(), 1);
        let justified = Workspace::from_sources(vec![(
            "crates/sim/src/pool.rs".to_string(),
            "fn f(p: *const u8) -> u8 {\n    // SAFETY: p is valid for the epoch (barrier holds it).\n    unsafe { *p }\n}".to_string(),
        )]);
        assert!(check(&justified).is_empty(), "{:?}", check(&justified));
    }

    #[test]
    fn crate_roots_must_gate_unsafe() {
        let open = Workspace::from_sources(vec![(
            "crates/x/src/lib.rs".to_string(),
            "pub fn f() {}".to_string(),
        )]);
        let d = check(&open);
        assert_eq!(d.len(), 1);
        assert!(d[0].message.contains("forbid"));
        for gate in ["#![forbid(unsafe_code)]", "#![deny(unsafe_code)]"] {
            let gated = Workspace::from_sources(vec![(
                "crates/x/src/lib.rs".to_string(),
                format!("{gate}\npub fn f() {{}}"),
            )]);
            assert!(check(&gated).is_empty(), "{gate}");
        }
    }

    #[test]
    fn allow_unsafe_code_is_not_a_gate() {
        let ws = Workspace::from_sources(vec![(
            "crates/x/src/lib.rs".to_string(),
            "#![allow(unsafe_code)]\npub fn f() {}".to_string(),
        )]);
        assert_eq!(check(&ws).len(), 1, "allow() must not satisfy the gate");
    }

    #[test]
    fn unsafe_in_strings_and_tests_is_ignored() {
        let ws = Workspace::from_sources(vec![(
            "crates/x/src/lib.rs".to_string(),
            "#![forbid(unsafe_code)]\nfn f() -> &'static str { \"unsafe\" }\n#[cfg(test)]\nmod t { fn g() { /* unsafe */ } }".to_string(),
        )]);
        assert!(check(&ws).is_empty());
    }
}
