//! Fixture-based self-tests: every rule has a known-bad fixture that
//! must produce its diagnostic and a known-good fixture that must come
//! up clean, plus the schema-drift mutation test and the workspace
//! self-check (the real repository lints clean — the same gate CI's
//! `lint_smoke` step enforces).
//!
//! Fixtures live in `tests/fixtures/` — a directory the workspace
//! walker deliberately skips, since the bad ones violate rules on
//! purpose. Each fixture is linted under a *virtual* workspace path
//! (rules scope by path), declared here next to its expectations.

use std::path::Path;

use kw_lint::rules::schema_drift;
use kw_lint::workspace::Workspace;

/// Loads a fixture file and lints it under the virtual path `as_path`.
fn lint_fixture(fixture: &str, as_path: &str) -> Vec<kw_lint::Diagnostic> {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures");
    let src = std::fs::read_to_string(dir.join(fixture))
        .unwrap_or_else(|e| panic!("fixture {fixture}: {e}"));
    Workspace::from_sources(vec![(as_path.to_string(), src)]).run()
}

fn rule_count(diags: &[kw_lint::Diagnostic], rule: &str) -> usize {
    diags.iter().filter(|d| d.rule == rule).count()
}

#[test]
fn panic_path_bad_fixture_fires() {
    let d = lint_fixture("panic_path_bad.rs", "crates/serve/src/handler.rs");
    assert_eq!(rule_count(&d, "panic-path"), 4, "{d:?}");
    let messages: Vec<&str> = d.iter().map(|d| d.message.as_str()).collect();
    assert!(messages
        .iter()
        .any(|m| m.contains("`.unwrap(…)`") && m.contains("wire-decode")));
    assert!(messages.iter().any(|m| m.contains("`panic!`")));
    assert!(messages
        .iter()
        .any(|m| m.contains("indexing") && m.contains("serve request path")));
    assert!(messages.iter().any(|m| m.contains("`.expect(…)`")));
}

#[test]
fn panic_path_good_fixture_is_clean() {
    let d = lint_fixture("panic_path_good.rs", "crates/serve/src/handler.rs");
    assert!(d.is_empty(), "{d:?}");
}

#[test]
fn hot_alloc_bad_fixture_fires() {
    let d = lint_fixture("hot_alloc_bad.rs", "crates/sim/src/engine.rs");
    assert_eq!(rule_count(&d, "hot-alloc"), 4, "{d:?}");
    for needle in ["`Vec::…`", "`.push(…)`", "`format!`", "`.to_vec(…)`"] {
        assert!(
            d.iter().any(|d| d.message.contains(needle)),
            "missing {needle}: {d:?}"
        );
    }
}

#[test]
fn hot_alloc_good_fixture_is_clean() {
    let d = lint_fixture("hot_alloc_good.rs", "crates/sim/src/engine.rs");
    assert!(d.is_empty(), "{d:?}");
}

#[test]
fn unsafe_outside_pool_fixture_fires() {
    let d = lint_fixture("unsafe_audit_bad.rs", "crates/graph/src/csr.rs");
    assert_eq!(rule_count(&d, "unsafe-audit"), 1, "{d:?}");
    assert!(d[0].message.contains("outside the worker pool"));
}

#[test]
fn pool_unsafe_without_safety_fixture_fires() {
    let d = lint_fixture(
        "unsafe_audit_pool_missing_safety.rs",
        "crates/sim/src/pool.rs",
    );
    assert_eq!(rule_count(&d, "unsafe-audit"), 1, "{d:?}");
    assert!(d[0].message.contains("SAFETY"));
}

#[test]
fn pool_unsafe_with_safety_fixture_is_clean() {
    let d = lint_fixture("unsafe_audit_good.rs", "crates/sim/src/pool.rs");
    assert!(d.is_empty(), "{d:?}");
}

#[test]
fn spec_roundtrip_bad_fixture_fires() {
    let d = lint_fixture("spec_roundtrip_bad.rs", "crates/sim/src/chaos.rs");
    assert_eq!(rule_count(&d, "spec-roundtrip"), 2, "{d:?}");
    assert!(d
        .iter()
        .any(|d| d.message.contains("no matching `ChaosPlan::spec`")));
    assert!(d.iter().any(|d| d.message.contains("round-trip test")));
}

#[test]
fn spec_roundtrip_good_fixture_is_clean() {
    let d = lint_fixture("spec_roundtrip_good.rs", "crates/sim/src/chaos.rs");
    assert!(d.is_empty(), "{d:?}");
}

/// The schema-drift mutation test the issue demands: bless the fixture
/// store's shape, then prove each kind of unbumped change is caught and
/// that a version bump routes to "bless", not "drift".
#[test]
fn schema_drift_mutations_are_caught() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures");
    let src = std::fs::read_to_string(dir.join("schema_store.rs")).unwrap();
    let store_ws = |source: &str, schema: Option<String>| {
        let mut ws = Workspace::from_sources(vec![(
            "crates/results/src/store.rs".to_string(),
            source.to_string(),
        )]);
        ws.schema = schema;
        ws
    };
    let blessed = schema_drift::compute_shape(&store_ws(&src, None))
        .unwrap_or_else(|d| panic!("{d:?}"))
        .schema_line();

    // Blessed shape: clean.
    assert!(store_ws(&src, Some(blessed.clone())).run().is_empty());

    // Renamed field, no bump: drift on exactly the mutated writer.
    let renamed = src.replace("w.field(\"seed\")", "w.field(\"rng_seed\")");
    let d = store_ws(&renamed, Some(blessed.clone())).run();
    assert_eq!(d.len(), 1, "{d:?}");
    assert!(d[0].message.contains("append_record") && d[0].message.contains("bump SCHEMA_VERSION"));

    // Added field, no bump: also drift.
    let added = src.replace(
        "w.field(\"best_ms\");",
        "w.field(\"best_ms\");\n    w.field(\"p99_ms\");",
    );
    let d = store_ws(&added, Some(blessed.clone())).run();
    assert_eq!(d.len(), 1, "{d:?}");
    assert!(d[0].message.contains("append_bench"));

    // Version bumped: the old entry no longer applies; the rule asks
    // for a bless instead of reporting drift.
    let bumped = src.replace("SCHEMA_VERSION: u64 = 4", "SCHEMA_VERSION: u64 = 5");
    let d = store_ws(&bumped, Some(blessed)).run();
    assert_eq!(d.len(), 1, "{d:?}");
    assert!(d[0].message.contains("no fingerprint entry for schema v5"));
    assert!(d[0].message.contains("--bless-schema"));
}

/// The gate itself: the real workspace lints clean. This is the same
/// check CI's `lint_smoke` runs via the binary — having it in the test
/// suite means a violation fails `cargo test` too, with the diagnostic
/// in the assertion message.
#[test]
fn workspace_is_lint_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let ws = Workspace::load(&root).expect("load workspace");
    assert!(
        ws.files.len() > 50,
        "walker found only {} files",
        ws.files.len()
    );
    let findings = ws.run();
    assert!(
        findings.is_empty(),
        "workspace has lint findings:\n{}",
        findings
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}
