// Fixture: every construct panic-path bans, in both scoped regions.
// Linted under the virtual path crates/serve/src/handler.rs.

struct Msg;

impl WireEncode for Msg {
    fn decode(r: &mut Reader) -> Option<Msg> {
        let tag = r.next().unwrap(); // BAD: unwrap in a decoder
        if tag > 7 {
            panic!("bad tag"); // BAD: panicking macro
        }
        Some(Msg)
    }
}

fn route(buf: &[u8]) -> u8 {
    let first = buf[0]; // BAD: unchecked indexing in serve code
    let parsed = parse(buf).expect("parse"); // BAD: expect
    first ^ parsed
}
