// Fixture: a miniature kw_results::store with the four line writers.
// Linted under crates/results/src/store.rs; the fixture test blesses
// this shape, then mutates field literals and the version constant to
// prove the drift rule notices each.

pub const SCHEMA_VERSION: u64 = 4;

fn append_manifest(w: &mut Writer) {
    w.field("v");
    w.field("kind");
    w.field("solvers");
}

fn append_record(w: &mut Writer) {
    w.field("v");
    w.field("kind");
    w.field("solver");
    w.field("seed");
    w.field("rounds");
}

fn append_bench(w: &mut Writer) {
    w.field("v");
    w.field("kind");
    w.field("bench");
    w.field("best_ms");
}

fn append_trace(w: &mut Writer) {
    w.field("v");
    w.field("kind");
    w.field("rounds");
    w.field("phase_us");
}
