// Fixture: the decode-or-reject and 4xx/5xx idioms panic-path wants.
// Linted under the virtual path crates/serve/src/handler.rs.

struct Msg;

impl WireEncode for Msg {
    fn decode(r: &mut Reader) -> Option<Msg> {
        let tag = r.next()?; // fallible, propagated
        if tag > 7 {
            return None; // reject, don't panic
        }
        Some(Msg)
    }
}

fn route(buf: &[u8]) -> Response {
    let Some(&first) = buf.first() else {
        return Response::error(400, "empty body");
    };
    match parse(buf) {
        Ok(parsed) => Response::ok(first ^ parsed),
        Err(_) => Response::error(400, "unparseable"),
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_panic_freely() {
        let v = vec![1, 2, 3];
        assert_eq!(v[0], parse(b"x").unwrap());
    }
}
