// Fixture: unsafe in the pool file itself, but without the mandatory
// SAFETY justification. Linted under crates/sim/src/pool.rs.

fn publish(p: *const u8) -> u8 {
    unsafe { *p } // BAD: no SAFETY comment above
}
