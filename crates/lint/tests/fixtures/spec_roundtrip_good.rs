// Fixture: a complete spec grammar — parse, spec() canonicalizer, and a
// test that round-trips through both. Linted under crates/sim/src/chaos.rs.

pub struct ChaosPlan;

impl ChaosPlan {
    pub fn parse(text: &str) -> Option<ChaosPlan> {
        if text.is_empty() {
            None
        } else {
            Some(ChaosPlan)
        }
    }

    pub fn spec(&self) -> String {
        String::from("reliable")
    }
}

#[cfg(test)]
mod tests {
    use super::ChaosPlan;

    #[test]
    fn spec_roundtrips() {
        let plan = ChaosPlan::parse("reliable").unwrap();
        assert!(ChaosPlan::parse(&plan.spec()).is_some());
    }
}
