// Fixture: the arena-reuse idiom the engine's round loop actually uses —
// buffers sized at setup, written in place every round.

// kw-lint: hot
fn round_step(state: &mut State) {
    for slot in state.scratch.iter_mut() {
        *slot = 0;
    }
    let (head, tail) = state.buf.split_at_mut(state.mid);
    head.copy_from_slice(tail);
    state.tick += 1;
}

// Unmarked helpers may allocate: setup is not the round loop.
fn setup(n: usize) -> Vec<u64> {
    let mut arena = Vec::new();
    arena.resize(n, 0);
    arena
}
