// Fixture: allocation idioms inside a marked round-loop function.

// kw-lint: hot
fn round_step(state: &mut State) {
    let mut scratch = Vec::new(); // BAD: fresh allocation per round
    scratch.push(state.tick); // BAD: growth may reallocate
    state.label = format!("round {}", state.tick); // BAD: format! allocates
    let copy = state.buf.to_vec(); // BAD: to_vec allocates
    drop((scratch, copy));
}
