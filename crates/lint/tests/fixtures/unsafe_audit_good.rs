// Fixture: the pool's sanctioned shape — unsafe in the pool file, each
// site justified. Linted under crates/sim/src/pool.rs.

fn publish(p: *const u8) -> u8 {
    // SAFETY: `p` points into the caller's job, which outlives the
    // epoch; the barrier keeps every worker inside that lifetime.
    unsafe { *p }
}
