// Fixture: unsafe outside the pool, linted under the virtual path
// crates/graph/src/csr.rs (a crate that must stay safe).

fn read_raw(p: *const u8) -> u8 {
    unsafe { *p } // BAD: unsafe outside crates/sim/src/pool.rs
}
