// Fixture: a spec grammar with a parser but no canonicalizer and no
// round-trip test. Linted under crates/sim/src/chaos.rs so the
// registered ChaosPlan grammar resolves here.

pub struct ChaosPlan;

impl ChaosPlan {
    pub fn parse(text: &str) -> Option<ChaosPlan> {
        if text.is_empty() {
            None
        } else {
            Some(ChaosPlan)
        }
    }
}
