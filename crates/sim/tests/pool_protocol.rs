//! Schedule-permutation check of the `WorkerPool` epoch-barrier
//! protocol.
//!
//! The pool's unit tests run real threads, so they observe only the
//! schedules the OS happens to produce. This test instead models the
//! protocol as a state machine and enumerates **every** interleaving by
//! depth-first search: each transition is one of the pool's critical
//! sections (all pool state lives under a single mutex, so transitions
//! are genuinely atomic in the implementation), condvar waiters live in
//! explicit wait-sets, and a bounded budget of spurious wakeups is
//! thrown in because `Condvar::wait` permits them.
//!
//! Model ↔ implementation correspondence (`crates/sim/src/pool.rs`):
//!
//! * `Publish`      — `run`'s first critical section: set job, set
//!   `remaining`, bump epoch, `go.notify_all()`.
//! * `RunChunk`     — the caller running chunk 0 under `catch_unwind`.
//! * `WaitCheck`/`WaitingDone` — `run`'s `while remaining > 0` loop on
//!   the `done` condvar.
//! * worker `Check` — the inner lock-recheck loop: shutdown? new epoch?
//!   else wait on `go`.
//! * worker `Running` → `Decrement` — invoke the job, then re-lock to
//!   record a panic payload, decrement `remaining`, and
//!   `done.notify_one()` when last out.
//!
//! Checked properties, on every reachable schedule:
//!
//! * **no deadlock**: some thread can always step until the caller has
//!   joined every worker;
//! * **exact execution**: each epoch runs every chunk exactly once —
//!   no lost wakeup (a chunk never runs) and no double run (stale
//!   epoch observed twice);
//! * **panic drain**: when a chunk panics, the barrier still completes,
//!   the caller observes the panic at the end of that epoch, and the
//!   next epoch runs clean — the pool stays usable;
//! * **borrow safety**: no worker touches the job slot outside a live
//!   epoch (`job` must be present whenever a worker picks it up).
//!
//! To show the checker has teeth, a deliberately broken variant
//! (publishing with `notify_one` instead of `notify_all`) must be
//! caught: at two workers it strands one worker asleep and deadlocks
//! the barrier.

use std::collections::HashSet;

#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
enum WorkerPc {
    /// Holds (or is about to take) the lock and re-evaluate the inner
    /// loop: shutdown / new epoch / wait.
    Check,
    /// Parked in the `go` condvar's wait set.
    Waiting,
    /// Invoking the job outside the lock.
    Running,
    /// Re-locking to record panic + decrement `remaining`.
    Decrement,
    /// Observed shutdown and returned.
    Exited,
}

#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
enum CallerPc {
    /// `run`'s publish critical section.
    Publish,
    /// Running chunk 0 inline.
    RunChunk,
    /// Holds the lock and checks `remaining`.
    WaitCheck,
    /// Parked in the `done` condvar's wait set.
    WaitingDone,
    /// Sets the shutdown flag and wakes everyone (pool `Drop`).
    Shutdown,
    /// Joining worker threads (runnable once all have exited).
    Joining,
    Done,
}

/// Which publish wakeup the model uses: the real protocol's
/// `notify_all`, or the broken mutant's `notify_one`.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
enum PublishWake {
    All,
    One,
}

/// Full protocol state. `Hash`/`Eq` make DFS memoization exact.
#[derive(Clone, PartialEq, Eq, Hash)]
struct Model {
    // -- mutex-guarded pool state (State in pool.rs) --
    epoch: u8,
    job: bool,
    remaining: u8,
    panic_slot: bool,
    shutdown: bool,
    // -- caller thread --
    caller: CallerPc,
    caller_panicked: bool,
    // -- workers; index i runs chunk i + 1 --
    seen: Vec<u8>,
    wpc: Vec<WorkerPc>,
    // -- checker bookkeeping --
    /// Per-chunk run count for the current epoch (index 0 = caller).
    runs: Vec<u8>,
    /// Remaining spurious-wakeup budget (models `Condvar` spuriosity).
    spurious: u8,
    epochs_total: u8,
    /// Chunk that panics, as `(epoch, chunk)`; 0-none.
    panic_plan: (u8, u8),
    wake: PublishWake,
}

impl Model {
    fn new(workers: usize, epochs: u8, panic_plan: (u8, u8), wake: PublishWake) -> Model {
        Model {
            epoch: 0,
            job: false,
            remaining: 0,
            panic_slot: false,
            shutdown: false,
            caller: CallerPc::Publish,
            caller_panicked: false,
            seen: vec![0; workers],
            wpc: vec![WorkerPc::Waiting; workers],
            runs: vec![0; workers + 1],
            spurious: 2,
            epochs_total: epochs,
            panic_plan,
            wake,
        }
    }

    fn chunk_panics(&self, chunk: u8) -> bool {
        self.panic_plan == (self.epoch, chunk)
    }

    /// All legal single-thread transitions from this state. An `Err`
    /// is a protocol violation observed while stepping.
    fn successors(&self) -> Result<Vec<Model>, String> {
        let mut next = Vec::new();
        self.caller_steps(&mut next)?;
        for i in 0..self.wpc.len() {
            self.worker_steps(i, &mut next)?;
        }
        Ok(next)
    }

    fn caller_steps(&self, out: &mut Vec<Model>) -> Result<(), String> {
        match self.caller {
            CallerPc::Publish => {
                if self.remaining != 0 || self.job {
                    return Err("published over a live epoch".into());
                }
                let mut m = self.clone();
                m.epoch += 1;
                m.job = true;
                m.remaining = m.wpc.len() as u8;
                m.runs = vec![0; m.wpc.len() + 1];
                m.caller = CallerPc::RunChunk;
                match self.wake {
                    PublishWake::All => {
                        for pc in &mut m.wpc {
                            if *pc == WorkerPc::Waiting {
                                *pc = WorkerPc::Check;
                            }
                        }
                        out.push(m);
                    }
                    PublishWake::One => {
                        // The mutant wakes one waiter (any of them) —
                        // or none, when nobody is parked yet.
                        let waiting: Vec<usize> = (0..m.wpc.len())
                            .filter(|&i| m.wpc[i] == WorkerPc::Waiting)
                            .collect();
                        if waiting.is_empty() {
                            out.push(m);
                        } else {
                            for &i in &waiting {
                                let mut w = m.clone();
                                w.wpc[i] = WorkerPc::Check;
                                out.push(w);
                            }
                        }
                    }
                }
            }
            CallerPc::RunChunk => {
                let mut m = self.clone();
                m.runs[0] += 1;
                if m.runs[0] > 1 {
                    return Err("chunk 0 ran twice in one epoch".into());
                }
                m.caller_panicked = self.chunk_panics(0);
                m.caller = CallerPc::WaitCheck;
                out.push(m);
            }
            CallerPc::WaitCheck => {
                if self.remaining > 0 {
                    let mut m = self.clone();
                    m.caller = CallerPc::WaitingDone;
                    out.push(m);
                } else {
                    // Epoch complete: `run` returns. Check the barrier's
                    // promises for this epoch.
                    let mut m = self.clone();
                    m.job = false;
                    let expected_panic =
                        m.panic_plan.0 == m.epoch && m.panic_plan.1 <= m.wpc.len() as u8;
                    let observed = m.caller_panicked || m.panic_slot;
                    if observed != expected_panic {
                        return Err(format!(
                            "epoch {}: panic observed={observed}, expected={expected_panic}",
                            m.epoch
                        ));
                    }
                    if m.runs.iter().any(|&r| r != 1) {
                        return Err(format!(
                            "epoch {}: chunk runs {:?} != 1 each",
                            m.epoch, m.runs
                        ));
                    }
                    m.panic_slot = false;
                    m.caller_panicked = false;
                    m.caller = if m.epoch < m.epochs_total {
                        CallerPc::Publish
                    } else {
                        CallerPc::Shutdown
                    };
                    out.push(m);
                }
            }
            CallerPc::WaitingDone => {
                // Wakes only via `done.notify_one` (worker Decrement) or
                // spuriously; `Condvar::wait` allows the latter.
                if self.spurious > 0 {
                    let mut m = self.clone();
                    m.spurious -= 1;
                    m.caller = CallerPc::WaitCheck;
                    out.push(m);
                }
            }
            CallerPc::Shutdown => {
                let mut m = self.clone();
                m.shutdown = true;
                for pc in &mut m.wpc {
                    if *pc == WorkerPc::Waiting {
                        *pc = WorkerPc::Check;
                    }
                }
                m.caller = CallerPc::Joining;
                out.push(m);
            }
            CallerPc::Joining => {
                if self.wpc.iter().all(|&pc| pc == WorkerPc::Exited) {
                    let mut m = self.clone();
                    m.caller = CallerPc::Done;
                    out.push(m);
                }
            }
            CallerPc::Done => {}
        }
        Ok(())
    }

    fn worker_steps(&self, i: usize, out: &mut Vec<Model>) -> Result<(), String> {
        let chunk = (i + 1) as u8;
        match self.wpc[i] {
            WorkerPc::Check => {
                let mut m = self.clone();
                if m.shutdown {
                    m.wpc[i] = WorkerPc::Exited;
                } else if m.epoch != m.seen[i] {
                    if !m.job {
                        return Err(format!("worker {i} saw a new epoch with no job published"));
                    }
                    if m.epoch != m.seen[i] + 1 {
                        return Err(format!("worker {i} skipped an epoch"));
                    }
                    m.seen[i] = m.epoch;
                    m.wpc[i] = WorkerPc::Running;
                } else {
                    m.wpc[i] = WorkerPc::Waiting;
                }
                out.push(m);
            }
            WorkerPc::Waiting => {
                // Wakes via publish/shutdown notify, or spuriously (the
                // implementation's idle-tick path: recheck, re-park).
                if self.spurious > 0 {
                    let mut m = self.clone();
                    m.spurious -= 1;
                    m.wpc[i] = WorkerPc::Check;
                    out.push(m);
                }
            }
            WorkerPc::Running => {
                let mut m = self.clone();
                m.runs[chunk as usize] += 1;
                if m.runs[chunk as usize] > 1 {
                    return Err(format!("chunk {chunk} ran twice in one epoch"));
                }
                m.wpc[i] = WorkerPc::Decrement;
                out.push(m);
            }
            WorkerPc::Decrement => {
                let mut m = self.clone();
                if self.chunk_panics(chunk) && !m.panic_slot {
                    m.panic_slot = true;
                }
                if m.remaining == 0 {
                    return Err(format!("worker {i} decremented remaining below zero"));
                }
                m.remaining -= 1;
                // remaining == 0 → done.notify_one: the caller is the
                // only done-waiter, so no wakeup choice to branch on.
                if m.remaining == 0 && m.caller == CallerPc::WaitingDone {
                    m.caller = CallerPc::WaitCheck;
                }
                m.wpc[i] = WorkerPc::Check;
                out.push(m);
            }
            WorkerPc::Exited => {}
        }
        Ok(())
    }
}

/// Exhaustive DFS over all interleavings. Returns the number of
/// distinct states on success, or the first violation (protocol error
/// or deadlocked schedule) with a description.
fn check(
    workers: usize,
    epochs: u8,
    panic_plan: (u8, u8),
    wake: PublishWake,
) -> Result<usize, String> {
    let root = Model::new(workers, epochs, panic_plan, wake);
    let mut seen: HashSet<Model> = HashSet::new();
    let mut stack = vec![root];
    while let Some(m) = stack.pop() {
        if !seen.insert(m.clone()) {
            continue;
        }
        let succ = m.successors()?;
        if succ.is_empty() && m.caller != CallerPc::Done {
            return Err(format!(
                "deadlock: caller at {:?}, workers at {:?}, remaining {}",
                m.caller, m.wpc, m.remaining
            ));
        }
        stack.extend(succ);
    }
    Ok(seen.len())
}

#[test]
fn two_chunks_two_epochs_all_schedules() {
    let states = check(1, 2, (0, 0), PublishWake::All).unwrap();
    assert!(states > 50, "only {states} states explored");
}

#[test]
fn three_chunks_two_epochs_all_schedules() {
    let states = check(2, 2, (0, 0), PublishWake::All).unwrap();
    assert!(states > 300, "only {states} states explored");
}

#[test]
fn worker_panic_drains_the_epoch_on_every_schedule() {
    // Worker chunk 1 panics in epoch 1; epoch 2 must still run clean —
    // the WaitCheck assertions verify both the panic observation and
    // the exactly-once execution of the following epoch.
    check(2, 2, (1, 1), PublishWake::All).unwrap();
    check(2, 2, (1, 2), PublishWake::All).unwrap();
}

#[test]
fn caller_panic_still_completes_the_barrier_on_every_schedule() {
    check(2, 2, (1, 0), PublishWake::All).unwrap();
    check(1, 2, (2, 0), PublishWake::All).unwrap();
}

#[test]
fn broken_notify_one_publish_is_caught() {
    // The checker must have teeth: publishing with notify_one strands a
    // worker at two workers — some schedule deadlocks the barrier.
    let err = check(2, 1, (0, 0), PublishWake::One).unwrap_err();
    assert!(err.contains("deadlock"), "unexpected failure mode: {err}");
    // With a single worker, notify_one *is* notify_all: every schedule
    // still completes — the mutant is only wrong at >= 2 workers, and
    // the checker distinguishes the two.
    check(1, 1, (0, 0), PublishWake::One).unwrap();
}
