//! Conformance of the flat CSR message plane against the delivery
//! semantics the old receiver-driven engine defined.
//!
//! A scripted protocol (traffic derived from a pure hash of `(node,
//! round)`, so the test can predict it) records everything it receives;
//! an independent model computes what the semantics specify: node `v`'s
//! round-`r` inbox holds, for each port `q` in ascending order, the
//! messages its neighbor `u` queued in round `r − 1` that address `v`
//! (broadcasts, plus unicasts whose port points back at `v`), in outbox
//! slot order, minus fault drops keyed `(round, sender, receiver, slot)`
//! — and nothing at all once `v` has halted. The property test checks the
//! exact sequence (hence the exact multiset) on random G(n, p), star, and
//! complete graphs, with and without faults; a separate test pins
//! thread-count determinism on a high-Δ graph with faults enabled.

use kw_graph::{generators, CsrGraph, NodeId};
use kw_sim::rng::split_mix64;
use kw_sim::{Ctx, Engine, EngineConfig, FaultPlan, Protocol, RunReport, Status};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// One scripted send: broadcast, or unicast on a port.
#[derive(Clone, Copy, Debug, PartialEq)]
enum Send {
    Broadcast(u64),
    Unicast(u32, u64),
}

/// Which traffic shape a scripted run drives through the send arena.
#[derive(Clone, Copy, Debug, PartialEq)]
enum Flavor {
    /// Quiet, broadcast-only (the solo fast path), and mixed broadcast +
    /// unicast rounds (the staged path).
    Mixed,
    /// Unicast bursts: up to six unicasts per round, ports hash-chosen
    /// and often repeated — multiple messages must land on one arc in
    /// send-slot order, the hardest case for the per-arc plan cursors.
    Burst,
}

/// The messages node `me` stages in `round`, as a pure function — both
/// the protocol and the reference model evaluate it.
fn script(me: u32, round: usize, degree: u32, flavor: Flavor) -> Vec<Send> {
    if degree == 0 {
        return Vec::new();
    }
    let h = split_mix64((u64::from(me) << 32) ^ (round as u64 + 1));
    match flavor {
        Flavor::Mixed => {
            let count = (h % 4) as usize; // 0..=3 messages per round
            (0..count)
                .map(|i| {
                    let hi = split_mix64(h ^ ((i as u64 + 1) << 48));
                    let payload = hi | 1;
                    if hi & 2 == 0 {
                        Send::Broadcast(payload)
                    } else {
                        Send::Unicast((hi >> 8) as u32 % degree, payload)
                    }
                })
                .collect()
        }
        Flavor::Burst => {
            let count = (h % 7) as usize; // 0..=6 unicasts per round
                                          // Ports drawn from a window half the degree wide, so bursts
                                          // frequently stack several messages onto the same arc.
            let window = (degree / 2).max(1);
            let base = (h >> 32) as u32 % degree;
            (0..count)
                .map(|i| {
                    let hi = split_mix64(h ^ ((i as u64 + 1) << 48));
                    let payload = hi | 1;
                    Send::Unicast((base + (hi >> 8) as u32 % window) % degree, payload)
                })
                .collect()
        }
    }
}

/// The round after which node `me` halts (it still sends that round).
fn halt_round(me: u32, max_rounds: usize) -> usize {
    (split_mix64(u64::from(me).wrapping_mul(0x9E37)) % (max_rounds as u64 + 1)) as usize
}

/// Runs the script and records every `(round, port, payload)` received.
struct Scripted {
    me: u32,
    max_rounds: usize,
    flavor: Flavor,
    log: Vec<(usize, u32, u64)>,
}

impl Protocol for Scripted {
    type Msg = u64;
    type Output = Vec<(usize, u32, u64)>;

    fn on_round(&mut self, ctx: &mut Ctx<'_, u64>) -> Status {
        for (port, &m) in ctx.inbox().iter() {
            self.log.push((ctx.round(), port, m));
        }
        for send in script(self.me, ctx.round(), ctx.degree(), self.flavor) {
            match send {
                Send::Broadcast(m) => ctx.broadcast(m),
                Send::Unicast(port, m) => ctx.send(port, m),
            }
        }
        if ctx.round() >= halt_round(self.me, self.max_rounds) {
            Status::Halted
        } else {
            Status::Running
        }
    }

    fn finish(self) -> Vec<(usize, u32, u64)> {
        self.log
    }
}

/// The reference model: replays the scripts against the documented
/// delivery semantics, independent of the engine's implementation.
fn expected_log(
    g: &CsrGraph,
    v: usize,
    max_rounds: usize,
    faults: FaultPlan,
    flavor: Flavor,
) -> Vec<(usize, u32, u64)> {
    let mut log = Vec::new();
    // v computes in rounds 0..=halt_round(v); round r's inbox holds round
    // r − 1 traffic.
    for r in 1..=halt_round(v as u32, max_rounds) {
        for (q, u) in g.neighbors(NodeId::new(v)).enumerate() {
            // Sender u queued messages in round r − 1 only if it was still
            // running then.
            if halt_round(u.raw(), max_rounds) < r - 1 {
                continue;
            }
            let deg_u = g.degree(u) as u32;
            let back_port = g
                .neighbor_slice(u)
                .iter()
                .position(|&t| t == v as u32)
                .expect("symmetric adjacency") as u32;
            for (slot, send) in script(u.raw(), r - 1, deg_u, flavor).iter().enumerate() {
                let payload = match send {
                    Send::Broadcast(m) => *m,
                    Send::Unicast(port, m) if *port == back_port => *m,
                    Send::Unicast(..) => continue,
                };
                if faults.drops(r - 1, u.raw(), v as u32, slot as u32) {
                    continue;
                }
                log.push((r, q as u32, payload));
            }
        }
    }
    log
}

fn run_scripted(
    g: &CsrGraph,
    max_rounds: usize,
    config: EngineConfig,
    flavor: Flavor,
) -> RunReport<Vec<(usize, u32, u64)>> {
    Engine::new(g, config, |info| Scripted {
        me: info.id.raw(),
        max_rounds,
        flavor,
        log: Vec::new(),
    })
    .run()
    .expect("scripted run terminates")
}

fn assert_matches_reference(g: &CsrGraph, max_rounds: usize, faults: FaultPlan, flavor: Flavor) {
    let config = EngineConfig {
        faults: faults.into(),
        check_wire: true,
        ..Default::default()
    };
    let report = run_scripted(g, max_rounds, config, flavor);
    for v in 0..g.len() {
        let expected = expected_log(g, v, max_rounds, faults, flavor);
        assert_eq!(
            report.outputs[v], expected,
            "inbox mismatch at node {v} on {g:?} (faults: {faults:?}, flavor: {flavor:?})"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn flat_plane_matches_reference_on_gnp(seed in any::<u64>(), n in 4usize..36) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let g = generators::gnp(n, 0.25, &mut rng);
        assert_matches_reference(&g, 6, FaultPlan::reliable(), Flavor::Mixed);
        assert_matches_reference(&g, 6, FaultPlan::drop_with_probability(0.3, seed ^ 0x5ca1ab1e), Flavor::Mixed);
    }

    #[test]
    fn flat_plane_matches_reference_on_star(n in 3usize..40, fault_seed in any::<u64>()) {
        let g = generators::star(n);
        assert_matches_reference(&g, 5, FaultPlan::reliable(), Flavor::Mixed);
        assert_matches_reference(&g, 5, FaultPlan::drop_with_probability(0.4, fault_seed), Flavor::Mixed);
    }

    #[test]
    fn flat_plane_matches_reference_on_complete(n in 2usize..16, fault_seed in any::<u64>()) {
        let g = generators::complete(n);
        assert_matches_reference(&g, 4, FaultPlan::reliable(), Flavor::Mixed);
        assert_matches_reference(&g, 4, FaultPlan::drop_with_probability(0.2, fault_seed), Flavor::Mixed);
    }

    /// Unicast bursts push several messages down one arc in a round; the
    /// arena send path must keep them in send-slot order, reliable and
    /// faulty alike.
    #[test]
    fn arena_send_path_matches_reference_on_unicast_bursts(seed in any::<u64>(), n in 4usize..32) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let g = generators::gnp(n, 0.3, &mut rng);
        assert_matches_reference(&g, 6, FaultPlan::reliable(), Flavor::Burst);
        assert_matches_reference(&g, 6, FaultPlan::drop_with_probability(0.35, seed ^ 0xb0b), Flavor::Burst);
    }

    #[test]
    fn arena_send_path_matches_reference_on_star_bursts(n in 3usize..36, fault_seed in any::<u64>()) {
        let g = generators::star(n);
        assert_matches_reference(&g, 5, FaultPlan::reliable(), Flavor::Burst);
        assert_matches_reference(&g, 5, FaultPlan::drop_with_probability(0.25, fault_seed), Flavor::Burst);
    }
}

/// High-Δ graph (star of cliques: hub degree ≫ average) with faults on:
/// every thread count must produce the identical report, for both traffic
/// flavors. The chunked send arenas make per-chunk run indices
/// layout-dependent, so this pins that the dense run table fully hides
/// the layout.
#[test]
fn thread_count_determinism_high_degree_with_faults() {
    let g = generators::star_of_cliques(12, 24);
    let base = EngineConfig {
        faults: FaultPlan::drop_with_probability(0.25, 99).into(),
        ..Default::default()
    };
    for flavor in [Flavor::Mixed, Flavor::Burst] {
        let reference = run_scripted(
            &g,
            9,
            EngineConfig {
                threads: 1,
                ..base.clone()
            },
            flavor,
        );
        for threads in [2usize, 4, 8] {
            let par = run_scripted(
                &g,
                9,
                EngineConfig {
                    threads,
                    ..base.clone()
                },
                flavor,
            );
            assert_eq!(
                reference.outputs, par.outputs,
                "outputs differ at {threads} threads ({flavor:?})"
            );
            assert_eq!(
                reference.metrics, par.metrics,
                "metrics differ at {threads} threads ({flavor:?})"
            );
            assert_eq!(
                reference.node_messages, par.node_messages,
                "node_messages differ at {threads} threads ({flavor:?})"
            );
        }
    }
}

/// Constant-shape traffic for the steady-state allocation check: every
/// node broadcasts once and unicasts twice (to its first and last port)
/// each round, exercising the solo *and* staged halves of the arena path
/// with identical volume per round.
struct Pulse {
    rounds_left: usize,
}

impl Protocol for Pulse {
    type Msg = u64;
    type Output = ();

    fn on_round(&mut self, ctx: &mut Ctx<'_, u64>) -> Status {
        if self.rounds_left == 0 {
            return Status::Halted;
        }
        self.rounds_left -= 1;
        ctx.broadcast(0x5eed);
        let degree = ctx.degree();
        if degree > 0 {
            ctx.send(0, 1);
            ctx.send(degree - 1, 2);
        }
        Status::Running
    }

    fn finish(self) {}
}

/// Steady-state rounds must not grow any message-plane buffer: with
/// constant per-round traffic, a 100-round run records exactly as many
/// capacity-growth events as a short one — all growth is warm-up —
/// sequentially and chunked. (Traffic whose per-round volume varies may
/// legitimately grow a buffer whenever a round sets a new peak; that is
/// capacity chasing the high-water mark, not steady-state allocation.)
#[test]
fn arena_buffers_stable_across_100_rounds() {
    let mut rng = SmallRng::seed_from_u64(7);
    let g = generators::gnp(60, 0.15, &mut rng);
    let growths = |rounds: usize, threads: usize| {
        let (_, stats) = Engine::new(
            &g,
            EngineConfig {
                threads,
                ..Default::default()
            },
            |_| Pulse {
                rounds_left: rounds,
            },
        )
        .run_instrumented()
        .expect("pulse run terminates");
        stats.buffer_growths
    };
    for threads in [1usize, 4] {
        let short = growths(8, threads);
        let long = growths(100, threads);
        assert_eq!(
            short, long,
            "message-plane buffers grew after warm-up (threads={threads})"
        );
    }
}

/// The star hub exercises the widest single inbox; spot-check volumes so
/// the property tests above cannot silently degenerate to empty logs.
#[test]
fn scripted_traffic_is_nontrivial() {
    let g = generators::star(30);
    let report = run_scripted(&g, 6, EngineConfig::default(), Flavor::Mixed);
    let received: usize = report.outputs.iter().map(Vec::len).sum();
    assert!(
        received > 50,
        "only {received} deliveries; script too quiet"
    );
    assert!(report.metrics.messages > 0);
}
