//! Engine semantics under composed protocols: port identity, mixed
//! unicast/broadcast traffic, halting, observers, and fault statistics.

use kw_graph::{generators, CsrGraph, NodeId};
use kw_sim::wire::{BitReader, BitWriter, WireEncode};
use kw_sim::{Ctx, Engine, EngineConfig, FaultPlan, Protocol, Status};

#[derive(Clone, Debug, PartialEq)]
struct Tagged {
    from: u32,
    payload: u64,
}

impl WireEncode for Tagged {
    fn encode(&self, w: &mut BitWriter) {
        w.write_gamma(u64::from(self.from));
        w.write_gamma(self.payload);
    }

    fn decode(r: &mut BitReader<'_>) -> Option<Self> {
        Some(Tagged {
            from: u32::try_from(r.read_gamma()?).ok()?,
            payload: r.read_gamma()?,
        })
    }
}

/// Round 0: every node broadcasts its id. Round 1: checks that the port a
/// message arrived on identifies exactly the neighbor the engine claims
/// (ports are ascending neighbor order), then unicasts its id back on each
/// port. Round 2: verifies unicasts arrived from the right nodes.
struct PortAudit {
    me: u32,
    neighbors: Vec<u32>, // filled from round-0 messages, ordered by port
    ok: bool,
}

impl Protocol for PortAudit {
    type Msg = Tagged;
    type Output = bool;

    fn on_round(&mut self, ctx: &mut Ctx<'_, Tagged>) -> Status {
        match ctx.round() {
            0 => {
                ctx.broadcast(Tagged {
                    from: self.me,
                    payload: 0,
                });
                Status::Running
            }
            1 => {
                let mut by_port: Vec<(u32, u32)> =
                    ctx.inbox().iter().map(|(port, m)| (port, m.from)).collect();
                by_port.sort_unstable();
                // Exactly one message per port, ports contiguous from 0.
                self.ok = by_port.len() == ctx.degree() as usize
                    && by_port.iter().enumerate().all(|(i, &(p, _))| p == i as u32);
                // Ports must order neighbors by ascending id (CSR order).
                let ids: Vec<u32> = by_port.iter().map(|&(_, f)| f).collect();
                let mut sorted = ids.clone();
                sorted.sort_unstable();
                self.ok &= ids == sorted;
                self.neighbors = ids;
                for port in 0..ctx.degree() {
                    ctx.send(
                        port,
                        Tagged {
                            from: self.me,
                            payload: u64::from(port) + 1,
                        },
                    );
                }
                Status::Running
            }
            _ => {
                // Each unicast must arrive from the neighbor on that port,
                // carrying the sender-side port number it was sent on.
                for (port, msg) in ctx.inbox() {
                    self.ok &= self.neighbors.get(port as usize) == Some(&msg.from);
                    self.ok &= msg.payload >= 1;
                }
                self.ok &= ctx.inbox().len() == ctx.degree() as usize;
                Status::Halted
            }
        }
    }

    fn finish(self) -> bool {
        self.ok
    }
}

fn run_audit(g: &CsrGraph, threads: usize) -> Vec<bool> {
    Engine::new(
        g,
        EngineConfig {
            threads,
            ..Default::default()
        },
        |info| PortAudit {
            me: info.id.raw(),
            neighbors: Vec::new(),
            ok: true,
        },
    )
    .run()
    .expect("audit protocol terminates")
    .outputs
}

#[test]
fn port_numbering_matches_csr_order() {
    use rand::{rngs::SmallRng, SeedableRng};
    let mut rng = SmallRng::seed_from_u64(9);
    for g in [
        generators::complete(6),
        generators::petersen(),
        generators::grid(4, 4),
        generators::gnp(60, 0.15, &mut rng),
    ] {
        for threads in [1usize, 4] {
            assert!(
                run_audit(&g, threads).into_iter().all(|ok| ok),
                "port audit failed (threads={threads}) on {g:?}"
            );
        }
    }
}

/// Nodes halt at different times; late messages to halted nodes must not
/// resurrect them, and early halting must not stall others.
struct StaggeredHalt {
    me: u32,
    rounds_seen: u32,
}

impl Protocol for StaggeredHalt {
    type Msg = Tagged;
    type Output = u32;

    fn on_round(&mut self, ctx: &mut Ctx<'_, Tagged>) -> Status {
        self.rounds_seen += 1;
        ctx.broadcast(Tagged {
            from: self.me,
            payload: 1,
        });
        // Node v halts after v+1 rounds.
        if self.rounds_seen > self.me {
            Status::Halted
        } else {
            Status::Running
        }
    }

    fn finish(self) -> u32 {
        self.rounds_seen
    }
}

#[test]
fn staggered_halting() {
    let g = generators::complete(5);
    let report = Engine::new(&g, EngineConfig::default(), |info| StaggeredHalt {
        me: info.id.raw(),
        rounds_seen: 0,
    })
    .run()
    .unwrap();
    // Node v executes exactly v+1 rounds.
    assert_eq!(report.outputs, vec![1, 2, 3, 4, 5]);
    // Engine runs until the slowest node halts.
    assert_eq!(report.metrics.rounds, 5);
}

/// Counts deliveries under a fault plan; the empirical loss rate must be
/// near nominal and identical across thread counts.
struct DeliveryCounter {
    received: u64,
    rounds_left: u32,
}

impl Protocol for DeliveryCounter {
    type Msg = Tagged;
    type Output = u64;

    fn on_round(&mut self, ctx: &mut Ctx<'_, Tagged>) -> Status {
        self.received += ctx.inbox().len() as u64;
        if self.rounds_left == 0 {
            return Status::Halted;
        }
        self.rounds_left -= 1;
        ctx.broadcast(Tagged {
            from: 0,
            payload: 7,
        });
        Status::Running
    }

    fn finish(self) -> u64 {
        self.received
    }
}

#[test]
fn fault_plan_loss_rate_at_engine_level() {
    use rand::{rngs::SmallRng, SeedableRng};
    let mut rng = SmallRng::seed_from_u64(3);
    let g = generators::gnp(120, 0.1, &mut rng);
    let rounds = 20u32;
    let run = |drop: f64, threads: usize| -> u64 {
        Engine::new(
            &g,
            EngineConfig {
                threads,
                faults: if drop == 0.0 {
                    FaultPlan::reliable().into()
                } else {
                    FaultPlan::drop_with_probability(drop, 77).into()
                },
                ..Default::default()
            },
            |_| DeliveryCounter {
                received: 0,
                rounds_left: rounds,
            },
        )
        .run()
        .unwrap()
        .outputs
        .iter()
        .sum()
    };
    let lossless = run(0.0, 1);
    let lossy = run(0.25, 1);
    let rate = 1.0 - lossy as f64 / lossless as f64;
    assert!((rate - 0.25).abs() < 0.02, "observed loss rate {rate}");
    assert_eq!(
        lossy,
        run(0.25, 4),
        "loss pattern must not depend on threads"
    );
}

#[test]
fn observer_and_outputs_agree() {
    // The observer's final snapshot must match the finished outputs.
    let g = generators::cycle(7);
    let mut last_seen = Vec::new();
    let mut obs = |_round: usize, nodes: &[StaggeredHalt]| {
        last_seen = nodes.iter().map(|n| n.rounds_seen).collect();
    };
    let report = Engine::new(&g, EngineConfig::default(), |info| StaggeredHalt {
        me: info.id.raw(),
        rounds_seen: 0,
    })
    .run_with_observer(&mut obs)
    .unwrap();
    assert_eq!(last_seen, report.outputs);
}

#[test]
fn node_info_reports_graph_facts() {
    let g = generators::star(6);
    let mut degrees = Vec::new();
    let _ = Engine::new(&g, EngineConfig::default(), |info| {
        degrees.push((info.id, info.degree));
        DeliveryCounter {
            received: 0,
            rounds_left: 0,
        }
    });
    assert_eq!(degrees.len(), 6);
    assert_eq!(degrees[0], (NodeId::new(0), 5));
    assert!(degrees[1..].iter().all(|&(_, d)| d == 1));
}
