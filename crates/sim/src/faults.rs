//! Message-loss fault injection.
//!
//! The paper's synchronous model assumes reliable links; real ad-hoc
//! networks do not. [`FaultPlan`] lets experiments measure how gracefully
//! the algorithms degrade when each delivered message is independently
//! dropped with a fixed probability (deterministically derived from the
//! fault seed, so lossy runs are exactly reproducible).
//!
//! Losses are applied at *delivery* (receiver side): a broadcast may reach
//! some neighbors and not others, matching radio-interference semantics.
//! Metrics still charge the sender for every transmitted copy.

use crate::rng::split_mix64;

/// A deterministic message-loss model.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultPlan {
    /// Probability that any individual delivered message copy is lost.
    drop_probability: f64,
    /// Seed of the loss process (independent of protocol randomness).
    seed: u64,
}

impl FaultPlan {
    /// A reliable network (drops nothing).
    pub fn reliable() -> Self {
        FaultPlan {
            drop_probability: 0.0,
            seed: 0,
        }
    }

    /// Drops each delivered message copy independently with probability
    /// `drop_probability`. The full closed range `[0, 1]` is accepted:
    /// 1.0 is a total blackout (every delivery lost), a legitimate
    /// worst-case plan.
    ///
    /// # Panics
    ///
    /// Panics if the probability is not in `[0, 1]` (including NaN).
    pub fn drop_with_probability(drop_probability: f64, seed: u64) -> Self {
        assert!(
            (0.0..=1.0).contains(&drop_probability),
            "drop probability {drop_probability} outside [0, 1]"
        );
        FaultPlan {
            drop_probability,
            seed,
        }
    }

    /// The configured drop probability.
    pub fn drop_probability(&self) -> f64 {
        self.drop_probability
    }

    /// The seed of the loss process.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Whether this plan can drop messages at all.
    pub fn is_reliable(&self) -> bool {
        self.drop_probability == 0.0
    }

    /// Decides the fate of one delivery, identified by `(round, sender,
    /// receiver, slot)` where `slot` is the message's index in the
    /// sender's outbox that round. Deterministic in the plan seed and
    /// independent of evaluation order, so results do not depend on thread
    /// count — the engine's sender-indexed delivery evaluates the same
    /// keys the old receiver-driven scan did, keeping lossy runs exactly
    /// reproducible across the rewrite.
    #[inline]
    pub fn drops(&self, round: usize, sender: u32, receiver: u32, slot: u32) -> bool {
        if self.drop_probability <= 0.0 {
            return false;
        }
        let key = split_mix64(
            self.seed
                ^ split_mix64((round as u64) << 32 | u64::from(slot))
                ^ split_mix64(u64::from(sender) << 32 | u64::from(receiver)),
        );
        // Map the top 53 bits to [0, 1).
        let unit = (key >> 11) as f64 / (1u64 << 53) as f64;
        unit < self.drop_probability
    }
}

impl Default for FaultPlan {
    fn default() -> Self {
        Self::reliable()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reliable_never_drops() {
        let p = FaultPlan::reliable();
        assert!(p.is_reliable());
        for r in 0..100 {
            assert!(!p.drops(r, 0, 1, 0));
        }
    }

    #[test]
    fn drop_rate_close_to_nominal() {
        let p = FaultPlan::drop_with_probability(0.3, 42);
        let trials = 100_000;
        let dropped = (0..trials)
            .filter(|&i| p.drops(i % 97, (i % 13) as u32, (i % 31) as u32, (i / 97) as u32))
            .count();
        let rate = dropped as f64 / trials as f64;
        assert!((rate - 0.3).abs() < 0.02, "rate {rate}");
    }

    #[test]
    fn deterministic_and_seed_sensitive() {
        let a = FaultPlan::drop_with_probability(0.5, 1);
        let b = FaultPlan::drop_with_probability(0.5, 2);
        let fate_a: Vec<bool> = (0..64).map(|i| a.drops(i, 1, 2, 0)).collect();
        let fate_a2: Vec<bool> = (0..64).map(|i| a.drops(i, 1, 2, 0)).collect();
        let fate_b: Vec<bool> = (0..64).map(|i| b.drops(i, 1, 2, 0)).collect();
        assert_eq!(fate_a, fate_a2);
        assert_ne!(fate_a, fate_b);
    }

    #[test]
    fn total_blackout_is_accepted_and_drops_everything() {
        // Regression: 1.0 used to panic, but a total blackout is a
        // legitimate worst-case plan. `unit` is in [0, 1) so `unit < 1.0`
        // drops every delivery.
        let p = FaultPlan::drop_with_probability(1.0, 7);
        assert!(!p.is_reliable());
        for i in 0..1000u64 {
            assert!(p.drops((i % 17) as usize, (i % 5) as u32, (i % 11) as u32, i as u32));
        }
    }

    #[test]
    #[should_panic(expected = "outside [0, 1]")]
    fn validates_probability_above_one() {
        FaultPlan::drop_with_probability(1.5, 0);
    }

    #[test]
    #[should_panic(expected = "outside [0, 1]")]
    fn validates_probability_nan() {
        FaultPlan::drop_with_probability(f64::NAN, 0);
    }

    #[test]
    #[should_panic(expected = "outside [0, 1]")]
    fn validates_probability_negative() {
        FaultPlan::drop_with_probability(-0.1, 0);
    }
}
