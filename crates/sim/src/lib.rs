//! Synchronous message-passing simulator for the LOCAL model.
//!
//! Kuhn & Wattenhofer's algorithms are stated in the "purely synchronous
//! model" (Section 3 of the paper): computation proceeds in global rounds,
//! and in every round each node may send one message to each neighbor. This
//! crate implements that model exactly:
//!
//! * a node program ([`Protocol`]) sees **only** its own id, its degree, its
//!   per-round inbox, and a private RNG seed — never the graph. The
//!   distributed-ness of an algorithm is therefore enforced by the type
//!   system rather than by convention;
//! * the [`Engine`] drives all nodes in lockstep, delivers messages between
//!   rounds, and is deterministic for a fixed seed regardless of the number
//!   of worker threads;
//! * every message is accounted at the **bit** level through its
//!   [`wire::WireEncode`] implementation, so the paper's `O(log Δ)`
//!   message-size claim can be validated literally ([`RunMetrics`]).
//!
//! # The flat message plane
//!
//! Both halves of a round run on flat arrays parallel to the graph's CSR
//! edge array rather than per-node `Vec`s. On the send side,
//! [`Ctx::broadcast`]/[`Ctx::send`] write through an opaque [`Sink`]
//! straight into per-node runs of a flat send arena owned by the engine —
//! no growable buffer is reachable from algorithm code, and sender-side
//! metrics, wire checking, and traffic classification are fused into the
//! send itself. On the delivery side, messages are copied straight into
//! one contiguous, double-buffered inbox arena — solo broadcasts through
//! a dense per-sender payload cache, unicast and mixed traffic through a
//! sender-major staging buffer addressed by a flat reverse-arc table. A
//! round costs `O(m + traffic)` with the `m`-term reduced to sequential
//! walks of dense arrays, message-proportional buffers keep their
//! capacity so steady-state rounds grow nothing, and results are
//! bit-identical for every thread count. See the [`engine` module
//! docs](Engine) for the full design and the [`mailbox` module
//! docs](Ctx) for the send contract.
//!
//! # Parallel execution
//!
//! At `threads > 1` the engine partitions nodes into contiguous,
//! **degree-weighted** chunks (cut points balance `arcs + 4·nodes` per
//! chunk, recomputed on every churn rebuild) and drives all three
//! parallel phases — compute, send staging, delivery placement —
//! through one persistent epoch-barrier [`pool::WorkerPool`] spawned
//! once per run, instead of a fresh `std::thread::scope` per phase per
//! round. Message-plane state (inbox arenas, staging buffers) is
//! per-chunk; the only cross-chunk traffic is read-only access to other
//! chunks' staged sends during placement. Outputs, metrics, and trace
//! structure stay bit-identical for every thread count.
//!
//! **Port numbering is an invariant of the model, not of the message
//! plane:** port `q` of node `v` is always `v`'s `q`-th neighbor in
//! ascending id order (CSR arc order). Protocols written against the old
//! receiver-driven engine observe identical ports, inbox ordering
//! (ascending port, then sender outbox slot), metrics, and fault
//! behavior.
//!
//! # Example: one round of "send your degree, output the max"
//!
//! ```
//! use kw_graph::generators;
//! use kw_sim::wire::{BitReader, BitWriter, WireEncode};
//! use kw_sim::{Ctx, Engine, EngineConfig, Protocol, Status};
//!
//! #[derive(Clone)]
//! struct Deg(u64);
//! impl WireEncode for Deg {
//!     fn encode(&self, w: &mut BitWriter) { w.write_gamma(self.0) }
//!     fn decode(r: &mut BitReader) -> Option<Self> { r.read_gamma().map(Deg) }
//! }
//!
//! struct MaxDegree { my_degree: u64, best: u64 }
//! impl Protocol for MaxDegree {
//!     type Msg = Deg;
//!     type Output = u64;
//!     fn on_round(&mut self, ctx: &mut Ctx<'_, Deg>) -> Status {
//!         if ctx.round() == 0 {
//!             ctx.broadcast(Deg(self.my_degree));
//!             Status::Running
//!         } else {
//!             for (_port, msg) in ctx.inbox() {
//!                 self.best = self.best.max(msg.0);
//!             }
//!             Status::Halted
//!         }
//!     }
//!     fn finish(self) -> u64 { self.best }
//! }
//!
//! let g = generators::star(5);
//! let report = Engine::new(&g, EngineConfig::default(), |info| MaxDegree {
//!     my_degree: info.degree as u64,
//!     best: info.degree as u64,
//! })
//! .run()?;
//! assert!(report.outputs.iter().all(|&d| d == 4));
//! assert_eq!(report.metrics.rounds, 2);
//! # Ok::<(), kw_sim::SimError>(())
//! ```

// `deny`, not `forbid`: the one sanctioned exception is `pool`, whose
// lifetime-erased job pointer carries a module-local soundness argument.
// Everything else in the crate remains safe code.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod chaos;
mod engine;
mod error;
pub mod faults;
mod mailbox;
mod metrics;
pub mod pool;
pub mod rng;
pub mod wire;

pub use chaos::{Burst, ChaosParseError, ChaosPlan, CrashWindow};
pub use engine::{Engine, EngineConfig, EngineStats, NodeInfo, Observer, RunReport};
pub use error::SimError;
pub use faults::FaultPlan;
pub use mailbox::{Ctx, Inbox, InboxIter, Sink};
pub use metrics::{RoundMetrics, RunMetrics};

/// Whether a node keeps participating after the current round.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Status {
    /// The node expects further rounds.
    Running,
    /// The node is done; it will not be scheduled again.
    Halted,
}

/// A distributed node program for the synchronous LOCAL model.
///
/// One instance runs per node. Implementations are state machines: the
/// engine calls [`on_round`](Protocol::on_round) once per synchronous round,
/// with the messages sent *to* this node in the previous round available via
/// [`Ctx::inbox`], and any messages queued through [`Ctx::send`] /
/// [`Ctx::broadcast`] delivered to neighbors at the start of the next round.
///
/// The only information available to a protocol is what the LOCAL model
/// grants a node: its identifier, its degree (ports `0..degree`), messages
/// received, and private randomness. Graph-global quantities (such as the
/// maximum degree `Δ` required by the paper's Algorithm 2) must be passed in
/// explicitly by the caller, which mirrors the paper's "all nodes know Δ"
/// assumption.
pub trait Protocol: Send {
    /// Message type exchanged with neighbors.
    type Msg: Clone + Send + Sync + wire::WireEncode;
    /// Per-node result extracted after the run.
    type Output: Send;

    /// Executes one synchronous round.
    ///
    /// Round 0 is the first compute step; its inbox is always empty.
    fn on_round(&mut self, ctx: &mut Ctx<'_, Self::Msg>) -> Status;

    /// Consumes the node state, producing its output.
    fn finish(self) -> Self::Output;
}
