//! Bit-level message encoding.
//!
//! The paper claims all messages have size `O(log Δ)` bits. To check that
//! claim literally rather than asymptotically hand-wave it, every protocol
//! message implements [`WireEncode`]: the engine encodes each sent message
//! and charges its exact bit length to the run's [`RunMetrics`]
//! (messages are delivered in decoded form, so encoding correctness is also
//! exercised by round-trip tests).
//!
//! Unbounded non-negative integers use Elias gamma codes
//! ([`BitWriter::write_gamma`]), which cost `2⌊log₂(v+1)⌋ + 1` bits — the
//! canonical `O(log v)` self-delimiting code.
//!
//! [`RunMetrics`]: crate::RunMetrics

/// Append-only bit buffer used to encode messages.
///
/// # Example
///
/// ```
/// use kw_sim::wire::{BitReader, BitWriter};
///
/// let mut w = BitWriter::new();
/// w.write_bit(true);
/// w.write_bits(0b101, 3);
/// w.write_gamma(17);
/// let bits = w.bit_len();
///
/// let bytes = w.into_bytes();
/// let mut r = BitReader::new(&bytes);
/// assert_eq!(r.read_bit(), Some(true));
/// assert_eq!(r.read_bits(3), Some(0b101));
/// assert_eq!(r.read_gamma(), Some(17));
/// assert_eq!(bits, 1 + 3 + 9); // gamma(17) = 2*4+1 bits
/// ```
#[derive(Clone, Debug, Default)]
pub struct BitWriter {
    buf: Vec<u8>,
    /// Bits used in the final byte (0 means byte-aligned).
    partial_bits: u8,
}

impl BitWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of bits written so far.
    pub fn bit_len(&self) -> usize {
        if self.partial_bits == 0 {
            self.buf.len() * 8
        } else {
            (self.buf.len() - 1) * 8 + self.partial_bits as usize
        }
    }

    /// Appends a single bit.
    pub fn write_bit(&mut self, bit: bool) {
        if self.partial_bits == 0 {
            self.buf.push(0);
        }
        if bit {
            let last = self.buf.len() - 1;
            self.buf[last] |= 1 << self.partial_bits;
        }
        self.partial_bits = (self.partial_bits + 1) % 8;
    }

    /// Appends the low `width` bits of `value`, least-significant first.
    ///
    /// # Panics
    ///
    /// Panics if `width > 64` or `value` has bits above `width`.
    pub fn write_bits(&mut self, value: u64, width: u8) {
        assert!(width <= 64, "width {width} exceeds 64");
        assert!(
            width == 64 || value < (1u64 << width),
            "value {value} does not fit in {width} bits"
        );
        for i in 0..width {
            self.write_bit((value >> i) & 1 == 1);
        }
    }

    /// Appends `value` in Elias gamma code (`2⌊log₂(value+1)⌋ + 1` bits).
    ///
    /// Gamma codes are defined for positive integers; this writes
    /// `value + 1` — computed in `u128`, so *every* `u64` round-trips,
    /// including `u64::MAX` (whose `value + 1 = 2⁶⁴` encodes in
    /// `2·64 + 1 = 129` bits).
    pub fn write_gamma(&mut self, value: u64) {
        let v = value as u128 + 1;
        let width = (127 - v.leading_zeros()) as u8; // floor(log2 v), <= 64
        for _ in 0..width {
            self.write_bit(false);
        }
        self.write_bit(true);
        // v = 2^width + low bits; the low bits always fit in a u64 (for
        // width 64 the payload is v - 2^64 = value + 1 - 2^64 = 0).
        self.write_bits((v & !(1u128 << width)) as u64, width);
    }

    /// Consumes the writer, returning the padded byte buffer.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }
}

/// Reader over a bit buffer produced by [`BitWriter`].
#[derive(Clone, Debug)]
pub struct BitReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> BitReader<'a> {
    /// Creates a reader over `bytes`.
    pub fn new(bytes: &'a [u8]) -> Self {
        BitReader { bytes, pos: 0 }
    }

    /// Reads one bit, or `None` at end of buffer.
    pub fn read_bit(&mut self) -> Option<bool> {
        let byte = *self.bytes.get(self.pos / 8)?;
        let bit = (byte >> (self.pos % 8)) & 1 == 1;
        self.pos += 1;
        Some(bit)
    }

    /// Reads `width` bits written by [`BitWriter::write_bits`].
    ///
    /// # Panics
    ///
    /// Panics if `width > 64`.
    pub fn read_bits(&mut self, width: u8) -> Option<u64> {
        assert!(width <= 64, "width {width} exceeds 64");
        let mut out = 0u64;
        for i in 0..width {
            if self.read_bit()? {
                out |= 1 << i;
            }
        }
        Some(out)
    }

    /// Reads an Elias-gamma-coded value written by
    /// [`BitWriter::write_gamma`].
    ///
    /// Widths up to 64 are valid (width 64 is `u64::MAX`); the arithmetic
    /// runs in `u128` so the boundary decodes exactly rather than
    /// overflowing the shift.
    pub fn read_gamma(&mut self) -> Option<u64> {
        let mut width = 0u8;
        while !self.read_bit()? {
            width += 1;
            if width > 64 {
                return None;
            }
        }
        let low = self.read_bits(width)?;
        // Reject corrupt streams whose width-64 payload would exceed u64
        // (only `low == 0` is a valid width-64 encoding).
        u64::try_from(((1u128 << width) | u128::from(low)) - 1).ok()
    }
}

/// A message type with an exact bit-level wire format.
///
/// The engine uses [`encoded_bits`](WireEncode::encoded_bits) to charge
/// message sizes and round-trips messages through `encode`/`decode` in
/// debug assertions, so the two must agree.
pub trait WireEncode {
    /// Serializes `self` into the writer.
    fn encode(&self, w: &mut BitWriter);

    /// Deserializes a value; `None` on malformed input.
    fn decode(r: &mut BitReader<'_>) -> Option<Self>
    where
        Self: Sized;

    /// Exact encoded size in bits (defaults to encoding and measuring).
    ///
    /// The default allocates a scratch buffer per call and the engine
    /// calls this once per queued message per round, so hot protocols
    /// should override it with a closed form (see [`gamma_len`]). With
    /// `check_wire` enabled the engine verifies the override against the
    /// real encoding.
    fn encoded_bits(&self) -> usize {
        let mut w = BitWriter::new();
        self.encode(&mut w);
        w.bit_len()
    }
}

/// Round-trips a message through its wire format, for tests and debug
/// checks.
///
/// Returns `None` if decoding fails or does not consume what was written.
pub fn roundtrip<M: WireEncode>(msg: &M) -> Option<M> {
    let mut w = BitWriter::new();
    msg.encode(&mut w);
    let bytes = w.into_bytes();
    let mut r = BitReader::new(&bytes);
    M::decode(&mut r)
}

/// Length in bits of [`BitWriter::write_gamma`]'s encoding of `value`,
/// without encoding anything.
///
/// The engine charges every queued message through
/// [`WireEncode::encoded_bits`] each round; message types whose format is
/// built from gamma codes and fixed-width fields should override that
/// method with a closed form using this helper, so the accounting pass
/// stays allocation-free.
///
/// Defined for every `u64`: the width is computed in `u128`, so
/// `gamma_len(u64::MAX)` is `129` rather than an overflow panic —
/// mirroring `write_gamma`, which encodes the full domain.
#[inline]
pub fn gamma_len(value: u64) -> usize {
    // Stay in u64 on the hot path; only the unrepresentable `value + 1`
    // (i.e. `u64::MAX`, width 64) needs the special case.
    match value.checked_add(1) {
        Some(v) => 2 * (63 - v.leading_zeros() as usize) + 1,
        None => 129,
    }
}

impl WireEncode for u64 {
    fn encode(&self, w: &mut BitWriter) {
        w.write_gamma(*self);
    }

    fn decode(r: &mut BitReader<'_>) -> Option<Self> {
        r.read_gamma()
    }

    fn encoded_bits(&self) -> usize {
        gamma_len(*self)
    }
}

impl WireEncode for bool {
    fn encode(&self, w: &mut BitWriter) {
        w.write_bit(*self);
    }

    fn decode(r: &mut BitReader<'_>) -> Option<Self> {
        r.read_bit()
    }

    fn encoded_bits(&self) -> usize {
        1
    }
}

/// Encodes an `f64` exactly (64 raw bits).
///
/// Protocols in this workspace avoid raw floats on the wire where the paper
/// promises `O(log Δ)` messages — they send the integer exponents that
/// define the value instead — but the exact form is available for reference
/// implementations and tests.
impl WireEncode for f64 {
    fn encode(&self, w: &mut BitWriter) {
        w.write_bits(self.to_bits(), 64);
    }

    fn decode(r: &mut BitReader<'_>) -> Option<Self> {
        r.read_bits(64).map(f64::from_bits)
    }

    fn encoded_bits(&self) -> usize {
        64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bit_roundtrip() {
        let mut w = BitWriter::new();
        let pattern = [
            true, false, true, true, false, false, false, true, true, false,
        ];
        for &b in &pattern {
            w.write_bit(b);
        }
        assert_eq!(w.bit_len(), 10);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        for &b in &pattern {
            assert_eq!(r.read_bit(), Some(b));
        }
    }

    #[test]
    fn bits_roundtrip_various_widths() {
        for (v, width) in [
            (0u64, 1u8),
            (1, 1),
            (5, 3),
            (255, 8),
            (1 << 20, 21),
            (u64::MAX, 64),
        ] {
            let mut w = BitWriter::new();
            w.write_bits(v, width);
            let bytes = w.into_bytes();
            assert_eq!(
                BitReader::new(&bytes).read_bits(width),
                Some(v),
                "v={v} width={width}"
            );
        }
    }

    #[test]
    fn gamma_roundtrip_and_length() {
        for v in [
            0u64,
            1,
            2,
            3,
            7,
            16,
            17,
            100,
            1_000_000,
            u64::MAX - 1,
            u64::MAX,
        ] {
            let mut w = BitWriter::new();
            w.write_gamma(v);
            let expect_bits = 2 * (128 - (v as u128 + 1).leading_zeros() as usize - 1) + 1;
            assert_eq!(w.bit_len(), expect_bits, "gamma length for {v}");
            assert_eq!(gamma_len(v), expect_bits, "closed form for {v}");
            let bytes = w.into_bytes();
            assert_eq!(BitReader::new(&bytes).read_gamma(), Some(v));
        }
    }

    /// The boundary encodings pinned exactly: `0` is the single bit `1`;
    /// `u64::MAX` is 64 zeros, a one, and 64 payload zeros — 129 bits, the
    /// longest gamma code any `u64` produces.
    #[test]
    fn gamma_boundary_payloads() {
        assert_eq!(gamma_len(0), 1);
        assert_eq!(gamma_len(u64::MAX), 129);
        assert_eq!(u64::MAX.encoded_bits(), 129);
        assert_eq!(roundtrip(&0u64), Some(0));
        assert_eq!(roundtrip(&u64::MAX), Some(u64::MAX));
        // A width-64 code whose payload is nonzero would decode past
        // u64::MAX; the reader must reject it instead of wrapping.
        let mut w = BitWriter::new();
        for _ in 0..64 {
            w.write_bit(false);
        }
        w.write_bit(true);
        w.write_bits(1, 64); // payload 1 → would be 2^64 + 1 - 1 > u64::MAX
        let bytes = w.into_bytes();
        assert_eq!(BitReader::new(&bytes).read_gamma(), None);
    }

    #[test]
    fn gamma_is_logarithmic() {
        // The O(log Δ) message-size claim rests on this.
        let mut w = BitWriter::new();
        w.write_gamma(1 << 20);
        assert!(w.bit_len() <= 2 * 21 + 1);
    }

    #[test]
    fn read_past_end_returns_none() {
        let mut r = BitReader::new(&[]);
        assert_eq!(r.read_bit(), None);
        assert_eq!(r.read_bits(3), None);
        assert_eq!(r.read_gamma(), None);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn write_bits_checks_range() {
        BitWriter::new().write_bits(8, 3);
    }

    #[test]
    fn primitive_impls_roundtrip() {
        assert_eq!(roundtrip(&true), Some(true));
        assert_eq!(roundtrip(&12345u64), Some(12345));
        assert_eq!(roundtrip(&3.75f64), Some(3.75));
        assert_eq!(true.encoded_bits(), 1);
        assert_eq!(3.75f64.encoded_bits(), 64);
    }

    #[test]
    fn mixed_stream() {
        let mut w = BitWriter::new();
        w.write_gamma(9);
        w.write_bit(false);
        w.write_bits(0b11, 2);
        w.write_gamma(0);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_gamma(), Some(9));
        assert_eq!(r.read_bit(), Some(false));
        assert_eq!(r.read_bits(2), Some(0b11));
        assert_eq!(r.read_gamma(), Some(0));
    }
}
