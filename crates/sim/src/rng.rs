//! Deterministic per-node seed derivation.
//!
//! Every randomized protocol instance receives a seed derived from the run
//! seed and the node id via SplitMix64, so a whole experiment is
//! reproducible from one `u64` while distinct nodes see statistically
//! independent streams.

/// One SplitMix64 step: a high-quality 64-bit mix.
///
/// # Example
///
/// ```
/// use kw_sim::rng::split_mix64;
///
/// assert_ne!(split_mix64(1), split_mix64(2));
/// assert_eq!(split_mix64(7), split_mix64(7));
/// ```
pub fn split_mix64(state: u64) -> u64 {
    let mut z = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Seed for the RNG of `node` in a run seeded with `run_seed`.
pub fn node_seed(run_seed: u64, node: u32) -> u64 {
    split_mix64(run_seed ^ split_mix64(0x6b77_0000_0000_0000 | u64::from(node)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_seeds_differ_across_nodes_and_runs() {
        assert_ne!(node_seed(1, 0), node_seed(1, 1));
        assert_ne!(node_seed(1, 0), node_seed(2, 0));
        assert_eq!(node_seed(5, 9), node_seed(5, 9));
    }

    #[test]
    fn splitmix_known_vector() {
        // Reference vector from the SplitMix64 paper implementation with
        // seed 0: first output.
        assert_eq!(split_mix64(0), 0xE220_A839_7B1D_CDAF);
    }
}
