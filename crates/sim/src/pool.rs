//! Persistent epoch-barrier worker pool.
//!
//! The engine's three parallel phases (compute, send-staging, delivery
//! placement) used to each open a fresh [`std::thread::scope`] every
//! round — spawn lead + join tail per phase per round, which
//! `exp_o1_profile` measured at 26–35% of flood wall time at 2–8
//! workers. This module replaces that with a pool spawned **once per
//! [`Engine::run`](crate::Engine::run)**: workers park on a condvar and
//! each phase is published to them as an *epoch* — a monotone counter
//! plus a job pointer. Dispatch is two uncontended lock acquisitions
//! and one `notify_all` per phase instead of N thread spawns, so the
//! per-phase synchronization cost becomes an epoch *wait*, not a
//! spawn/join.
//!
//! # Execution model
//!
//! [`WorkerPool::new(workers)`](WorkerPool::new) spawns `workers` OS
//! threads. [`WorkerPool::run(job)`](WorkerPool::run) publishes `job`
//! (a `Fn(usize) + Sync` borrowed for the duration of the call), bumps
//! the epoch, and wakes every worker; worker `i` invokes `job(i + 1)`
//! while the calling thread runs `job(0)` inline — the caller is chunk
//! 0's worker, so a pool driving `c` chunks needs only `c - 1` threads.
//! `run` returns after **all** chunks finish; the job borrow never
//! escapes the call.
//!
//! # Panic contract
//!
//! A panic in any chunk (caller's or worker's) is caught, the barrier
//! still completes — every other chunk runs to its end, `run` waits for
//! all of them — and the first captured payload is re-raised from `run`
//! on the calling thread. Workers never die to a job panic, so the pool
//! stays usable and `Drop` (which joins all workers) cannot hang. This
//! is what lets an engine panic inside a pooled phase unwind cleanly
//! through `Engine::run` into the runner's `catch_unwind`, becoming a
//! `CellFailed` event instead of a deadlocked barrier or leaked thread.
//!
//! # Counters
//!
//! The pool counts worker **wakeups** (a worker observed a new epoch
//! and ran its chunk) and **idle ticks** (a worker's condvar wait
//! returned without a new epoch — spurious wakeups). Both feed the
//! trace plane's per-round samples; they are *observability* values and
//! are deliberately excluded from trace structure equality and hashing,
//! which must stay bit-identical across thread counts.
//!
//! # Why `unsafe`, and why it is sound
//!
//! Workers are `'static` threads but jobs borrow from the caller's
//! stack, so the job reference's lifetime is erased before being placed
//! in the shared slot (`JobPtr`). Soundness rests on the barrier
//! protocol, not on types:
//!
//! * the pointer is published under the mutex *before* workers are
//!   woken, and workers read it under the same mutex — no data race on
//!   the slot;
//! * `run` does not return (and therefore the borrow it erased does not
//!   end) until `remaining == 0`, i.e. until every worker has finished
//!   invoking the job and will not touch the pointer again — even when
//!   a chunk panicked, `run` waits for the full barrier *before*
//!   resuming the unwind;
//! * workers only invoke the pointer between observing a fresh epoch
//!   and decrementing `remaining`; outside that window they treat the
//!   slot as opaque.
//!
//! All `unsafe` in the crate lives in this module; the engine itself
//! stays safe code (chunk work is handed over via owned per-chunk work
//! items, see `engine.rs`).

#![allow(unsafe_code)]

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// A lifetime-erased pointer to the current epoch's job.
///
/// Constructed only inside [`WorkerPool::run`], which guarantees the
/// pointee outlives every dereference (see module docs).
#[derive(Clone, Copy)]
struct JobPtr(*const (dyn Fn(usize) + Sync + 'static));

// SAFETY: the pointee is `Sync` (shared invocation from many threads is
// the whole point) and the barrier protocol bounds its lifetime; the
// raw pointer itself is plain data.
unsafe impl Send for JobPtr {}

/// Pool state guarded by the single mutex.
struct State {
    /// Monotone epoch counter; bumped once per published job.
    epoch: u64,
    /// The current epoch's job; `Some` exactly while an epoch is live.
    job: Option<JobPtr>,
    /// Workers that have not yet finished the current epoch's job.
    remaining: usize,
    /// Set by `Drop`; workers exit their loop when they observe it.
    shutdown: bool,
    /// First panic payload captured from a worker chunk this epoch.
    panic: Option<Box<dyn std::any::Any + Send>>,
    /// Total worker wakeups that found a new epoch to run.
    wakeups: u64,
    /// Total condvar waits that returned without a new epoch.
    idle: u64,
}

struct Shared {
    state: Mutex<State>,
    /// Signalled when a new epoch is published (or on shutdown).
    go: Condvar,
    /// Signalled when the last worker of an epoch finishes.
    done: Condvar,
}

/// A pool of persistent worker threads driven by epoch barriers.
///
/// See the module docs for the execution model and panic contract.
pub struct WorkerPool {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawns `workers` persistent threads. The pool drives
    /// `workers + 1` chunks per [`run`](Self::run): worker `i` runs
    /// chunk `i + 1`, the caller runs chunk 0 inline.
    pub fn new(workers: usize) -> Self {
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                epoch: 0,
                job: None,
                remaining: 0,
                shutdown: false,
                panic: None,
                wakeups: 0,
                idle: 0,
            }),
            go: Condvar::new(),
            done: Condvar::new(),
        });
        let handles = (0..workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("kw-sim-pool-{i}"))
                    .spawn(move || worker_loop(&shared, i + 1))
                    .expect("spawn pool worker")
            })
            .collect();
        Self { shared, handles }
    }

    /// Number of worker threads (excluding the caller).
    pub fn workers(&self) -> usize {
        self.handles.len()
    }

    /// Runs one epoch: every chunk index in `0..=workers()` gets one
    /// `job(index)` invocation, chunk 0 on the calling thread. Returns
    /// once all chunks have finished; re-raises the first chunk panic.
    pub fn run(&self, job: &(dyn Fn(usize) + Sync)) {
        if self.handles.is_empty() {
            job(0);
            return;
        }
        // SAFETY: erasing the borrow's lifetime; `run` does not return
        // until every worker has finished with the pointer (the
        // `remaining == 0` wait below), so the pointee outlives all
        // dereferences. See module docs.
        let erased = JobPtr(unsafe {
            std::mem::transmute::<
                *const (dyn Fn(usize) + Sync),
                *const (dyn Fn(usize) + Sync + 'static),
            >(job as *const _)
        });
        {
            let mut state = self.shared.state.lock().expect("pool mutex");
            debug_assert!(state.remaining == 0 && state.job.is_none());
            state.job = Some(erased);
            state.remaining = self.handles.len();
            state.epoch += 1;
            self.shared.go.notify_all();
        }
        // The caller is chunk 0's worker. Defer its panic: the barrier
        // must complete before the job borrow may end.
        let mine = catch_unwind(AssertUnwindSafe(|| job(0)));
        let worker_panic = {
            let mut state = self.shared.state.lock().expect("pool mutex");
            while state.remaining > 0 {
                state = self.shared.done.wait(state).expect("pool mutex");
            }
            state.job = None;
            state.panic.take()
        };
        if let Err(payload) = mine {
            resume_unwind(payload);
        }
        if let Some(payload) = worker_panic {
            resume_unwind(payload);
        }
    }

    /// Cumulative `(wakeups, idle ticks)` across the pool's lifetime.
    pub fn counters(&self) -> (u64, u64) {
        let state = self.shared.state.lock().expect("pool mutex");
        (state.wakeups, state.idle)
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut state = self.shared.state.lock().expect("pool mutex");
            state.shutdown = true;
            self.shared.go.notify_all();
        }
        for handle in self.handles.drain(..) {
            // A worker only exits via shutdown; it cannot be panicked
            // by a job (payloads are captured), so join cannot fail
            // except on external thread kill — ignore rather than
            // double-panic in Drop.
            let _ = handle.join();
        }
    }
}

fn worker_loop(shared: &Shared, index: usize) {
    let mut seen_epoch = 0u64;
    loop {
        let job = {
            let mut state = shared.state.lock().expect("pool mutex");
            loop {
                if state.shutdown {
                    return;
                }
                if state.epoch != seen_epoch {
                    seen_epoch = state.epoch;
                    state.wakeups += 1;
                    break state.job.expect("job published with epoch");
                }
                state = shared.go.wait(state).expect("pool mutex");
                if !state.shutdown && state.epoch == seen_epoch {
                    state.idle += 1;
                }
            }
        };
        // SAFETY: between the epoch observation above and the
        // `remaining` decrement below, `run` guarantees the pointee is
        // alive (it waits for the barrier before returning).
        let result = catch_unwind(AssertUnwindSafe(|| unsafe { (*job.0)(index) }));
        let mut state = shared.state.lock().expect("pool mutex");
        if let Err(payload) = result {
            if state.panic.is_none() {
                state.panic = Some(payload);
            }
        }
        state.remaining -= 1;
        if state.remaining == 0 {
            shared.done.notify_one();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn every_chunk_runs_exactly_once_per_epoch() {
        let pool = WorkerPool::new(3);
        let counts: Vec<AtomicUsize> = (0..4).map(|_| AtomicUsize::new(0)).collect();
        pool.run(&|i| {
            counts[i].fetch_add(1, Ordering::SeqCst);
        });
        for (i, c) in counts.iter().enumerate() {
            assert_eq!(c.load(Ordering::SeqCst), 1, "chunk {i}");
        }
    }

    #[test]
    fn epochs_reuse_workers_without_stale_state() {
        let pool = WorkerPool::new(2);
        let total = AtomicUsize::new(0);
        for _ in 0..100 {
            pool.run(&|_| {
                total.fetch_add(1, Ordering::SeqCst);
            });
        }
        assert_eq!(total.load(Ordering::SeqCst), 300);
        let (wakeups, _) = pool.counters();
        assert_eq!(wakeups, 200, "2 workers x 100 epochs");
    }

    #[test]
    fn zero_worker_pool_runs_inline() {
        let pool = WorkerPool::new(0);
        let hits = AtomicUsize::new(0);
        pool.run(&|i| {
            assert_eq!(i, 0);
            hits.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(hits.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn worker_panic_propagates_and_pool_survives() {
        let pool = WorkerPool::new(3);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.run(&|i| {
                if i == 2 {
                    panic!("chunk 2 exploded");
                }
            });
        }));
        let payload = result.expect_err("panic must propagate to the caller");
        let msg = payload
            .downcast_ref::<&str>()
            .copied()
            .expect("panic payload");
        assert_eq!(msg, "chunk 2 exploded");
        // The barrier completed and workers survived: the pool is
        // immediately reusable for a clean epoch.
        let ok = AtomicUsize::new(0);
        pool.run(&|_| {
            ok.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(ok.load(Ordering::SeqCst), 4);
    }

    #[test]
    fn caller_chunk_panic_still_completes_the_barrier() {
        let pool = WorkerPool::new(2);
        let others = AtomicUsize::new(0);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.run(&|i| {
                if i == 0 {
                    panic!("driver chunk exploded");
                }
                others.fetch_add(1, Ordering::SeqCst);
            });
        }));
        assert!(result.is_err());
        assert_eq!(
            others.load(Ordering::SeqCst),
            2,
            "workers ran to completion"
        );
        pool.run(&|_| {});
    }

    #[test]
    fn drop_joins_all_workers() {
        let pool = WorkerPool::new(4);
        pool.run(&|_| {});
        drop(pool); // must not hang or leak; join happens here
    }

    #[test]
    fn counters_track_wakeups() {
        let pool = WorkerPool::new(2);
        let (w0, _) = pool.counters();
        assert_eq!(w0, 0);
        pool.run(&|_| {});
        pool.run(&|_| {});
        let (w1, _) = pool.counters();
        assert_eq!(w1, 4);
    }
}
