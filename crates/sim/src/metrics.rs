//! Run-level communication accounting.

/// Communication counters for a single round.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RoundMetrics {
    /// Point-to-point messages sent this round (a broadcast by a node of
    /// degree `d` counts as `d` messages).
    pub messages: u64,
    /// Total encoded payload bits sent this round.
    pub bits: u64,
}

impl RoundMetrics {
    /// Adds another partial count into this one (used by the engine to
    /// reduce per-worker tallies of the fused accounting pass; counter
    /// sums are order-independent, so the reduction is deterministic for
    /// any thread count).
    pub fn accumulate(&mut self, other: RoundMetrics) {
        self.messages += other.messages;
        self.bits += other.bits;
    }
}

/// Aggregated communication metrics for a completed run.
///
/// These validate the paper's complexity claims:
/// `rounds` against Theorem 4 (`2k²`) / Theorem 5 (`4k² + O(k)`),
/// `max_node_messages` against the `O(k²Δ)` per-node message bound, and
/// `max_message_bits` against the `O(log Δ)` message-size bound.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RunMetrics {
    /// Number of synchronous rounds executed (compute steps).
    pub rounds: usize,
    /// Total messages delivered over the run.
    pub messages: u64,
    /// Total payload bits over the run.
    pub bits: u64,
    /// Largest single message, in bits.
    pub max_message_bits: usize,
    /// Maximum over nodes of the total number of messages that node sent.
    pub max_node_messages: u64,
    /// Byzantine payloads whose garbled wire encoding no longer decoded
    /// and were rejected at the receiver boundary (never delivered, never
    /// a panic). Zero on runs without adversarial senders.
    pub byz_rejected: u64,
    /// How many times a churn event forced the engine to rebuild its
    /// CSR-parallel message plane — the per-event cost of continuing in
    /// place instead of re-solving from scratch. Zero without churn.
    pub graph_rebuilds: u64,
    /// Per-round breakdown (empty unless trace recording was enabled).
    pub per_round: Vec<RoundMetrics>,
}

impl RunMetrics {
    /// Mean messages per round (0 if no rounds ran).
    pub fn messages_per_round(&self) -> f64 {
        if self.rounds == 0 {
            0.0
        } else {
            self.messages as f64 / self.rounds as f64
        }
    }

    /// Mean bits per message (0 if no messages were sent).
    pub fn bits_per_message(&self) -> f64 {
        if self.messages == 0 {
            0.0
        } else {
            self.bits as f64 / self.messages as f64
        }
    }

    /// Combines the metrics of two consecutive stages of a composed
    /// algorithm: counters add, maxima take the max, and per-round traces
    /// concatenate in stage order.
    pub fn merged(&self, later: &RunMetrics) -> RunMetrics {
        let mut per_round = self.per_round.clone();
        per_round.extend(later.per_round.iter().copied());
        RunMetrics {
            rounds: self.rounds + later.rounds,
            messages: self.messages + later.messages,
            bits: self.bits + later.bits,
            max_message_bits: self.max_message_bits.max(later.max_message_bits),
            max_node_messages: self.max_node_messages.max(later.max_node_messages),
            byz_rejected: self.byz_rejected + later.byz_rejected,
            graph_rebuilds: self.graph_rebuilds + later.graph_rebuilds,
            per_round,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_rates() {
        let m = RunMetrics {
            rounds: 4,
            messages: 8,
            bits: 64,
            max_message_bits: 16,
            max_node_messages: 5,
            ..Default::default()
        };
        assert_eq!(m.messages_per_round(), 2.0);
        assert_eq!(m.bits_per_message(), 8.0);
    }

    #[test]
    fn zero_run_has_zero_rates() {
        let m = RunMetrics::default();
        assert_eq!(m.messages_per_round(), 0.0);
        assert_eq!(m.bits_per_message(), 0.0);
    }

    #[test]
    fn merged_adds_counters_and_maxes_peaks() {
        let a = RunMetrics {
            rounds: 4,
            messages: 8,
            bits: 64,
            max_message_bits: 16,
            max_node_messages: 5,
            byz_rejected: 1,
            graph_rebuilds: 2,
            per_round: vec![RoundMetrics {
                messages: 8,
                bits: 64,
            }],
        };
        let b = RunMetrics {
            rounds: 2,
            messages: 3,
            bits: 9,
            max_message_bits: 7,
            max_node_messages: 11,
            byz_rejected: 4,
            graph_rebuilds: 1,
            per_round: vec![RoundMetrics {
                messages: 3,
                bits: 9,
            }],
        };
        let m = a.merged(&b);
        assert_eq!(m.rounds, 6);
        assert_eq!(m.messages, 11);
        assert_eq!(m.bits, 73);
        assert_eq!(m.max_message_bits, 16);
        assert_eq!(m.max_node_messages, 11);
        assert_eq!(m.byz_rejected, 5);
        assert_eq!(m.graph_rebuilds, 3);
        assert_eq!(m.per_round.len(), 2);
        assert_eq!(a.merged(&RunMetrics::default()), a);
    }
}
