//! The composable chaos plane: iid drops, correlated burst loss,
//! crash/recover schedules, byzantine senders, and inter-round churn —
//! all deterministic in one fault seed.
//!
//! [`ChaosPlan`] generalizes [`FaultPlan`] (which stays as the iid-drop
//! component). A plan is described by — and round-trips through — a
//! canonical spec string, the **chaos clause** of the workload grammar:
//!
//! ```text
//! drop=0.1,seed=7,burst=r3-5@0.9/0.5,crash=7@r2-4,byz=3+9,churn=r2re0-1+r4j6
//! ```
//!
//! * `drop=<p>` — iid per-delivery loss with probability `p ∈ [0, 1]`
//!   (omitted when 0);
//! * `seed=<s>` — the fault seed every random choice below derives from
//!   (omitted when 0);
//! * `burst=r<a>-<b>@<p>[/<f>]` — a correlated drop storm: during
//!   rounds `a..=b`, deliveries *into* the storm's region — a random
//!   fraction `f ∈ (0, 1]` of nodes (default 1.0), membership keyed off
//!   the fault seed and the burst's index — are dropped with
//!   probability `p`. May repeat;
//! * `crash=<v>@r<a>[-<b>]` — node `v` is down for rounds `a..=b`
//!   (forever when `-<b>` is omitted): it sends and receives nothing,
//!   but its protocol state persists and resumes on recovery. May
//!   repeat;
//! * `byz=<v>[+<v>…]` — byzantine senders: every payload `v` stages has
//!   its wire encoding corrupted by seeded bit flips before delivery.
//!   Corrupted bytes that still decode are delivered as the forged
//!   message; bytes that no longer decode are rejected (counted in
//!   [`RunMetrics::byz_rejected`](crate::RunMetrics::byz_rejected)) —
//!   never a panic;
//! * `churn=<event>[+<event>…]` — inter-round topology script. Each
//!   event is `r<round>` followed by `ae<u>-<v>` (add edge),
//!   `re<u>-<v>` (remove edge), `j<v>` (node joins / comes up) or
//!   `l<v>` (node leaves: goes down and loses every incident edge).
//!   Events at round `r` apply *before* round `r`'s compute phase, and
//!   messages in flight across a churn boundary are dropped. A node
//!   whose first liveness event is a join starts the run down.
//!
//! # Reproducibility contract
//!
//! Every chaotic choice — drop fates, burst region membership, byzantine
//! bit flips — is a pure function of the fault seed and stable per-event
//! keys (`round`, global node ids, send slot). Nothing depends on
//! iteration order, thread count, or wall clock, so a chaos spec plus a
//! run seed reproduces a run bit-for-bit anywhere.

use std::fmt;

use kw_graph::{apply_churn, ChurnEvent, ChurnKind, CsrGraph};

use crate::faults::FaultPlan;
use crate::rng::split_mix64;

/// Domain salt for burst region membership keys.
const REGION_SALT: u64 = 0x5245_4749_4f4e_414c;
/// Domain salt for burst drop-fate keys.
const BURST_SALT: u64 = 0x4255_5253_545f_4452;
/// Domain salt for byzantine corruption keys.
const BYZ_SALT: u64 = 0x4259_5a41_4e54_494e;

/// Maps a hashed key to a unit interval sample in `[0, 1)` (top 53 bits,
/// same mapping as [`FaultPlan`]).
#[inline]
fn unit(key: u64) -> f64 {
    (key >> 11) as f64 / (1u64 << 53) as f64
}

/// One correlated drop storm: a round window, a drop probability, and a
/// randomly chosen region of receivers it applies to.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Burst {
    /// First round of the storm (inclusive).
    pub from_round: usize,
    /// Last round of the storm (inclusive).
    pub to_round: usize,
    /// Drop probability for deliveries into the region during the window.
    pub drop_probability: f64,
    /// Fraction of nodes in the storm's region, `(0, 1]`. Membership is
    /// per-receiver, keyed off the fault seed and the burst's index in
    /// the plan.
    pub region: f64,
}

impl Burst {
    fn validate(&self) -> Result<(), String> {
        if self.from_round > self.to_round {
            return Err(format!(
                "burst window r{}-{} is empty (from > to)",
                self.from_round, self.to_round
            ));
        }
        if !(0.0..=1.0).contains(&self.drop_probability) {
            return Err(format!(
                "burst drop probability {} outside [0, 1]",
                self.drop_probability
            ));
        }
        if !(self.region > 0.0 && self.region <= 1.0) {
            return Err(format!(
                "burst region fraction {} outside (0, 1]",
                self.region
            ));
        }
        Ok(())
    }
}

/// One crash window: the node is down (sends and receives nothing) for
/// rounds `from_round..=to_round`, or forever when `to_round` is `None`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CrashWindow {
    /// The crashing node.
    pub node: u32,
    /// First down round (inclusive).
    pub from_round: usize,
    /// Last down round (inclusive); `None` means the node never recovers.
    pub to_round: Option<usize>,
}

impl CrashWindow {
    fn validate(&self) -> Result<(), String> {
        if let Some(to) = self.to_round {
            if self.from_round > to {
                return Err(format!(
                    "crash window r{}-{to} is empty (from > to)",
                    self.from_round
                ));
            }
        }
        Ok(())
    }

    /// Whether this window covers `(node, round)`.
    #[inline]
    fn covers(&self, node: u32, round: usize) -> bool {
        self.node == node && self.from_round <= round && self.to_round.is_none_or(|to| round <= to)
    }
}

/// A chaos-spec string failed to parse or validate.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ChaosParseError(String);

impl fmt::Display for ChaosParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid chaos spec: {}", self.0)
    }
}

impl std::error::Error for ChaosParseError {}

/// A composable, deterministic chaos model (see the [module docs](self)
/// for the grammar and semantics).
///
/// Construction canonicalizes: component lists are sorted (churn events
/// stably by round), byzantine ids deduplicated. [`spec`](Self::spec)
/// renders the canonical string, so equal plans render equal specs and
/// `parse(spec())` is the identity.
#[derive(Clone, Debug, PartialEq, Default)]
pub struct ChaosPlan {
    /// The iid drop component (also carries the fault seed).
    iid: FaultPlan,
    bursts: Vec<Burst>,
    crashes: Vec<CrashWindow>,
    byzantine: Vec<u32>,
    churn: Vec<ChurnEvent>,
}

impl From<FaultPlan> for ChaosPlan {
    fn from(iid: FaultPlan) -> Self {
        ChaosPlan {
            iid,
            ..Self::default()
        }
    }
}

impl ChaosPlan {
    /// A fully reliable plan (no chaos of any kind).
    pub fn reliable() -> Self {
        Self::default()
    }

    /// Replaces the iid-drop component (probability and fault seed).
    pub fn with_iid(mut self, iid: FaultPlan) -> Self {
        self.iid = iid;
        self
    }

    /// Replaces the fault seed, keeping the iid drop probability.
    pub fn with_fault_seed(mut self, seed: u64) -> Self {
        self.iid = FaultPlan::drop_with_probability(self.iid.drop_probability(), seed);
        self
    }

    /// Adds a correlated burst.
    ///
    /// # Panics
    ///
    /// Panics on an empty window or out-of-range probabilities.
    pub fn with_burst(mut self, burst: Burst) -> Self {
        if let Err(e) = burst.validate() {
            panic!("{e}");
        }
        self.bursts.push(burst);
        self.canonicalize();
        self
    }

    /// Adds a crash window for `node` (`to_round: None` = down forever).
    ///
    /// # Panics
    ///
    /// Panics on an empty window.
    pub fn with_crash(mut self, node: u32, from_round: usize, to_round: Option<usize>) -> Self {
        let w = CrashWindow {
            node,
            from_round,
            to_round,
        };
        if let Err(e) = w.validate() {
            panic!("{e}");
        }
        self.crashes.push(w);
        self.canonicalize();
        self
    }

    /// Marks `node` as a byzantine sender.
    pub fn with_byzantine(mut self, node: u32) -> Self {
        self.byzantine.push(node);
        self.canonicalize();
        self
    }

    /// Appends a churn event (kept stably sorted by round).
    pub fn with_churn_event(mut self, event: ChurnEvent) -> Self {
        self.churn.push(event);
        self.canonicalize();
        self
    }

    fn canonicalize(&mut self) {
        self.bursts.sort_by_key(|b| {
            (
                b.from_round,
                b.to_round,
                b.drop_probability.to_bits(),
                b.region.to_bits(),
            )
        });
        self.crashes
            .sort_by_key(|c| (c.node, c.from_round, c.to_round.unwrap_or(usize::MAX)));
        self.byzantine.sort_unstable();
        self.byzantine.dedup();
        // Stable by round: same-round events keep their script order,
        // which `apply_churn` honors (last wins).
        self.churn.sort_by_key(|e| e.round);
    }

    /// The iid drop probability (0.0 when the iid component is off).
    pub fn drop_probability(&self) -> f64 {
        self.iid.drop_probability()
    }

    /// The fault seed every chaotic choice derives from.
    pub fn seed(&self) -> u64 {
        self.iid.seed()
    }

    /// The correlated bursts, canonically ordered.
    pub fn bursts(&self) -> &[Burst] {
        &self.bursts
    }

    /// The crash windows, canonically ordered.
    pub fn crashes(&self) -> &[CrashWindow] {
        &self.crashes
    }

    /// The byzantine sender ids, sorted and deduplicated.
    pub fn byzantine(&self) -> &[u32] {
        &self.byzantine
    }

    /// The churn script, stably sorted by round.
    pub fn churn(&self) -> &[ChurnEvent] {
        &self.churn
    }

    /// Whether the plan is completely quiet — no drops, bursts, crashes,
    /// byzantine senders, or churn.
    pub fn is_reliable(&self) -> bool {
        self.iid.is_reliable()
            && self.bursts.is_empty()
            && self.crashes.is_empty()
            && self.byzantine.is_empty()
            && self.churn.is_empty()
    }

    /// Whether delivery never drops messages (no iid loss and no bursts).
    /// Crashes, churn, and byzantine corruption may still be present —
    /// they filter senders/receivers or rewrite payloads, but every
    /// message staged for a live receiver arrives. This is the condition
    /// that lets the engine take its solo-broadcast fast path.
    pub fn lossless(&self) -> bool {
        self.iid.is_reliable() && self.bursts.is_empty()
    }

    /// Whether any node can ever be down (crash windows or node churn).
    pub fn has_down(&self) -> bool {
        !self.crashes.is_empty()
            || self
                .churn
                .iter()
                .any(|e| matches!(e.kind, ChurnKind::Join(_) | ChurnKind::Leave(_)))
    }

    /// Whether any byzantine senders are configured.
    pub fn has_byzantine(&self) -> bool {
        !self.byzantine.is_empty()
    }

    /// Whether the plan carries a churn script.
    pub fn has_churn(&self) -> bool {
        !self.churn.is_empty()
    }

    /// Whether `node` is a byzantine sender.
    #[inline]
    pub fn is_byzantine(&self, node: u32) -> bool {
        self.byzantine.binary_search(&node).is_ok()
    }

    /// Decides the fate of one delivery (cf. [`FaultPlan::drops`]): iid
    /// loss, then each burst whose window covers `round` and whose region
    /// contains `receiver`. Deterministic and order-independent.
    #[inline]
    pub fn drops(&self, round: usize, sender: u32, receiver: u32, slot: u32) -> bool {
        if self.iid.drops(round, sender, receiver, slot) {
            return true;
        }
        for (idx, b) in self.bursts.iter().enumerate() {
            if round < b.from_round || round > b.to_round {
                continue;
            }
            if b.region < 1.0 {
                let member = unit(split_mix64(
                    self.seed()
                        ^ REGION_SALT
                        ^ split_mix64((idx as u64) << 32 | u64::from(receiver)),
                ));
                if member >= b.region {
                    continue;
                }
            }
            let key = split_mix64(
                self.seed()
                    ^ BURST_SALT
                    ^ (idx as u64)
                    ^ split_mix64((round as u64) << 32 | u64::from(slot))
                    ^ split_mix64(u64::from(sender) << 32 | u64::from(receiver)),
            );
            if unit(key) < b.drop_probability {
                return true;
            }
        }
        false
    }

    /// Whether `node` is down at `round` — inside a crash window, or
    /// churn-down (left and not yet re-joined; a node whose first
    /// liveness event is a join starts the run down).
    pub fn is_down(&self, node: u32, round: usize) -> bool {
        if self.crashes.iter().any(|c| c.covers(node, round)) {
            return true;
        }
        self.churn_down(node, round)
    }

    /// Whether `node` is down at `round` and at every later round — the
    /// engine's termination check treats such nodes as finished.
    pub fn down_forever(&self, node: u32, round: usize) -> bool {
        if self
            .crashes
            .iter()
            .any(|c| c.node == node && c.from_round <= round && c.to_round.is_none())
        {
            return true;
        }
        self.churn_down(node, round)
            && !self
                .churn
                .iter()
                .any(|e| e.round > round && matches!(e.kind, ChurnKind::Join(v) if v == node))
    }

    /// Churn-liveness of `node` at `round`: walks the (round-sorted)
    /// liveness events for the node; the first one fixes the start state
    /// (a first join means the node starts down), and the last event at
    /// or before `round` wins.
    fn churn_down(&self, node: u32, round: usize) -> bool {
        let mut down = false;
        let mut seen = false;
        for e in &self.churn {
            let joins = match e.kind {
                ChurnKind::Join(v) if v == node => true,
                ChurnKind::Leave(v) if v == node => false,
                _ => continue,
            };
            if !seen {
                seen = true;
                down = joins;
            }
            if e.round <= round {
                down = !joins;
            } else {
                break;
            }
        }
        seen && down
    }

    /// The churn events applying before `round`'s compute phase.
    pub fn churn_events_at(&self, round: usize) -> &[ChurnEvent] {
        let lo = self.churn.partition_point(|e| e.round < round);
        let hi = self.churn.partition_point(|e| e.round <= round);
        &self.churn[lo..hi]
    }

    /// The graph after the *entire* churn script has applied to `g`, or
    /// `None` when the plan has no churn. This is the final topology a
    /// run ends on — the graph answers should be graded against.
    pub fn churned_graph(&self, g: &CsrGraph) -> Option<CsrGraph> {
        if self.churn.is_empty() {
            None
        } else {
            Some(apply_churn(g, &self.churn))
        }
    }

    /// A copy of this plan with the churn script removed — the "re-solve
    /// on the final topology" arm of churn-cost comparisons.
    pub fn without_churn(&self) -> ChaosPlan {
        let mut p = self.clone();
        p.churn.clear();
        p
    }

    /// Corrupts `bytes` (a wire encoding) in place with seeded bit flips
    /// keyed by `(round, sender, slot)`: per 64-bit lane the flip mask is
    /// the AND of three hash words (each bit flips with probability 1/8),
    /// and if no bit flipped at all, the lowest bit of the first byte is
    /// forced — a byzantine sender never transmits its true payload.
    pub fn corrupt(&self, bytes: &mut [u8], round: usize, sender: u32, slot: u32) {
        if bytes.is_empty() {
            return;
        }
        let base = split_mix64(
            self.seed()
                ^ BYZ_SALT
                ^ split_mix64((round as u64) << 32 | u64::from(slot))
                ^ split_mix64(u64::from(sender)),
        );
        let mut flipped = false;
        for (lane, chunk) in bytes.chunks_mut(8).enumerate() {
            let a = split_mix64(base ^ lane as u64);
            let b = split_mix64(a);
            let c = split_mix64(b);
            let mask = (a & b & c).to_le_bytes();
            for (i, byte) in chunk.iter_mut().enumerate() {
                flipped |= mask[i] != 0;
                *byte ^= mask[i];
            }
        }
        if !flipped {
            bytes[0] ^= 1;
        }
    }

    /// Renders the canonical spec string (empty for a reliable plan).
    /// `parse(spec())` reproduces the plan exactly.
    pub fn spec(&self) -> String {
        let mut parts: Vec<String> = Vec::new();
        if self.iid.drop_probability() > 0.0 {
            parts.push(format!("drop={}", self.iid.drop_probability()));
        }
        if self.iid.seed() != 0 {
            parts.push(format!("seed={}", self.iid.seed()));
        }
        for b in &self.bursts {
            let mut s = format!(
                "burst=r{}-{}@{}",
                b.from_round, b.to_round, b.drop_probability
            );
            if b.region < 1.0 {
                s.push_str(&format!("/{}", b.region));
            }
            parts.push(s);
        }
        for c in &self.crashes {
            match c.to_round {
                Some(to) => parts.push(format!("crash={}@r{}-{to}", c.node, c.from_round)),
                None => parts.push(format!("crash={}@r{}", c.node, c.from_round)),
            }
        }
        if !self.byzantine.is_empty() {
            let ids: Vec<String> = self.byzantine.iter().map(u32::to_string).collect();
            parts.push(format!("byz={}", ids.join("+")));
        }
        if !self.churn.is_empty() {
            let evs: Vec<String> = self.churn.iter().map(render_churn_event).collect();
            parts.push(format!("churn={}", evs.join("+")));
        }
        parts.join(",")
    }

    /// Parses a chaos clause (an optional `chaos:` prefix is accepted and
    /// stripped; the empty string is the reliable plan). See the
    /// [module docs](self) for the grammar.
    ///
    /// # Errors
    ///
    /// [`ChaosParseError`] naming the offending clause on any syntax or
    /// range violation.
    pub fn parse(spec: &str) -> Result<ChaosPlan, ChaosParseError> {
        let err = |msg: String| ChaosParseError(msg);
        let body = spec.trim();
        let body = body.strip_prefix("chaos:").unwrap_or(body).trim();
        let mut plan = ChaosPlan::default();
        if body.is_empty() {
            return Ok(plan);
        }
        let mut drop = 0.0f64;
        let mut seed = 0u64;
        for part in body.split(',') {
            let part = part.trim();
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| err(format!("clause {part:?} is not key=value")))?;
            match key {
                "drop" => {
                    drop = value
                        .parse::<f64>()
                        .ok()
                        .filter(|p| (0.0..=1.0).contains(p))
                        .ok_or_else(|| {
                            err(format!("drop probability {value:?} is not in [0, 1]"))
                        })?;
                }
                "seed" => {
                    seed = value
                        .parse::<u64>()
                        .map_err(|_| err(format!("seed {value:?} is not a u64")))?;
                }
                "burst" => {
                    let b = parse_burst(value).map_err(err)?;
                    b.validate().map_err(err)?;
                    plan.bursts.push(b);
                }
                "crash" => {
                    let c = parse_crash(value).map_err(err)?;
                    c.validate().map_err(err)?;
                    plan.crashes.push(c);
                }
                "byz" => {
                    for tok in value.split('+') {
                        plan.byzantine.push(
                            tok.parse::<u32>()
                                .map_err(|_| err(format!("byz node {tok:?} is not a u32")))?,
                        );
                    }
                }
                "churn" => {
                    for tok in value.split('+') {
                        plan.churn.push(parse_churn_event(tok).map_err(err)?);
                    }
                }
                _ => return Err(err(format!("unknown chaos key {key:?}"))),
            }
        }
        plan.iid = FaultPlan::drop_with_probability(drop, seed);
        plan.canonicalize();
        Ok(plan)
    }
}

/// Renders one churn event in grammar form (`r<round><op>`).
fn render_churn_event(e: &ChurnEvent) -> String {
    match e.kind {
        ChurnKind::AddEdge(u, v) => format!("r{}ae{u}-{v}", e.round),
        ChurnKind::RemoveEdge(u, v) => format!("r{}re{u}-{v}", e.round),
        ChurnKind::Join(v) => format!("r{}j{v}", e.round),
        ChurnKind::Leave(v) => format!("r{}l{v}", e.round),
    }
}

/// `r<a>-<b>@<p>[/<f>]`.
fn parse_burst(s: &str) -> Result<Burst, String> {
    let body = s
        .strip_prefix('r')
        .ok_or_else(|| format!("burst {s:?} must start with r<from>-<to>"))?;
    let (window, rest) = body
        .split_once('@')
        .ok_or_else(|| format!("burst {s:?} is missing @<probability>"))?;
    let (from, to) = window
        .split_once('-')
        .ok_or_else(|| format!("burst window {window:?} is not <from>-<to>"))?;
    let from_round = from
        .parse::<usize>()
        .map_err(|_| format!("burst round {from:?} is not an integer"))?;
    let to_round = to
        .parse::<usize>()
        .map_err(|_| format!("burst round {to:?} is not an integer"))?;
    let (prob, region) = match rest.split_once('/') {
        Some((p, f)) => (p, Some(f)),
        None => (rest, None),
    };
    let drop_probability = prob
        .parse::<f64>()
        .map_err(|_| format!("burst probability {prob:?} is not a number"))?;
    let region = match region {
        Some(f) => f
            .parse::<f64>()
            .map_err(|_| format!("burst region {f:?} is not a number"))?,
        None => 1.0,
    };
    Ok(Burst {
        from_round,
        to_round,
        drop_probability,
        region,
    })
}

/// `<node>@r<a>[-<b>]`.
fn parse_crash(s: &str) -> Result<CrashWindow, String> {
    let (node, window) = s
        .split_once('@')
        .ok_or_else(|| format!("crash {s:?} is not <node>@r<from>[-<to>]"))?;
    let node = node
        .parse::<u32>()
        .map_err(|_| format!("crash node {node:?} is not a u32"))?;
    let window = window
        .strip_prefix('r')
        .ok_or_else(|| format!("crash window {window:?} must start with r"))?;
    let (from_round, to_round) = match window.split_once('-') {
        Some((from, to)) => (
            from.parse::<usize>()
                .map_err(|_| format!("crash round {from:?} is not an integer"))?,
            Some(
                to.parse::<usize>()
                    .map_err(|_| format!("crash round {to:?} is not an integer"))?,
            ),
        ),
        None => (
            window
                .parse::<usize>()
                .map_err(|_| format!("crash round {window:?} is not an integer"))?,
            None,
        ),
    };
    Ok(CrashWindow {
        node,
        from_round,
        to_round,
    })
}

/// `r<round>` then `ae<u>-<v>` | `re<u>-<v>` | `j<v>` | `l<v>`.
fn parse_churn_event(s: &str) -> Result<ChurnEvent, String> {
    let body = s
        .strip_prefix('r')
        .ok_or_else(|| format!("churn event {s:?} must start with r<round>"))?;
    let digits = body.chars().take_while(char::is_ascii_digit).count();
    if digits == 0 {
        return Err(format!("churn event {s:?} is missing its round"));
    }
    let round = body[..digits]
        .parse::<usize>()
        .map_err(|_| format!("churn round in {s:?} is not an integer"))?;
    let op = &body[digits..];
    let pair = |rest: &str| -> Result<(u32, u32), String> {
        let (u, v) = rest
            .split_once('-')
            .ok_or_else(|| format!("churn edge in {s:?} is not <u>-<v>"))?;
        Ok((
            u.parse::<u32>()
                .map_err(|_| format!("churn endpoint {u:?} is not a u32"))?,
            v.parse::<u32>()
                .map_err(|_| format!("churn endpoint {v:?} is not a u32"))?,
        ))
    };
    let node = |rest: &str| -> Result<u32, String> {
        rest.parse::<u32>()
            .map_err(|_| format!("churn node {rest:?} is not a u32"))
    };
    let kind = if let Some(rest) = op.strip_prefix("ae") {
        let (u, v) = pair(rest)?;
        ChurnKind::AddEdge(u, v)
    } else if let Some(rest) = op.strip_prefix("re") {
        let (u, v) = pair(rest)?;
        ChurnKind::RemoveEdge(u, v)
    } else if let Some(rest) = op.strip_prefix('j') {
        ChurnKind::Join(node(rest)?)
    } else if let Some(rest) = op.strip_prefix('l') {
        ChurnKind::Leave(node(rest)?)
    } else {
        return Err(format!(
            "churn event {s:?} has an unknown op (expected ae/re/j/l)"
        ));
    };
    Ok(ChurnEvent { round, kind })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_spec_is_reliable_and_roundtrips() {
        let p = ChaosPlan::parse("").unwrap();
        assert!(p.is_reliable());
        assert!(p.lossless());
        assert_eq!(p.spec(), "");
        assert_eq!(ChaosPlan::parse(&p.spec()).unwrap(), p);
        assert_eq!(ChaosPlan::parse("chaos:").unwrap(), p);
    }

    #[test]
    fn issue_example_parses_and_roundtrips() {
        let s = "chaos:drop=0.1,burst=r3-5@0.9,crash=7@r2,byz=3";
        let p = ChaosPlan::parse(s).unwrap();
        assert_eq!(p.drop_probability(), 0.1);
        assert_eq!(p.bursts().len(), 1);
        assert_eq!(p.crashes().len(), 1);
        assert_eq!(p.byzantine(), &[3]);
        assert_eq!(p.spec(), "drop=0.1,burst=r3-5@0.9,crash=7@r2,byz=3");
        assert_eq!(ChaosPlan::parse(&p.spec()).unwrap(), p);
    }

    #[test]
    fn full_grammar_roundtrips_canonically() {
        // Deliberately unsorted components; parse canonicalizes.
        let s = "seed=9,byz=9+3+3,crash=5@r4-6,crash=1@r0,burst=r3-5@0.9/0.25,churn=r4j6+r2re0-1";
        let p = ChaosPlan::parse(s).unwrap();
        assert_eq!(
            p.spec(),
            "seed=9,burst=r3-5@0.9/0.25,crash=1@r0,crash=5@r4-6,byz=3+9,churn=r2re0-1+r4j6"
        );
        assert_eq!(ChaosPlan::parse(&p.spec()).unwrap(), p);
        assert!(!p.lossless());
        assert!(p.has_down());
        assert!(p.has_byzantine());
        assert!(p.has_churn());
    }

    #[test]
    fn parse_rejects_malformed_clauses() {
        for bad in [
            "nonsense",
            "drop=2.0",
            "drop=NaN",
            "seed=-1",
            "burst=3-5@0.9",
            "burst=r5-3@0.9",
            "burst=r3-5@1.5",
            "burst=r3-5@0.5/0.0",
            "crash=7",
            "crash=7@r5-3",
            "byz=x",
            "churn=ae0-1",
            "churn=r2x0",
            "churn=r2ae0",
            "frobnicate=1",
        ] {
            assert!(ChaosPlan::parse(bad).is_err(), "{bad:?} should not parse");
        }
    }

    #[test]
    fn burst_drops_inside_window_only() {
        let p = ChaosPlan::parse("seed=3,burst=r2-4@1").unwrap();
        // Full-region probability-1 burst: every delivery in the window
        // drops, none outside it.
        for round in 0..8 {
            let dropped = p.drops(round, 0, 1, 0);
            assert_eq!(dropped, (2..=4).contains(&round), "round {round}");
        }
    }

    #[test]
    fn burst_region_scopes_receivers() {
        let p = ChaosPlan::parse("seed=11,burst=r0-100@1/0.5").unwrap();
        let hit = (0u32..200).filter(|&v| p.drops(5, 0, v, 0)).count();
        // ~half the receivers are in the region; all their deliveries drop.
        assert!((60..=140).contains(&hit), "region hit {hit}/200");
        // Membership is stable per receiver across rounds and senders.
        for v in 0..50u32 {
            let a = p.drops(1, 0, v, 0);
            let b = p.drops(7, 3, v, 2);
            assert_eq!(a, b, "receiver {v} region membership must be stable");
        }
    }

    #[test]
    fn iid_and_burst_compose() {
        let p = ChaosPlan::parse("drop=1,seed=5").unwrap();
        assert!(p.drops(0, 0, 1, 0));
        assert!(!p.lossless());
        let q = ChaosPlan::parse("seed=5").unwrap();
        assert!(!q.drops(0, 0, 1, 0));
        assert!(q.lossless());
    }

    #[test]
    fn crash_windows_and_forever() {
        let p = ChaosPlan::parse("crash=3@r2-4,crash=9@r5").unwrap();
        assert!(!p.is_down(3, 1));
        assert!(p.is_down(3, 2));
        assert!(p.is_down(3, 4));
        assert!(!p.is_down(3, 5));
        assert!(!p.down_forever(3, 2));
        assert!(p.is_down(9, 5));
        assert!(p.is_down(9, 1_000_000));
        assert!(p.down_forever(9, 5));
        assert!(!p.down_forever(9, 4));
        assert!(!p.is_down(0, 3));
    }

    #[test]
    fn churn_liveness_follows_script() {
        // Node 6 joins at r4 (so starts down); node 2 leaves at r3 and
        // rejoins at r6; node 0 has no liveness events.
        let p = ChaosPlan::parse("churn=r4j6+r3l2+r6j2").unwrap();
        assert!(p.is_down(6, 0));
        assert!(p.is_down(6, 3));
        assert!(!p.is_down(6, 4));
        assert!(!p.is_down(2, 2));
        assert!(p.is_down(2, 3));
        assert!(p.is_down(2, 5));
        assert!(!p.is_down(2, 6));
        assert!(!p.is_down(0, 5));
        // Down-forever only once no future join exists.
        let q = ChaosPlan::parse("churn=r3l2").unwrap();
        assert!(q.down_forever(2, 3));
        assert!(!q.down_forever(2, 2));
        assert!(!p.down_forever(2, 3));
    }

    #[test]
    fn churn_events_slice_by_round() {
        let p = ChaosPlan::parse("churn=r2ae0-1+r2l3+r5j3").unwrap();
        assert_eq!(p.churn_events_at(0), &[]);
        assert_eq!(p.churn_events_at(2).len(), 2);
        assert_eq!(p.churn_events_at(5).len(), 1);
        assert_eq!(p.churn_events_at(6), &[]);
    }

    #[test]
    fn churned_graph_applies_whole_script() {
        use kw_graph::NodeId;
        let g = CsrGraph::from_edges(4, [(0, 1), (1, 2)]).unwrap();
        let p = ChaosPlan::parse("churn=r1re0-1+r3ae2-3").unwrap();
        let h = p.churned_graph(&g).unwrap();
        assert!(!h.has_edge(NodeId::new(0), NodeId::new(1)));
        assert!(h.has_edge(NodeId::new(2), NodeId::new(3)));
        assert!(ChaosPlan::reliable().churned_graph(&g).is_none());
        let stripped = p.without_churn();
        assert!(!stripped.has_churn());
        assert!(stripped.churned_graph(&g).is_none());
    }

    #[test]
    fn corruption_is_deterministic_and_never_identity() {
        let p = ChaosPlan::parse("seed=21,byz=0").unwrap();
        assert!(p.is_byzantine(0));
        assert!(!p.is_byzantine(1));
        for len in 1..40usize {
            let original: Vec<u8> = (0..len as u8).collect();
            let mut a = original.clone();
            let mut b = original.clone();
            p.corrupt(&mut a, 3, 0, 1);
            p.corrupt(&mut b, 3, 0, 1);
            assert_eq!(a, b, "corruption must be deterministic");
            assert_ne!(a, original, "corruption must change the bytes");
        }
        // Different keys give different corruption (overwhelmingly).
        let mut a = vec![0u8; 16];
        let mut b = vec![0u8; 16];
        p.corrupt(&mut a, 3, 0, 1);
        p.corrupt(&mut b, 4, 0, 1);
        assert_ne!(a, b);
    }

    #[test]
    fn fault_plan_upgrade_preserves_fields() {
        let p: ChaosPlan = FaultPlan::drop_with_probability(0.25, 99).into();
        assert_eq!(p.drop_probability(), 0.25);
        assert_eq!(p.seed(), 99);
        assert_eq!(p.spec(), "drop=0.25,seed=99");
        assert_eq!(ChaosPlan::parse("drop=0.25,seed=99").unwrap(), p);
    }

    #[test]
    fn builders_match_parsed_plans() {
        let built = ChaosPlan::reliable()
            .with_fault_seed(4)
            .with_burst(Burst {
                from_round: 1,
                to_round: 2,
                drop_probability: 0.5,
                region: 1.0,
            })
            .with_crash(3, 2, Some(4))
            .with_byzantine(7)
            .with_churn_event(ChurnEvent {
                round: 1,
                kind: ChurnKind::Leave(5),
            });
        let parsed =
            ChaosPlan::parse("seed=4,burst=r1-2@0.5,crash=3@r2-4,byz=7,churn=r1l5").unwrap();
        assert_eq!(built, parsed);
        assert_eq!(built.spec(), parsed.spec());
    }

    #[test]
    fn total_blackout_chaos_plan_is_legal() {
        let p = ChaosPlan::parse("drop=1,seed=1").unwrap();
        for i in 0..100u32 {
            assert!(p.drops(0, i, i + 1, 0));
        }
    }
}
