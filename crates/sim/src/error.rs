use std::error::Error;
use std::fmt;

/// Errors produced by the simulation engine.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimError {
    /// The protocol did not halt within the configured round budget.
    ///
    /// Every algorithm in this workspace has a known closed-form round
    /// count, so hitting this indicates a protocol bug rather than a slow
    /// run.
    MaxRoundsExceeded {
        /// The configured limit that was reached.
        limit: usize,
    },
    /// A message failed to round-trip through its wire encoding (detected
    /// when wire checking is enabled).
    WireMismatch {
        /// Round in which the corrupt message was sent.
        round: usize,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::MaxRoundsExceeded { limit } => {
                write!(f, "protocol did not halt within {limit} rounds")
            }
            SimError::WireMismatch { round } => {
                write!(
                    f,
                    "message wire encoding did not round-trip in round {round}"
                )
            }
        }
    }
}

impl Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert_eq!(
            SimError::MaxRoundsExceeded { limit: 10 }.to_string(),
            "protocol did not halt within 10 rounds"
        );
        assert!(SimError::WireMismatch { round: 3 }
            .to_string()
            .contains("round 3"));
    }

    #[test]
    fn send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SimError>();
    }
}
