//! The synchronous round-driving engine.
//!
//! # The flat CSR message plane
//!
//! Both halves of a round — sending and delivery — run on flat arrays
//! parallel to the graph's CSR edge array; no per-node `Vec` exists
//! anywhere on the hot path. A round costs `O(m + traffic)` — the
//! `m`-term is sequential walks of dense arrays (placement visits each
//! receiver arc once), while every random-access and cloning cost scales
//! with the traffic actually delivered:
//!
//! 1. the **compute phase** stages sends as they happen: each node's
//!    [`Ctx`] writes through an opaque [`Sink`](crate::Sink) whose engine
//!    implementation appends straight into a per-node run of a flat send
//!    arena (one arena per worker chunk, reused every round). Sender-side
//!    metrics, wire checking, per-node message counters, run (`outbox`)
//!    length publication, and solo-broadcast detection — the dominant
//!    "one reliable broadcast" shape, whose payload is cached in a dense
//!    per-node array — all happen at the moment of the send, while the
//!    message is hot. The former "fill per-node outboxes, then re-walk
//!    every outbox" two-pass is gone;
//! 2. a **staging pass**, touching only *staged* senders (non-solo,
//!    non-quiet — none at all in broadcast-heavy rounds), counts per
//!    directed arc `u → v` how many copies will be delivered along it
//!    (receiver-side filters applied here: arcs into halted nodes count
//!    zero, and each copy's fate under a fault plan is decided by the
//!    same `(round, sender, receiver, slot)` key the old receiver-driven
//!    scan used), prefix-sums those counts into per-arc `[start, cursor)`
//!    ranges, and clones each staged sender's delivered payloads out of
//!    its arena run into one sender-major staging buffer, in
//!    port-then-slot order;
//! 3. a **placement pass** walks receivers in order and copies each
//!    message into its slot of one contiguous double-buffered inbox
//!    arena: solo broadcasts come straight from the dense cache, staged
//!    traffic from the staging run of the reverse arc (`rev_edge`, a flat
//!    table built in `O(m)` by a counting pass, not binary searches).
//!    Receiver offsets into the arena are recorded as placement goes, so
//!    no separate per-arc prefix pass exists on the hot path.
//!
//! All message-proportional buffers (send arenas, inbox arenas, staging,
//! plan) are reused and keep their capacity, so steady-state rounds
//! perform no buffer growth — asserted by a debug counter
//! ([`EngineStats::buffer_growths`]); multi-threaded rounds still make
//! small `O(threads)` control-structure allocations (chunk tables, boxed
//! per-chunk jobs). Every phase preserves the engine's determinism
//! guarantee: outputs, metrics, and per-node message counts are
//! bit-identical for every thread count, including under fault plans.
//!
//! # Parallel execution: persistent pool + degree-weighted chunks
//!
//! At `threads > 1` the engine partitions nodes into contiguous,
//! **degree-weighted** chunks: cut points are chosen by binary search on
//! the prefix weight `arcs(0..v) + NODE_COST·v`, so each chunk carries
//! roughly equal placement work even on skewed degree distributions
//! (uniform node-count chunks peaked at 1.6–1.7× max/mean busy time on
//! G(n,p); see `exp_o1_profile`). Boundaries are recomputed on every
//! churn rebuild against the new CSR plane. All three parallel phases —
//! compute, send staging, delivery placement — are driven by one
//! persistent [`WorkerPool`](crate::pool::WorkerPool) spawned per run:
//! each phase hands the pool one boxed job per chunk and the pool runs
//! them behind a lightweight epoch barrier, replacing the
//! spawn/join-per-phase-per-round `std::thread::scope` pattern whose
//! fork/join overhead was 26–35% of flood wall time.
//!
//! The **message plane is per-chunk**: each chunk owns its inbox arena
//! (front and back), its send arena, and its staging buffer, with
//! chunk-local receiver offsets — so delivery placement writes only
//! chunk-owned memory and the old sequential splice-and-rebase steps are
//! gone. The single cross-chunk interaction is the *thin exchange*
//! during placement: a receiver's worker reads (never writes) the
//! staging buffer of the sender's chunk, located through the dense
//! `node_chunk` table and per-chunk staging bases. Everything downstream
//! addresses sends through the per-node run table, so the chunked layout
//! stays invisible to results.
//!
//! **Port-numbering invariant:** port `q` of node `v` is `v`'s `q`-th
//! neighbor in ascending id order — exactly CSR arc `offsets[v] + q`. The
//! flat plane indexes by arcs but never renumbers ports, so protocols and
//! recorded traffic are unaffected by the layout.
//!
//! Staged (non-solo) deliveries clone a message twice — once into the
//! staging buffer, once into the receiver's inbox slice. Messages are
//! small wire-encoded values (the paper's are `O(log Δ)` bits), so the
//! extra copy is far cheaper than the outbox rescans it replaces.

use std::sync::Mutex;
use std::time::Instant;

use rand::rngs::SmallRng;
use rand::SeedableRng;

use kw_graph::{apply_churn, CsrGraph, NodeId};
use kw_trace::{tick_us, RoundSample};

use crate::chaos::ChaosPlan;
use crate::mailbox::{Ctx, Outbound, Sink};
use crate::metrics::{RoundMetrics, RunMetrics};
use crate::pool::WorkerPool;
use crate::rng::node_seed;
use crate::wire::{BitReader, BitWriter, WireEncode};
use crate::{Protocol, SimError, Status};

/// Static facts about a node, passed to the protocol factory.
#[derive(Clone, Copy, Debug)]
pub struct NodeInfo {
    /// The node's identifier.
    pub id: NodeId,
    /// The node's degree (number of incident edges / ports).
    pub degree: usize,
    /// Deterministic per-node RNG seed derived from the run seed.
    pub seed: u64,
}

/// Engine tuning knobs.
///
/// The defaults run sequentially with a generous round budget; experiments
/// enable `threads` for large graphs and `record_per_round` when they need
/// round-resolved traffic curves.
#[derive(Clone, Debug)]
pub struct EngineConfig {
    /// Abort with [`SimError::MaxRoundsExceeded`] after this many rounds.
    pub max_rounds: usize,
    /// Run seed; per-node seeds are derived from it.
    pub seed: u64,
    /// Worker threads for the compute and delivery phases (`<= 1` means
    /// sequential). Results are identical for any thread count.
    pub threads: usize,
    /// Record per-round [`RoundMetrics`] in the final [`RunMetrics`].
    pub record_per_round: bool,
    /// Verify that every sent message decodes from its own wire encoding
    /// (cheap safety net; enabled by default in tests, not benches).
    pub check_wire: bool,
    /// Chaos model — iid drops, bursts, crashes, byzantine senders, and
    /// churn (defaults to fully reliable). A plain [`FaultPlan`] converts
    /// via `.into()`.
    ///
    /// [`FaultPlan`]: crate::FaultPlan
    pub faults: ChaosPlan,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            max_rounds: 1_000_000,
            seed: 0,
            threads: 1,
            record_per_round: false,
            check_wire: false,
            faults: ChaosPlan::reliable(),
        }
    }
}

impl EngineConfig {
    /// Config with a specific run seed, other fields default.
    pub fn seeded(seed: u64) -> Self {
        EngineConfig {
            seed,
            ..Self::default()
        }
    }
}

/// Outcome of a completed run.
#[derive(Clone, Debug)]
pub struct RunReport<O> {
    /// Per-node outputs, indexed by node id.
    pub outputs: Vec<O>,
    /// Aggregated communication metrics.
    pub metrics: RunMetrics,
    /// Total messages sent by each node (validates the paper's `O(k²Δ)`
    /// per-node bound).
    pub node_messages: Vec<u64>,
}

/// Internal engine counters exposed for allocation-stability tests and
/// tuning, returned by [`Engine::run_instrumented`].
#[derive(Clone, Copy, Debug)]
pub struct EngineStats {
    /// How many rounds grew the capacity of any reusable message-plane
    /// buffer (send arenas, staging, plan, inbox arenas, scratch). All
    /// growth happens during warm-up; steady-state rounds must not move
    /// this counter.
    pub buffer_growths: u64,
}

/// Hook invoked after every round with read access to all node states.
///
/// Observers power the invariant checkers (Lemmas 2–7) and the Figure-1
/// cascade trace in `kw-core` without widening the `Protocol` interface.
pub trait Observer<P: Protocol> {
    /// Called after round `round`'s compute phase, before delivery.
    fn after_round(&mut self, round: usize, nodes: &[P]);
}

impl<P: Protocol, F: FnMut(usize, &[P])> Observer<P> for F {
    fn after_round(&mut self, round: usize, nodes: &[P]) {
        self(round, nodes)
    }
}

/// No-op observer used by [`Engine::run`].
#[derive(Clone, Copy, Debug, Default)]
struct NullObserver;

impl<P: Protocol> Observer<P> for NullObserver {
    fn after_round(&mut self, _round: usize, _nodes: &[P]) {}
}

/// Per-chunk result of the compute phase's fused send accounting.
struct ChunkOut {
    stats: RoundMetrics,
    max_message_bits: usize,
    wire_ok: bool,
    /// Staged (non-solo, non-quiet) senders in this chunk.
    staged: usize,
    /// Whether every node in this chunk was an active solo broadcaster —
    /// no halted, down, quiet, or staged senders. When all chunks agree,
    /// placement takes the uniform fast path.
    uniform_solo: bool,
    /// Byzantine payloads whose corrupted encoding no longer decoded and
    /// were rejected (never delivered, never a panic).
    byz_rejected: u64,
}

impl ChunkOut {
    /// An empty tally (`wire_ok` starts true and is and-ed down).
    fn fresh() -> Self {
        ChunkOut {
            stats: RoundMetrics::default(),
            max_message_bits: 0,
            wire_ok: true,
            staged: 0,
            uniform_solo: true,
            byz_rejected: 0,
        }
    }
}

/// The engine's [`Sink`]: appends sends to the current node's run of its
/// flat send arena, charging sender-side metrics and (optionally)
/// verifying wire encodings at the same moment. One instance lives per
/// worker chunk and persists across rounds (so the arena keeps its
/// capacity); [`Ctx`] holds it as a concrete reference, so every staging
/// call — routed through the [`Sink`] trait — dispatches statically and
/// inlines into the protocol's round.
pub(crate) struct StageSink<M> {
    /// The chunk's flat send arena: per-node runs, append-only within a
    /// round, cleared (capacity kept) at the start of the next compute.
    pub(crate) arena: Vec<Outbound<M>>,
    pub(crate) check_wire: bool,
    /// Chunk tallies, reset each round; per-node shares are recovered by
    /// differencing around each `on_round` call.
    pub(crate) messages: u64,
    pub(crate) bits: u64,
    pub(crate) max_message_bits: usize,
    pub(crate) wire_ok: bool,
}

impl<M> StageSink<M> {
    pub(crate) fn new() -> Self {
        StageSink {
            arena: Vec::new(),
            check_wire: false,
            messages: 0,
            bits: 0,
            max_message_bits: 0,
            wire_ok: true,
        }
    }

    /// Resets the per-round state (arena contents and tallies), keeping
    /// the arena's capacity.
    // kw-lint: hot
    fn reset_round(&mut self, check_wire: bool) {
        self.arena.clear();
        self.check_wire = check_wire;
        self.messages = 0;
        self.bits = 0;
        self.max_message_bits = 0;
        self.wire_ok = true;
    }
}

impl<M: WireEncode> StageSink<M> {
    /// Sender-side accounting for one staged send (faults and halted
    /// receivers never reduce what the sender is charged for).
    #[inline]
    // kw-lint: hot
    fn charge(&mut self, msg: &M, copies: u64) {
        let bits = msg.encoded_bits();
        if self.check_wire {
            let mut w = BitWriter::new();
            msg.encode(&mut w);
            // An `encoded_bits` override that disagrees with the real
            // encoding would corrupt the bit accounting.
            if w.bit_len() != bits {
                self.wire_ok = false;
            }
            let bytes = w.into_bytes();
            if M::decode(&mut BitReader::new(&bytes)).is_none() {
                self.wire_ok = false;
            }
        }
        self.messages += copies;
        self.bits += bits as u64 * copies;
        self.max_message_bits = self.max_message_bits.max(bits);
    }
}

impl<M: WireEncode> Sink<M> for StageSink<M> {
    #[inline]
    fn stage_broadcast(&mut self, degree: u32, msg: M) {
        self.charge(&msg, u64::from(degree));
        self.arena.push(Outbound::Broadcast(msg));
    }

    #[inline]
    fn stage_unicast(&mut self, port: u32, msg: M) {
        self.charge(&msg, 1);
        self.arena.push(Outbound::Unicast { port, msg });
    }
}

/// Drives one protocol instance per node of a graph through synchronous
/// rounds until every node halts.
///
/// See the [crate docs](crate) for a complete example and the
/// [module docs](self) for the flat-CSR message-plane design.
pub struct Engine<'g, P: Protocol> {
    graph: &'g CsrGraph,
    /// The current topology under a churn script: `None` until the first
    /// churn event applies, then the rebuilt graph. Every phase reads
    /// `churned.as_ref().unwrap_or(graph)`.
    churned: Option<CsrGraph>,
    config: EngineConfig,
    nodes: Vec<P>,
    rngs: Vec<SmallRng>,
    halted: Vec<bool>,
    /// `rev_edge[e]` = the directed-arc index of the reverse of arc `e`:
    /// if arc `e` is port `q` of `v` pointing at `u`, then `rev_edge[e]` is
    /// the arc of `u` pointing back at `v`. Built in `O(m)` by a counting
    /// pass in [`Engine::new`]; this is what lets placement find the
    /// staging run a sender aimed at a given receiver without searching.
    rev_edge: Vec<u32>,
    /// Front inbox arenas read by the compute phase, one per chunk: node
    /// `v` in chunk `c` reads `inbox_arena[c][inbox_offsets[v]..end]`,
    /// where `end` is the next node's offset (or the chunk arena's length
    /// for the chunk's last node) — offsets are **chunk-local**, so each
    /// chunk's delivery writes only its own arena and offset range.
    inbox_arena: Vec<Vec<(u32, P::Msg)>>,
    /// Per node (`n` entries): offset of `v`'s inbox within its chunk's
    /// arena. Chunk-local values; no terminal entry (a chunk's last inbox
    /// ends at its arena's length).
    inbox_offsets: Vec<usize>,
    /// Back arenas written by delivery, swapped with the front each round.
    back_arena: Vec<Vec<(u32, P::Msg)>>,
    back_offsets: Vec<usize>,
    /// The send half of the double-buffered message plane: one
    /// [`StageSink`] per worker chunk (flat arena + metric tallies),
    /// written append-only during compute and read by staging/placement
    /// during delivery. Arenas clear (capacity kept) every round.
    sinks: Vec<StageSink<P::Msg>>,
    /// Per node: `(start, len)` of this round's sends within its chunk's
    /// send arena — the send-time publication of what used to be
    /// `outbox_len`, plus the address placement needs to read the run.
    runs: Vec<(u32, u32)>,
    /// Per node: the payload of a sender whose round is exactly one
    /// broadcast on a reliable network — the dominant traffic shape, which
    /// placement serves from this dense cache without staging. Detected at
    /// send time.
    solo: Vec<Option<P::Msg>>,
    /// Staged (non-solo, non-quiet) senders this round; when zero, the
    /// entire staging half of delivery is skipped.
    staged_senders: usize,
    /// Whether every node this round was an active solo broadcaster (the
    /// steady state of the paper's broadcast-only algorithms); placement
    /// then runs a branch-light fast path.
    uniform_solo: bool,
    /// Per directed arc of each *staged* sender: copies delivered along it
    /// this round.
    send_counts: Vec<u32>,
    /// Per directed arc of each staged sender: its `[start, cursor)` run in
    /// `plan`/`staged` (the cursor advances during the staging pass and
    /// ends at the run's end).
    plan_ranges: Vec<(u32, u32)>,
    /// Staging-buffer base index per node (`n + 1` entries; a sender's runs
    /// are contiguous, so these are also the parallel-chunk boundaries).
    node_plan_base: Vec<usize>,
    /// Send-run slot index of every staged delivery, in staging order
    /// (global indices across chunks).
    plan: Vec<u32>,
    /// Payload clones of every staged delivery, one buffer per sender
    /// chunk; `plan_ranges` indices are global and rebase through
    /// `chunk_plan_base`. Placement reads other chunks' buffers read-only
    /// (the thin cross-chunk exchange).
    staged: Vec<Vec<P::Msg>>,
    /// `chunk_plan_base[c]` = global staging index where chunk `c`'s
    /// buffer starts (`chunks + 1` entries); filled by `plan_staged`.
    chunk_plan_base: Vec<usize>,
    node_messages: Vec<u64>,
    /// Degree-weighted chunk boundaries (`chunks + 1` entries, `bounds[0]
    /// = 0`, `bounds[chunks] = n`): chunk `c` owns nodes
    /// `bounds[c]..bounds[c + 1]`. Identical for every phase, so a
    /// chunk's send arena is always read by the worker that owns the
    /// chunk's nodes; recomputed on every churn rebuild.
    bounds: Vec<usize>,
    /// Dense node → owning-chunk table, parallel to `bounds`; lets
    /// placement locate a cross-chunk sender's staging buffer in O(1).
    node_chunk: Vec<u32>,
    chunks: usize,
    /// Per-chunk `(start, end)` tick pairs of the most recent parallel
    /// phase, microseconds from the tracer origin. Workers fill their
    /// slot by value; the driving thread flushes the slice into the
    /// tracer after the join ([`kw_trace::Tracer::end_parallel`]), so no
    /// worker ever touches the (thread-local) tracer. Fixed-size, only
    /// written when a tracer is installed; deliberately not part of
    /// [`plane_capacity`](Self::plane_capacity) — it is profiling state,
    /// not message-plane state.
    chunk_ticks: Vec<(u64, u64)>,
    /// Debug counter: how many rounds grew any reusable buffer's capacity.
    /// Steady-state rounds must not move this.
    buffer_growths: u64,
    /// How many times a churn event forced a CSR-plane rebuild.
    graph_rebuilds: u64,
    /// Total buffer capacity after the previous round, for the growth
    /// counter (capacities never shrink, so a sum increase means some
    /// buffer grew — whether during compute or delivery).
    last_plane_capacity: usize,
}

impl<'g, P: Protocol> Engine<'g, P> {
    /// Builds an engine, constructing one protocol instance per node via
    /// `factory`.
    ///
    /// # Panics
    ///
    /// Panics if the graph's adjacency is asymmetric (some `v` lists `u`
    /// but `u` does not list `v`) — impossible for graphs built through
    /// [`kw_graph::GraphBuilder`], which enforces symmetry.
    pub fn new(
        graph: &'g CsrGraph,
        config: EngineConfig,
        mut factory: impl FnMut(NodeInfo) -> P,
    ) -> Self {
        let n = graph.len();
        let arcs = graph.num_arcs();
        let mut nodes = Vec::with_capacity(n);
        let mut rngs = Vec::with_capacity(n);
        for v in 0..n {
            let seed = node_seed(config.seed, v as u32);
            let info = NodeInfo {
                id: NodeId::new(v),
                degree: graph.degree(NodeId::new(v)),
                seed,
            };
            nodes.push(factory(info));
            rngs.push(SmallRng::seed_from_u64(seed));
        }
        let rev_edge = build_rev_edge(graph);
        let threads = if config.threads == 0 {
            std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1)
        } else {
            config.threads
        };
        let chunks = if threads <= 1 || n < 2 * threads {
            1
        } else {
            threads
        };
        let bounds = chunk_bounds(graph.offsets(), chunks);
        let mut node_chunk = Vec::new();
        fill_node_chunk(&mut node_chunk, &bounds);
        let mut solo = Vec::with_capacity(n);
        solo.resize_with(n, || None);
        let mut sinks = Vec::with_capacity(chunks);
        sinks.resize_with(chunks, StageSink::new);
        let mut staged = Vec::with_capacity(chunks);
        staged.resize_with(chunks, Vec::new);
        let mut inbox_arena = Vec::with_capacity(chunks);
        inbox_arena.resize_with(chunks, Vec::new);
        let mut back_arena = Vec::with_capacity(chunks);
        back_arena.resize_with(chunks, Vec::new);
        Engine {
            graph,
            churned: None,
            config,
            nodes,
            rngs,
            halted: vec![false; n],
            rev_edge,
            inbox_arena,
            inbox_offsets: vec![0; n],
            back_arena,
            back_offsets: vec![0; n],
            sinks,
            runs: vec![(0, 0); n],
            solo,
            staged_senders: 0,
            uniform_solo: false,
            send_counts: vec![0; arcs],
            plan_ranges: vec![(0, 0); arcs],
            node_plan_base: vec![0; n + 1],
            plan: Vec::new(),
            staged,
            chunk_plan_base: vec![0; chunks + 1],
            node_messages: vec![0; n],
            bounds,
            node_chunk,
            chunks,
            chunk_ticks: vec![(0, 0); chunks],
            buffer_growths: 0,
            graph_rebuilds: 0,
            last_plane_capacity: 0,
        }
    }

    /// Runs to completion without observation.
    ///
    /// # Errors
    ///
    /// [`SimError::MaxRoundsExceeded`] if any node is still running at the
    /// configured limit; [`SimError::WireMismatch`] if wire checking is on
    /// and a message fails to decode.
    pub fn run(self) -> Result<RunReport<P::Output>, SimError> {
        self.run_with_observer(&mut NullObserver)
    }

    /// Runs to completion, additionally returning internal engine counters
    /// (currently the buffer-growth counter) for allocation-stability
    /// tests and tuning.
    ///
    /// # Errors
    ///
    /// Same as [`run`](Self::run).
    pub fn run_instrumented(mut self) -> Result<(RunReport<P::Output>, EngineStats), SimError> {
        let metrics = self.drive(&mut NullObserver)?;
        let stats = EngineStats {
            buffer_growths: self.buffer_growths,
        };
        Ok((self.into_report(metrics), stats))
    }

    /// Runs to completion, invoking `observer` after every round.
    ///
    /// # Errors
    ///
    /// Same as [`run`](Self::run).
    pub fn run_with_observer(
        mut self,
        observer: &mut dyn Observer<P>,
    ) -> Result<RunReport<P::Output>, SimError> {
        let metrics = self.drive(observer)?;
        Ok(self.into_report(metrics))
    }

    /// Consumes the engine, extracting per-node outputs into the final
    /// report (single finalization path for every `run_*` flavor).
    fn into_report(self, metrics: RunMetrics) -> RunReport<P::Output> {
        RunReport {
            outputs: self.nodes.into_iter().map(P::finish).collect(),
            metrics,
            node_messages: self.node_messages,
        }
    }

    /// The round loop, separated from output extraction so tests can
    /// inspect engine state (e.g. the allocation counter) after a run.
    ///
    /// When a [`kw_trace::Tracer`] is installed on the driving thread,
    /// every round emits a `round` span with `compute`/`plan`/`send`/
    /// `deliver` phase children, per-chunk worker-track spans, synthetic
    /// `barrier` (fork/join overhead) spans, and one [`RoundSample`] —
    /// see the span taxonomy in the `kw_trace` crate docs. Untraced runs
    /// pay exactly one thread-local read, here.
    fn drive(&mut self, observer: &mut dyn Observer<P>) -> Result<RunMetrics, SimError> {
        // Round 0 must see empty inboxes even if this engine value was
        // driven before (a prior drive leaves its final deliveries in the
        // front arenas): repeated drives reuse no stale plane state.
        for buf in &mut self.inbox_arena {
            buf.clear();
        }
        self.inbox_offsets.fill(0);
        let mut metrics = RunMetrics::default();
        let has_down = self.config.faults.has_down();
        let has_churn = self.config.faults.has_churn();
        let origin = kw_trace::origin();
        let trace = origin.is_some();
        // One persistent pool for the whole run: the driving thread is
        // chunk 0's worker, so `chunks - 1` threads suffice. Dropped (and
        // joined) when `drive` returns — including during an unwind, so a
        // panicking protocol can never leak pool threads.
        let pool = (self.chunks > 1).then(|| WorkerPool::new(self.chunks - 1));
        let mut pool_seen = (0u64, 0u64);
        let mut round = 0usize;
        loop {
            if round >= self.config.max_rounds {
                return Err(SimError::MaxRoundsExceeded {
                    limit: self.config.max_rounds,
                });
            }
            if trace {
                kw_trace::with_active(|t| t.begin("round"));
            }
            if has_churn {
                if trace {
                    kw_trace::with_active(|t| t.begin("churn"));
                }
                self.apply_churn_at(round);
                if trace {
                    kw_trace::with_active(|t| t.end());
                }
            }
            if trace {
                kw_trace::with_active(|t| t.begin("compute"));
            }
            let out = self.compute_phase(round, origin, pool.as_ref());
            if trace {
                kw_trace::with_active(|t| {
                    t.end_parallel("compute", &self.chunk_ticks[..self.chunks])
                });
            }
            metrics.rounds = round + 1;
            observer.after_round(round, &self.nodes);
            if !out.wire_ok {
                return Err(SimError::WireMismatch { round });
            }
            metrics.messages += out.stats.messages;
            metrics.bits += out.stats.bits;
            metrics.byz_rejected += out.byz_rejected;
            metrics.max_message_bits = metrics.max_message_bits.max(out.max_message_bits);
            if self.config.record_per_round {
                metrics.per_round.push(out.stats);
            }
            self.staged_senders = out.staged;
            self.uniform_solo = out.uniform_solo;
            if trace {
                let active = self.halted.iter().filter(|h| !**h).count() as u64;
                let arena_bytes = (self.inbox_arena.iter().map(Vec::len).sum::<usize>()
                    * std::mem::size_of::<(u32, P::Msg)>())
                    as u64;
                // Pool counters are cumulative; the sample carries the
                // delta since the previous sample (this round's compute
                // plus the previous round's delivery). Observability
                // only: excluded from structural equality and hashing,
                // which must stay thread-invariant.
                let (pw, pi) = pool.as_ref().map_or((0, 0), |p| p.counters());
                let (dw, di) = (pw - pool_seen.0, pi - pool_seen.1);
                pool_seen = (pw, pi);
                kw_trace::with_active(|t| {
                    t.sample(RoundSample {
                        round: round as u32,
                        messages: out.stats.messages,
                        bits: out.stats.bits,
                        active,
                        arena_bytes,
                        rebuilds: self.graph_rebuilds,
                        pool_wakeups: dw,
                        pool_idle: di,
                    })
                });
            }
            let finished = if has_down {
                // A node that is down for every remaining round can never
                // run again; treating it as terminated keeps crash-forever
                // and leave-without-rejoin schedules from spinning to the
                // round limit.
                let faults = &self.config.faults;
                self.halted
                    .iter()
                    .enumerate()
                    .all(|(v, &h)| h || faults.down_forever(v as u32, round + 1))
            } else {
                self.halted.iter().all(|&h| h)
            };
            if finished {
                // No delivery follows the final round, so sample buffer
                // capacities here: the last compute phase may still have
                // grown a send arena.
                self.note_plane_capacity();
                if trace {
                    kw_trace::with_active(|t| t.end());
                }
                break;
            }
            self.delivery_phase(round, origin, pool.as_ref());
            if trace {
                kw_trace::with_active(|t| t.end());
            }
            round += 1;
        }
        metrics.max_node_messages = self.node_messages.iter().copied().max().unwrap_or(0);
        metrics.graph_rebuilds = self.graph_rebuilds;
        Ok(metrics)
    }

    /// Applies the chaos plan's churn events scheduled for `round` (a
    /// no-op when none are): the topology is rebuilt from the original
    /// graph plus the full event prefix up to and including this round,
    /// the CSR-parallel planes (reverse arcs, per-arc staging state) are
    /// rebuilt against the new arc layout, and in-flight messages are
    /// dropped — a message sent across a churn boundary never arrives,
    /// matching the view that the boundary is a topology reconfiguration.
    fn apply_churn_at(&mut self, round: usize) {
        if self.config.faults.churn_events_at(round).is_empty() {
            return;
        }
        let rebuilt = {
            let events = self.config.faults.churn();
            let applied = events.partition_point(|e| e.round <= round);
            apply_churn(self.graph, &events[..applied])
        };
        self.rev_edge = build_rev_edge(&rebuilt);
        let arcs = rebuilt.num_arcs();
        self.send_counts.clear();
        self.send_counts.resize(arcs, 0);
        self.plan_ranges.clear();
        self.plan_ranges.resize(arcs, (0, 0));
        // Re-balance the degree-weighted partition against the new CSR
        // plane (the chunk *count* is fixed for the run; only the cut
        // points move). Deterministic: a pure function of the rebuilt
        // offsets, so thread-invariance survives churn.
        self.bounds = chunk_bounds(rebuilt.offsets(), self.chunks);
        fill_node_chunk(&mut self.node_chunk, &self.bounds);
        // Drop in-flight messages: every inbox reads empty this round.
        for arena in &mut self.inbox_arena {
            arena.clear();
        }
        self.inbox_offsets.fill(0);
        self.churned = Some(rebuilt);
        self.graph_rebuilds += 1;
    }

    /// Calls `on_round` on every running node. Sends stage directly into
    /// the flat send arenas through [`StageSink`], which also performs the
    /// fused sender-side accounting — the per-chunk tallies come back in
    /// the returned [`ChunkOut`].
    fn compute_phase(
        &mut self,
        round: usize,
        origin: Option<Instant>,
        pool: Option<&WorkerPool>,
    ) -> ChunkOut {
        let graph = self.churned.as_ref().unwrap_or(self.graph);
        let offsets = &self.inbox_offsets;
        let faults = &self.config.faults;
        let check_wire = self.config.check_wire;
        let chunks = self.chunks;
        if chunks == 1 {
            let start = origin.map(tick_us);
            let out = Self::compute_range(
                graph,
                round,
                0,
                &mut self.nodes,
                &mut self.rngs,
                &mut self.halted,
                &mut self.sinks[0],
                &mut self.runs,
                &mut self.solo,
                &mut self.node_messages,
                &self.inbox_arena[0],
                offsets,
                faults,
                check_wire,
            );
            if let (Some(s0), Some(o)) = (start, origin) {
                self.chunk_ticks[0] = (s0, tick_us(o));
            }
            return out;
        }
        let pool = pool.expect("multi-chunk phases run on the worker pool");
        let bounds = &self.bounds;
        let nodes = split_at_bounds(&mut self.nodes, bounds);
        let rngs = split_at_bounds(&mut self.rngs, bounds);
        let halted = split_at_bounds(&mut self.halted, bounds);
        let runs = split_at_bounds(&mut self.runs, bounds);
        let solos = split_at_bounds(&mut self.solo, bounds);
        let messages = split_at_bounds(&mut self.node_messages, bounds);
        let sinks = self.sinks[..chunks].iter_mut();
        let arenas = self.inbox_arena[..chunks].iter();
        let ticks = self.chunk_ticks[..chunks].iter_mut();
        let outs: Vec<Mutex<Option<ChunkOut>>> = (0..chunks).map(|_| Mutex::new(None)).collect();
        let mut jobs: Vec<Box<dyn FnOnce() + Send + '_>> = Vec::with_capacity(chunks);
        for (i, (((((((nc, rc), hc), runc), sc), mc), sk), (inb, tick))) in nodes
            .into_iter()
            .zip(rngs)
            .zip(halted)
            .zip(runs)
            .zip(solos)
            .zip(messages)
            .zip(sinks)
            .zip(arenas.zip(ticks))
            .enumerate()
        {
            let lo = bounds[i];
            let off = &offsets[lo..bounds[i + 1]];
            let out_slot = &outs[i];
            jobs.push(Box::new(move || {
                let start = origin.map(tick_us);
                let out = Self::compute_range(
                    graph, round, lo, nc, rc, hc, sk, runc, sc, mc, inb, off, faults, check_wire,
                );
                if let (Some(s0), Some(o)) = (start, origin) {
                    *tick = (s0, tick_us(o));
                }
                *out_slot.lock().expect("chunk out slot") = Some(out);
            }));
        }
        run_jobs(pool, jobs);
        outs.into_iter()
            .map(|m| {
                m.into_inner()
                    .expect("chunk out slot")
                    .expect("every chunk ran")
            })
            .fold(ChunkOut::fresh(), |mut a, o| {
                a.stats.accumulate(o.stats);
                a.max_message_bits = a.max_message_bits.max(o.max_message_bits);
                a.wire_ok &= o.wire_ok;
                a.staged += o.staged;
                a.uniform_solo &= o.uniform_solo;
                a.byz_rejected += o.byz_rejected;
                a
            })
    }

    /// [`compute_phase`](Self::compute_phase) over one node chunk, staging
    /// into that chunk's send arena and reading the chunk's inbox arena
    /// through its chunk-local offsets (`inbox_offsets` is the chunk's
    /// slice; the last node's inbox ends at the arena's length).
    #[allow(clippy::too_many_arguments)]
    // kw-lint: hot
    fn compute_range(
        graph: &CsrGraph,
        round: usize,
        base: usize,
        nodes: &mut [P],
        rngs: &mut [SmallRng],
        halted: &mut [bool],
        sink: &mut StageSink<P::Msg>,
        runs: &mut [(u32, u32)],
        solo: &mut [Option<P::Msg>],
        node_messages: &mut [u64],
        inbox_arena: &[(u32, P::Msg)],
        inbox_offsets: &[usize],
        faults: &ChaosPlan,
        check_wire: bool,
    ) -> ChunkOut {
        sink.reset_round(check_wire);
        let lossless = faults.lossless();
        let has_down = faults.has_down();
        let has_byz = faults.has_byzantine();
        let mut staged = 0usize;
        let mut uniform_solo = true;
        let mut byz_rejected = 0u64;
        for (j, node) in nodes.iter_mut().enumerate() {
            let v = base + j;
            if halted[j] || (has_down && faults.is_down(v as u32, round)) {
                // A halted node is done; a down (crashed or churned-out)
                // node neither computes nor sends, but keeps its protocol
                // state frozen until recovery.
                runs[j] = (0, 0);
                solo[j] = None;
                uniform_solo = false;
                continue;
            }
            let id = NodeId::new(v);
            let degree = graph.degree(id) as u32;
            let run_start = sink.arena.len();
            let messages_before = sink.messages;
            let inbox_end = match inbox_offsets.get(j + 1) {
                Some(&end) => end,
                None => inbox_arena.len(),
            };
            let mut ctx = Ctx {
                node: id,
                degree,
                round,
                inbox: &inbox_arena[inbox_offsets[j]..inbox_end],
                sink: &mut *sink,
                rng: &mut rngs[j],
            };
            if node.on_round(&mut ctx) == Status::Halted {
                halted[j] = true;
            }
            node_messages[j] += sink.messages - messages_before;
            let mut len = sink.arena.len() - run_start;
            if has_byz && len > 0 && faults.is_byzantine(v as u32) {
                byz_rejected += Self::garble_run(faults, sink, run_start, round, v as u32);
                len = sink.arena.len() - run_start;
            }
            runs[j] = (run_start as u32, len as u32);
            solo[j] = match sink.arena.get(run_start) {
                Some(Outbound::Broadcast(m)) if lossless && len == 1 => Some(m.clone()),
                _ => None,
            };
            if solo[j].is_none() {
                uniform_solo = false;
                if len > 0 {
                    staged += 1;
                }
            }
        }
        // Run starts/lengths were truncated to u32 above; one check of the
        // final arena length covers every prefix.
        assert!(
            u32::try_from(sink.arena.len()).is_ok(),
            "more than u32::MAX staged sends in one round chunk"
        );
        ChunkOut {
            stats: RoundMetrics {
                messages: sink.messages,
                bits: sink.bits,
            },
            max_message_bits: sink.max_message_bits,
            wire_ok: sink.wire_ok,
            staged,
            uniform_solo,
            byz_rejected,
        }
    }

    /// Garbles the just-staged run of byzantine sender `sender` (the run
    /// is at the arena tail, so compaction is a truncate): each payload's
    /// wire encoding is corrupted by the chaos plan's deterministic
    /// bit-flip process and decoded back. Payloads that still decode are
    /// delivered in garbled form (addressing preserved); payloads whose
    /// corruption no longer decodes are compacted out of the run and
    /// counted — never delivered, never a panic. Sender-side metrics keep
    /// the original charge: the byzantine node did transmit, the garbling
    /// happens on the wire.
    // kw-lint: hot
    fn garble_run(
        faults: &ChaosPlan,
        sink: &mut StageSink<P::Msg>,
        run_start: usize,
        round: usize,
        sender: u32,
    ) -> u64 {
        let mut rejected = 0u64;
        let mut kept = run_start;
        for slot in 0..sink.arena.len() - run_start {
            let mut w = BitWriter::new();
            sink.arena[run_start + slot].payload().encode(&mut w);
            let mut bytes = w.into_bytes();
            faults.corrupt(&mut bytes, round, sender, slot as u32);
            match P::Msg::decode(&mut BitReader::new(&bytes)) {
                Some(msg) => {
                    let garbled = match &sink.arena[run_start + slot] {
                        Outbound::Broadcast(_) => Outbound::Broadcast(msg),
                        Outbound::Unicast { port, .. } => Outbound::Unicast { port: *port, msg },
                    };
                    sink.arena[kept] = garbled;
                    kept += 1;
                }
                None => rejected += 1,
            }
        }
        sink.arena.truncate(kept);
        rejected
    }

    /// Sender-indexed delivery into the flat arena: counts staged
    /// deliveries per arc, prefix-sums them, stages payload clones in
    /// sender-major order, places every message into its receiver's arena
    /// slice, then swaps the double buffer. The entire staging half is
    /// skipped when the round had no staged senders (the broadcast-heavy
    /// common case).
    // kw-lint: hot
    fn delivery_phase(&mut self, round: usize, origin: Option<Instant>, pool: Option<&WorkerPool>) {
        let trace = origin.is_some();
        // `plan` (sequential count + prefix), `send` (parallel staging)
        // and `deliver` (parallel placement + swap) spans are emitted
        // even when the traffic shape skips a sub-phase: skips depend on
        // staged traffic, never on the thread count, so the span tree
        // stays structurally identical across 1/2/8 threads.
        if trace {
            kw_trace::with_active(|t| t.begin("plan"));
        }
        let plan_total = if self.staged_senders > 0 {
            self.plan_staged(round)
        } else {
            0
        };
        if trace {
            kw_trace::with_active(|t| t.end());
            kw_trace::with_active(|t| t.begin("send"));
        }
        let built = plan_total > 0;
        if built {
            self.build_staging(round, plan_total, origin, pool);
        } else {
            for buf in &mut self.staged {
                buf.clear();
            }
        }
        if trace {
            let ticks = &self.chunk_ticks[..if built { self.chunks } else { 0 }];
            kw_trace::with_active(|t| t.end_parallel("send", ticks));
            kw_trace::with_active(|t| t.begin("deliver"));
        }
        self.place(round, origin, pool);
        std::mem::swap(&mut self.inbox_arena, &mut self.back_arena);
        std::mem::swap(&mut self.inbox_offsets, &mut self.back_offsets);
        // The consumed front arenas (now the back) are cleared by each
        // chunk's worker at the start of the next placement; offsets are
        // rewritten wholesale, and send arenas clear at the start of the
        // next compute phase.
        if trace {
            kw_trace::with_active(|t| t.end_parallel("deliver", &self.chunk_ticks[..self.chunks]));
        }
        self.note_plane_capacity();
    }

    /// Samples the total buffer capacity and bumps the growth counter if
    /// it rose since the last sample. Called at the end of every delivery
    /// phase and once more when the run ends (the final round's compute
    /// phase can grow send arenas even though no delivery follows it).
    fn note_plane_capacity(&mut self) {
        let cap = self.plane_capacity();
        if cap > self.last_plane_capacity {
            self.buffer_growths += 1;
        }
        self.last_plane_capacity = cap;
    }

    /// Total capacity of all reusable message-plane buffers, for the
    /// steady-state allocation check (capacities never shrink, so a sum
    /// increase means some buffer grew this round — during compute-phase
    /// staging or during delivery).
    fn plane_capacity(&self) -> usize {
        self.inbox_arena.iter().map(Vec::capacity).sum::<usize>()
            + self.back_arena.iter().map(Vec::capacity).sum::<usize>()
            + self.plan.capacity()
            + self.staged.iter().map(Vec::capacity).sum::<usize>()
            + self.sinks.iter().map(|s| s.arena.capacity()).sum::<usize>()
    }

    /// One sequential pass over staged senders that counts, per directed
    /// arc, how many copies will be delivered along it this round —
    /// receiver-side filters (halted receivers, fault drops keyed
    /// `(round, sender, receiver, slot)` with `slot` the index within the
    /// sender's run) are applied here — and immediately prefix-sums each
    /// sender's counts into `plan_ranges`/`node_plan_base`. Counting and
    /// prefixing are fused so a sender's run and arc counts are touched
    /// exactly once, while still L1-hot; quiet and solo senders cost one
    /// dense table read each. Returns the total number of staged
    /// deliveries.
    // kw-lint: hot
    fn plan_staged(&mut self, round: usize) -> usize {
        let n = self.nodes.len();
        let graph = self.churned.as_ref().unwrap_or(self.graph);
        let offsets = graph.offsets();
        let targets = graph.targets();
        let halted = &self.halted;
        let runs = &self.runs;
        let solo = &self.solo;
        let sinks = &self.sinks;
        let bounds = &self.bounds;
        let send_counts = &mut self.send_counts;
        let plan_ranges = &mut self.plan_ranges;
        let node_plan_base = &mut self.node_plan_base;
        let faults = &self.config.faults;
        let lossless = faults.lossless();
        let has_down = faults.has_down();
        // Messages delivered this round are read next round, so the
        // receiver-side liveness filter looks one round ahead.
        let next = round + 1;
        let mut plan_total = 0usize;
        // Chunk boundaries are irregular (degree-weighted), so walk the
        // owning chunk with a cursor instead of dividing by a fixed size.
        let mut c = 0usize;
        for (u, &(start, len)) in runs.iter().enumerate() {
            node_plan_base[u] = plan_total;
            while u >= bounds[c + 1] {
                c += 1;
            }
            if len == 0 || solo[u].is_some() {
                continue;
            }
            let arena = &sinks[c].arena;
            let run = &arena[start as usize..(start as usize + len as usize)];
            let arc_lo = offsets[u] as usize;
            let degree = offsets[u + 1] as usize - arc_lo;
            let counts = &mut send_counts[arc_lo..arc_lo + degree];
            counts.fill(0);
            if lossless {
                let mut broadcasts = 0u32;
                for out in run {
                    match out {
                        Outbound::Broadcast(_) => broadcasts += 1,
                        Outbound::Unicast { port, .. } => counts[*port as usize] += 1,
                    }
                }
                for (p, c) in counts.iter_mut().enumerate() {
                    let v = targets[arc_lo + p];
                    if halted[v as usize] || (has_down && faults.is_down(v, next)) {
                        *c = 0;
                    } else {
                        *c += broadcasts;
                    }
                }
            } else {
                for (slot, out) in run.iter().enumerate() {
                    match out {
                        Outbound::Broadcast(_) => {
                            for (p, c) in counts.iter_mut().enumerate() {
                                let v = targets[arc_lo + p];
                                if !(halted[v as usize]
                                    || (has_down && faults.is_down(v, next))
                                    || faults.drops(round, u as u32, v, slot as u32))
                                {
                                    *c += 1;
                                }
                            }
                        }
                        Outbound::Unicast { port, .. } => {
                            let p = *port as usize;
                            let v = targets[arc_lo + p];
                            if !(halted[v as usize]
                                || (has_down && faults.is_down(v, next))
                                || faults.drops(round, u as u32, v, slot as u32))
                            {
                                counts[p] += 1;
                            }
                        }
                    }
                }
            }
            for (p, &c) in counts.iter().enumerate() {
                plan_ranges[arc_lo + p] = (plan_total as u32, plan_total as u32);
                plan_total += c as usize;
            }
        }
        node_plan_base[n] = plan_total;
        // Publish where each chunk's staging buffer starts in the global
        // index space; placement rebases cross-chunk reads through this.
        for (i, base) in self.chunk_plan_base.iter_mut().enumerate() {
            *base = node_plan_base[bounds[i]];
        }
        assert!(
            u32::try_from(plan_total).is_ok(),
            "more than u32::MAX staged deliveries in one round"
        );
        plan_total
    }

    /// Fills `plan` (send-run slot of every staged delivery, grouped by
    /// sender arc, slot-ascending within an arc) and the per-chunk
    /// `staged` buffers (the matching payload clones) for all staged
    /// senders, reading each sender's run from its chunk's send arena.
    /// The fault/halted filter re-evaluates the same `(round, sender,
    /// receiver, slot)` keys `plan_staged` used, so the cursors land
    /// exactly at each range's end.
    fn build_staging(
        &mut self,
        round: usize,
        plan_total: usize,
        origin: Option<Instant>,
        pool: Option<&WorkerPool>,
    ) {
        let n = self.nodes.len();
        let graph = self.churned.as_ref().unwrap_or(self.graph);
        let offsets = graph.offsets();
        let targets = graph.targets();
        let halted = &self.halted;
        let runs = &self.runs;
        let solo = &self.solo;
        let node_plan_base = &self.node_plan_base;
        let faults = &self.config.faults;
        let lossless = faults.lossless();
        let has_down = faults.has_down();
        let next = round + 1;
        let chunks = self.chunks;
        self.plan.resize(plan_total, 0);
        // Writes one sender's plan entries via the per-arc cursors, then
        // immediately stages that sender's payloads (its run is hot).
        let fill = |base: usize,
                    len: usize,
                    plan_base: usize,
                    arena: &[Outbound<P::Msg>],
                    plan_chunk: &mut [u32],
                    ranges: &mut [(u32, u32)],
                    sink: &mut Vec<P::Msg>| {
            let arc_base = offsets[base] as usize;
            for u in base..base + len {
                let (start, rlen) = runs[u];
                if rlen == 0 || solo[u].is_some() {
                    continue;
                }
                let run = &arena[start as usize..(start as usize + rlen as usize)];
                let arc_lo = offsets[u] as usize;
                let degree = offsets[u + 1] as usize - arc_lo;
                for (slot, out) in run.iter().enumerate() {
                    match out {
                        Outbound::Broadcast(_) => {
                            for p in 0..degree {
                                let v = targets[arc_lo + p];
                                if !(halted[v as usize]
                                    || (has_down && faults.is_down(v, next))
                                    || (!lossless && faults.drops(round, u as u32, v, slot as u32)))
                                {
                                    let cursor = &mut ranges[arc_lo + p - arc_base].1;
                                    plan_chunk[*cursor as usize - plan_base] = slot as u32;
                                    *cursor += 1;
                                }
                            }
                        }
                        Outbound::Unicast { port, .. } => {
                            let p = *port as usize;
                            let v = targets[arc_lo + p];
                            if !(halted[v as usize]
                                || (has_down && faults.is_down(v, next))
                                || (!lossless && faults.drops(round, u as u32, v, slot as u32)))
                            {
                                let cursor = &mut ranges[arc_lo + p - arc_base].1;
                                plan_chunk[*cursor as usize - plan_base] = slot as u32;
                                *cursor += 1;
                            }
                        }
                    }
                }
                for &slot in
                    &plan_chunk[node_plan_base[u] - plan_base..node_plan_base[u + 1] - plan_base]
                {
                    sink.push(run[slot as usize].payload().clone());
                }
            }
        };
        if chunks == 1 {
            let start = origin.map(tick_us);
            self.staged[0].clear();
            fill(
                0,
                n,
                0,
                &self.sinks[0].arena,
                &mut self.plan[..plan_total],
                &mut self.plan_ranges,
                &mut self.staged[0],
            );
            if let (Some(s0), Some(o)) = (start, origin) {
                self.chunk_ticks[0] = (s0, tick_us(o));
            }
            return;
        }
        let pool = pool.expect("multi-chunk phases run on the worker pool");
        let bounds = &self.bounds;
        // A sender chunk's plan entries are contiguous (staging bases are
        // monotone in node order), so the plan, the range table, the send
        // arenas, and the staging output all split at the same chunk
        // boundaries — each worker reads the arena its compute pass wrote
        // and fills its own chunk's staging buffer in place (no splice).
        let ranges = split_at_arcs(&mut self.plan_ranges, offsets, bounds);
        let chunk_plan_base = &self.chunk_plan_base;
        let mut plans = Vec::with_capacity(chunks);
        let mut rest = &mut self.plan[..plan_total];
        for i in 0..chunks {
            let (head, tail) = rest.split_at_mut(chunk_plan_base[i + 1] - chunk_plan_base[i]);
            plans.push(head);
            rest = tail;
        }
        let mut jobs: Vec<Box<dyn FnOnce() + Send + '_>> = Vec::with_capacity(chunks);
        for (i, ((((pc, rc), sink), sk), tick)) in plans
            .into_iter()
            .zip(ranges)
            .zip(self.staged[..chunks].iter_mut())
            .zip(&self.sinks[..chunks])
            .zip(self.chunk_ticks[..chunks].iter_mut())
            .enumerate()
        {
            let base = bounds[i];
            let len = bounds[i + 1] - base;
            let plan_base = chunk_plan_base[i];
            let fill = &fill;
            jobs.push(Box::new(move || {
                let start = origin.map(tick_us);
                sink.clear();
                fill(base, len, plan_base, &sk.arena, pc, rc, sink);
                if let (Some(s0), Some(o)) = (start, origin) {
                    *tick = (s0, tick_us(o));
                }
            }));
        }
        run_jobs(pool, jobs);
    }

    /// Copies every delivered message into its receiver's chunk's back
    /// arena, receivers in ascending order, each receiver's messages in
    /// `(port, slot)` order — the exact sequence the old receiver-driven
    /// scan produced — while recording the per-receiver (chunk-local)
    /// arena offsets. Staged payloads of a sender in another chunk are
    /// read from that chunk's staging buffer through `node_chunk` +
    /// `chunk_plan_base`: the thin cross-chunk exchange, read-only by
    /// construction.
    fn place(&mut self, round: usize, origin: Option<Instant>, pool: Option<&WorkerPool>) {
        let n = self.nodes.len();
        let graph = self.churned.as_ref().unwrap_or(self.graph);
        let halted = &self.halted;
        let faults = &self.config.faults;
        let has_down = faults.has_down();
        let next = round + 1;
        let runs = &self.runs;
        let solo = &self.solo;
        let rev_edge = &self.rev_edge;
        let plan_ranges = &self.plan_ranges;
        let staged = &self.staged;
        let node_chunk = &self.node_chunk;
        let chunk_plan_base = &self.chunk_plan_base;
        let uniform = self.uniform_solo;
        let chunks = self.chunks;
        // `offsets_out` entries are chunk-local: each chunk's sink starts
        // empty, so no rebase pass exists anywhere.
        let place_range =
            |lo: usize, hi: usize, offsets_out: &mut [usize], sink: &mut Vec<(u32, P::Msg)>| {
                sink.clear();
                let offsets = graph.offsets();
                let targets = graph.targets();
                if uniform {
                    // Uniform-solo round (every sender is an active solo
                    // broadcaster — the steady state of the paper's
                    // broadcast-only algorithms): each receiver gets
                    // exactly one message per port, so placement is one
                    // exact-length `extend` per receiver with no per-arc
                    // classification and no per-push capacity checks.
                    // (A node may still have *halted this round*; it sent,
                    // but receives nothing. Likewise a node that will be
                    // down next round receives nothing now.)
                    for v in lo..hi {
                        offsets_out[v - lo] = sink.len();
                        if halted[v] || (has_down && faults.is_down(v as u32, next)) {
                            continue;
                        }
                        let arc_lo = offsets[v] as usize;
                        let degree = offsets[v + 1] as usize - arc_lo;
                        let ports = &targets[arc_lo..arc_lo + degree];
                        sink.extend(ports.iter().enumerate().map(|(q, &u)| {
                            let m = solo[u as usize]
                                .as_ref()
                                .expect("uniform-solo round: every sender has a cached payload");
                            (q as u32, m.clone())
                        }));
                    }
                    return;
                }
                for v in lo..hi {
                    offsets_out[v - lo] = sink.len();
                    if halted[v] || (has_down && faults.is_down(v as u32, next)) {
                        continue;
                    }
                    let arc_lo = offsets[v] as usize;
                    let degree = offsets[v + 1] as usize - arc_lo;
                    for q in 0..degree {
                        let u = targets[arc_lo + q] as usize;
                        if let Some(m) = &solo[u] {
                            sink.push((q as u32, m.clone()));
                            continue;
                        }
                        if runs[u].1 == 0 {
                            continue;
                        }
                        let j = rev_edge[arc_lo + q] as usize;
                        let (start, end) = plan_ranges[j];
                        // Thin cross-chunk exchange: the sender's staged
                        // payloads live in its own chunk's buffer;
                        // rebase the global plan indices into it.
                        let sc = node_chunk[u] as usize;
                        let base = chunk_plan_base[sc];
                        for m in &staged[sc][start as usize - base..end as usize - base] {
                            sink.push((q as u32, m.clone()));
                        }
                    }
                }
            };
        if chunks == 1 {
            let start = origin.map(tick_us);
            place_range(0, n, &mut self.back_offsets[..n], &mut self.back_arena[0]);
            if let (Some(s0), Some(o)) = (start, origin) {
                self.chunk_ticks[0] = (s0, tick_us(o));
            }
            return;
        }
        let pool = pool.expect("multi-chunk phases run on the worker pool");
        let bounds = &self.bounds;
        let offset_chunks = split_at_bounds(&mut self.back_offsets, bounds);
        let mut jobs: Vec<Box<dyn FnOnce() + Send + '_>> = Vec::with_capacity(chunks);
        for (i, ((sink, oc), tick)) in self.back_arena[..chunks]
            .iter_mut()
            .zip(offset_chunks)
            .zip(self.chunk_ticks[..chunks].iter_mut())
            .enumerate()
        {
            let lo = bounds[i];
            let hi = bounds[i + 1];
            let place_range = &place_range;
            jobs.push(Box::new(move || {
                let start = origin.map(tick_us);
                place_range(lo, hi, oc, sink);
                if let (Some(s0), Some(o)) = (start, origin) {
                    *tick = (s0, tick_us(o));
                }
            }));
        }
        run_jobs(pool, jobs);
    }
}

/// Builds the reverse-arc table of `graph` in one O(m) counting pass:
/// scanning all arcs in (sender, port) order visits the in-arcs of every
/// node `u` in ascending sender order, which is exactly `u`'s sorted
/// adjacency order — so the next free slot of `u` is the reverse arc.
/// Called at construction and again after every churn rebuild.
///
/// # Panics
///
/// Panics if the graph's adjacency is asymmetric — impossible for graphs
/// built through [`kw_graph::GraphBuilder`], which enforces symmetry.
fn build_rev_edge(graph: &CsrGraph) -> Vec<u32> {
    let n = graph.len();
    let offsets = graph.offsets();
    let targets = graph.targets();
    let mut rev_edge = vec![0u32; graph.num_arcs()];
    let mut next_in: Vec<u32> = offsets[..n].to_vec();
    for v in 0..n {
        for e in offsets[v] as usize..offsets[v + 1] as usize {
            let u = targets[e] as usize;
            let r = next_in[u] as usize;
            assert!(
                r < offsets[u + 1] as usize && targets[r] as usize == v,
                "asymmetric adjacency: node {v} lists {u} as a neighbor, \
                 but {u} does not list {v} back"
            );
            next_in[u] = r as u32 + 1;
            rev_edge[e] = r as u32;
        }
    }
    rev_edge
}

/// Splits `slice` (one entry per directed arc) into per-node-chunk slices
/// whose boundaries follow the CSR offsets at the chunk `bounds`, so
/// arc-indexed state can be handed to the same worker that owns the node
/// chunk.
fn split_at_arcs<'a, T>(slice: &'a mut [T], offsets: &[u32], bounds: &[usize]) -> Vec<&'a mut [T]> {
    let chunks = bounds.len() - 1;
    let mut out = Vec::with_capacity(chunks);
    let mut rest = slice;
    let mut consumed = 0usize;
    for &b in &bounds[1..] {
        let hi = offsets[b] as usize;
        let (head, tail) = rest.split_at_mut(hi - consumed);
        out.push(head);
        rest = tail;
        consumed = hi;
    }
    out
}

/// Splits `slice` (one entry per node) into per-chunk slices at the node
/// `bounds`. Entries past `bounds[last]` stay unsplit and unreturned.
fn split_at_bounds<'a, T>(slice: &'a mut [T], bounds: &[usize]) -> Vec<&'a mut [T]> {
    let chunks = bounds.len() - 1;
    let mut out = Vec::with_capacity(chunks);
    let mut rest = slice;
    let mut consumed = 0usize;
    for &b in &bounds[1..] {
        let (head, tail) = rest.split_at_mut(b - consumed);
        out.push(head);
        rest = tail;
        consumed = b;
    }
    out
}

/// Per-node weight constant for the degree-weighted partition: models the
/// fixed per-node cost (RNG tick, halt check, inbox bookkeeping) relative
/// to the per-arc cost of scanning/copying one message. Chosen from PR 8's
/// profile, where per-node overhead on a degree-16 gnp graph was roughly a
/// quarter of the arc work.
const NODE_COST: usize = 4;

/// Computes a degree-weighted (arc-balanced) contiguous partition of the
/// nodes into `chunks` chunks. The cut points split cumulative
/// `arcs(v) + NODE_COST` weight as evenly as possible, so dense nodes do
/// not pile into one worker the way uniform node ranges let them
/// (PR 8 measured 1.6–1.7× max/mean busy-time imbalance at 4T).
///
/// Returns `chunks + 1` ascending bounds with `bounds[0] == 0` and
/// `bounds[chunks] == n`; every chunk is non-empty (requires
/// `n >= chunks`, which [`Engine::new`] guarantees by collapsing to one
/// chunk on small graphs). Pure function of `offsets`, so the partition —
/// and with it every downstream buffer layout — is deterministic across
/// runs and identical after identical churn rebuilds.
fn chunk_bounds(offsets: &[u32], chunks: usize) -> Vec<usize> {
    let n = offsets.len() - 1;
    let mut bounds = Vec::with_capacity(chunks + 1);
    bounds.push(0usize);
    if chunks <= 1 {
        bounds.push(n);
        return bounds;
    }
    // weight(0..=v) = offsets[v] + NODE_COST * v, monotone in v.
    let weight = |v: usize| offsets[v] as usize + NODE_COST * v;
    let total = weight(n);
    for i in 1..chunks {
        let target = total * i / chunks;
        // Smallest cut with weight(cut) >= target.
        let mut lo = bounds[i - 1];
        let mut hi = n;
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            if weight(mid) < target {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        // Clamp so every chunk (this one and all that follow) stays
        // non-empty; valid because n >= 2 * chunks here.
        let cut = lo.clamp(bounds[i - 1] + 1, n - (chunks - i));
        bounds.push(cut);
    }
    bounds.push(n);
    bounds
}

/// Rebuilds the dense node→chunk table from the partition bounds.
fn fill_node_chunk(node_chunk: &mut Vec<u32>, bounds: &[usize]) {
    let n = bounds[bounds.len() - 1];
    node_chunk.clear();
    node_chunk.resize(n, 0);
    for (c, w) in bounds.windows(2).enumerate() {
        for slot in &mut node_chunk[w[0]..w[1]] {
            *slot = c as u32;
        }
    }
}

/// A one-shot per-chunk job awaiting its worker: the `Mutex<Option<_>>`
/// exists only to hand each boxed `FnOnce` to exactly one worker through
/// the pool's `Fn(usize)` interface.
type JobSlot<'a> = Mutex<Option<Box<dyn FnOnce() + Send + 'a>>>;

/// Drives one phase's per-chunk jobs through the pool: job `i` runs as
/// pool chunk `i` (job 0 inline on the caller). Each job is a one-shot
/// `FnOnce` capturing its chunk's `&mut` state.
fn run_jobs(pool: &WorkerPool, jobs: Vec<Box<dyn FnOnce() + Send + '_>>) {
    debug_assert_eq!(jobs.len(), pool.workers() + 1);
    let slots: Vec<JobSlot<'_>> = jobs.into_iter().map(|j| Mutex::new(Some(j))).collect();
    pool.run(&|i| {
        let job = slots[i]
            .lock()
            .expect("job slot poisoned")
            .take()
            .expect("each chunk index is dispatched exactly once per epoch");
        job();
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::{BitReader, BitWriter};
    use kw_graph::generators;

    /// Each node floods the maximum id it has seen for `rounds` rounds.
    struct MaxFlood {
        best: u64,
        rounds_left: usize,
    }

    impl Protocol for MaxFlood {
        type Msg = u64;
        type Output = u64;

        fn on_round(&mut self, ctx: &mut Ctx<'_, u64>) -> Status {
            for (_, &m) in ctx.inbox().iter() {
                self.best = self.best.max(m);
            }
            if self.rounds_left == 0 {
                return Status::Halted;
            }
            self.rounds_left -= 1;
            ctx.broadcast(self.best);
            Status::Running
        }

        fn finish(self) -> u64 {
            self.best
        }
    }

    fn flood_report(g: &CsrGraph, rounds: usize, config: EngineConfig) -> RunReport<u64> {
        Engine::new(g, config, |info| MaxFlood {
            best: info.id.raw() as u64,
            rounds_left: rounds,
        })
        .run()
        .expect("flood terminates")
    }

    #[test]
    fn flooding_converges_on_path_within_diameter_rounds() {
        let g = generators::path(6);
        let report = flood_report(&g, 5, EngineConfig::default());
        assert!(report.outputs.iter().all(|&b| b == 5));
        assert_eq!(report.metrics.rounds, 6);
    }

    #[test]
    fn flooding_does_not_converge_before_diameter() {
        let g = generators::path(6);
        let report = flood_report(&g, 2, EngineConfig::default());
        // Node 0 is 5 hops from node 5; after 2 rounds it cannot know 5.
        assert!(report.outputs[0] < 5);
    }

    #[test]
    fn message_counts_match_model() {
        // Star with center 0 of degree 4: one broadcast round.
        let g = generators::star(5);
        let report = flood_report(&g, 1, EngineConfig::default());
        // Every node broadcasts once: center sends 4, each leaf sends 1.
        assert_eq!(report.metrics.messages, 8);
        assert_eq!(report.node_messages, vec![4, 1, 1, 1, 1]);
        assert_eq!(report.metrics.max_node_messages, 4);
        assert!(report.metrics.bits > 0);
        assert!(report.metrics.max_message_bits > 0);
    }

    #[test]
    fn per_round_metrics_recorded_when_enabled() {
        let g = generators::cycle(4);
        let config = EngineConfig {
            record_per_round: true,
            ..Default::default()
        };
        let report = flood_report(&g, 2, config);
        assert_eq!(report.metrics.per_round.len(), report.metrics.rounds);
        assert_eq!(
            report
                .metrics
                .per_round
                .iter()
                .map(|r| r.messages)
                .sum::<u64>(),
            report.metrics.messages
        );
    }

    #[test]
    fn parallel_matches_sequential() {
        let mut rng = <rand::rngs::SmallRng as rand::SeedableRng>::seed_from_u64(77);
        let g = generators::gnp(120, 0.06, &mut rng);
        let seq = flood_report(
            &g,
            8,
            EngineConfig {
                threads: 1,
                ..Default::default()
            },
        );
        let par = flood_report(
            &g,
            8,
            EngineConfig {
                threads: 4,
                ..Default::default()
            },
        );
        assert_eq!(seq.outputs, par.outputs);
        assert_eq!(seq.metrics, par.metrics);
        assert_eq!(seq.node_messages, par.node_messages);
    }

    #[test]
    fn max_rounds_enforced() {
        struct Forever;
        impl Protocol for Forever {
            type Msg = bool;
            type Output = ();
            fn on_round(&mut self, _ctx: &mut Ctx<'_, bool>) -> Status {
                Status::Running
            }
            fn finish(self) {}
        }
        let g = generators::path(2);
        let err = Engine::new(
            &g,
            EngineConfig {
                max_rounds: 10,
                ..Default::default()
            },
            |_| Forever,
        )
        .run()
        .unwrap_err();
        assert_eq!(err, SimError::MaxRoundsExceeded { limit: 10 });
    }

    #[test]
    fn unicast_reaches_only_target() {
        /// Round 0: node 0 unicasts its id to port 0 only; everyone else
        /// silent. Round 1: output = received count.
        struct OnePing {
            me: u32,
            received: u64,
        }
        impl Protocol for OnePing {
            type Msg = u64;
            type Output = u64;
            fn on_round(&mut self, ctx: &mut Ctx<'_, u64>) -> Status {
                match ctx.round() {
                    0 => {
                        if self.me == 0 {
                            ctx.send(0, 42);
                        }
                        Status::Running
                    }
                    _ => {
                        self.received = ctx.inbox().len() as u64;
                        Status::Halted
                    }
                }
            }
            fn finish(self) -> u64 {
                self.received
            }
        }
        // Triangle: node 0's port 0 is its smallest neighbor, node 1.
        let g = generators::complete(3);
        let report = Engine::new(&g, EngineConfig::default(), |info| OnePing {
            me: info.id.raw(),
            received: 0,
        })
        .run()
        .unwrap();
        assert_eq!(report.outputs, vec![0, 1, 0]);
        assert_eq!(report.metrics.messages, 1);
    }

    #[test]
    fn observer_sees_every_round() {
        let g = generators::cycle(5);
        let mut seen = Vec::new();
        let mut obs = |round: usize, nodes: &[MaxFlood]| {
            seen.push((round, nodes.len()));
        };
        Engine::new(&g, EngineConfig::default(), |info| MaxFlood {
            best: info.id.raw() as u64,
            rounds_left: 3,
        })
        .run_with_observer(&mut obs)
        .unwrap();
        assert_eq!(seen, vec![(0, 5), (1, 5), (2, 5), (3, 5)]);
    }

    #[test]
    fn wire_check_catches_broken_encoding() {
        #[derive(Clone)]
        struct Broken;
        impl crate::wire::WireEncode for Broken {
            fn encode(&self, _w: &mut BitWriter) {}
            fn decode(_r: &mut BitReader<'_>) -> Option<Self> {
                None
            }
        }
        struct Sender;
        impl Protocol for Sender {
            type Msg = Broken;
            type Output = ();
            fn on_round(&mut self, ctx: &mut Ctx<'_, Broken>) -> Status {
                ctx.broadcast(Broken);
                Status::Halted
            }
            fn finish(self) {}
        }
        let g = generators::path(2);
        let err = Engine::new(
            &g,
            EngineConfig {
                check_wire: true,
                ..Default::default()
            },
            |_| Sender,
        )
        .run()
        .unwrap_err();
        assert_eq!(err, SimError::WireMismatch { round: 0 });
    }

    /// The send-time wire check must accept the boundary payloads of the
    /// gamma code — `0` and `u64::MAX` — on both addressing modes, and
    /// charge their exact closed-form bit lengths.
    #[test]
    fn wire_check_passes_boundary_payloads() {
        struct Extremes {
            me: u32,
        }
        impl Protocol for Extremes {
            type Msg = u64;
            type Output = Vec<u64>;
            fn on_round(&mut self, ctx: &mut Ctx<'_, u64>) -> Status {
                match ctx.round() {
                    0 => {
                        ctx.broadcast(u64::MAX);
                        if self.me == 0 {
                            ctx.send(0, 0);
                        }
                        Status::Running
                    }
                    _ => Status::Halted,
                }
            }
            fn finish(self) -> Vec<u64> {
                Vec::new()
            }
        }
        let g = generators::path(2);
        let report = Engine::new(
            &g,
            EngineConfig {
                check_wire: true,
                ..Default::default()
            },
            |info| Extremes { me: info.id.raw() },
        )
        .run()
        .expect("boundary payloads encode, decode, and measure consistently");
        // Two broadcasts of u64::MAX (129 bits each) + one unicast of 0
        // (1 bit).
        assert_eq!(report.metrics.messages, 3);
        assert_eq!(report.metrics.bits, 2 * 129 + 1);
        assert_eq!(report.metrics.max_message_bits, 129);
    }

    #[test]
    fn isolated_nodes_run_and_halt() {
        let g = CsrGraph::empty(3);
        let report = flood_report(&g, 2, EngineConfig::default());
        assert_eq!(report.outputs, vec![0, 1, 2]);
        assert_eq!(report.metrics.messages, 0);
    }

    #[test]
    fn fault_plan_drops_deliveries_but_not_accounting() {
        use crate::faults::FaultPlan;
        // Star, one broadcast round from every node; with heavy loss the
        // center receives fewer than its 4 messages, but sender-side
        // metrics still count every copy.
        let g = generators::star(5);
        let lossy = EngineConfig {
            faults: FaultPlan::drop_with_probability(0.8, 7).into(),
            ..Default::default()
        };
        let lossless = flood_report(&g, 1, EngineConfig::default());
        let report = flood_report(&g, 1, lossy.clone());
        assert_eq!(report.metrics.messages, lossless.metrics.messages);
        // Leaves learn the center's id only if its broadcast survived;
        // with p=0.8 over 4+4 deliveries, some leaf should miss out for
        // this seed. At minimum the run completes and stays deterministic.
        let again = flood_report(&g, 1, lossy);
        assert_eq!(report.outputs, again.outputs);
    }

    #[test]
    fn fault_determinism_across_thread_counts() {
        use crate::faults::FaultPlan;
        let mut rng = <rand::rngs::SmallRng as rand::SeedableRng>::seed_from_u64(5);
        let g = generators::gnp(150, 0.05, &mut rng);
        let base = EngineConfig {
            faults: FaultPlan::drop_with_probability(0.3, 11).into(),
            ..Default::default()
        };
        let seq = flood_report(
            &g,
            6,
            EngineConfig {
                threads: 1,
                ..base.clone()
            },
        );
        let par = flood_report(&g, 6, EngineConfig { threads: 4, ..base });
        assert_eq!(seq.outputs, par.outputs);
        assert_eq!(seq.metrics, par.metrics);
    }

    #[test]
    fn deterministic_rng_streams() {
        use rand::Rng;
        struct Roll;
        impl Protocol for Roll {
            type Msg = bool;
            type Output = u64;
            fn on_round(&mut self, _ctx: &mut Ctx<'_, bool>) -> Status {
                Status::Halted
            }
            fn finish(self) -> u64 {
                0
            }
        }
        // Two engines with the same seed must hand nodes identical seeds.
        let g = generators::path(4);
        let mut seeds1 = Vec::new();
        let _ = Engine::new(&g, EngineConfig::seeded(9), |info| {
            seeds1.push(info.seed);
            Roll
        });
        let mut seeds2 = Vec::new();
        let _ = Engine::new(&g, EngineConfig::seeded(9), |info| {
            seeds2.push(info.seed);
            Roll
        });
        assert_eq!(seeds1, seeds2);
        let mut rng = SmallRng::seed_from_u64(seeds1[0]);
        let _: u64 = rng.gen();
    }

    #[test]
    fn rev_edge_table_inverts_itself() {
        let mut rng = <rand::rngs::SmallRng as rand::SeedableRng>::seed_from_u64(13);
        for g in [
            generators::petersen(),
            generators::star(7),
            generators::gnp(40, 0.2, &mut rng),
        ] {
            let engine = Engine::new(&g, EngineConfig::default(), |_| MaxFlood {
                best: 0,
                rounds_left: 0,
            });
            let offsets = g.offsets();
            let targets = g.targets();
            for v in 0..g.len() {
                for e in offsets[v] as usize..offsets[v + 1] as usize {
                    let r = engine.rev_edge[e] as usize;
                    // The reverse arc belongs to the neighbor and points back.
                    let u = targets[e] as usize;
                    assert!((offsets[u] as usize..offsets[u + 1] as usize).contains(&r));
                    assert_eq!(targets[r] as usize, v);
                    assert_eq!(engine.rev_edge[r] as usize, e);
                }
            }
        }
    }

    /// A protocol that exercises the staged path (mixed broadcast +
    /// unicast every round), for the steady-state allocation check.
    struct Mixed {
        rounds_left: usize,
    }

    impl Protocol for Mixed {
        type Msg = u64;
        type Output = u64;

        fn on_round(&mut self, ctx: &mut Ctx<'_, u64>) -> Status {
            if self.rounds_left == 0 {
                return Status::Halted;
            }
            self.rounds_left -= 1;
            ctx.broadcast(7);
            if ctx.degree() > 0 {
                ctx.send(0, 9);
            }
            Status::Running
        }

        fn finish(self) -> u64 {
            0
        }
    }

    /// Steady-state rounds must be allocation-free: a run 25 times as
    /// long grows message-plane buffers exactly as often as a short one,
    /// because all growth (send arenas included) happens in the first
    /// rounds.
    #[test]
    fn steady_state_rounds_do_not_grow_buffers() {
        let mut rng = <rand::rngs::SmallRng as rand::SeedableRng>::seed_from_u64(21);
        let g = generators::gnp(80, 0.1, &mut rng);
        let growths = |rounds: usize, threads: usize| {
            let mut engine = Engine::new(
                &g,
                EngineConfig {
                    threads,
                    ..Default::default()
                },
                |_| Mixed {
                    rounds_left: rounds,
                },
            );
            engine.drive(&mut NullObserver).unwrap();
            engine.buffer_growths
        };
        for threads in [1usize, 4] {
            let short = growths(4, threads);
            let long = growths(100, threads);
            assert_eq!(
                short, long,
                "message-plane buffers grew after warm-up (threads={threads})"
            );
        }
    }

    /// A traced run emits the documented span taxonomy (`round` →
    /// `compute`/`plan`/`send`/`deliver` + synthetic `barrier`s) plus one
    /// sample per round, and the structural fingerprint is identical
    /// across thread counts — only tick values may differ.
    #[test]
    fn tracer_records_round_structure_thread_invariantly() {
        let g = generators::cycle(64);
        let traced_run = |threads: usize| {
            kw_trace::install(kw_trace::Tracer::new());
            let report = flood_report(
                &g,
                4,
                EngineConfig {
                    threads,
                    ..EngineConfig::default()
                },
            );
            let mut t = kw_trace::take().expect("tracer still installed");
            t.finish();
            (report.outputs, t)
        };
        let (out1, t1) = traced_run(1);
        let labels: Vec<&str> = t1.spans().iter().map(|s| s.label).collect();
        assert!(labels.contains(&"round"));
        assert!(labels.contains(&"compute"));
        assert!(labels.contains(&"plan"));
        assert!(labels.contains(&"deliver"));
        assert!(labels.contains(&"barrier"));
        let rounds = t1.spans().iter().filter(|s| s.label == "round").count();
        assert_eq!(t1.samples().len(), rounds);
        for (threads, expected_chunks) in [(2, 2), (8, 8)] {
            let (out, t) = traced_run(threads);
            assert_eq!(out, out1, "outputs invariant at {threads} threads");
            assert_eq!(
                t.structure(),
                t1.structure(),
                "span tree varies at {threads} threads"
            );
            assert_eq!(
                t.samples(),
                t1.samples(),
                "counter series varies at {threads} threads"
            );
            assert_eq!(t.structure_hash(), t1.structure_hash());
            assert_eq!(t.summarize().threads, expected_chunks);
        }
        // And with no tracer installed, nothing records and outputs match.
        assert!(!kw_trace::is_active());
        let plain = flood_report(&g, 4, EngineConfig::default());
        assert_eq!(plain.outputs, out1);
    }

    /// The dense per-node run table must describe exactly what each node
    /// staged, and solo classification must match the run contents.
    #[test]
    fn run_table_matches_staged_traffic() {
        let g = generators::star(6);
        let mut engine = Engine::new(&g, EngineConfig::default(), |_| Mixed { rounds_left: 3 });
        let out = engine.compute_phase(0, None, None);
        // Every node stages one broadcast + one unicast → all staged.
        assert_eq!(out.staged, g.len());
        for v in 0..g.len() {
            let (_, len) = engine.runs[v];
            assert_eq!(len, 2, "node {v} staged two sends");
            assert!(engine.solo[v].is_none(), "mixed traffic is never solo");
        }
        // Center degree 5 + unicast = 6; leaves 1 + 1 = 2.
        assert_eq!(out.stats.messages, 6 + 5 * 2);
    }

    #[test]
    fn burst_blackout_suppresses_deliveries_but_not_charges() {
        use crate::chaos::{Burst, ChaosPlan};
        let g = generators::path(6);
        // A total blackout covering every round: nobody ever hears anybody.
        let chaos = ChaosPlan::reliable().with_burst(Burst {
            from_round: 0,
            to_round: 100,
            drop_probability: 1.0,
            region: 1.0,
        });
        let report = flood_report(
            &g,
            5,
            EngineConfig {
                faults: chaos,
                ..Default::default()
            },
        );
        let clear = flood_report(&g, 5, EngineConfig::default());
        assert_eq!(
            report.outputs,
            (0..6).map(|v| v as u64).collect::<Vec<_>>(),
            "no delivery survives a full-window blackout"
        );
        // Senders are still charged for every transmitted copy.
        assert_eq!(report.metrics.messages, clear.metrics.messages);
        // A burst that opens only after the run ends changes nothing.
        let late = ChaosPlan::reliable().with_burst(Burst {
            from_round: 50,
            to_round: 60,
            drop_probability: 1.0,
            region: 1.0,
        });
        let unaffected = flood_report(
            &g,
            5,
            EngineConfig {
                faults: late,
                ..Default::default()
            },
        );
        assert_eq!(unaffected.outputs, clear.outputs);
    }

    #[test]
    fn crashed_node_freezes_then_recovers() {
        use crate::chaos::ChaosPlan;
        // Path 0-1-2; node 1 is down for rounds 0..=1, then recovers. The
        // ends can only learn of each other through node 1, so the flood
        // still converges — just later.
        let g = generators::path(3);
        let chaos = ChaosPlan::reliable().with_crash(1, 0, Some(1));
        let report = flood_report(
            &g,
            8,
            EngineConfig {
                faults: chaos,
                ..Default::default()
            },
        );
        assert_eq!(report.outputs, vec![2, 2, 2]);
    }

    #[test]
    fn crash_forever_terminates_without_round_limit() {
        use crate::chaos::ChaosPlan;
        // Node 1 crashes at round 0 and never recovers: it can never halt
        // on its own, so termination must treat it as done. With the relay
        // gone, each end only ever knows itself.
        let g = generators::path(3);
        let chaos = ChaosPlan::reliable().with_crash(1, 0, None);
        let report = flood_report(
            &g,
            4,
            EngineConfig {
                faults: chaos,
                max_rounds: 100,
                ..Default::default()
            },
        );
        assert_eq!(report.outputs, vec![0, 1, 2]);
    }

    #[test]
    fn byzantine_sender_is_deterministic_and_never_panics() {
        use crate::chaos::ChaosPlan;
        let mut rng = <rand::rngs::SmallRng as rand::SeedableRng>::seed_from_u64(3);
        let g = generators::gnp(60, 0.1, &mut rng);
        let chaos = ChaosPlan::reliable()
            .with_fault_seed(17)
            .with_byzantine(0)
            .with_byzantine(5);
        let config = EngineConfig {
            faults: chaos,
            check_wire: true,
            ..Default::default()
        };
        let a = flood_report(&g, 6, config.clone());
        let b = flood_report(&g, 6, config.clone());
        assert_eq!(a.outputs, b.outputs);
        assert_eq!(a.metrics, b.metrics);
        let par = flood_report(
            &g,
            6,
            EngineConfig {
                threads: 4,
                ..config
            },
        );
        assert_eq!(a.outputs, par.outputs);
        assert_eq!(a.metrics, par.metrics);
        // Garbling happens on the wire: senders are charged exactly as in
        // a clean run.
        let clean = flood_report(&g, 6, EngineConfig::default());
        assert_eq!(a.metrics.messages, clean.metrics.messages);
    }

    #[test]
    fn churn_removes_edges_and_counts_rebuilds() {
        use crate::chaos::ChaosPlan;
        use kw_graph::{ChurnEvent, ChurnKind};
        // Path 0-1-2; at round 1 the 0-1 edge disappears and the message
        // in flight across the boundary is dropped, so node 0 never learns
        // anything while 1 and 2 keep talking.
        let g = generators::path(3);
        let chaos = ChaosPlan::reliable().with_churn_event(ChurnEvent {
            round: 1,
            kind: ChurnKind::RemoveEdge(0, 1),
        });
        let report = flood_report(
            &g,
            6,
            EngineConfig {
                faults: chaos,
                ..Default::default()
            },
        );
        assert_eq!(report.outputs, vec![0, 2, 2]);
        assert_eq!(report.metrics.graph_rebuilds, 1);
    }

    #[test]
    fn churn_leave_is_down_forever_and_join_restores() {
        use crate::chaos::ChaosPlan;
        use kw_graph::{ChurnEvent, ChurnKind};
        let g = generators::path(3);
        // Leave with no later Join: node 2 freezes, run still terminates.
        let leave = ChaosPlan::reliable().with_churn_event(ChurnEvent {
            round: 1,
            kind: ChurnKind::Leave(2),
        });
        let report = flood_report(
            &g,
            4,
            EngineConfig {
                faults: leave,
                max_rounds: 100,
                ..Default::default()
            },
        );
        // Node 2's broadcast at round 0 is in flight across the churn
        // boundary and dropped; afterwards only 0 and 1 talk.
        assert_eq!(report.outputs, vec![1, 1, 2]);
        // Leave then Join: a rejoining node comes back isolated (its old
        // edges left with it), so the script re-attaches it explicitly.
        let bounce = ChaosPlan::reliable()
            .with_churn_event(ChurnEvent {
                round: 1,
                kind: ChurnKind::Leave(2),
            })
            .with_churn_event(ChurnEvent {
                round: 3,
                kind: ChurnKind::Join(2),
            })
            .with_churn_event(ChurnEvent {
                round: 3,
                kind: ChurnKind::AddEdge(1, 2),
            });
        let report = flood_report(
            &g,
            8,
            EngineConfig {
                faults: bounce,
                max_rounds: 100,
                ..Default::default()
            },
        );
        assert_eq!(report.outputs, vec![2, 2, 2]);
        assert_eq!(report.metrics.graph_rebuilds, 2);
    }

    #[test]
    fn full_chaos_mix_is_thread_invariant() {
        use crate::chaos::ChaosPlan;
        // Every chaos ingredient at once on a cycle, where all scripted
        // node/edge references exist.
        let g = generators::cycle(150);
        let chaos = ChaosPlan::parse(
            "drop=0.1,seed=11,burst=r1-3@0.8/0.5,crash=7@r2-4,crash=33@r1,byz=3+90,\
             churn=r2re0-1+r3l5+r5j5",
        )
        .expect("valid spec");
        let base = EngineConfig {
            faults: chaos,
            max_rounds: 200,
            ..Default::default()
        };
        let seq = flood_report(
            &g,
            8,
            EngineConfig {
                threads: 1,
                ..base.clone()
            },
        );
        let par2 = flood_report(
            &g,
            8,
            EngineConfig {
                threads: 2,
                ..base.clone()
            },
        );
        let par8 = flood_report(&g, 8, EngineConfig { threads: 8, ..base });
        assert_eq!(seq.outputs, par2.outputs);
        assert_eq!(seq.metrics, par2.metrics);
        assert_eq!(seq.node_messages, par2.node_messages);
        assert_eq!(seq.outputs, par8.outputs);
        assert_eq!(seq.metrics, par8.metrics);
        assert_eq!(seq.node_messages, par8.node_messages);
    }

    #[test]
    fn chunk_bounds_cover_balance_and_determinism() {
        let mut rng = <rand::rngs::SmallRng as rand::SeedableRng>::seed_from_u64(9);
        for (g, chunks) in [
            (generators::star(101), 4), // one dense hub
            (generators::cycle(64), 8), // perfectly uniform
            (generators::gnp(300, 0.05, &mut rng), 4),
            (generators::path(9), 4), // n barely above 2*chunks
        ] {
            let bounds = chunk_bounds(g.offsets(), chunks);
            // Coverage: ascending bounds from 0 to n, every chunk non-empty.
            assert_eq!(bounds.len(), chunks + 1);
            assert_eq!(bounds[0], 0);
            assert_eq!(bounds[chunks], g.len());
            assert!(bounds.windows(2).all(|w| w[0] < w[1]), "{bounds:?}");
            // Determinism: a pure function of the offsets.
            assert_eq!(bounds, chunk_bounds(g.offsets(), chunks));
            // Balance: no chunk exceeds its fair weight share by more than
            // the largest single node (contiguity makes one node the
            // granularity limit — the star's hub chunk is exactly that).
            let w = |v: usize| g.offsets()[v] as usize + NODE_COST * v;
            let max_node = (0..g.len()).map(|v| w(v + 1) - w(v)).max().unwrap();
            let fair = w(g.len()) / chunks;
            for c in bounds.windows(2) {
                assert!(
                    w(c[1]) - w(c[0]) <= fair + max_node,
                    "chunk {c:?} overweight on n={}",
                    g.len()
                );
            }
            let mut node_chunk = Vec::new();
            fill_node_chunk(&mut node_chunk, &bounds);
            assert_eq!(node_chunk.len(), g.len());
            for (v, &c) in node_chunk.iter().enumerate() {
                let c = c as usize;
                assert!(bounds[c] <= v && v < bounds[c + 1]);
            }
        }
    }

    #[test]
    fn churn_rebuild_recomputes_identical_partition() {
        use crate::chaos::ChaosPlan;
        use kw_graph::{ChurnEvent, ChurnKind};
        // Two engines run the same churn script at 4 threads; the
        // partition is a pure function of the rebuilt CSR plane, so their
        // bounds must agree at every point — and differ from the pre-churn
        // bounds once edges moved.
        let mut rng = <rand::rngs::SmallRng as rand::SeedableRng>::seed_from_u64(5);
        let g = generators::gnp(120, 0.06, &mut rng);
        let plan = || {
            ChaosPlan::reliable()
                .with_churn_event(ChurnEvent {
                    round: 2,
                    kind: ChurnKind::Leave(3),
                })
                .with_churn_event(ChurnEvent {
                    round: 2,
                    kind: ChurnKind::Leave(60),
                })
        };
        let config = || EngineConfig {
            threads: 4,
            faults: plan(),
            max_rounds: 50,
            ..Default::default()
        };
        let build = || {
            let mut e = Engine::new(&g, config(), |info| MaxFlood {
                best: info.id.raw() as u64,
                rounds_left: 6,
            });
            e.drive(&mut NullObserver).expect("flood terminates");
            (e.bounds.clone(), e.node_chunk.clone())
        };
        let before = chunk_bounds(g.offsets(), 4);
        let (bounds_a, chunk_a) = build();
        let (bounds_b, chunk_b) = build();
        assert_eq!(bounds_a, bounds_b);
        assert_eq!(chunk_a, chunk_b);
        assert_ne!(bounds_a, before, "churn moved arcs, partition must follow");
        assert_eq!(bounds_a.len(), 5, "chunk count is fixed for the run");
    }

    /// A protocol that panics on one node mid-run, to exercise the pooled
    /// unwind path.
    struct PanicAt {
        node: usize,
        me: usize,
        round: usize,
    }

    impl Protocol for PanicAt {
        type Msg = u64;
        type Output = u64;

        fn on_round(&mut self, ctx: &mut Ctx<'_, u64>) -> Status {
            if ctx.round() == self.round && self.me == self.node {
                panic!("node {} failed at round {}", self.me, self.round);
            }
            ctx.broadcast(1);
            if ctx.round() < 4 {
                Status::Running
            } else {
                Status::Halted
            }
        }

        fn finish(self) -> u64 {
            0
        }
    }

    #[test]
    fn pooled_phase_panic_propagates_without_hanging() {
        let mut rng = <rand::rngs::SmallRng as rand::SeedableRng>::seed_from_u64(3);
        let g = generators::gnp(120, 0.06, &mut rng);
        let run = |node: usize| {
            let engine = Engine::new(
                &g,
                EngineConfig {
                    threads: 4,
                    ..Default::default()
                },
                move |info| PanicAt {
                    node,
                    me: info.id.raw() as usize,
                    round: 2,
                },
            );
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| engine.run()))
        };
        // Panic on a caller-chunk node and on a worker-chunk node: both
        // must unwind out of `run` (pool joined on drop, barrier not
        // hung) with the protocol's payload intact.
        for node in [0, g.len() - 1] {
            let err = run(node).expect_err("protocol panicked");
            let msg = err
                .downcast_ref::<String>()
                .expect("panic payload is the protocol's format string");
            assert!(
                msg.contains("failed at round 2"),
                "unexpected payload {msg}"
            );
        }
        // Pooled runs keep working on this thread afterwards: a fresh run
        // over the same graph completes and matches the 1T output.
        let ok = flood_report(
            &g,
            6,
            EngineConfig {
                threads: 4,
                ..Default::default()
            },
        );
        let seq = flood_report(&g, 6, EngineConfig::default());
        assert_eq!(ok.outputs, seq.outputs);
    }

    #[test]
    fn repeated_drives_reuse_no_stale_state() {
        // Drive the same engine value twice via the internal API (public
        // `run` consumes the engine, so stale state across `drive` calls
        // is the actual hazard): the second drive — with node programs,
        // RNGs, and halt flags re-armed — must reproduce the first run's
        // metrics exactly even though arenas, staging buffers, and plan
        // tables still hold the previous run's data.
        let mut rng = <rand::rngs::SmallRng as rand::SeedableRng>::seed_from_u64(13);
        let g = generators::gnp(90, 0.08, &mut rng);
        let config = EngineConfig {
            threads: 4,
            max_rounds: 50,
            ..Default::default()
        };
        let fresh = |rounds: usize| {
            Engine::new(&g, config.clone(), move |info| MaxFlood {
                best: info.id.raw() as u64,
                rounds_left: rounds,
            })
        };
        let mut once = fresh(5);
        let m1 = once.drive(&mut NullObserver).expect("flood terminates");
        let mut twice = fresh(5);
        twice.drive(&mut NullObserver).expect("flood terminates");
        for node in 0..g.len() {
            twice.halted[node] = false;
            twice.nodes[node] = MaxFlood {
                best: node as u64,
                rounds_left: 5,
            };
            let seed = crate::rng::node_seed(twice.config.seed, node as u32);
            twice.rngs[node] = SmallRng::seed_from_u64(seed);
        }
        let m2 = twice.drive(&mut NullObserver).expect("flood terminates");
        assert_eq!(m1.rounds, m2.rounds);
        assert_eq!(m1.messages, m2.messages);
        assert_eq!(m1.bits, m2.bits);
    }
}
