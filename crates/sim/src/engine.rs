//! The synchronous round-driving engine.

use rand::rngs::SmallRng;
use rand::SeedableRng;

use kw_graph::{CsrGraph, NodeId};

use crate::faults::FaultPlan;
use crate::mailbox::{Ctx, Outbound};
use crate::metrics::{RoundMetrics, RunMetrics};
use crate::rng::node_seed;
use crate::wire::{BitReader, BitWriter, WireEncode};
use crate::{Protocol, SimError, Status};

/// Static facts about a node, passed to the protocol factory.
#[derive(Clone, Copy, Debug)]
pub struct NodeInfo {
    /// The node's identifier.
    pub id: NodeId,
    /// The node's degree (number of incident edges / ports).
    pub degree: usize,
    /// Deterministic per-node RNG seed derived from the run seed.
    pub seed: u64,
}

/// Engine tuning knobs.
///
/// The defaults run sequentially with a generous round budget; experiments
/// enable `threads` for large graphs and `record_per_round` when they need
/// round-resolved traffic curves.
#[derive(Clone, Copy, Debug)]
pub struct EngineConfig {
    /// Abort with [`SimError::MaxRoundsExceeded`] after this many rounds.
    pub max_rounds: usize,
    /// Run seed; per-node seeds are derived from it.
    pub seed: u64,
    /// Worker threads for the compute and delivery phases (`<= 1` means
    /// sequential). Results are identical for any thread count.
    pub threads: usize,
    /// Record per-round [`RoundMetrics`] in the final [`RunMetrics`].
    pub record_per_round: bool,
    /// Verify that every sent message decodes from its own wire encoding
    /// (cheap safety net; enabled by default in tests, not benches).
    pub check_wire: bool,
    /// Message-loss model applied at delivery (defaults to reliable).
    pub faults: FaultPlan,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            max_rounds: 1_000_000,
            seed: 0,
            threads: 1,
            record_per_round: false,
            check_wire: false,
            faults: FaultPlan::reliable(),
        }
    }
}

impl EngineConfig {
    /// Config with a specific run seed, other fields default.
    pub fn seeded(seed: u64) -> Self {
        EngineConfig {
            seed,
            ..Self::default()
        }
    }
}

/// Outcome of a completed run.
#[derive(Clone, Debug)]
pub struct RunReport<O> {
    /// Per-node outputs, indexed by node id.
    pub outputs: Vec<O>,
    /// Aggregated communication metrics.
    pub metrics: RunMetrics,
    /// Total messages sent by each node (validates the paper's `O(k²Δ)`
    /// per-node bound).
    pub node_messages: Vec<u64>,
}

/// Hook invoked after every round with read access to all node states.
///
/// Observers power the invariant checkers (Lemmas 2–7) and the Figure-1
/// cascade trace in `kw-core` without widening the `Protocol` interface.
pub trait Observer<P: Protocol> {
    /// Called after round `round`'s compute phase, before delivery.
    fn after_round(&mut self, round: usize, nodes: &[P]);
}

impl<P: Protocol, F: FnMut(usize, &[P])> Observer<P> for F {
    fn after_round(&mut self, round: usize, nodes: &[P]) {
        self(round, nodes)
    }
}

/// No-op observer used by [`Engine::run`].
#[derive(Clone, Copy, Debug, Default)]
struct NullObserver;

impl<P: Protocol> Observer<P> for NullObserver {
    fn after_round(&mut self, _round: usize, _nodes: &[P]) {}
}

/// Drives one protocol instance per node of a graph through synchronous
/// rounds until every node halts.
///
/// See the [crate docs](crate) for a complete example.
pub struct Engine<'g, P: Protocol> {
    graph: &'g CsrGraph,
    config: EngineConfig,
    nodes: Vec<P>,
    rngs: Vec<SmallRng>,
    halted: Vec<bool>,
    /// `rev_ports[v][q]` = the port on neighbor `adj[v][q]` that points back
    /// to `v`; used to match unicast messages during receiver-driven
    /// delivery.
    rev_ports: Vec<Vec<u32>>,
    inboxes: Vec<Vec<(u32, P::Msg)>>,
    next_inboxes: Vec<Vec<(u32, P::Msg)>>,
    outboxes: Vec<Vec<Outbound<P::Msg>>>,
    node_messages: Vec<u64>,
}

impl<'g, P: Protocol> Engine<'g, P> {
    /// Builds an engine, constructing one protocol instance per node via
    /// `factory`.
    pub fn new(
        graph: &'g CsrGraph,
        config: EngineConfig,
        mut factory: impl FnMut(NodeInfo) -> P,
    ) -> Self {
        let n = graph.len();
        let mut nodes = Vec::with_capacity(n);
        let mut rngs = Vec::with_capacity(n);
        for v in 0..n {
            let seed = node_seed(config.seed, v as u32);
            let info = NodeInfo {
                id: NodeId::new(v),
                degree: graph.degree(NodeId::new(v)),
                seed,
            };
            nodes.push(factory(info));
            rngs.push(SmallRng::seed_from_u64(seed));
        }
        let rev_ports = (0..n)
            .map(|v| {
                graph
                    .neighbors(NodeId::new(v))
                    .map(|u| {
                        graph
                            .neighbor_slice(u)
                            .binary_search(&(v as u32))
                            .expect("graph adjacency is symmetric") as u32
                    })
                    .collect()
            })
            .collect();
        Engine {
            graph,
            config,
            nodes,
            rngs,
            halted: vec![false; n],
            rev_ports,
            inboxes: vec![Vec::new(); n],
            next_inboxes: vec![Vec::new(); n],
            outboxes: vec![Vec::new(); n],
            node_messages: vec![0; n],
        }
    }

    /// Runs to completion without observation.
    ///
    /// # Errors
    ///
    /// [`SimError::MaxRoundsExceeded`] if any node is still running at the
    /// configured limit; [`SimError::WireMismatch`] if wire checking is on
    /// and a message fails to decode.
    pub fn run(self) -> Result<RunReport<P::Output>, SimError> {
        self.run_with_observer(&mut NullObserver)
    }

    /// Runs to completion, invoking `observer` after every round.
    ///
    /// # Errors
    ///
    /// Same as [`run`](Self::run).
    pub fn run_with_observer(
        mut self,
        observer: &mut dyn Observer<P>,
    ) -> Result<RunReport<P::Output>, SimError> {
        let mut metrics = RunMetrics::default();
        let mut round = 0usize;
        loop {
            if round >= self.config.max_rounds {
                return Err(SimError::MaxRoundsExceeded {
                    limit: self.config.max_rounds,
                });
            }
            self.compute_phase(round);
            metrics.rounds = round + 1;
            observer.after_round(round, &self.nodes);
            let round_stats = self.account_messages(round, &mut metrics)?;
            if self.config.record_per_round {
                metrics.per_round.push(round_stats);
            }
            if self.halted.iter().all(|&h| h) {
                break;
            }
            self.delivery_phase(round);
            round += 1;
        }
        metrics.max_node_messages = self.node_messages.iter().copied().max().unwrap_or(0);
        let outputs = self.nodes.into_iter().map(P::finish).collect();
        Ok(RunReport {
            outputs,
            metrics,
            node_messages: self.node_messages,
        })
    }

    /// Calls `on_round` on every running node, filling outboxes.
    fn compute_phase(&mut self, round: usize) {
        let threads = self.effective_threads();
        let graph = self.graph;
        let inboxes = &self.inboxes;
        let n = self.nodes.len();
        if threads <= 1 || n < 2 * threads {
            Self::compute_range(
                graph,
                round,
                0,
                &mut self.nodes,
                &mut self.rngs,
                &mut self.halted,
                &mut self.outboxes,
                inboxes,
            );
            return;
        }
        let chunk = n.div_ceil(threads);
        let nodes = self.nodes.chunks_mut(chunk);
        let rngs = self.rngs.chunks_mut(chunk);
        let halted = self.halted.chunks_mut(chunk);
        let outboxes = self.outboxes.chunks_mut(chunk);
        std::thread::scope(|s| {
            for (i, (((nc, rc), hc), oc)) in nodes.zip(rngs).zip(halted).zip(outboxes).enumerate() {
                let base = i * chunk;
                s.spawn(move || {
                    Self::compute_range(graph, round, base, nc, rc, hc, oc, inboxes);
                });
            }
        });
    }

    #[allow(clippy::too_many_arguments)]
    fn compute_range(
        graph: &CsrGraph,
        round: usize,
        base: usize,
        nodes: &mut [P],
        rngs: &mut [SmallRng],
        halted: &mut [bool],
        outboxes: &mut [Vec<Outbound<P::Msg>>],
        inboxes: &[Vec<(u32, P::Msg)>],
    ) {
        for (j, node) in nodes.iter_mut().enumerate() {
            if halted[j] {
                continue;
            }
            let v = base + j;
            let id = NodeId::new(v);
            let mut ctx = Ctx {
                node: id,
                degree: graph.degree(id) as u32,
                round,
                inbox: &inboxes[v],
                outbox: &mut outboxes[j],
                rng: &mut rngs[j],
            };
            if node.on_round(&mut ctx) == Status::Halted {
                halted[j] = true;
            }
        }
    }

    /// Charges every queued message to the metrics (sender side).
    fn account_messages(
        &mut self,
        round: usize,
        metrics: &mut RunMetrics,
    ) -> Result<RoundMetrics, SimError> {
        let mut stats = RoundMetrics::default();
        for (v, outbox) in self.outboxes.iter().enumerate() {
            let degree = self.graph.degree(NodeId::new(v)) as u64;
            for out in outbox {
                let (msg, copies) = match out {
                    Outbound::Broadcast(m) => (m, degree),
                    Outbound::Unicast { msg, .. } => (msg, 1),
                };
                let bits = msg.encoded_bits();
                if self.config.check_wire {
                    let mut w = BitWriter::new();
                    msg.encode(&mut w);
                    let bytes = w.into_bytes();
                    if P::Msg::decode(&mut BitReader::new(&bytes)).is_none() {
                        return Err(SimError::WireMismatch { round });
                    }
                }
                stats.messages += copies;
                stats.bits += bits as u64 * copies;
                metrics.max_message_bits = metrics.max_message_bits.max(bits);
                self.node_messages[v] += copies;
            }
        }
        metrics.messages += stats.messages;
        metrics.bits += stats.bits;
        Ok(stats)
    }

    /// Receiver-driven delivery: moves outbox contents into next-round
    /// inboxes, then swaps the buffers.
    fn delivery_phase(&mut self, round: usize) {
        let threads = self.effective_threads();
        let graph = self.graph;
        let outboxes = &self.outboxes;
        let rev_ports = &self.rev_ports;
        let halted = &self.halted;
        let faults = self.config.faults;
        let n = self.nodes.len();
        if threads <= 1 || n < 2 * threads {
            Self::deliver_range(
                graph,
                0,
                &mut self.next_inboxes,
                outboxes,
                rev_ports,
                halted,
                faults,
                round,
            );
        } else {
            let chunk = n.div_ceil(threads);
            std::thread::scope(|s| {
                for (i, inbox_chunk) in self.next_inboxes.chunks_mut(chunk).enumerate() {
                    let base = i * chunk;
                    s.spawn(move || {
                        Self::deliver_range(
                            graph,
                            base,
                            inbox_chunk,
                            outboxes,
                            rev_ports,
                            halted,
                            faults,
                            round,
                        );
                    });
                }
            });
        }
        std::mem::swap(&mut self.inboxes, &mut self.next_inboxes);
        for outbox in &mut self.outboxes {
            outbox.clear();
        }
        for inbox in &mut self.next_inboxes {
            inbox.clear();
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn deliver_range(
        graph: &CsrGraph,
        base: usize,
        inboxes: &mut [Vec<(u32, P::Msg)>],
        outboxes: &[Vec<Outbound<P::Msg>>],
        rev_ports: &[Vec<u32>],
        halted: &[bool],
        faults: FaultPlan,
        round: usize,
    ) {
        for (j, inbox) in inboxes.iter_mut().enumerate() {
            let v = base + j;
            if halted[v] {
                continue; // a halted node never reads again
            }
            for (q, u) in graph.neighbors(NodeId::new(v)).enumerate() {
                let back_port = rev_ports[v][q];
                for (slot, out) in outboxes[u.index()].iter().enumerate() {
                    let delivered = match out {
                        Outbound::Broadcast(m) => Some(m),
                        Outbound::Unicast { port, msg } if *port == back_port => Some(msg),
                        Outbound::Unicast { .. } => None,
                    };
                    let Some(msg) = delivered else { continue };
                    if faults.drops(round, u.raw(), v as u32, slot as u32) {
                        continue;
                    }
                    inbox.push((q as u32, msg.clone()));
                }
            }
        }
    }

    fn effective_threads(&self) -> usize {
        if self.config.threads == 0 {
            std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1)
        } else {
            self.config.threads
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::{BitReader, BitWriter};
    use kw_graph::generators;

    /// Each node floods the maximum id it has seen for `rounds` rounds.
    struct MaxFlood {
        best: u64,
        rounds_left: usize,
    }

    impl Protocol for MaxFlood {
        type Msg = u64;
        type Output = u64;

        fn on_round(&mut self, ctx: &mut Ctx<'_, u64>) -> Status {
            for (_, &m) in ctx.inbox().iter() {
                self.best = self.best.max(m);
            }
            if self.rounds_left == 0 {
                return Status::Halted;
            }
            self.rounds_left -= 1;
            ctx.broadcast(self.best);
            Status::Running
        }

        fn finish(self) -> u64 {
            self.best
        }
    }

    fn flood_report(g: &CsrGraph, rounds: usize, config: EngineConfig) -> RunReport<u64> {
        Engine::new(g, config, |info| MaxFlood {
            best: info.id.raw() as u64,
            rounds_left: rounds,
        })
        .run()
        .expect("flood terminates")
    }

    #[test]
    fn flooding_converges_on_path_within_diameter_rounds() {
        let g = generators::path(6);
        let report = flood_report(&g, 5, EngineConfig::default());
        assert!(report.outputs.iter().all(|&b| b == 5));
        assert_eq!(report.metrics.rounds, 6);
    }

    #[test]
    fn flooding_does_not_converge_before_diameter() {
        let g = generators::path(6);
        let report = flood_report(&g, 2, EngineConfig::default());
        // Node 0 is 5 hops from node 5; after 2 rounds it cannot know 5.
        assert!(report.outputs[0] < 5);
    }

    #[test]
    fn message_counts_match_model() {
        // Star with center 0 of degree 4: one broadcast round.
        let g = generators::star(5);
        let report = flood_report(&g, 1, EngineConfig::default());
        // Every node broadcasts once: center sends 4, each leaf sends 1.
        assert_eq!(report.metrics.messages, 8);
        assert_eq!(report.node_messages, vec![4, 1, 1, 1, 1]);
        assert_eq!(report.metrics.max_node_messages, 4);
        assert!(report.metrics.bits > 0);
        assert!(report.metrics.max_message_bits > 0);
    }

    #[test]
    fn per_round_metrics_recorded_when_enabled() {
        let g = generators::cycle(4);
        let config = EngineConfig {
            record_per_round: true,
            ..Default::default()
        };
        let report = flood_report(&g, 2, config);
        assert_eq!(report.metrics.per_round.len(), report.metrics.rounds);
        assert_eq!(
            report
                .metrics
                .per_round
                .iter()
                .map(|r| r.messages)
                .sum::<u64>(),
            report.metrics.messages
        );
    }

    #[test]
    fn parallel_matches_sequential() {
        let mut rng = <rand::rngs::SmallRng as rand::SeedableRng>::seed_from_u64(77);
        let g = generators::gnp(120, 0.06, &mut rng);
        let seq = flood_report(
            &g,
            8,
            EngineConfig {
                threads: 1,
                ..Default::default()
            },
        );
        let par = flood_report(
            &g,
            8,
            EngineConfig {
                threads: 4,
                ..Default::default()
            },
        );
        assert_eq!(seq.outputs, par.outputs);
        assert_eq!(seq.metrics, par.metrics);
        assert_eq!(seq.node_messages, par.node_messages);
    }

    #[test]
    fn max_rounds_enforced() {
        struct Forever;
        impl Protocol for Forever {
            type Msg = bool;
            type Output = ();
            fn on_round(&mut self, _ctx: &mut Ctx<'_, bool>) -> Status {
                Status::Running
            }
            fn finish(self) {}
        }
        let g = generators::path(2);
        let err = Engine::new(
            &g,
            EngineConfig {
                max_rounds: 10,
                ..Default::default()
            },
            |_| Forever,
        )
        .run()
        .unwrap_err();
        assert_eq!(err, SimError::MaxRoundsExceeded { limit: 10 });
    }

    #[test]
    fn unicast_reaches_only_target() {
        /// Round 0: node 0 unicasts its id to port 0 only; everyone else
        /// silent. Round 1: output = received count.
        struct OnePing {
            me: u32,
            received: u64,
        }
        impl Protocol for OnePing {
            type Msg = u64;
            type Output = u64;
            fn on_round(&mut self, ctx: &mut Ctx<'_, u64>) -> Status {
                match ctx.round() {
                    0 => {
                        if self.me == 0 {
                            ctx.send(0, 42);
                        }
                        Status::Running
                    }
                    _ => {
                        self.received = ctx.inbox().len() as u64;
                        Status::Halted
                    }
                }
            }
            fn finish(self) -> u64 {
                self.received
            }
        }
        // Triangle: node 0's port 0 is its smallest neighbor, node 1.
        let g = generators::complete(3);
        let report = Engine::new(&g, EngineConfig::default(), |info| OnePing {
            me: info.id.raw(),
            received: 0,
        })
        .run()
        .unwrap();
        assert_eq!(report.outputs, vec![0, 1, 0]);
        assert_eq!(report.metrics.messages, 1);
    }

    #[test]
    fn observer_sees_every_round() {
        let g = generators::cycle(5);
        let mut seen = Vec::new();
        let mut obs = |round: usize, nodes: &[MaxFlood]| {
            seen.push((round, nodes.len()));
        };
        Engine::new(&g, EngineConfig::default(), |info| MaxFlood {
            best: info.id.raw() as u64,
            rounds_left: 3,
        })
        .run_with_observer(&mut obs)
        .unwrap();
        assert_eq!(seen, vec![(0, 5), (1, 5), (2, 5), (3, 5)]);
    }

    #[test]
    fn wire_check_catches_broken_encoding() {
        #[derive(Clone)]
        struct Broken;
        impl crate::wire::WireEncode for Broken {
            fn encode(&self, _w: &mut BitWriter) {}
            fn decode(_r: &mut BitReader<'_>) -> Option<Self> {
                None
            }
        }
        struct Sender;
        impl Protocol for Sender {
            type Msg = Broken;
            type Output = ();
            fn on_round(&mut self, ctx: &mut Ctx<'_, Broken>) -> Status {
                ctx.broadcast(Broken);
                Status::Halted
            }
            fn finish(self) {}
        }
        let g = generators::path(2);
        let err = Engine::new(
            &g,
            EngineConfig {
                check_wire: true,
                ..Default::default()
            },
            |_| Sender,
        )
        .run()
        .unwrap_err();
        assert_eq!(err, SimError::WireMismatch { round: 0 });
    }

    #[test]
    fn isolated_nodes_run_and_halt() {
        let g = CsrGraph::empty(3);
        let report = flood_report(&g, 2, EngineConfig::default());
        assert_eq!(report.outputs, vec![0, 1, 2]);
        assert_eq!(report.metrics.messages, 0);
    }

    #[test]
    fn fault_plan_drops_deliveries_but_not_accounting() {
        use crate::faults::FaultPlan;
        // Star, one broadcast round from every node; with heavy loss the
        // center receives fewer than its 4 messages, but sender-side
        // metrics still count every copy.
        let g = generators::star(5);
        let lossy = EngineConfig {
            faults: FaultPlan::drop_with_probability(0.8, 7),
            ..Default::default()
        };
        let lossless = flood_report(&g, 1, EngineConfig::default());
        let report = flood_report(&g, 1, lossy);
        assert_eq!(report.metrics.messages, lossless.metrics.messages);
        // Leaves learn the center's id only if its broadcast survived;
        // with p=0.8 over 4+4 deliveries, some leaf should miss out for
        // this seed. At minimum the run completes and stays deterministic.
        let again = flood_report(&g, 1, lossy);
        assert_eq!(report.outputs, again.outputs);
    }

    #[test]
    fn fault_determinism_across_thread_counts() {
        use crate::faults::FaultPlan;
        let mut rng = <rand::rngs::SmallRng as rand::SeedableRng>::seed_from_u64(5);
        let g = generators::gnp(150, 0.05, &mut rng);
        let base = EngineConfig {
            faults: FaultPlan::drop_with_probability(0.3, 11),
            ..Default::default()
        };
        let seq = flood_report(&g, 6, EngineConfig { threads: 1, ..base });
        let par = flood_report(&g, 6, EngineConfig { threads: 4, ..base });
        assert_eq!(seq.outputs, par.outputs);
        assert_eq!(seq.metrics, par.metrics);
    }

    #[test]
    fn deterministic_rng_streams() {
        use rand::Rng;
        struct Roll;
        impl Protocol for Roll {
            type Msg = bool;
            type Output = u64;
            fn on_round(&mut self, _ctx: &mut Ctx<'_, bool>) -> Status {
                Status::Halted
            }
            fn finish(self) -> u64 {
                0
            }
        }
        // Two engines with the same seed must hand nodes identical seeds.
        let g = generators::path(4);
        let mut seeds1 = Vec::new();
        let _ = Engine::new(&g, EngineConfig::seeded(9), |info| {
            seeds1.push(info.seed);
            Roll
        });
        let mut seeds2 = Vec::new();
        let _ = Engine::new(&g, EngineConfig::seeded(9), |info| {
            seeds2.push(info.seed);
            Roll
        });
        assert_eq!(seeds1, seeds2);
        let mut rng = SmallRng::seed_from_u64(seeds1[0]);
        let _: u64 = rng.gen();
    }
}
