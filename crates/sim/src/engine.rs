//! The synchronous round-driving engine.
//!
//! # The flat CSR message plane
//!
//! Delivery used to be receiver-driven: every node rescanned the *entire
//! outbox of every neighbor* each round (the `O(n·Δ)` scan), inboxes were
//! `n` separately allocated `Vec`s cleared twice per round, and a third
//! sequential sweep over all outboxes did the metrics accounting. This
//! engine instead keeps all per-round delivery state in flat arrays
//! parallel to the graph's CSR edge array. A round costs `O(m + traffic)`
//! — the `m`-term is sequential walks of dense arrays (placement visits
//! each receiver arc once), while every random-access and cloning cost
//! scales with the traffic actually delivered:
//!
//! 1. a **fused accounting + classification pass** walks every outbox
//!    exactly once: it charges sender-side metrics (what used to be a
//!    separate `account_messages` sweep), publishes each sender's outbox
//!    length, caches the payload of the common "one reliable broadcast"
//!    shape in a dense per-node array (the *solo* fast path), and for every
//!    other sender counts, per directed arc `u → v`, how many copies will
//!    be delivered along it;
//! 2. a **staging pass** prefix-sums those counts into per-arc `[start,
//!    cursor)` ranges and clones each non-solo sender's delivered payloads
//!    into one sender-major staging arena, in port-then-slot order;
//! 3. a **placement pass** walks receivers in order and copies each
//!    message into its slot of one contiguous double-buffered inbox arena:
//!    solo broadcasts come straight from the dense cache, staged traffic
//!    from the staging run of the reverse arc (`rev_edge`, a flat table
//!    built in `O(m)` by a counting pass, not binary searches). Receiver
//!    offsets into the arena are recorded as placement goes, so no
//!    separate per-arc prefix pass exists on the hot path.
//!
//! All message-proportional buffers (arenas, staging, plan, per-thread
//! scratch) are reused and keep their capacity, so steady-state rounds
//! perform no buffer growth — asserted by a debug counter; multi-threaded
//! rounds still make small `O(threads)` control-structure allocations
//! (chunk tables, join handles). Every phase preserves the
//! engine's determinism guarantee: outputs, metrics, and per-node message
//! counts are bit-identical for every thread count, including under fault
//! plans (drop decisions are keyed by `(round, sender, receiver, slot)`
//! exactly as the old receiver-driven scan keyed them).
//!
//! **Port-numbering invariant:** port `q` of node `v` is `v`'s `q`-th
//! neighbor in ascending id order — exactly CSR arc `offsets[v] + q`. The
//! flat plane indexes by arcs but never renumbers ports, so protocols and
//! recorded traffic are unaffected by the rewrite.
//!
//! Staged (non-solo) deliveries clone a message twice — once into the
//! staging arena, once into the receiver's inbox slice. Messages are small
//! wire-encoded values (the paper's are `O(log Δ)` bits), so the extra copy
//! is far cheaper than the outbox rescans it replaces.

use rand::rngs::SmallRng;
use rand::SeedableRng;

use kw_graph::{CsrGraph, NodeId};

use crate::faults::FaultPlan;
use crate::mailbox::{Ctx, Outbound};
use crate::metrics::{RoundMetrics, RunMetrics};
use crate::rng::node_seed;
use crate::wire::{BitReader, BitWriter, WireEncode};
use crate::{Protocol, SimError, Status};

/// Static facts about a node, passed to the protocol factory.
#[derive(Clone, Copy, Debug)]
pub struct NodeInfo {
    /// The node's identifier.
    pub id: NodeId,
    /// The node's degree (number of incident edges / ports).
    pub degree: usize,
    /// Deterministic per-node RNG seed derived from the run seed.
    pub seed: u64,
}

/// Engine tuning knobs.
///
/// The defaults run sequentially with a generous round budget; experiments
/// enable `threads` for large graphs and `record_per_round` when they need
/// round-resolved traffic curves.
#[derive(Clone, Copy, Debug)]
pub struct EngineConfig {
    /// Abort with [`SimError::MaxRoundsExceeded`] after this many rounds.
    pub max_rounds: usize,
    /// Run seed; per-node seeds are derived from it.
    pub seed: u64,
    /// Worker threads for the compute and delivery phases (`<= 1` means
    /// sequential). Results are identical for any thread count.
    pub threads: usize,
    /// Record per-round [`RoundMetrics`] in the final [`RunMetrics`].
    pub record_per_round: bool,
    /// Verify that every sent message decodes from its own wire encoding
    /// (cheap safety net; enabled by default in tests, not benches).
    pub check_wire: bool,
    /// Message-loss model applied at delivery (defaults to reliable).
    pub faults: FaultPlan,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            max_rounds: 1_000_000,
            seed: 0,
            threads: 1,
            record_per_round: false,
            check_wire: false,
            faults: FaultPlan::reliable(),
        }
    }
}

impl EngineConfig {
    /// Config with a specific run seed, other fields default.
    pub fn seeded(seed: u64) -> Self {
        EngineConfig {
            seed,
            ..Self::default()
        }
    }
}

/// Outcome of a completed run.
#[derive(Clone, Debug)]
pub struct RunReport<O> {
    /// Per-node outputs, indexed by node id.
    pub outputs: Vec<O>,
    /// Aggregated communication metrics.
    pub metrics: RunMetrics,
    /// Total messages sent by each node (validates the paper's `O(k²Δ)`
    /// per-node bound).
    pub node_messages: Vec<u64>,
}

/// Hook invoked after every round with read access to all node states.
///
/// Observers power the invariant checkers (Lemmas 2–7) and the Figure-1
/// cascade trace in `kw-core` without widening the `Protocol` interface.
pub trait Observer<P: Protocol> {
    /// Called after round `round`'s compute phase, before delivery.
    fn after_round(&mut self, round: usize, nodes: &[P]);
}

impl<P: Protocol, F: FnMut(usize, &[P])> Observer<P> for F {
    fn after_round(&mut self, round: usize, nodes: &[P]) {
        self(round, nodes)
    }
}

/// No-op observer used by [`Engine::run`].
#[derive(Clone, Copy, Debug, Default)]
struct NullObserver;

impl<P: Protocol> Observer<P> for NullObserver {
    fn after_round(&mut self, _round: usize, _nodes: &[P]) {}
}

/// Per-chunk result of the fused accounting + classification pass.
struct ScanOut {
    stats: RoundMetrics,
    max_message_bits: usize,
    wire_ok: bool,
}

/// Drives one protocol instance per node of a graph through synchronous
/// rounds until every node halts.
///
/// See the [crate docs](crate) for a complete example and the
/// [module docs](self) for the flat-CSR delivery design.
pub struct Engine<'g, P: Protocol> {
    graph: &'g CsrGraph,
    config: EngineConfig,
    nodes: Vec<P>,
    rngs: Vec<SmallRng>,
    halted: Vec<bool>,
    /// `rev_edge[e]` = the directed-arc index of the reverse of arc `e`:
    /// if arc `e` is port `q` of `v` pointing at `u`, then `rev_edge[e]` is
    /// the arc of `u` pointing back at `v`. Built in `O(m)` by a counting
    /// pass in [`Engine::new`]; this is what lets placement find the
    /// staging run a sender aimed at a given receiver without searching.
    rev_edge: Vec<u32>,
    /// Front inbox arena read by the compute phase: node `v`'s inbox is
    /// `inbox_arena[inbox_offsets[v]..inbox_offsets[v + 1]]`.
    inbox_arena: Vec<(u32, P::Msg)>,
    inbox_offsets: Vec<usize>,
    /// Back arena written by delivery, swapped with the front each round.
    back_arena: Vec<(u32, P::Msg)>,
    back_offsets: Vec<usize>,
    outboxes: Vec<Vec<Outbound<P::Msg>>>,
    /// Per node: this round's outbox length (dense, so placement can skip
    /// quiet senders without touching their outbox allocation).
    outbox_len: Vec<u32>,
    /// Per node: the payload of a sender whose round is exactly one
    /// broadcast on a reliable network — the dominant traffic shape, which
    /// placement serves from this dense cache without staging.
    solo: Vec<Option<P::Msg>>,
    /// Per directed arc of each *staged* (non-solo, non-quiet) sender:
    /// copies delivered along it this round.
    send_counts: Vec<u32>,
    /// Per directed arc of each staged sender: its `[start, cursor)` run in
    /// `plan`/`staged` (the cursor advances during the staging pass and
    /// ends at the run's end).
    plan_ranges: Vec<(u32, u32)>,
    /// Staging-arena base index per node (`n + 1` entries; a sender's runs
    /// are contiguous, so these are also the parallel-chunk boundaries).
    node_plan_base: Vec<usize>,
    /// Outbox slot index of every staged delivery, in arena order.
    plan: Vec<u32>,
    /// Payload clones of every staged delivery, parallel to `plan`.
    staged: Vec<P::Msg>,
    /// Per-thread staging buffers, spliced into `staged` in chunk order.
    stage_scratch: Vec<Vec<P::Msg>>,
    /// Per-thread placement buffers, spliced into the arena in chunk order.
    scratch: Vec<Vec<(u32, P::Msg)>>,
    node_messages: Vec<u64>,
    /// Debug counter: how many delivery phases grew any per-round buffer's
    /// capacity. Steady-state rounds must not move this.
    buffer_growths: u64,
}

impl<'g, P: Protocol> Engine<'g, P> {
    /// Builds an engine, constructing one protocol instance per node via
    /// `factory`.
    ///
    /// # Panics
    ///
    /// Panics if the graph's adjacency is asymmetric (some `v` lists `u`
    /// but `u` does not list `v`) — impossible for graphs built through
    /// [`kw_graph::GraphBuilder`], which enforces symmetry.
    pub fn new(
        graph: &'g CsrGraph,
        config: EngineConfig,
        mut factory: impl FnMut(NodeInfo) -> P,
    ) -> Self {
        let n = graph.len();
        let arcs = graph.num_arcs();
        let mut nodes = Vec::with_capacity(n);
        let mut rngs = Vec::with_capacity(n);
        for v in 0..n {
            let seed = node_seed(config.seed, v as u32);
            let info = NodeInfo {
                id: NodeId::new(v),
                degree: graph.degree(NodeId::new(v)),
                seed,
            };
            nodes.push(factory(info));
            rngs.push(SmallRng::seed_from_u64(seed));
        }
        // Reverse-arc table in one O(m) counting pass: scanning all arcs in
        // (sender, port) order visits the in-arcs of every node u in
        // ascending sender order, which is exactly u's sorted adjacency
        // order — so the next free slot of u is the reverse arc.
        let offsets = graph.offsets();
        let targets = graph.targets();
        let mut rev_edge = vec![0u32; arcs];
        let mut next_in: Vec<u32> = offsets[..n].to_vec();
        for v in 0..n {
            for e in offsets[v] as usize..offsets[v + 1] as usize {
                let u = targets[e] as usize;
                let r = next_in[u] as usize;
                assert!(
                    r < offsets[u + 1] as usize && targets[r] as usize == v,
                    "asymmetric adjacency: node {v} lists {u} as a neighbor, \
                     but {u} does not list {v} back"
                );
                next_in[u] = r as u32 + 1;
                rev_edge[e] = r as u32;
            }
        }
        let mut solo = Vec::with_capacity(n);
        solo.resize_with(n, || None);
        Engine {
            graph,
            config,
            nodes,
            rngs,
            halted: vec![false; n],
            rev_edge,
            inbox_arena: Vec::new(),
            inbox_offsets: vec![0; n + 1],
            back_arena: Vec::new(),
            back_offsets: vec![0; n + 1],
            outboxes: vec![Vec::new(); n],
            outbox_len: vec![0; n],
            solo,
            send_counts: vec![0; arcs],
            plan_ranges: vec![(0, 0); arcs],
            node_plan_base: vec![0; n + 1],
            plan: Vec::new(),
            staged: Vec::new(),
            stage_scratch: Vec::new(),
            scratch: Vec::new(),
            node_messages: vec![0; n],
            buffer_growths: 0,
        }
    }

    /// Runs to completion without observation.
    ///
    /// # Errors
    ///
    /// [`SimError::MaxRoundsExceeded`] if any node is still running at the
    /// configured limit; [`SimError::WireMismatch`] if wire checking is on
    /// and a message fails to decode.
    pub fn run(self) -> Result<RunReport<P::Output>, SimError> {
        self.run_with_observer(&mut NullObserver)
    }

    /// Runs to completion, invoking `observer` after every round.
    ///
    /// # Errors
    ///
    /// Same as [`run`](Self::run).
    pub fn run_with_observer(
        mut self,
        observer: &mut dyn Observer<P>,
    ) -> Result<RunReport<P::Output>, SimError> {
        let metrics = self.drive(observer)?;
        let outputs = self.nodes.into_iter().map(P::finish).collect();
        Ok(RunReport {
            outputs,
            metrics,
            node_messages: self.node_messages,
        })
    }

    /// The round loop, separated from output extraction so tests can
    /// inspect engine state (e.g. the allocation counter) after a run.
    fn drive(&mut self, observer: &mut dyn Observer<P>) -> Result<RunMetrics, SimError> {
        let mut metrics = RunMetrics::default();
        let mut round = 0usize;
        loop {
            if round >= self.config.max_rounds {
                return Err(SimError::MaxRoundsExceeded {
                    limit: self.config.max_rounds,
                });
            }
            self.compute_phase(round);
            metrics.rounds = round + 1;
            observer.after_round(round, &self.nodes);
            let round_stats = self.account_and_classify(round, &mut metrics)?;
            if self.config.record_per_round {
                metrics.per_round.push(round_stats);
            }
            if self.halted.iter().all(|&h| h) {
                break;
            }
            self.delivery_phase(round);
            round += 1;
        }
        metrics.max_node_messages = self.node_messages.iter().copied().max().unwrap_or(0);
        Ok(metrics)
    }

    /// Calls `on_round` on every running node, filling outboxes.
    fn compute_phase(&mut self, round: usize) {
        let threads = self.effective_threads();
        let graph = self.graph;
        let arena = &self.inbox_arena;
        let offsets = &self.inbox_offsets;
        let n = self.nodes.len();
        if threads <= 1 || n < 2 * threads {
            Self::compute_range(
                graph,
                round,
                0,
                &mut self.nodes,
                &mut self.rngs,
                &mut self.halted,
                &mut self.outboxes,
                arena,
                offsets,
            );
            return;
        }
        let chunk = n.div_ceil(threads);
        let nodes = self.nodes.chunks_mut(chunk);
        let rngs = self.rngs.chunks_mut(chunk);
        let halted = self.halted.chunks_mut(chunk);
        let outboxes = self.outboxes.chunks_mut(chunk);
        std::thread::scope(|s| {
            for (i, (((nc, rc), hc), oc)) in nodes.zip(rngs).zip(halted).zip(outboxes).enumerate() {
                let base = i * chunk;
                s.spawn(move || {
                    Self::compute_range(graph, round, base, nc, rc, hc, oc, arena, offsets);
                });
            }
        });
    }

    #[allow(clippy::too_many_arguments)]
    fn compute_range(
        graph: &CsrGraph,
        round: usize,
        base: usize,
        nodes: &mut [P],
        rngs: &mut [SmallRng],
        halted: &mut [bool],
        outboxes: &mut [Vec<Outbound<P::Msg>>],
        arena: &[(u32, P::Msg)],
        inbox_offsets: &[usize],
    ) {
        for (j, node) in nodes.iter_mut().enumerate() {
            if halted[j] {
                continue;
            }
            let v = base + j;
            let id = NodeId::new(v);
            let mut ctx = Ctx {
                node: id,
                degree: graph.degree(id) as u32,
                round,
                inbox: &arena[inbox_offsets[v]..inbox_offsets[v + 1]],
                outbox: &mut outboxes[j],
                rng: &mut rngs[j],
            };
            if node.on_round(&mut ctx) == Status::Halted {
                halted[j] = true;
            }
        }
    }

    /// The fused pass: walks every outbox exactly once, charging
    /// sender-side metrics (what `account_messages` used to do in a
    /// separate sweep) and classifying every sender for delivery — quiet,
    /// solo broadcast (payload cached densely), or staged (per-arc copy
    /// counts computed, receiver-side filters already applied: arcs into
    /// halted nodes count zero, and each copy's fate under a fault plan is
    /// decided with the same `(round, sender, receiver, slot)` key the old
    /// receiver-driven scan used, so lossy runs reproduce exactly).
    fn account_and_classify(
        &mut self,
        round: usize,
        metrics: &mut RunMetrics,
    ) -> Result<RoundMetrics, SimError> {
        let threads = self.effective_threads();
        let n = self.nodes.len();
        let graph = self.graph;
        let halted = &self.halted;
        let outboxes = &self.outboxes;
        let faults = self.config.faults;
        let check_wire = self.config.check_wire;
        let scan = |base: usize,
                    node_messages: &mut [u64],
                    outbox_len: &mut [u32],
                    solo: &mut [Option<P::Msg>],
                    send_counts: &mut [u32]|
         -> ScanOut {
            Self::scan_range(
                graph,
                round,
                base,
                outboxes,
                halted,
                faults,
                check_wire,
                node_messages,
                outbox_len,
                solo,
                send_counts,
            )
        };
        let out = if threads <= 1 || n < 2 * threads {
            scan(
                0,
                &mut self.node_messages,
                &mut self.outbox_len,
                &mut self.solo,
                &mut self.send_counts,
            )
        } else {
            let chunk = n.div_ceil(threads);
            let counts = split_at_arcs(&mut self.send_counts, graph.offsets(), chunk);
            let messages = self.node_messages.chunks_mut(chunk);
            let lens = self.outbox_len.chunks_mut(chunk);
            let solos = self.solo.chunks_mut(chunk);
            let outs: Vec<ScanOut> = std::thread::scope(|s| {
                let handles: Vec<_> = messages
                    .zip(lens)
                    .zip(solos)
                    .zip(counts)
                    .enumerate()
                    .map(|(i, (((mc, lc), sc), cc))| {
                        let scan = &scan;
                        s.spawn(move || scan(i * chunk, mc, lc, sc, cc))
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().unwrap()).collect()
            });
            outs.into_iter()
                .fold(None::<ScanOut>, |acc, o| match acc {
                    None => Some(o),
                    Some(mut a) => {
                        a.stats.accumulate(o.stats);
                        a.max_message_bits = a.max_message_bits.max(o.max_message_bits);
                        a.wire_ok &= o.wire_ok;
                        Some(a)
                    }
                })
                .expect("at least one chunk")
        };
        if !out.wire_ok {
            return Err(SimError::WireMismatch { round });
        }
        metrics.messages += out.stats.messages;
        metrics.bits += out.stats.bits;
        metrics.max_message_bits = metrics.max_message_bits.max(out.max_message_bits);
        Ok(out.stats)
    }

    /// [`account_and_classify`](Self::account_and_classify) over one node
    /// range. `send_counts` is the slice covering exactly the range's arcs.
    #[allow(clippy::too_many_arguments)]
    fn scan_range(
        graph: &CsrGraph,
        round: usize,
        base: usize,
        outboxes: &[Vec<Outbound<P::Msg>>],
        halted: &[bool],
        faults: FaultPlan,
        check_wire: bool,
        node_messages: &mut [u64],
        outbox_len: &mut [u32],
        solo: &mut [Option<P::Msg>],
        send_counts: &mut [u32],
    ) -> ScanOut {
        let offsets = graph.offsets();
        let targets = graph.targets();
        let arc_base = offsets[base] as usize;
        let mut stats = RoundMetrics::default();
        let mut max_message_bits = 0usize;
        let mut wire_ok = true;
        let reliable = faults.is_reliable();
        for j in 0..node_messages.len() {
            let u = base + j;
            let outbox = &outboxes[u];
            outbox_len[j] = outbox.len() as u32;
            if outbox.is_empty() {
                solo[j] = None;
                continue;
            }
            let arc_lo = offsets[u] as usize;
            let degree = offsets[u + 1] as usize - arc_lo;
            let local = arc_lo - arc_base;
            // Sender-side accounting (faults and halted receivers never
            // reduce what the sender is charged for).
            for out in outbox {
                let (msg, copies) = match out {
                    Outbound::Broadcast(m) => (m, degree as u64),
                    Outbound::Unicast { msg, .. } => (msg, 1),
                };
                let bits = msg.encoded_bits();
                if check_wire {
                    let mut w = BitWriter::new();
                    msg.encode(&mut w);
                    // An `encoded_bits` override that disagrees with the
                    // real encoding would corrupt the bit accounting.
                    if w.bit_len() != bits {
                        wire_ok = false;
                    }
                    let bytes = w.into_bytes();
                    if P::Msg::decode(&mut BitReader::new(&bytes)).is_none() {
                        wire_ok = false;
                    }
                }
                stats.messages += copies;
                stats.bits += bits as u64 * copies;
                max_message_bits = max_message_bits.max(bits);
                node_messages[j] += copies;
            }
            // Classification. The dominant shape — a single broadcast on a
            // reliable network — is served from the dense solo cache and
            // needs no per-arc work at all (halted receivers are filtered
            // on the receiver side of placement).
            if reliable {
                if let [Outbound::Broadcast(m)] = outbox.as_slice() {
                    solo[j] = Some(m.clone());
                    continue;
                }
                solo[j] = None;
                let counts = &mut send_counts[local..local + degree];
                counts.fill(0);
                let mut broadcasts = 0u32;
                for out in outbox {
                    match out {
                        Outbound::Broadcast(_) => broadcasts += 1,
                        Outbound::Unicast { port, .. } => counts[*port as usize] += 1,
                    }
                }
                for (p, c) in counts.iter_mut().enumerate() {
                    let v = targets[arc_lo + p] as usize;
                    *c = if halted[v] { 0 } else { *c + broadcasts };
                }
            } else {
                solo[j] = None;
                send_counts[local..local + degree].fill(0);
                for (slot, out) in outbox.iter().enumerate() {
                    match out {
                        Outbound::Broadcast(_) => {
                            for p in 0..degree {
                                let v = targets[arc_lo + p];
                                if !halted[v as usize]
                                    && !faults.drops(round, u as u32, v, slot as u32)
                                {
                                    send_counts[local + p] += 1;
                                }
                            }
                        }
                        Outbound::Unicast { port, .. } => {
                            let p = *port as usize;
                            let v = targets[arc_lo + p];
                            if !halted[v as usize] && !faults.drops(round, u as u32, v, slot as u32)
                            {
                                send_counts[local + p] += 1;
                            }
                        }
                    }
                }
            }
        }
        ScanOut {
            stats,
            max_message_bits,
            wire_ok,
        }
    }

    /// Whether node `u` has staged (non-solo, non-quiet) traffic this
    /// round.
    #[inline]
    fn is_staged(&self, u: usize) -> bool {
        self.outbox_len[u] > 0 && self.solo[u].is_none()
    }

    /// Sender-indexed delivery into the flat arena: prefix-sums the staged
    /// counts, stages payload clones in sender-major order, places every
    /// message into its receiver's arena slice, then swaps the double
    /// buffer.
    fn delivery_phase(&mut self, round: usize) {
        let cap_before = self.delivery_capacity();
        let n = self.nodes.len();
        let offsets = self.graph.offsets();
        // Staging prefix sum — touches only staged senders' arcs.
        let mut plan_total = 0usize;
        for u in 0..n {
            self.node_plan_base[u] = plan_total;
            if self.is_staged(u) {
                for e in offsets[u] as usize..offsets[u + 1] as usize {
                    self.plan_ranges[e] = (plan_total as u32, plan_total as u32);
                    plan_total += self.send_counts[e] as usize;
                }
            }
        }
        self.node_plan_base[n] = plan_total;
        assert!(
            u32::try_from(plan_total).is_ok(),
            "more than u32::MAX staged deliveries in one round"
        );
        if plan_total > 0 {
            self.build_staging(round, plan_total);
        } else {
            self.staged.clear();
        }
        self.place();
        std::mem::swap(&mut self.inbox_arena, &mut self.back_arena);
        std::mem::swap(&mut self.inbox_offsets, &mut self.back_offsets);
        // The entire old message plane resets with one arena clear (offsets
        // are rewritten wholesale next round); only outboxes remain
        // per-node because `Ctx` hands out `&mut Vec`.
        self.back_arena.clear();
        for outbox in &mut self.outboxes {
            outbox.clear();
        }
        let cap_after = self.delivery_capacity();
        if cap_after > cap_before {
            self.buffer_growths += 1;
        }
    }

    /// Total capacity of all reusable delivery buffers, for the
    /// steady-state allocation check (capacities never shrink, so a sum
    /// increase means some buffer grew this round).
    fn delivery_capacity(&self) -> usize {
        self.inbox_arena.capacity()
            + self.back_arena.capacity()
            + self.plan.capacity()
            + self.staged.capacity()
            + self.scratch.iter().map(Vec::capacity).sum::<usize>()
            + self.stage_scratch.iter().map(Vec::capacity).sum::<usize>()
    }

    /// Fills `plan` (outbox slot of every staged delivery, grouped by
    /// sender arc, slot-ascending within an arc) and `staged` (the matching
    /// payload clones) for all staged senders.
    fn build_staging(&mut self, round: usize, plan_total: usize) {
        let threads = self.effective_threads();
        let n = self.nodes.len();
        let graph = self.graph;
        let offsets = graph.offsets();
        let targets = graph.targets();
        let outboxes = &self.outboxes;
        let halted = &self.halted;
        let outbox_len = &self.outbox_len;
        let solo = &self.solo;
        let node_plan_base = &self.node_plan_base;
        let faults = self.config.faults;
        let reliable = faults.is_reliable();
        self.plan.resize(plan_total, 0);
        // Writes one sender's plan entries via the per-arc cursors, then
        // immediately stages that sender's payloads (its outbox is hot).
        let fill = |base: usize,
                    len: usize,
                    plan_base: usize,
                    plan_chunk: &mut [u32],
                    ranges: &mut [(u32, u32)],
                    sink: &mut Vec<P::Msg>| {
            let arc_base = offsets[base] as usize;
            for u in base..base + len {
                if outbox_len[u] == 0 || solo[u].is_some() {
                    continue;
                }
                let outbox = &outboxes[u];
                let arc_lo = offsets[u] as usize;
                let degree = offsets[u + 1] as usize - arc_lo;
                for (slot, out) in outbox.iter().enumerate() {
                    match out {
                        Outbound::Broadcast(_) => {
                            for p in 0..degree {
                                let v = targets[arc_lo + p];
                                if !halted[v as usize]
                                    && (reliable || !faults.drops(round, u as u32, v, slot as u32))
                                {
                                    let cursor = &mut ranges[arc_lo + p - arc_base].1;
                                    plan_chunk[*cursor as usize - plan_base] = slot as u32;
                                    *cursor += 1;
                                }
                            }
                        }
                        Outbound::Unicast { port, .. } => {
                            let p = *port as usize;
                            let v = targets[arc_lo + p];
                            if !halted[v as usize]
                                && (reliable || !faults.drops(round, u as u32, v, slot as u32))
                            {
                                let cursor = &mut ranges[arc_lo + p - arc_base].1;
                                plan_chunk[*cursor as usize - plan_base] = slot as u32;
                                *cursor += 1;
                            }
                        }
                    }
                }
                for &slot in
                    &plan_chunk[node_plan_base[u] - plan_base..node_plan_base[u + 1] - plan_base]
                {
                    sink.push(outbox[slot as usize].payload().clone());
                }
            }
        };
        if threads <= 1 || n < 2 * threads {
            self.staged.clear();
            fill(
                0,
                n,
                0,
                &mut self.plan[..plan_total],
                &mut self.plan_ranges,
                &mut self.staged,
            );
            return;
        }
        let chunk = n.div_ceil(threads);
        // A sender chunk's plan entries are contiguous (staging bases are
        // monotone in node order), so the plan, the range table, and the
        // staging output all split safely at chunk boundaries.
        let ranges = split_at_arcs(&mut self.plan_ranges, offsets, chunk);
        let chunks = ranges.len();
        if self.stage_scratch.len() < chunks {
            self.stage_scratch.resize_with(chunks, Vec::new);
        }
        let mut plans = Vec::with_capacity(chunks);
        let mut bases = Vec::with_capacity(chunks);
        let mut rest = &mut self.plan[..plan_total];
        let mut consumed = 0usize;
        for i in 0..chunks {
            let hi = node_plan_base[((i + 1) * chunk).min(n)];
            let (head, tail) = rest.split_at_mut(hi - consumed);
            bases.push(consumed);
            plans.push(head);
            rest = tail;
            consumed = hi;
        }
        std::thread::scope(|s| {
            for (i, ((pc, rc), sink)) in plans
                .into_iter()
                .zip(ranges)
                .zip(self.stage_scratch[..chunks].iter_mut())
                .enumerate()
            {
                let base = i * chunk;
                let len = chunk.min(n - base);
                let plan_base = bases[i];
                let fill = &fill;
                s.spawn(move || {
                    sink.clear();
                    fill(base, len, plan_base, pc, rc, sink);
                });
            }
        });
        self.staged.clear();
        for sink in &mut self.stage_scratch[..chunks] {
            self.staged.append(sink);
        }
    }

    /// Copies every delivered message into the back arena, receivers in
    /// ascending order, each receiver's messages in `(port, slot)` order —
    /// the exact sequence the old receiver-driven scan produced — while
    /// recording the per-receiver arena offsets.
    fn place(&mut self) {
        let threads = self.effective_threads();
        let n = self.nodes.len();
        let graph = self.graph;
        let halted = &self.halted;
        let outbox_len = &self.outbox_len;
        let solo = &self.solo;
        let rev_edge = &self.rev_edge;
        let plan_ranges = &self.plan_ranges;
        let staged = &self.staged[..];
        // `offsets[v]` entries are written relative to the chunk's start;
        // the caller rebases them once chunk sizes are known.
        let place_range =
            |lo: usize, hi: usize, offsets_out: &mut [usize], sink: &mut Vec<(u32, P::Msg)>| {
                let offsets = graph.offsets();
                let targets = graph.targets();
                for v in lo..hi {
                    offsets_out[v - lo] = sink.len();
                    if halted[v] {
                        continue;
                    }
                    let arc_lo = offsets[v] as usize;
                    let degree = offsets[v + 1] as usize - arc_lo;
                    for q in 0..degree {
                        let u = targets[arc_lo + q] as usize;
                        if let Some(m) = &solo[u] {
                            sink.push((q as u32, m.clone()));
                            continue;
                        }
                        if outbox_len[u] == 0 {
                            continue;
                        }
                        let j = rev_edge[arc_lo + q] as usize;
                        let (start, end) = plan_ranges[j];
                        for m in &staged[start as usize..end as usize] {
                            sink.push((q as u32, m.clone()));
                        }
                    }
                }
            };
        if threads <= 1 || n < 2 * threads {
            self.back_arena.clear();
            place_range(0, n, &mut self.back_offsets[..n], &mut self.back_arena);
            self.back_offsets[n] = self.back_arena.len();
            return;
        }
        let chunk = n.div_ceil(threads);
        let chunks = n.div_ceil(chunk);
        if self.scratch.len() < chunks {
            self.scratch.resize_with(chunks, Vec::new);
        }
        let offset_chunks = self.back_offsets[..n].chunks_mut(chunk);
        std::thread::scope(|s| {
            for (i, (sink, oc)) in self.scratch[..chunks]
                .iter_mut()
                .zip(offset_chunks)
                .enumerate()
            {
                let lo = i * chunk;
                let hi = (lo + chunk).min(n);
                let place_range = &place_range;
                s.spawn(move || {
                    sink.clear();
                    place_range(lo, hi, oc, sink);
                });
            }
        });
        // Splice chunk outputs and rebase their local offsets.
        self.back_arena.clear();
        for (i, sink) in self.scratch[..chunks].iter_mut().enumerate() {
            let base = self.back_arena.len();
            let lo = i * chunk;
            let hi = (lo + chunk).min(n);
            for off in &mut self.back_offsets[lo..hi] {
                *off += base;
            }
            self.back_arena.append(sink);
        }
        self.back_offsets[n] = self.back_arena.len();
    }

    fn effective_threads(&self) -> usize {
        if self.config.threads == 0 {
            std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1)
        } else {
            self.config.threads
        }
    }
}

/// Splits `slice` (one entry per directed arc) into per-node-chunk slices
/// whose boundaries follow the CSR offsets, so arc-indexed state can be
/// handed to the same worker that owns the node chunk.
fn split_at_arcs<'a, T>(slice: &'a mut [T], offsets: &[u32], chunk: usize) -> Vec<&'a mut [T]> {
    let n = offsets.len() - 1;
    let mut out = Vec::with_capacity(n.div_ceil(chunk.max(1)));
    let mut rest = slice;
    let mut consumed = 0usize;
    let mut base = 0usize;
    while base < n {
        let end = (base + chunk).min(n);
        let hi = offsets[end] as usize;
        let (head, tail) = rest.split_at_mut(hi - consumed);
        out.push(head);
        rest = tail;
        consumed = hi;
        base = end;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::{BitReader, BitWriter};
    use kw_graph::generators;

    /// Each node floods the maximum id it has seen for `rounds` rounds.
    struct MaxFlood {
        best: u64,
        rounds_left: usize,
    }

    impl Protocol for MaxFlood {
        type Msg = u64;
        type Output = u64;

        fn on_round(&mut self, ctx: &mut Ctx<'_, u64>) -> Status {
            for (_, &m) in ctx.inbox().iter() {
                self.best = self.best.max(m);
            }
            if self.rounds_left == 0 {
                return Status::Halted;
            }
            self.rounds_left -= 1;
            ctx.broadcast(self.best);
            Status::Running
        }

        fn finish(self) -> u64 {
            self.best
        }
    }

    fn flood_report(g: &CsrGraph, rounds: usize, config: EngineConfig) -> RunReport<u64> {
        Engine::new(g, config, |info| MaxFlood {
            best: info.id.raw() as u64,
            rounds_left: rounds,
        })
        .run()
        .expect("flood terminates")
    }

    #[test]
    fn flooding_converges_on_path_within_diameter_rounds() {
        let g = generators::path(6);
        let report = flood_report(&g, 5, EngineConfig::default());
        assert!(report.outputs.iter().all(|&b| b == 5));
        assert_eq!(report.metrics.rounds, 6);
    }

    #[test]
    fn flooding_does_not_converge_before_diameter() {
        let g = generators::path(6);
        let report = flood_report(&g, 2, EngineConfig::default());
        // Node 0 is 5 hops from node 5; after 2 rounds it cannot know 5.
        assert!(report.outputs[0] < 5);
    }

    #[test]
    fn message_counts_match_model() {
        // Star with center 0 of degree 4: one broadcast round.
        let g = generators::star(5);
        let report = flood_report(&g, 1, EngineConfig::default());
        // Every node broadcasts once: center sends 4, each leaf sends 1.
        assert_eq!(report.metrics.messages, 8);
        assert_eq!(report.node_messages, vec![4, 1, 1, 1, 1]);
        assert_eq!(report.metrics.max_node_messages, 4);
        assert!(report.metrics.bits > 0);
        assert!(report.metrics.max_message_bits > 0);
    }

    #[test]
    fn per_round_metrics_recorded_when_enabled() {
        let g = generators::cycle(4);
        let config = EngineConfig {
            record_per_round: true,
            ..Default::default()
        };
        let report = flood_report(&g, 2, config);
        assert_eq!(report.metrics.per_round.len(), report.metrics.rounds);
        assert_eq!(
            report
                .metrics
                .per_round
                .iter()
                .map(|r| r.messages)
                .sum::<u64>(),
            report.metrics.messages
        );
    }

    #[test]
    fn parallel_matches_sequential() {
        let mut rng = <rand::rngs::SmallRng as rand::SeedableRng>::seed_from_u64(77);
        let g = generators::gnp(120, 0.06, &mut rng);
        let seq = flood_report(
            &g,
            8,
            EngineConfig {
                threads: 1,
                ..Default::default()
            },
        );
        let par = flood_report(
            &g,
            8,
            EngineConfig {
                threads: 4,
                ..Default::default()
            },
        );
        assert_eq!(seq.outputs, par.outputs);
        assert_eq!(seq.metrics, par.metrics);
        assert_eq!(seq.node_messages, par.node_messages);
    }

    #[test]
    fn max_rounds_enforced() {
        struct Forever;
        impl Protocol for Forever {
            type Msg = bool;
            type Output = ();
            fn on_round(&mut self, _ctx: &mut Ctx<'_, bool>) -> Status {
                Status::Running
            }
            fn finish(self) {}
        }
        let g = generators::path(2);
        let err = Engine::new(
            &g,
            EngineConfig {
                max_rounds: 10,
                ..Default::default()
            },
            |_| Forever,
        )
        .run()
        .unwrap_err();
        assert_eq!(err, SimError::MaxRoundsExceeded { limit: 10 });
    }

    #[test]
    fn unicast_reaches_only_target() {
        /// Round 0: node 0 unicasts its id to port 0 only; everyone else
        /// silent. Round 1: output = received count.
        struct OnePing {
            me: u32,
            received: u64,
        }
        impl Protocol for OnePing {
            type Msg = u64;
            type Output = u64;
            fn on_round(&mut self, ctx: &mut Ctx<'_, u64>) -> Status {
                match ctx.round() {
                    0 => {
                        if self.me == 0 {
                            ctx.send(0, 42);
                        }
                        Status::Running
                    }
                    _ => {
                        self.received = ctx.inbox().len() as u64;
                        Status::Halted
                    }
                }
            }
            fn finish(self) -> u64 {
                self.received
            }
        }
        // Triangle: node 0's port 0 is its smallest neighbor, node 1.
        let g = generators::complete(3);
        let report = Engine::new(&g, EngineConfig::default(), |info| OnePing {
            me: info.id.raw(),
            received: 0,
        })
        .run()
        .unwrap();
        assert_eq!(report.outputs, vec![0, 1, 0]);
        assert_eq!(report.metrics.messages, 1);
    }

    #[test]
    fn observer_sees_every_round() {
        let g = generators::cycle(5);
        let mut seen = Vec::new();
        let mut obs = |round: usize, nodes: &[MaxFlood]| {
            seen.push((round, nodes.len()));
        };
        Engine::new(&g, EngineConfig::default(), |info| MaxFlood {
            best: info.id.raw() as u64,
            rounds_left: 3,
        })
        .run_with_observer(&mut obs)
        .unwrap();
        assert_eq!(seen, vec![(0, 5), (1, 5), (2, 5), (3, 5)]);
    }

    #[test]
    fn wire_check_catches_broken_encoding() {
        #[derive(Clone)]
        struct Broken;
        impl crate::wire::WireEncode for Broken {
            fn encode(&self, _w: &mut BitWriter) {}
            fn decode(_r: &mut BitReader<'_>) -> Option<Self> {
                None
            }
        }
        struct Sender;
        impl Protocol for Sender {
            type Msg = Broken;
            type Output = ();
            fn on_round(&mut self, ctx: &mut Ctx<'_, Broken>) -> Status {
                ctx.broadcast(Broken);
                Status::Halted
            }
            fn finish(self) {}
        }
        let g = generators::path(2);
        let err = Engine::new(
            &g,
            EngineConfig {
                check_wire: true,
                ..Default::default()
            },
            |_| Sender,
        )
        .run()
        .unwrap_err();
        assert_eq!(err, SimError::WireMismatch { round: 0 });
    }

    #[test]
    fn isolated_nodes_run_and_halt() {
        let g = CsrGraph::empty(3);
        let report = flood_report(&g, 2, EngineConfig::default());
        assert_eq!(report.outputs, vec![0, 1, 2]);
        assert_eq!(report.metrics.messages, 0);
    }

    #[test]
    fn fault_plan_drops_deliveries_but_not_accounting() {
        use crate::faults::FaultPlan;
        // Star, one broadcast round from every node; with heavy loss the
        // center receives fewer than its 4 messages, but sender-side
        // metrics still count every copy.
        let g = generators::star(5);
        let lossy = EngineConfig {
            faults: FaultPlan::drop_with_probability(0.8, 7),
            ..Default::default()
        };
        let lossless = flood_report(&g, 1, EngineConfig::default());
        let report = flood_report(&g, 1, lossy);
        assert_eq!(report.metrics.messages, lossless.metrics.messages);
        // Leaves learn the center's id only if its broadcast survived;
        // with p=0.8 over 4+4 deliveries, some leaf should miss out for
        // this seed. At minimum the run completes and stays deterministic.
        let again = flood_report(&g, 1, lossy);
        assert_eq!(report.outputs, again.outputs);
    }

    #[test]
    fn fault_determinism_across_thread_counts() {
        use crate::faults::FaultPlan;
        let mut rng = <rand::rngs::SmallRng as rand::SeedableRng>::seed_from_u64(5);
        let g = generators::gnp(150, 0.05, &mut rng);
        let base = EngineConfig {
            faults: FaultPlan::drop_with_probability(0.3, 11),
            ..Default::default()
        };
        let seq = flood_report(&g, 6, EngineConfig { threads: 1, ..base });
        let par = flood_report(&g, 6, EngineConfig { threads: 4, ..base });
        assert_eq!(seq.outputs, par.outputs);
        assert_eq!(seq.metrics, par.metrics);
    }

    #[test]
    fn deterministic_rng_streams() {
        use rand::Rng;
        struct Roll;
        impl Protocol for Roll {
            type Msg = bool;
            type Output = u64;
            fn on_round(&mut self, _ctx: &mut Ctx<'_, bool>) -> Status {
                Status::Halted
            }
            fn finish(self) -> u64 {
                0
            }
        }
        // Two engines with the same seed must hand nodes identical seeds.
        let g = generators::path(4);
        let mut seeds1 = Vec::new();
        let _ = Engine::new(&g, EngineConfig::seeded(9), |info| {
            seeds1.push(info.seed);
            Roll
        });
        let mut seeds2 = Vec::new();
        let _ = Engine::new(&g, EngineConfig::seeded(9), |info| {
            seeds2.push(info.seed);
            Roll
        });
        assert_eq!(seeds1, seeds2);
        let mut rng = SmallRng::seed_from_u64(seeds1[0]);
        let _: u64 = rng.gen();
    }

    #[test]
    fn rev_edge_table_inverts_itself() {
        let mut rng = <rand::rngs::SmallRng as rand::SeedableRng>::seed_from_u64(13);
        for g in [
            generators::petersen(),
            generators::star(7),
            generators::gnp(40, 0.2, &mut rng),
        ] {
            let engine = Engine::new(&g, EngineConfig::default(), |_| MaxFlood {
                best: 0,
                rounds_left: 0,
            });
            let offsets = g.offsets();
            let targets = g.targets();
            for v in 0..g.len() {
                for e in offsets[v] as usize..offsets[v + 1] as usize {
                    let r = engine.rev_edge[e] as usize;
                    // The reverse arc belongs to the neighbor and points back.
                    let u = targets[e] as usize;
                    assert!((offsets[u] as usize..offsets[u + 1] as usize).contains(&r));
                    assert_eq!(targets[r] as usize, v);
                    assert_eq!(engine.rev_edge[r] as usize, e);
                }
            }
        }
    }

    /// A protocol that exercises the staged path (mixed broadcast +
    /// unicast every round), for the steady-state allocation check.
    struct Mixed {
        rounds_left: usize,
    }

    impl Protocol for Mixed {
        type Msg = u64;
        type Output = u64;

        fn on_round(&mut self, ctx: &mut Ctx<'_, u64>) -> Status {
            if self.rounds_left == 0 {
                return Status::Halted;
            }
            self.rounds_left -= 1;
            ctx.broadcast(7);
            if ctx.degree() > 0 {
                ctx.send(0, 9);
            }
            Status::Running
        }

        fn finish(self) -> u64 {
            0
        }
    }

    /// Steady-state rounds must be allocation-free: a run three times as
    /// long grows delivery buffers exactly as often as a short one,
    /// because all growth happens in the first rounds.
    #[test]
    fn steady_state_rounds_do_not_grow_buffers() {
        let mut rng = <rand::rngs::SmallRng as rand::SeedableRng>::seed_from_u64(21);
        let g = generators::gnp(80, 0.1, &mut rng);
        let growths = |rounds: usize, threads: usize| {
            let mut engine = Engine::new(
                &g,
                EngineConfig {
                    threads,
                    ..Default::default()
                },
                |_| Mixed {
                    rounds_left: rounds,
                },
            );
            engine.drive(&mut NullObserver).unwrap();
            engine.buffer_growths
        };
        for threads in [1usize, 4] {
            let short = growths(4, threads);
            let long = growths(12, threads);
            assert_eq!(
                short, long,
                "delivery buffers grew after warm-up (threads={threads})"
            );
        }
    }
}
