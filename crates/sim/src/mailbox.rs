//! Per-node message I/O surface.

use rand::rngs::SmallRng;

use kw_graph::NodeId;

/// Outbound message queued by a node during a round.
///
/// A broadcast is materialized once here; the engine's flat delivery plane
/// clones it only into the arena slot of each edge it is delivered on.
#[derive(Clone, Debug)]
pub(crate) enum Outbound<M> {
    /// Same payload to every neighbor (still counted as `degree` messages,
    /// matching the paper's per-edge accounting).
    Broadcast(M),
    /// Payload to the neighbor on one port.
    Unicast { port: u32, msg: M },
}

impl<M> Outbound<M> {
    /// The message payload, regardless of addressing mode.
    pub(crate) fn payload(&self) -> &M {
        match self {
            Outbound::Broadcast(m) => m,
            Outbound::Unicast { msg, .. } => msg,
        }
    }
}

/// Messages received by a node this round, tagged with the receiving port.
///
/// Port `p` of node `v` identifies `v`'s `p`-th neighbor (in ascending id
/// order, though protocols must not rely on the order meaning anything —
/// the LOCAL model only guarantees stable port numbering).
#[derive(Debug)]
pub struct Inbox<'a, M> {
    pub(crate) items: &'a [(u32, M)],
}

impl<'a, M> Inbox<'a, M> {
    /// Number of messages received.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether no messages arrived.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Iterates over `(port, message)` pairs.
    pub fn iter(&self) -> InboxIter<'a, M> {
        InboxIter {
            inner: self.items.iter(),
        }
    }
}

impl<'a, M> IntoIterator for Inbox<'a, M> {
    type Item = (u32, &'a M);
    type IntoIter = InboxIter<'a, M>;

    fn into_iter(self) -> Self::IntoIter {
        InboxIter {
            inner: self.items.iter(),
        }
    }
}

/// Iterator over `(port, message)` pairs, created by [`Inbox::iter`].
#[derive(Debug)]
pub struct InboxIter<'a, M> {
    inner: std::slice::Iter<'a, (u32, M)>,
}

impl<'a, M> Iterator for InboxIter<'a, M> {
    type Item = (u32, &'a M);

    fn next(&mut self) -> Option<Self::Item> {
        self.inner.next().map(|(p, m)| (*p, m))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.inner.size_hint()
    }
}

impl<M> ExactSizeIterator for InboxIter<'_, M> {}

/// Everything a node may see and do during one round: its identity and
/// degree, the inbox, the outbox, and a private RNG.
///
/// This is the *entire* interface between a [`Protocol`](crate::Protocol)
/// and the world; node programs cannot observe the graph.
#[derive(Debug)]
pub struct Ctx<'a, M> {
    pub(crate) node: NodeId,
    pub(crate) degree: u32,
    pub(crate) round: usize,
    pub(crate) inbox: &'a [(u32, M)],
    pub(crate) outbox: &'a mut Vec<Outbound<M>>,
    pub(crate) rng: &'a mut SmallRng,
}

impl<'a, M> Ctx<'a, M> {
    /// This node's identifier.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// This node's degree; valid ports are `0..degree`.
    pub fn degree(&self) -> u32 {
        self.degree
    }

    /// The current round index (0-based; round 0 has an empty inbox).
    pub fn round(&self) -> usize {
        self.round
    }

    /// Messages delivered this round.
    pub fn inbox(&self) -> Inbox<'_, M> {
        Inbox { items: self.inbox }
    }

    /// The raw inbox slice, borrowed for the whole round rather than for
    /// this call — lets protocols that embed other protocols keep reading
    /// messages while queueing sends.
    pub fn inbox_slice(&self) -> &'a [(u32, M)] {
        self.inbox
    }

    /// Queues `msg` for delivery to every neighbor next round.
    ///
    /// Counts as `degree` individual messages in the run metrics, matching
    /// the paper's model in which a node "sends a message to each of its
    /// direct neighbors".
    pub fn broadcast(&mut self, msg: M) {
        if self.degree > 0 {
            self.outbox.push(Outbound::Broadcast(msg));
        }
    }

    /// Queues `msg` for delivery to the neighbor on `port` next round.
    ///
    /// # Panics
    ///
    /// Panics if `port >= degree`.
    pub fn send(&mut self, port: u32, msg: M) {
        assert!(
            port < self.degree,
            "port {port} out of range for degree {}",
            self.degree
        );
        self.outbox.push(Outbound::Unicast { port, msg });
    }

    /// Private per-node RNG, deterministically seeded from the run seed and
    /// the node id.
    pub fn rng(&mut self) -> &mut SmallRng {
        self.rng
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn ctx<'a>(
        inbox: &'a [(u32, u64)],
        outbox: &'a mut Vec<Outbound<u64>>,
        rng: &'a mut SmallRng,
    ) -> Ctx<'a, u64> {
        Ctx {
            node: NodeId::new(0),
            degree: 2,
            round: 3,
            inbox,
            outbox,
            rng,
        }
    }

    #[test]
    fn accessors() {
        let inbox = vec![(0u32, 7u64), (1, 9)];
        let mut outbox = Vec::new();
        let mut rng = SmallRng::seed_from_u64(0);
        let c = ctx(&inbox, &mut outbox, &mut rng);
        assert_eq!(c.node(), NodeId::new(0));
        assert_eq!(c.degree(), 2);
        assert_eq!(c.round(), 3);
        assert_eq!(c.inbox().len(), 2);
        assert!(!c.inbox().is_empty());
        let got: Vec<u64> = c.inbox().iter().map(|(_, &m)| m).collect();
        assert_eq!(got, vec![7, 9]);
    }

    #[test]
    fn send_and_broadcast_queue() {
        let inbox = vec![];
        let mut outbox = Vec::new();
        let mut rng = SmallRng::seed_from_u64(0);
        let mut c = ctx(&inbox, &mut outbox, &mut rng);
        c.broadcast(1);
        c.send(1, 2);
        assert_eq!(outbox.len(), 2);
        assert!(matches!(outbox[0], Outbound::Broadcast(1)));
        assert!(matches!(outbox[1], Outbound::Unicast { port: 1, msg: 2 }));
    }

    #[test]
    fn broadcast_on_isolated_node_is_dropped() {
        let inbox = vec![];
        let mut outbox: Vec<Outbound<u64>> = Vec::new();
        let mut rng = SmallRng::seed_from_u64(0);
        let mut c = Ctx {
            node: NodeId::new(1),
            degree: 0,
            round: 0,
            inbox: &inbox,
            outbox: &mut outbox,
            rng: &mut rng,
        };
        c.broadcast(5);
        assert!(outbox.is_empty());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn send_validates_port() {
        let inbox = vec![];
        let mut outbox = Vec::new();
        let mut rng = SmallRng::seed_from_u64(0);
        ctx(&inbox, &mut outbox, &mut rng).send(2, 0);
    }
}
