//! Per-node message I/O surface.
//!
//! # The send contract
//!
//! [`Ctx::broadcast`] and [`Ctx::send`] are the *only* way a protocol can
//! emit messages, and both follow one eager-validation contract:
//!
//! * **Addressing is validated at call time, never at delivery time.**
//!   `send` panics immediately if the port does not name an incident link
//!   (`port >= degree`); there is no such neighbor, so the call is a
//!   protocol bug, not a droppable message.
//! * **`broadcast` is defined for every degree.** It stages exactly one
//!   copy per incident link — `degree` copies, each charged to the run
//!   metrics. On an isolated node that is zero copies: a well-defined
//!   no-op that stages nothing and charges nothing (not an error, and not
//!   a "silent drop" of anything addressable).
//! * **Accepted sends are staged immediately** through the engine's
//!   [`Sink`] into its flat per-round send arena. Sender-side metrics,
//!   wire checking, and traffic classification all happen at that moment;
//!   nothing is re-validated or re-walked later, and no growable buffer
//!   (`&mut Vec` or otherwise) is ever reachable from algorithm code.
//!
//! Delivery-time effects — receiver halting and fault drops — are link
//! properties, not addressing properties, and remain the engine's
//! business (see [`FaultPlan`](crate::FaultPlan)).

use rand::rngs::SmallRng;

use kw_graph::NodeId;

/// Outbound message staged by a node during a round.
///
/// A broadcast is materialized once in the send arena; the engine's flat
/// delivery plane clones it only into the arena slot of each edge it is
/// delivered on.
#[derive(Clone, Debug)]
pub(crate) enum Outbound<M> {
    /// Same payload to every neighbor (still counted as `degree` messages,
    /// matching the paper's per-edge accounting).
    Broadcast(M),
    /// Payload to the neighbor on one port.
    Unicast { port: u32, msg: M },
}

impl<M> Outbound<M> {
    /// The message payload, regardless of addressing mode.
    pub(crate) fn payload(&self) -> &M {
        match self {
            Outbound::Broadcast(m) => m,
            Outbound::Unicast { msg, .. } => msg,
        }
    }
}

/// Engine-side staging target for one node's sends during one round.
///
/// [`Ctx`] validates every call against the send contract (see the
/// [module docs](self)) and then writes through this trait, so the trait
/// is *opaque* to protocols: algorithm code can queue traffic but can
/// never observe, grow, or reorder the buffer behind it. The engine's
/// implementation appends straight into a per-node run of its flat,
/// per-round send arena and charges sender-side metrics at the same
/// moment — the old "fill per-node `Vec` outboxes, then re-walk them all"
/// two-pass is fused into the send itself.
///
/// Implementations may assume both invariants `Ctx` enforces:
///
/// * `stage_unicast` is only called with `port < degree`;
/// * `stage_broadcast` is never called on an isolated node (its `degree`
///   argument — the sender's degree, passed per call so the sink keeps no
///   per-node state — is always positive).
pub trait Sink<M> {
    /// Stages one copy of `msg` per incident link of the sending node
    /// (`degree` copies).
    fn stage_broadcast(&mut self, degree: u32, msg: M);

    /// Stages `msg` for the link on `port` (already validated).
    fn stage_unicast(&mut self, port: u32, msg: M);
}

/// Messages received by a node this round, tagged with the receiving port.
///
/// Port `p` of node `v` identifies `v`'s `p`-th neighbor (in ascending id
/// order, though protocols must not rely on the order meaning anything —
/// the LOCAL model only guarantees stable port numbering).
#[derive(Debug)]
pub struct Inbox<'a, M> {
    pub(crate) items: &'a [(u32, M)],
}

impl<'a, M> Inbox<'a, M> {
    /// Number of messages received.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether no messages arrived.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Iterates over `(port, message)` pairs.
    pub fn iter(&self) -> InboxIter<'a, M> {
        InboxIter {
            inner: self.items.iter(),
        }
    }
}

impl<'a, M> IntoIterator for Inbox<'a, M> {
    type Item = (u32, &'a M);
    type IntoIter = InboxIter<'a, M>;

    fn into_iter(self) -> Self::IntoIter {
        InboxIter {
            inner: self.items.iter(),
        }
    }
}

/// Iterator over `(port, message)` pairs, created by [`Inbox::iter`].
#[derive(Debug)]
pub struct InboxIter<'a, M> {
    inner: std::slice::Iter<'a, (u32, M)>,
}

impl<'a, M> Iterator for InboxIter<'a, M> {
    type Item = (u32, &'a M);

    fn next(&mut self) -> Option<Self::Item> {
        self.inner.next().map(|(p, m)| (*p, m))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.inner.size_hint()
    }
}

impl<M> ExactSizeIterator for InboxIter<'_, M> {}

/// Everything a node may see and do during one round: its identity and
/// degree, the inbox, the send sink, and a private RNG.
///
/// This is the *entire* interface between a [`Protocol`](crate::Protocol)
/// and the world; node programs cannot observe the graph. Sends go
/// through the opaque [`Sink`] contract — the engine stages them directly
/// into per-node runs of its flat send arena, so no growable buffer
/// escapes to algorithm code. (`Ctx` holds the engine's sink as a
/// concrete private type and routes through the trait statically, so
/// staging inlines into the protocol's round instead of paying a virtual
/// call per send.)
pub struct Ctx<'a, M> {
    pub(crate) node: NodeId,
    pub(crate) degree: u32,
    pub(crate) round: usize,
    pub(crate) inbox: &'a [(u32, M)],
    pub(crate) sink: &'a mut crate::engine::StageSink<M>,
    pub(crate) rng: &'a mut SmallRng,
}

impl<M> std::fmt::Debug for Ctx<'_, M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Ctx")
            .field("node", &self.node)
            .field("degree", &self.degree)
            .field("round", &self.round)
            .field("inbox_len", &self.inbox.len())
            .finish_non_exhaustive()
    }
}

impl<'a, M> Ctx<'a, M> {
    /// This node's identifier.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// This node's degree; valid ports are `0..degree`.
    pub fn degree(&self) -> u32 {
        self.degree
    }

    /// The current round index (0-based; round 0 has an empty inbox).
    pub fn round(&self) -> usize {
        self.round
    }

    /// Messages delivered this round.
    pub fn inbox(&self) -> Inbox<'_, M> {
        Inbox { items: self.inbox }
    }

    /// The raw inbox slice, borrowed for the whole round rather than for
    /// this call — lets protocols that embed other protocols keep reading
    /// messages while queueing sends.
    pub fn inbox_slice(&self) -> &'a [(u32, M)] {
        self.inbox
    }

    /// Stages `msg` for delivery to every neighbor next round — one copy
    /// per incident link.
    ///
    /// Counts as `degree` individual messages in the run metrics, matching
    /// the paper's model in which a node "sends a message to each of its
    /// direct neighbors". On an isolated node this is a well-defined
    /// no-op: zero links, zero copies, zero charge (see the send contract
    /// in the [module docs](self)).
    pub fn broadcast(&mut self, msg: M)
    where
        M: crate::wire::WireEncode,
    {
        if self.degree > 0 {
            Sink::stage_broadcast(self.sink, self.degree, msg);
        }
    }

    /// Stages `msg` for delivery to the neighbor on `port` next round.
    ///
    /// # Panics
    ///
    /// Panics if `port >= degree` — addressing is validated at call time,
    /// per the send contract in the [module docs](self). In particular an
    /// isolated node has no valid port at all, so any `send` from it
    /// panics (whereas its `broadcast` is a no-op).
    pub fn send(&mut self, port: u32, msg: M)
    where
        M: crate::wire::WireEncode,
    {
        assert!(
            port < self.degree,
            "port {port} out of range for degree {}",
            self.degree
        );
        Sink::stage_unicast(self.sink, port, msg);
    }

    /// Private per-node RNG, deterministically seeded from the run seed and
    /// the node id.
    pub fn rng(&mut self) -> &mut SmallRng {
        self.rng
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::StageSink;
    use rand::SeedableRng;

    fn ctx<'a>(
        degree: u32,
        inbox: &'a [(u32, u64)],
        sink: &'a mut StageSink<u64>,
        rng: &'a mut SmallRng,
    ) -> Ctx<'a, u64> {
        Ctx {
            node: NodeId::new(0),
            degree,
            round: 3,
            inbox,
            sink,
            rng,
        }
    }

    #[test]
    fn accessors() {
        let inbox = vec![(0u32, 7u64), (1, 9)];
        let mut sink = StageSink::new();
        let mut rng = SmallRng::seed_from_u64(0);
        let c = ctx(2, &inbox, &mut sink, &mut rng);
        assert_eq!(c.node(), NodeId::new(0));
        assert_eq!(c.degree(), 2);
        assert_eq!(c.round(), 3);
        assert_eq!(c.inbox().len(), 2);
        assert!(!c.inbox().is_empty());
        let got: Vec<u64> = c.inbox().iter().map(|(_, &m)| m).collect();
        assert_eq!(got, vec![7, 9]);
    }

    #[test]
    fn send_and_broadcast_stage_in_call_order() {
        let inbox = vec![];
        let mut sink = StageSink::new();
        let mut rng = SmallRng::seed_from_u64(0);
        let mut c = ctx(2, &inbox, &mut sink, &mut rng);
        c.broadcast(1);
        c.send(1, 2);
        assert_eq!(sink.arena.len(), 2);
        assert!(matches!(sink.arena[0], Outbound::Broadcast(1)));
        assert!(matches!(
            sink.arena[1],
            Outbound::Unicast { port: 1, msg: 2 }
        ));
        // Sender-side accounting is fused into the send itself: the
        // broadcast charged `degree` copies, the unicast one.
        assert_eq!(sink.messages, 3);
    }

    /// The unified send contract, isolated-node half: `broadcast` stages
    /// one copy per link, which on degree 0 is a defined no-op — the sink
    /// is never even called, and nothing is charged.
    #[test]
    fn broadcast_on_isolated_node_is_a_noop() {
        let inbox = vec![];
        let mut sink = StageSink::new();
        let mut rng = SmallRng::seed_from_u64(0);
        let mut c = ctx(0, &inbox, &mut sink, &mut rng);
        c.broadcast(5);
        assert!(sink.arena.is_empty());
        assert_eq!(sink.messages, 0);
        assert_eq!(sink.bits, 0);
    }

    /// The unified send contract, addressing half: `send` validates its
    /// port eagerly and panics — it never reaches the sink.
    #[test]
    #[should_panic(expected = "out of range")]
    fn send_validates_port() {
        let inbox = vec![];
        let mut sink = StageSink::new();
        let mut rng = SmallRng::seed_from_u64(0);
        ctx(2, &inbox, &mut sink, &mut rng).send(2, 0);
    }

    /// On an isolated node every port is invalid, so `send` panics where
    /// `broadcast` no-ops — the two calls diverge only in whether the
    /// addressing they name can exist.
    #[test]
    #[should_panic(expected = "out of range")]
    fn send_from_isolated_node_panics() {
        let inbox = vec![];
        let mut sink = StageSink::new();
        let mut rng = SmallRng::seed_from_u64(0);
        ctx(0, &inbox, &mut sink, &mut rng).send(0, 0);
    }
}
