//! The end-to-end dominating set pipeline (Theorem 6).
//!
//! Applies a fractional solver (Algorithm 3 by default, or Algorithm 2 when
//! `Δ`-knowledge is assumed) and rounds the result with Algorithm 1. By
//! Theorems 3 and 5 the expected dominating set size is within
//! `O(k·Δ^{2/k}·log Δ)` of optimal, after `O(k²)` rounds.
//!
//! When Algorithm 3 is the solver, its setup rounds already computed
//! `δ⁽²⁾` per node, so the rounding stage skips its two degree-exchange
//! rounds (the paper's modular composition would redo them; either way the
//! total stays `O(k²)`).
//!
//! # Example
//!
//! ```
//! use kw_graph::generators;
//! use kw_core::{Pipeline, PipelineConfig};
//!
//! let g = generators::grid(5, 5);
//! let outcome = Pipeline::new(PipelineConfig { k: 2, ..Default::default() }).run(&g, 7)?;
//! assert!(outcome.dominating_set.is_dominating(&g));
//! # Ok::<(), kw_core::CoreError>(())
//! ```

use kw_graph::{CsrGraph, DominatingSet, FractionalAssignment};
use kw_sim::{ChaosPlan, EngineConfig, RunMetrics};

use crate::alg2::run_alg2;
use crate::alg3::run_alg3;
use crate::rounding::{run_rounding, run_rounding_with_delta2, RoundingConfig};
use crate::CoreError;

/// Which algorithm computes the fractional solution.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum FractionalSolver {
    /// Algorithm 2 — assumes all nodes know the maximum degree `Δ`.
    Alg2DeltaKnown,
    /// Algorithm 3 — purely local (the paper's headline configuration).
    #[default]
    Alg3,
}

/// Pipeline configuration.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PipelineConfig {
    /// The time/quality trade-off parameter `k ≥ 1`.
    pub k: u32,
    /// Fractional solver choice.
    pub solver: FractionalSolver,
    /// Rounding stage configuration.
    pub rounding: RoundingConfig,
    /// Worker threads for the simulation engine (`<= 1` = sequential).
    pub threads: usize,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            k: 2,
            solver: FractionalSolver::default(),
            rounding: RoundingConfig::default(),
            threads: 1,
        }
    }
}

/// Everything a pipeline run produces.
#[derive(Clone, Debug)]
pub struct PipelineOutcome {
    /// The dominating set (guaranteed dominating unless the fallback was
    /// disabled in the rounding config).
    pub dominating_set: DominatingSet,
    /// The intermediate fractional solution.
    pub fractional: FractionalAssignment,
    /// Metrics of the fractional stage.
    pub fractional_metrics: RunMetrics,
    /// Metrics of the rounding stage.
    pub rounding_metrics: RunMetrics,
}

impl PipelineOutcome {
    /// Total synchronous rounds across both stages.
    pub fn total_rounds(&self) -> usize {
        self.fractional_metrics.rounds + self.rounding_metrics.rounds
    }

    /// Total messages across both stages.
    pub fn total_messages(&self) -> u64 {
        self.fractional_metrics.messages + self.rounding_metrics.messages
    }

    /// Total payload bits across both stages.
    pub fn total_bits(&self) -> u64 {
        self.fractional_metrics.bits + self.rounding_metrics.bits
    }

    /// Largest message observed in either stage, in bits.
    pub fn max_message_bits(&self) -> usize {
        self.fractional_metrics
            .max_message_bits
            .max(self.rounding_metrics.max_message_bits)
    }
}

/// The composed Kuhn–Wattenhofer dominating set algorithm.
#[derive(Clone, Copy, Debug)]
pub struct Pipeline {
    config: PipelineConfig,
}

impl Pipeline {
    /// Creates a pipeline with the given configuration.
    pub fn new(config: PipelineConfig) -> Self {
        Pipeline { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &PipelineConfig {
        &self.config
    }

    /// Runs the pipeline on `g`, with all randomness derived from `seed`.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidConfig`] if `k == 0`; simulation errors are
    /// propagated.
    pub fn run(&self, g: &CsrGraph, seed: u64) -> Result<PipelineOutcome, CoreError> {
        self.run_with_faults(g, seed, ChaosPlan::reliable())
    }

    /// Runs the pipeline under a chaos plan: iid losses, correlated drop
    /// bursts, crash/recover schedules, adversarial (byzantine) senders,
    /// and inter-round churn (robustness ablation A3; the paper's model is
    /// the reliable special case). A plain [`kw_sim::FaultPlan`] converts
    /// via `.into()`.
    ///
    /// Both simulation stages (fractional solver, then rounding) run under
    /// the same plan, each from its own round 0 — chaos round numbers are
    /// stage-local.
    ///
    /// With chaos the theorems' guarantees no longer apply — the output
    /// may even fail to dominate; callers should check.
    ///
    /// # Errors
    ///
    /// Same as [`run`](Self::run).
    pub fn run_with_faults(
        &self,
        g: &CsrGraph,
        seed: u64,
        faults: ChaosPlan,
    ) -> Result<PipelineOutcome, CoreError> {
        let engine = EngineConfig {
            seed,
            threads: self.config.threads,
            faults: faults.clone(),
            ..EngineConfig::default()
        };
        // Stage spans bracket the two simulation segments when a tracer is
        // installed; an early `?` return leaves the span open, and the
        // harvester's `Tracer::finish` closes it at the error tick.
        kw_trace::with_active(|t| t.begin("stage:fractional"));
        let (fractional, fractional_metrics, delta2) = match self.config.solver {
            FractionalSolver::Alg2DeltaKnown => {
                let run = run_alg2(g, self.config.k, engine)?;
                (run.x, run.metrics, None)
            }
            FractionalSolver::Alg3 => {
                let run = run_alg3(g, self.config.k, engine)?;
                (run.x, run.metrics, Some(run.delta2))
            }
        };
        kw_trace::with_active(|t| t.end());
        // Derive a distinct engine seed for the rounding stage so its RNG
        // draws are independent of anything the solver consumed.
        let rounding_engine = EngineConfig {
            seed: kw_sim::rng::split_mix64(seed ^ 0x524f_554e_4449_4e47),
            threads: self.config.threads,
            faults,
            ..EngineConfig::default()
        };
        kw_trace::with_active(|t| t.begin("stage:rounding"));
        let rounding = match &delta2 {
            Some(d2) => {
                run_rounding_with_delta2(g, &fractional, d2, self.config.rounding, rounding_engine)?
            }
            None => run_rounding(g, &fractional, self.config.rounding, rounding_engine)?,
        };
        kw_trace::with_active(|t| t.end());
        Ok(PipelineOutcome {
            dominating_set: rounding.set,
            fractional,
            fractional_metrics,
            rounding_metrics: rounding.metrics,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::math;
    use kw_graph::generators;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn default_pipeline_dominates() {
        let mut rng = SmallRng::seed_from_u64(30);
        for seed in 0..10u64 {
            let g = generators::gnp(60, 0.08, &mut rng);
            let out = Pipeline::new(PipelineConfig::default())
                .run(&g, seed)
                .unwrap();
            assert!(out.dominating_set.is_dominating(&g), "seed {seed}");
            assert!(out.fractional.is_feasible(&g));
        }
    }

    #[test]
    fn round_counts_match_theorems() {
        let g = generators::grid(6, 6);
        let k = 3;
        let out = Pipeline::new(PipelineConfig {
            k,
            ..Default::default()
        })
        .run(&g, 1)
        .unwrap();
        // Alg 3 rounds + 2 rounding rounds (δ² reused from setup).
        assert_eq!(out.total_rounds(), math::alg3_rounds(k) + 2);
        let out2 = Pipeline::new(PipelineConfig {
            k,
            solver: FractionalSolver::Alg2DeltaKnown,
            ..Default::default()
        })
        .run(&g, 1)
        .unwrap();
        assert_eq!(out2.total_rounds(), math::alg2_rounds(k) + 4);
    }

    #[test]
    fn deterministic_for_seed() {
        let g = generators::petersen();
        let p = Pipeline::new(PipelineConfig::default());
        let a = p.run(&g, 99).unwrap();
        let b = p.run(&g, 99).unwrap();
        let av: Vec<bool> = g.node_ids().map(|v| a.dominating_set.contains(v)).collect();
        let bv: Vec<bool> = g.node_ids().map(|v| b.dominating_set.contains(v)).collect();
        assert_eq!(av, bv);
        assert_eq!(a.fractional.values(), b.fractional.values());
    }

    #[test]
    fn expected_ratio_within_theorem6() {
        // Statistical check on a structured graph with known optimum:
        // star-of-cliques(4, 5) has γ = 4 (one per clique).
        let g = generators::star_of_cliques(4, 5);
        let opt = 4.0;
        let k = 2;
        let trials = 60;
        let mut total = 0usize;
        for seed in 0..trials {
            let out = Pipeline::new(PipelineConfig {
                k,
                ..Default::default()
            })
            .run(&g, seed)
            .unwrap();
            assert!(out.dominating_set.is_dominating(&g));
            total += out.dominating_set.len();
        }
        let mean = total as f64 / trials as f64;
        let bound = math::theorem6_bound(k, g.max_degree()) * opt;
        assert!(mean <= bound, "mean {mean} > Theorem 6 bound {bound}");
    }

    #[test]
    fn metrics_compose() {
        let g = generators::cycle(12);
        let out = Pipeline::new(PipelineConfig::default()).run(&g, 5).unwrap();
        assert_eq!(
            out.total_messages(),
            out.fractional_metrics.messages + out.rounding_metrics.messages
        );
        assert!(out.total_bits() > 0);
        assert!(out.max_message_bits() > 0);
    }

    #[test]
    fn invalid_k_rejected() {
        let g = generators::path(4);
        assert!(Pipeline::new(PipelineConfig {
            k: 0,
            ..Default::default()
        })
        .run(&g, 0)
        .is_err());
    }
}
