//! Runtime verification of the paper's loop invariants, and the Figure-1
//! covering cascade trace.
//!
//! The correctness and approximation proofs of Algorithms 2 and 3 rest on
//! loop invariants (Lemmas 2–7). Rather than trusting the implementation,
//! this module attaches an [`Observer`] to a run and checks each invariant
//! at the program point where the paper asserts it:
//!
//! | Lemma | Claim | Checked |
//! |-------|-------|---------|
//! | 2 / 5 | `δ̃(v) ≤ (Δ+1)^{(ℓ+1)/k}` at the start of outer iteration ℓ | first inner iteration of each outer iteration |
//! | 3 / 6 | `a(v) ≤ (Δ+1)^{(m+1)/k}` before the x-assignment | every inner iteration |
//! | 4     | `z_i ≤ (Δ+1)^{−(ℓ−1)/k}` at the end of outer iteration ℓ | every outer iteration (Algorithm 2) |
//! | 7     | `z_i ≤ (1+(Δ+1)^{1/k})/γ⁽¹⁾(v)^{ℓ/(ℓ+1)}` at line 23 | every outer iteration (Algorithm 3) |
//!
//! The `z_i` are the proof's bookkeeping variables: every x-increase is
//! distributed equally over the currently-white closed neighbors. The
//! observer maintains them exactly as the proofs prescribe.
//!
//! The same observer records the **covering cascade** of Figure 1: per
//! inner iteration, the largest active-neighbor count `a(v)` among white
//! nodes against the staircase bound `(Δ+1)^{(m+1)/k}`, plus how many nodes
//! were covered in that step.

use std::fmt;

use kw_graph::{CsrGraph, NodeId};
use kw_sim::{Engine, EngineConfig, Observer};

use crate::alg2::{Alg2Protocol, Alg2Run, Alg2State};
use crate::alg3::{Alg3Protocol, Alg3Run, Alg3State};
use crate::math::frac_pow;
use crate::CoreError;

/// Numerical slack for invariant comparisons (the quantities involved are
/// integers compared against `powf` results).
const TOL: f64 = 1e-6;

/// One inner-iteration record of the covering cascade (Figure 1).
#[derive(Clone, Copy, Debug)]
pub struct CascadeStep {
    /// Outer iteration index ℓ.
    pub l: u32,
    /// Inner iteration index m.
    pub m: u32,
    /// The staircase bound `(Δ+1)^{(m+1)/k}` of Lemma 3 / Lemma 6.
    pub a_bound: f64,
    /// Largest `a(v)` over white nodes this iteration.
    pub max_a: u64,
    /// Number of active nodes.
    pub active_nodes: usize,
    /// White (uncovered) nodes at the start of the iteration.
    pub white_nodes: usize,
    /// Nodes covered during the iteration.
    pub newly_gray: usize,
    /// `Σ x` after the iteration's assignments.
    pub x_total: f64,
}

/// The full cascade of a run, in schedule order.
#[derive(Clone, Debug, Default)]
pub struct CascadeTrace {
    /// One entry per inner iteration.
    pub steps: Vec<CascadeStep>,
}

impl fmt::Display for CascadeTrace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "  ℓ  m   a-bound    max a(v)  active   white  newly-gray      Σx"
        )?;
        for s in &self.steps {
            writeln!(
                f,
                "{:>3} {:>2} {:>9.2} {:>11} {:>7} {:>7} {:>11} {:>7.3}",
                s.l,
                s.m,
                s.a_bound,
                s.max_a,
                s.active_nodes,
                s.white_nodes,
                s.newly_gray,
                s.x_total
            )?;
        }
        Ok(())
    }
}

/// Result of an invariant-checked run.
#[derive(Clone, Debug, Default)]
pub struct InvariantReport {
    /// Human-readable descriptions of every violated invariant (empty on a
    /// correct run).
    pub violations: Vec<String>,
    /// The Figure-1 covering cascade.
    pub cascade: CascadeTrace,
}

impl InvariantReport {
    /// Whether no invariant was violated.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Observer checking Lemmas 2–4 on an Algorithm 2 run.
pub struct Alg2Checker<'g> {
    g: &'g CsrGraph,
    k: u32,
    d1: f64,
    z: Vec<f64>,
    prev_x: Vec<f64>,
    prev_gray: Vec<bool>,
    report: InvariantReport,
}

impl<'g> Alg2Checker<'g> {
    /// Creates a checker for a `k`-parameterized run on `g`.
    pub fn new(g: &'g CsrGraph, k: u32) -> Self {
        Alg2Checker {
            g,
            k,
            d1: g.max_degree() as f64 + 1.0,
            z: vec![0.0; g.len()],
            prev_x: vec![0.0; g.len()],
            prev_gray: vec![false; g.len()],
            report: InvariantReport::default(),
        }
    }

    /// Consumes the checker, returning its report.
    pub fn into_report(self) -> InvariantReport {
        self.report
    }

    /// Processes the post-round state of every node (round structure:
    /// even = x-step, odd = color-step).
    pub fn ingest(&mut self, round: usize, states: &[Alg2State]) {
        let t = (round / 2) as u32;
        let l = self.k - 1 - t / self.k;
        let m = self.k - 1 - t % self.k;
        if round.is_multiple_of(2) {
            if t.is_multiple_of(self.k) {
                if t > 0 {
                    // Outer iteration l+1 just completed: Lemma 4.
                    self.check_lemma4(l + 1);
                    self.z.iter_mut().for_each(|z| *z = 0.0);
                }
                // Lemma 2 at the start of outer iteration l.
                let bound = frac_pow(self.d1, i64::from(l) + 1, self.k);
                for (i, s) in states.iter().enumerate() {
                    if s.delta_tilde as f64 > bound + TOL {
                        self.report.violations.push(format!(
                            "lemma 2: δ̃(v{i}) = {} > (Δ+1)^({}+1)/{} = {bound:.4} at ℓ={l}",
                            s.delta_tilde, l, self.k
                        ));
                    }
                }
            }
            // a(v) for white nodes; Lemma 3.
            let a_bound = frac_pow(self.d1, i64::from(m) + 1, self.k);
            let mut max_a = 0u64;
            for v in self.g.node_ids() {
                let i = v.index();
                if states[i].is_gray {
                    continue;
                }
                let a = self
                    .g
                    .closed_neighbors(v)
                    .filter(|u| states[u.index()].active)
                    .count() as u64;
                max_a = max_a.max(a);
                if a as f64 > a_bound + TOL {
                    self.report.violations.push(format!(
                        "lemma 3: a(v{i}) = {a} > (Δ+1)^({m}+1)/{} = {a_bound:.4} at ℓ={l}, m={m}",
                        self.k
                    ));
                }
            }
            // z-accounting: distribute x-increases over white closed
            // neighbors (the proof's bookkeeping).
            for v in self.g.node_ids() {
                let i = v.index();
                let inc = states[i].x - self.prev_x[i];
                if inc <= 0.0 {
                    continue;
                }
                let whites: Vec<NodeId> = self
                    .g
                    .closed_neighbors(v)
                    .filter(|u| !states[u.index()].is_gray)
                    .collect();
                if whites.is_empty() {
                    self.report.violations.push(format!(
                        "z-accounting: v{i} increased x by {inc:.6} with no white neighbors \
                         at ℓ={l}, m={m}"
                    ));
                    continue;
                }
                let share = inc / whites.len() as f64;
                for u in whites {
                    self.z[u.index()] += share;
                }
                self.prev_x[i] = states[i].x;
            }
            let white_nodes = states.iter().filter(|s| !s.is_gray).count();
            self.report.cascade.steps.push(CascadeStep {
                l,
                m,
                a_bound,
                max_a,
                active_nodes: states.iter().filter(|s| s.active).count(),
                white_nodes,
                newly_gray: 0,
                x_total: states.iter().map(|s| s.x).sum(),
            });
        } else {
            // Color step: attribute fresh coverings to the cascade.
            let newly: usize = states
                .iter()
                .zip(&self.prev_gray)
                .filter(|(s, &was)| s.is_gray && !was)
                .count();
            if let Some(step) = self.report.cascade.steps.last_mut() {
                step.newly_gray = newly;
            }
            for (i, s) in states.iter().enumerate() {
                self.prev_gray[i] = s.is_gray;
            }
            if t == self.k * self.k - 1 {
                // Final outer iteration (ℓ = 0) completed: Lemma 4.
                self.check_lemma4(0);
            }
        }
    }

    fn check_lemma4(&mut self, l: u32) {
        // z_i ≤ (Δ+1)^{−(ℓ−1)/k}.
        let bound = frac_pow(self.d1, 1 - i64::from(l), self.k);
        for (i, &z) in self.z.iter().enumerate() {
            if z > bound + TOL {
                self.report.violations.push(format!(
                    "lemma 4: z(v{i}) = {z:.6} > (Δ+1)^-({l}-1)/{} = {bound:.6} at end of ℓ={l}",
                    self.k
                ));
            }
        }
    }
}

impl Observer<Alg2Protocol> for Alg2Checker<'_> {
    fn after_round(&mut self, round: usize, nodes: &[Alg2Protocol]) {
        let states: Vec<Alg2State> = nodes.iter().map(Alg2Protocol::state).collect();
        self.ingest(round, &states);
    }
}

/// Runs Algorithm 2 with the Lemma 2–4 checker attached.
///
/// # Errors
///
/// Same as [`run_alg2`](crate::alg2::run_alg2).
pub fn run_alg2_checked(
    g: &CsrGraph,
    k: u32,
    engine: EngineConfig,
) -> Result<(Alg2Run, InvariantReport), CoreError> {
    crate::alg2::validate_k(k)?;
    let delta = g.max_degree();
    let mut checker = Alg2Checker::new(g, k);
    let report = Engine::new(g, engine, |info| Alg2Protocol::new(k, delta, info.degree))
        .run_with_observer(&mut checker)
        .map_err(CoreError::Sim)?;
    let mut xs = Vec::with_capacity(g.len());
    let mut gray = Vec::with_capacity(g.len());
    for out in &report.outputs {
        xs.push(out.x);
        gray.push(out.is_gray);
    }
    let run = Alg2Run {
        x: kw_graph::FractionalAssignment::from_values(xs),
        gray,
        metrics: report.metrics,
        node_messages: report.node_messages,
    };
    Ok((run, checker.into_report()))
}

/// Observer checking Lemmas 5–7 on an Algorithm 3 run.
pub struct Alg3Checker<'g> {
    g: &'g CsrGraph,
    k: u32,
    d1: f64,
    /// Effective `γ⁽¹⁾` for the current outer iteration (`δ⁽¹⁾+1` for the
    /// first, the protocol's exchanged value afterwards).
    gamma1: Vec<u64>,
    z: Vec<f64>,
    prev_x: Vec<f64>,
    prev_gray: Vec<bool>,
    report: InvariantReport,
}

impl<'g> Alg3Checker<'g> {
    /// Creates a checker for a `k`-parameterized run on `g`.
    pub fn new(g: &'g CsrGraph, k: u32) -> Self {
        Alg3Checker {
            g,
            k,
            d1: g.max_degree() as f64 + 1.0,
            gamma1: g.node_ids().map(|v| g.delta1(v) as u64 + 1).collect(),
            z: vec![0.0; g.len()],
            prev_x: vec![0.0; g.len()],
            prev_gray: vec![false; g.len()],
            report: InvariantReport::default(),
        }
    }

    /// Consumes the checker, returning its report.
    pub fn into_report(self) -> InvariantReport {
        self.report
    }

    /// Processes the post-round state of every node.
    pub fn ingest(&mut self, states: &[Alg3State]) {
        let Some(&(l, m, step)) = states.iter().find_map(|s| s.position.as_ref()) else {
            return; // setup rounds
        };
        match step {
            0 => {
                if m == self.k - 1 {
                    // Start of outer iteration ℓ: Lemma 5, refresh γ⁽¹⁾,
                    // close out Lemma 7 for the previous iteration is done
                    // in step 3 below.
                    if l < self.k - 1 {
                        for (i, s) in states.iter().enumerate() {
                            self.gamma1[i] = s.gamma1;
                        }
                    }
                    let bound = frac_pow(self.d1, i64::from(l) + 1, self.k);
                    for (i, s) in states.iter().enumerate() {
                        if s.delta_tilde as f64 > bound + TOL {
                            self.report.violations.push(format!(
                                "lemma 5: δ̃(v{i}) = {} > (Δ+1)^({l}+1)/{} = {bound:.4}",
                                s.delta_tilde, self.k
                            ));
                        }
                    }
                }
            }
            1 => {
                // a-values computed: Lemma 6 + cascade record.
                let a_bound = frac_pow(self.d1, i64::from(m) + 1, self.k);
                let mut max_a = 0u64;
                for (i, s) in states.iter().enumerate() {
                    max_a = max_a.max(s.a_count);
                    if s.a_count as f64 > a_bound + TOL {
                        self.report.violations.push(format!(
                            "lemma 6: a(v{i}) = {} > (Δ+1)^({m}+1)/{} = {a_bound:.4} at ℓ={l}",
                            s.a_count, self.k
                        ));
                    }
                }
                self.report.cascade.steps.push(CascadeStep {
                    l,
                    m,
                    a_bound,
                    max_a,
                    active_nodes: states.iter().filter(|s| s.active).count(),
                    white_nodes: states.iter().filter(|s| !s.is_gray).count(),
                    newly_gray: 0,
                    x_total: states.iter().map(|s| s.x).sum(),
                });
            }
            2 => {
                // x raised: z-accounting (colors are still pre-recolor).
                for v in self.g.node_ids() {
                    let i = v.index();
                    let inc = states[i].x - self.prev_x[i];
                    if inc <= 0.0 {
                        continue;
                    }
                    let whites: Vec<usize> = self
                        .g
                        .closed_neighbors(v)
                        .map(NodeId::index)
                        .filter(|&u| !states[u].is_gray)
                        .collect();
                    if whites.is_empty() {
                        self.report.violations.push(format!(
                            "z-accounting: v{i} increased x by {inc:.6} with no white \
                             neighbors at ℓ={l}, m={m}"
                        ));
                        continue;
                    }
                    let share = inc / whites.len() as f64;
                    for u in whites {
                        self.z[u] += share;
                    }
                    self.prev_x[i] = states[i].x;
                }
                if let Some(step_rec) = self.report.cascade.steps.last_mut() {
                    step_rec.x_total = states.iter().map(|s| s.x).sum();
                }
            }
            _ => {
                // Colors updated: cascade bookkeeping; end-of-outer-round
                // Lemma 7 check.
                let newly: usize = states
                    .iter()
                    .zip(&self.prev_gray)
                    .filter(|(s, &was)| s.is_gray && !was)
                    .count();
                if let Some(step_rec) = self.report.cascade.steps.last_mut() {
                    step_rec.newly_gray = newly;
                }
                for (i, s) in states.iter().enumerate() {
                    self.prev_gray[i] = s.is_gray;
                }
                if m == 0 {
                    self.check_lemma7(l);
                    self.z.iter_mut().for_each(|z| *z = 0.0);
                }
            }
        }
    }

    fn check_lemma7(&mut self, l: u32) {
        let num = 1.0 + frac_pow(self.d1, 1, self.k);
        for (i, &z) in self.z.iter().enumerate() {
            let g1 = self.gamma1[i] as f64;
            let bound = num / g1.powf(l as f64 / (l as f64 + 1.0));
            if z > bound + TOL {
                self.report.violations.push(format!(
                    "lemma 7: z(v{i}) = {z:.6} > (1+(Δ+1)^(1/{}))/γ¹^({l}/{}) = {bound:.6}",
                    self.k,
                    l + 1
                ));
            }
        }
    }
}

impl Observer<Alg3Protocol> for Alg3Checker<'_> {
    fn after_round(&mut self, _round: usize, nodes: &[Alg3Protocol]) {
        let states: Vec<Alg3State> = nodes.iter().map(Alg3Protocol::state).collect();
        self.ingest(&states);
    }
}

/// Runs Algorithm 3 with the Lemma 5–7 checker attached.
///
/// # Errors
///
/// Same as [`run_alg3`](crate::alg3::run_alg3).
pub fn run_alg3_checked(
    g: &CsrGraph,
    k: u32,
    engine: EngineConfig,
) -> Result<(Alg3Run, InvariantReport), CoreError> {
    crate::alg2::validate_k(k)?;
    let mut checker = Alg3Checker::new(g, k);
    let report = Engine::new(g, engine, |info| Alg3Protocol::new(k, info.degree))
        .run_with_observer(&mut checker)
        .map_err(CoreError::Sim)?;
    let mut xs = Vec::with_capacity(g.len());
    let mut gray = Vec::with_capacity(g.len());
    let mut delta2 = Vec::with_capacity(g.len());
    for out in &report.outputs {
        xs.push(out.x);
        gray.push(out.is_gray);
        delta2.push(out.delta2);
    }
    let run = Alg3Run {
        x: kw_graph::FractionalAssignment::from_values(xs),
        gray,
        delta2,
        metrics: report.metrics,
        node_messages: report.node_messages,
    };
    Ok((run, checker.into_report()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use kw_graph::generators;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn assert_clean_alg2(g: &CsrGraph, k: u32) -> InvariantReport {
        let (run, report) = run_alg2_checked(g, k, EngineConfig::default()).unwrap();
        assert!(run.x.is_feasible(g));
        assert!(
            report.is_clean(),
            "alg2 k={k} violations on {g:?}:\n{}",
            report.violations.join("\n")
        );
        report
    }

    fn assert_clean_alg3(g: &CsrGraph, k: u32) -> InvariantReport {
        let (run, report) = run_alg3_checked(g, k, EngineConfig::default()).unwrap();
        assert!(run.x.is_feasible(g));
        assert!(
            report.is_clean(),
            "alg3 k={k} violations on {g:?}:\n{}",
            report.violations.join("\n")
        );
        report
    }

    #[test]
    fn alg2_invariants_hold_on_fixed_families() {
        for k in [1u32, 2, 3, 4] {
            assert_clean_alg2(&generators::star(12), k);
            assert_clean_alg2(&generators::cycle(15), k);
            assert_clean_alg2(&generators::petersen(), k);
            assert_clean_alg2(&generators::star_of_cliques(3, 6), k);
            assert_clean_alg2(&generators::grid(4, 5), k);
        }
    }

    #[test]
    fn alg3_invariants_hold_on_fixed_families() {
        for k in [1u32, 2, 3, 4] {
            assert_clean_alg3(&generators::star(12), k);
            assert_clean_alg3(&generators::cycle(15), k);
            assert_clean_alg3(&generators::petersen(), k);
            assert_clean_alg3(&generators::star_of_cliques(3, 6), k);
            assert_clean_alg3(&generators::grid(4, 5), k);
        }
    }

    #[test]
    fn invariants_hold_on_random_graphs() {
        let mut rng = SmallRng::seed_from_u64(40);
        for k in [2u32, 3] {
            for _ in 0..5 {
                let g = generators::gnp(50, 0.1, &mut rng);
                assert_clean_alg2(&g, k);
                assert_clean_alg3(&g, k);
            }
        }
    }

    #[test]
    fn cascade_has_one_step_per_inner_iteration() {
        let k = 3;
        let report = assert_clean_alg2(&generators::grid(5, 5), k);
        assert_eq!(report.cascade.steps.len(), (k * k) as usize);
        let report3 = assert_clean_alg3(&generators::grid(5, 5), k);
        assert_eq!(report3.cascade.steps.len(), (k * k) as usize);
    }

    #[test]
    fn cascade_max_a_respects_staircase() {
        // This IS Figure 1: max a(v) never exceeds (Δ+1)^{(m+1)/k}.
        let report = assert_clean_alg2(&generators::star_of_cliques(4, 8), 4);
        for step in &report.cascade.steps {
            assert!(step.max_a as f64 <= step.a_bound + TOL);
        }
        // And the display renders a table.
        let shown = report.cascade.to_string();
        assert!(shown.contains("a-bound"));
    }

    #[test]
    fn cascade_x_total_is_monotone() {
        let report = assert_clean_alg3(&generators::grid(6, 6), 3);
        let mut last = 0.0;
        for s in &report.cascade.steps {
            assert!(s.x_total >= last - 1e-12);
            last = s.x_total;
        }
    }

    #[test]
    fn checker_detects_fabricated_lemma3_violation() {
        // Feed the Alg2 checker a state where far too many nodes are
        // active in the last inner iteration (m = 0, bound (Δ+1)^{1/k}).
        let g = generators::complete(9); // Δ+1 = 9
        let k = 2;
        let mut checker = Alg2Checker::new(&g, k);
        let states: Vec<Alg2State> = (0..9)
            .map(|_| Alg2State {
                x: 0.0,
                is_gray: false,
                delta_tilde: 9,
                active: true, // all 9 active: a(v) = 9 > 9^{1/2} = 3
                iteration: 0,
            })
            .collect();
        // Round 2·(k·(k−1)) corresponds to ℓ=0, m=k−1... use the last
        // iteration t = k²−1 (ℓ=0, m=0) at even round 2t.
        let t = k * k - 1;
        checker.ingest(2 * t as usize, &states);
        let report = checker.into_report();
        assert!(
            report.violations.iter().any(|v| v.contains("lemma 3")),
            "expected a lemma 3 violation, got {:?}",
            report.violations
        );
    }

    #[test]
    fn checker_detects_fabricated_lemma2_violation() {
        let g = generators::complete(9);
        let k = 3;
        let mut checker = Alg2Checker::new(&g, k);
        // At the start of outer iteration ℓ=1 (t = k·(k−1−1) = 3... the
        // first even round with t % k == 0 and t > 0 is t = k), the bound
        // is (Δ+1)^{(1+1)/3} = 9^{2/3} ≈ 4.33; fabricate δ̃ = 9.
        let states: Vec<Alg2State> = (0..9)
            .map(|_| Alg2State {
                x: 0.0,
                is_gray: false,
                delta_tilde: 9,
                active: false,
                iteration: k,
            })
            .collect();
        checker.ingest(2 * k as usize, &states);
        let report = checker.into_report();
        assert!(report.violations.iter().any(|v| v.contains("lemma 2")));
    }
}
