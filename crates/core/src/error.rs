use std::error::Error;
use std::fmt;

use kw_sim::SimError;

/// Errors produced by the Kuhn–Wattenhofer algorithm runners.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum CoreError {
    /// A configuration parameter is invalid (e.g. `k = 0`).
    InvalidConfig {
        /// Human-readable reason.
        reason: String,
    },
    /// An input vector does not match the graph.
    InputMismatch {
        /// Expected length (graph size).
        expected: usize,
        /// Provided length.
        got: usize,
    },
    /// The underlying simulation failed.
    Sim(SimError),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::InvalidConfig { reason } => write!(f, "invalid configuration: {reason}"),
            CoreError::InputMismatch { expected, got } => {
                write!(
                    f,
                    "input vector has length {got} but the graph has {expected} nodes"
                )
            }
            CoreError::Sim(e) => write!(f, "simulation failed: {e}"),
        }
    }
}

impl Error for CoreError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CoreError::Sim(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SimError> for CoreError {
    fn from(e: SimError) -> Self {
        CoreError::Sim(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = CoreError::InvalidConfig {
            reason: "k must be positive".into(),
        };
        assert!(e.to_string().contains("k must be positive"));
        let e = CoreError::InputMismatch {
            expected: 4,
            got: 2,
        };
        assert!(e.to_string().contains('4') && e.to_string().contains('2'));
        let e: CoreError = SimError::MaxRoundsExceeded { limit: 3 }.into();
        assert!(e.to_string().contains("simulation failed"));
        assert!(Error::source(&e).is_some());
    }

    #[test]
    fn send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CoreError>();
    }
}
