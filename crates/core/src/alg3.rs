//! Algorithm 3: distributed `LP_MDS` approximation **without** knowledge
//! of the global maximum degree `Δ`.
//!
//! Instead of thresholds `(Δ+1)^{ℓ/k}`, each node uses its *local* view:
//! `γ⁽²⁾(v)`, the maximum dynamic degree within distance 2 at the start of
//! the current outer iteration, and activity condition
//! `δ̃(v) ≥ γ⁽²⁾(v)^{ℓ/(ℓ+1)}`. Active nodes raise
//! `x := max(x, a⁽¹⁾(v)^{−m/(m+1)})` where `a⁽¹⁾(v)` is the largest
//! active-neighbor count in the closed neighborhood. The price of not
//! knowing `Δ` is a slightly worse ratio,
//! `k((Δ+1)^{1/k} + (Δ+1)^{2/k})` (Theorem 5), and twice the rounds:
//! 4 messages per inner iteration, `4k² + 2k` rounds in this
//! implementation (`4k² + O(k)` in the paper's statement).
//!
//! # Example
//!
//! ```
//! use kw_graph::generators;
//! use kw_core::alg3::run_alg3;
//! use kw_sim::EngineConfig;
//!
//! let g = generators::grid(4, 4);
//! let run = run_alg3(&g, 2, EngineConfig::default())?;
//! assert!(run.x.is_feasible(&g));
//! assert_eq!(run.metrics.rounds, 4 * 4 + 2 * 2); // 4k² + 2k
//! # Ok::<(), kw_core::CoreError>(())
//! ```

use kw_graph::{CsrGraph, FractionalAssignment, COVERAGE_TOLERANCE};
use kw_sim::wire::{self, BitReader, BitWriter, WireEncode};
use kw_sim::{Ctx, Engine, EngineConfig, Protocol, RunMetrics, Status};

use crate::alg2::validate_k;
use crate::CoreError;

/// Wire form of an Algorithm 3 x-value: `x = a^{−m/(m+1)}`.
///
/// Sending the defining integer pair instead of a raw float keeps messages
/// at `O(log Δ + log k)` bits and makes the receiver's reconstruction
/// bit-identical to the sender's value.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct XCode {
    /// The active-neighbor maximum `a⁽¹⁾ ≥ 1` at assignment time.
    pub a: u64,
    /// The inner-iteration index `m`.
    pub m: u32,
}

impl XCode {
    /// The x-value this code denotes.
    pub fn value(self) -> f64 {
        (self.a as f64).powf(-(self.m as f64) / (self.m as f64 + 1.0))
    }
}

/// Messages exchanged by Algorithm 3. The meaning of `Uint` depends on the
/// (globally synchronized) schedule position: degree, `δ⁽¹⁾`, `a(v)`,
/// `δ̃`, or `γ⁽¹⁾`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Alg3Msg {
    /// An unsigned quantity (see above).
    Uint(u64),
    /// Presence message: "I am active this iteration".
    Active,
    /// The sender's current x-value (`None` = 0).
    X(Option<XCode>),
    /// Whether the sender is gray.
    Color(bool),
}

impl WireEncode for Alg3Msg {
    fn encode(&self, w: &mut BitWriter) {
        match self {
            Alg3Msg::Uint(v) => {
                w.write_bits(0b00, 2);
                w.write_gamma(*v);
            }
            Alg3Msg::Active => w.write_bits(0b01, 2),
            Alg3Msg::X(code) => {
                w.write_bits(0b10, 2);
                match code {
                    None => w.write_gamma(0),
                    Some(XCode { a, m }) => {
                        w.write_gamma(*a);
                        w.write_gamma(u64::from(*m));
                    }
                }
            }
            Alg3Msg::Color(gray) => {
                w.write_bits(0b11, 2);
                w.write_bit(*gray);
            }
        }
    }

    fn decode(r: &mut BitReader<'_>) -> Option<Self> {
        Some(match r.read_bits(2)? {
            0b00 => Alg3Msg::Uint(r.read_gamma()?),
            0b01 => Alg3Msg::Active,
            0b10 => match r.read_gamma()? {
                0 => Alg3Msg::X(None),
                a => {
                    let m = u32::try_from(r.read_gamma()?).ok()?;
                    Alg3Msg::X(Some(XCode { a, m }))
                }
            },
            _ => Alg3Msg::Color(r.read_bit()?),
        })
    }

    fn encoded_bits(&self) -> usize {
        match self {
            Alg3Msg::Uint(v) => 2 + wire::gamma_len(*v),
            Alg3Msg::Active => 2,
            Alg3Msg::X(None) => 2 + wire::gamma_len(0),
            Alg3Msg::X(Some(XCode { a, m })) => {
                2 + wire::gamma_len(*a) + wire::gamma_len(u64::from(*m))
            }
            Alg3Msg::Color(_) => 3,
        }
    }
}

/// Which message kind the next `IterStep0` expects.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Entering {
    /// Setup: δ⁽¹⁾ values arriving; compute `γ⁽²⁾ = δ⁽²⁾ + 1`.
    FromSetup,
    /// Mid-outer-iteration: colors arriving; update `δ̃`.
    FromColor,
    /// New outer iteration: `γ⁽¹⁾` values arriving; compute `γ⁽²⁾`.
    FromGamma1,
}

/// Protocol phase (one per synchronous round).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Phase {
    SendDegree,
    SendDelta1,
    IterStep0 { l: u32, m: u32, entering: Entering },
    IterStep1 { l: u32, m: u32 },
    IterStep2 { l: u32, m: u32 },
    IterStep3 { l: u32, m: u32 },
    OuterA { l: u32 },
    OuterB { l: u32 },
    Done,
}

/// Read-only view of a node's Algorithm 3 state, for observers.
#[derive(Clone, Copy, Debug)]
pub struct Alg3State {
    /// Current fractional value.
    pub x: f64,
    /// Whether the node is covered.
    pub is_gray: bool,
    /// Current dynamic degree `δ̃`.
    pub delta_tilde: usize,
    /// `γ⁽²⁾` for the current outer iteration.
    pub gamma2: u64,
    /// `γ⁽¹⁾` computed at the most recent outer-iteration boundary (0 until
    /// the first boundary; the first outer iteration's effective γ⁽¹⁾ is
    /// `δ⁽¹⁾+1`).
    pub gamma1: u64,
    /// Whether the node is active in the current inner iteration.
    pub active: bool,
    /// Last computed active-neighbor count `a(v)`.
    pub a_count: u64,
    /// Last computed maximum `a⁽¹⁾(v)`.
    pub a1: u64,
    /// Position `(ℓ, m, step)` if inside an inner iteration.
    pub position: Option<(u32, u32, u8)>,
}

/// Per-node output of Algorithm 3.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Alg3Output {
    /// Final fractional value `x_i`.
    pub x: f64,
    /// Final color.
    pub is_gray: bool,
    /// The `δ⁽²⁾` computed during setup (reused by the pipeline's rounding
    /// stage, saving it two rounds).
    pub delta2: u64,
}

/// The Algorithm 3 node program. Uses only local information.
#[derive(Clone, Debug)]
pub struct Alg3Protocol {
    k: u32,
    degree: u64,
    phase: Phase,
    /// The phase most recently executed (what observers should attribute
    /// the current state to).
    executed: Phase,
    delta1: u64,
    delta2: u64,
    gamma1: u64,
    gamma2: u64,
    delta_tilde: usize,
    x: f64,
    x_code: Option<XCode>,
    is_gray: bool,
    active: bool,
    a_count: u64,
    a1: u64,
}

impl Alg3Protocol {
    /// Creates the program for one node of degree `degree`.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` (validated centrally by [`run_alg3`]).
    pub fn new(k: u32, degree: usize) -> Self {
        assert!(k >= 1, "k must be positive");
        Alg3Protocol {
            k,
            degree: degree as u64,
            phase: Phase::SendDegree,
            executed: Phase::SendDegree,
            delta1: degree as u64,
            delta2: degree as u64,
            gamma1: 0,
            gamma2: degree as u64 + 1,
            delta_tilde: degree + 1,
            x: 0.0,
            x_code: None,
            is_gray: false,
            active: false,
            a_count: 0,
            a1: 0,
        }
    }

    /// Observer snapshot of the node's state. The `position` refers to the
    /// phase that *just executed* (set at the top of `on_round`).
    pub fn state(&self) -> Alg3State {
        let position = match self.executed {
            Phase::IterStep0 { l, m, .. } => Some((l, m, 0)),
            Phase::IterStep1 { l, m } => Some((l, m, 1)),
            Phase::IterStep2 { l, m } => Some((l, m, 2)),
            Phase::IterStep3 { l, m } => Some((l, m, 3)),
            _ => None,
        };
        Alg3State {
            x: self.x,
            is_gray: self.is_gray,
            delta_tilde: self.delta_tilde,
            gamma2: self.gamma2,
            gamma1: self.gamma1,
            active: self.active,
            a_count: self.a_count,
            a1: self.a1,
            position,
        }
    }

    /// The activity threshold `γ⁽²⁾(v)^{ℓ/(ℓ+1)}`.
    fn threshold(&self, l: u32) -> f64 {
        (self.gamma2 as f64).powf(l as f64 / (l as f64 + 1.0))
    }

    /// The node's `δ⁽²⁾` learned during setup (valid after the setup
    /// rounds; the composite protocol reuses it for the rounding stage).
    pub fn delta2(&self) -> u64 {
        self.delta2
    }

    fn max_uint<'m>(inbox: impl Iterator<Item = &'m Alg3Msg>, own: u64) -> u64 {
        let mut best = own;
        // Honest lock-step senders never mix variants; any other arm is
        // byzantine corruption that happened to decode — garbage, dropped.
        for msg in inbox {
            if let Alg3Msg::Uint(v) = msg {
                best = best.max(*v);
            }
        }
        best
    }

    fn count_white<'m>(&self, inbox: impl Iterator<Item = &'m Alg3Msg>) -> usize {
        let mut white = usize::from(!self.is_gray);
        for msg in inbox {
            // Non-Color arms are byzantine garbage (see `max_uint`).
            if let Alg3Msg::Color(gray) = msg {
                white += usize::from(!gray);
            }
        }
        white
    }

    /// Executes one synchronous step of the state machine over a raw
    /// inbox, returning the next status and the (at most one) broadcast to
    /// send. This is the engine-independent core: the [`Protocol`] impl
    /// and the composite Theorem-6 protocol both delegate here.
    pub fn step<'m>(
        &mut self,
        inbox: impl Iterator<Item = &'m Alg3Msg> + Clone,
    ) -> (Status, Option<Alg3Msg>) {
        self.executed = self.phase;
        match self.phase {
            Phase::SendDegree => {
                self.phase = Phase::SendDelta1;
                (Status::Running, Some(Alg3Msg::Uint(self.degree)))
            }
            Phase::SendDelta1 => {
                self.delta1 = Self::max_uint(inbox, self.degree);
                self.phase = Phase::IterStep0 {
                    l: self.k - 1,
                    m: self.k - 1,
                    entering: Entering::FromSetup,
                };
                (Status::Running, Some(Alg3Msg::Uint(self.delta1)))
            }
            Phase::IterStep0 { l, m, entering } => {
                match entering {
                    Entering::FromSetup => {
                        self.delta2 = Self::max_uint(inbox, self.delta1);
                        self.gamma2 = self.delta2 + 1;
                    }
                    Entering::FromColor => {
                        self.delta_tilde = self.count_white(inbox);
                    }
                    Entering::FromGamma1 => {
                        self.gamma2 = Self::max_uint(inbox, self.gamma1);
                    }
                }
                // δ̃ ≥ 1 guards the degenerate γ⁽²⁾ = 0 case (everything
                // within distance 2 covered ⇒ threshold 0): a node with no
                // white closed neighbor must not activate — the paper
                // implicitly assumes this (a gray active node needs a white
                // neighbor for its weight to be distributable).
                self.active = self.delta_tilde >= 1 && self.delta_tilde as f64 >= self.threshold(l);
                self.phase = Phase::IterStep1 { l, m };
                (Status::Running, self.active.then_some(Alg3Msg::Active))
            }
            Phase::IterStep1 { l, m } => {
                let mut count = u64::from(self.active);
                for msg in inbox {
                    // Non-Active arms are byzantine garbage (see `max_uint`).
                    if msg == &Alg3Msg::Active {
                        count += 1;
                    }
                }
                self.a_count = if self.is_gray { 0 } else { count };
                self.phase = Phase::IterStep2 { l, m };
                (Status::Running, Some(Alg3Msg::Uint(self.a_count)))
            }
            Phase::IterStep2 { l, m } => {
                self.a1 = Self::max_uint(inbox, self.a_count);
                if self.active {
                    // On reliable links a¹ ≥ 1 (the node's own Active is
                    // counted by some neighbor); lost or corrupted
                    // messages can starve it to 0, which the max(1)
                    // below degrades gracefully.
                    let code = XCode {
                        a: self.a1.max(1),
                        m,
                    };
                    let candidate = code.value();
                    if candidate > self.x {
                        self.x = candidate;
                        self.x_code = Some(code);
                    }
                }
                self.phase = Phase::IterStep3 { l, m };
                (Status::Running, Some(Alg3Msg::X(self.x_code)))
            }
            Phase::IterStep3 { l, m } => {
                let mut cover = self.x;
                for msg in inbox {
                    // Non-X arms are byzantine garbage (see `max_uint`).
                    if let Alg3Msg::X(code) = msg {
                        cover += code.map_or(0.0, XCode::value);
                    }
                }
                if cover >= 1.0 - COVERAGE_TOLERANCE {
                    self.is_gray = true;
                }
                if l == 0 && m == 0 {
                    self.phase = Phase::Done;
                    return (Status::Halted, None);
                }
                self.phase = if m > 0 {
                    Phase::IterStep0 {
                        l,
                        m: m - 1,
                        entering: Entering::FromColor,
                    }
                } else {
                    Phase::OuterA { l }
                };
                (Status::Running, Some(Alg3Msg::Color(self.is_gray)))
            }
            Phase::OuterA { l } => {
                self.delta_tilde = self.count_white(inbox);
                self.phase = Phase::OuterB { l };
                (
                    Status::Running,
                    Some(Alg3Msg::Uint(self.delta_tilde as u64)),
                )
            }
            Phase::OuterB { l } => {
                self.gamma1 = Self::max_uint(inbox, self.delta_tilde as u64);
                self.phase = Phase::IterStep0 {
                    l: l - 1,
                    m: self.k - 1,
                    entering: Entering::FromGamma1,
                };
                (Status::Running, Some(Alg3Msg::Uint(self.gamma1)))
            }
            Phase::Done => (Status::Halted, None),
        }
    }
}

/// Broadcast-only: [`Alg3Protocol::step`] emits at most one message per
/// round, staged via `Ctx::broadcast` into the engine's arena send plane
/// (the solo fast path; no send buffer is ever handed to this code).
impl Protocol for Alg3Protocol {
    type Msg = Alg3Msg;
    type Output = Alg3Output;

    fn on_round(&mut self, ctx: &mut Ctx<'_, Alg3Msg>) -> Status {
        let inbox = ctx.inbox_slice();
        let (status, send) = self.step(inbox.iter().map(|(_, m)| m));
        if let Some(msg) = send {
            ctx.broadcast(msg);
        }
        status
    }

    fn finish(self) -> Alg3Output {
        Alg3Output {
            x: self.x,
            is_gray: self.is_gray,
            delta2: self.delta2,
        }
    }
}

/// Result of a distributed Algorithm 3 run.
#[derive(Clone, Debug)]
pub struct Alg3Run {
    /// The computed feasible `LP_MDS` solution.
    pub x: FractionalAssignment,
    /// Final colors (all gray on a correct run).
    pub gray: Vec<bool>,
    /// Each node's `δ⁽²⁾` from the setup rounds.
    pub delta2: Vec<u64>,
    /// Communication metrics (`rounds == 4k² + 2k`).
    pub metrics: RunMetrics,
    /// Messages sent per node.
    pub node_messages: Vec<u64>,
}

/// Runs Algorithm 3 on `g` with parameter `k`. No global knowledge is
/// passed to the nodes.
///
/// # Errors
///
/// [`CoreError::InvalidConfig`] if `k == 0`; simulation errors are
/// propagated.
pub fn run_alg3(g: &CsrGraph, k: u32, engine: EngineConfig) -> Result<Alg3Run, CoreError> {
    validate_k(k)?;
    let report = Engine::new(g, engine, |info| Alg3Protocol::new(k, info.degree))
        .run()
        .map_err(CoreError::Sim)?;
    let mut xs = Vec::with_capacity(g.len());
    let mut gray = Vec::with_capacity(g.len());
    let mut delta2 = Vec::with_capacity(g.len());
    for out in &report.outputs {
        xs.push(out.x);
        gray.push(out.is_gray);
        delta2.push(out.delta2);
    }
    Ok(Alg3Run {
        x: FractionalAssignment::from_values(xs),
        gray,
        delta2,
        metrics: report.metrics,
        node_messages: report.node_messages,
    })
}

/// Centralized lockstep reference implementation of Algorithm 3 (same
/// schedule, same floating-point operations; see
/// [`reference_alg2`](crate::alg2::reference_alg2) for the rationale).
///
/// # Errors
///
/// [`CoreError::InvalidConfig`] if `k == 0`.
pub fn reference_alg3(g: &CsrGraph, k: u32) -> Result<FractionalAssignment, CoreError> {
    validate_k(k)?;
    let n = g.len();
    let mut x = vec![0.0f64; n];
    let mut x_code: Vec<Option<XCode>> = vec![None; n];
    let mut gray = vec![false; n];
    let mut delta_tilde: Vec<usize> = g.node_ids().map(|v| g.degree(v) + 1).collect();
    let mut gamma2: Vec<u64> = g.node_ids().map(|v| g.delta2(v) as u64 + 1).collect();
    for l in (0..k).rev() {
        for m in (0..k).rev() {
            let active: Vec<bool> = g
                .node_ids()
                .map(|v| {
                    let i = v.index();
                    let thr = (gamma2[i] as f64).powf(l as f64 / (l as f64 + 1.0));
                    delta_tilde[i] >= 1 && delta_tilde[i] as f64 >= thr
                })
                .collect();
            let a: Vec<u64> = g
                .node_ids()
                .map(|v| {
                    if gray[v.index()] {
                        0
                    } else {
                        g.closed_neighbors(v).filter(|u| active[u.index()]).count() as u64
                    }
                })
                .collect();
            let a1: Vec<u64> = g
                .node_ids()
                .map(|v| {
                    g.closed_neighbors(v)
                        .map(|u| a[u.index()])
                        .max()
                        .unwrap_or(0)
                })
                .collect();
            for v in g.node_ids() {
                let i = v.index();
                if active[i] {
                    let code = XCode { a: a1[i].max(1), m };
                    let candidate = code.value();
                    if candidate > x[i] {
                        x[i] = candidate;
                        x_code[i] = Some(code);
                    }
                }
            }
            let mut newly_gray = Vec::new();
            for v in g.node_ids() {
                if gray[v.index()] {
                    continue;
                }
                let cover: f64 = g.closed_neighbors(v).map(|u| x[u.index()]).sum();
                if cover >= 1.0 - COVERAGE_TOLERANCE {
                    newly_gray.push(v.index());
                }
            }
            for i in newly_gray {
                gray[i] = true;
            }
            for v in g.node_ids() {
                delta_tilde[v.index()] = g.closed_neighbors(v).filter(|u| !gray[u.index()]).count();
            }
        }
        if l > 0 {
            let gamma1: Vec<u64> = g
                .node_ids()
                .map(|v| {
                    g.closed_neighbors(v)
                        .map(|u| delta_tilde[u.index()] as u64)
                        .max()
                        .unwrap_or(0)
                })
                .collect();
            for v in g.node_ids() {
                gamma2[v.index()] = g
                    .closed_neighbors(v)
                    .map(|u| gamma1[u.index()])
                    .max()
                    .unwrap_or(0);
            }
        }
    }
    Ok(FractionalAssignment::from_values(x))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::math;
    use kw_graph::generators;
    use kw_sim::wire::roundtrip;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn check_graph(g: &CsrGraph, k: u32) -> Alg3Run {
        let run = run_alg3(g, k, EngineConfig::default()).unwrap();
        assert!(run.x.is_feasible(g), "infeasible x for k={k} on {g:?}");
        assert!(run.gray.iter().all(|&c| c), "all nodes must end gray");
        assert_eq!(
            run.metrics.rounds,
            math::alg3_rounds(k),
            "round count (Theorem 5)"
        );
        run
    }

    #[test]
    fn message_roundtrip() {
        for msg in [
            Alg3Msg::Uint(0),
            Alg3Msg::Uint(12345),
            Alg3Msg::Active,
            Alg3Msg::X(None),
            Alg3Msg::X(Some(XCode { a: 17, m: 3 })),
            Alg3Msg::Color(true),
            Alg3Msg::Color(false),
        ] {
            assert_eq!(roundtrip(&msg), Some(msg.clone()));
        }
        assert_eq!(Alg3Msg::Active.encoded_bits(), 2);
        assert_eq!(Alg3Msg::Color(false).encoded_bits(), 3);
    }

    #[test]
    fn xcode_values() {
        assert_eq!(XCode { a: 5, m: 0 }.value(), 1.0);
        let v = XCode { a: 4, m: 1 }.value(); // 4^(-1/2) = 0.5
        assert!((v - 0.5).abs() < 1e-12);
    }

    #[test]
    fn feasible_on_fixed_families() {
        for k in [1u32, 2, 3] {
            check_graph(&generators::star(10), k);
            check_graph(&generators::cycle(12), k);
            check_graph(&generators::petersen(), k);
            check_graph(&generators::grid(4, 5), k);
            check_graph(&generators::star_of_cliques(3, 5), k);
        }
    }

    #[test]
    fn isolated_and_empty() {
        let g = CsrGraph::empty(3);
        let run = check_graph(&g, 2);
        assert!(run.x.values().iter().all(|&x| (x - 1.0).abs() < 1e-12));
        let g0 = CsrGraph::empty(0);
        assert_eq!(
            run_alg3(&g0, 1, EngineConfig::default()).unwrap().x.len(),
            0
        );
    }

    #[test]
    fn k0_rejected() {
        let g = generators::path(2);
        assert!(run_alg3(&g, 0, EngineConfig::default()).is_err());
        assert!(reference_alg3(&g, 0).is_err());
    }

    #[test]
    fn distributed_matches_reference_exactly() {
        let mut rng = SmallRng::seed_from_u64(15);
        for k in [1u32, 2, 3, 4] {
            for g in [
                generators::gnp(50, 0.1, &mut rng),
                generators::unit_disk(50, 0.22, &mut rng),
                generators::barabasi_albert(50, 2, &mut rng),
                generators::star_of_cliques(4, 5),
                generators::caterpillar(6, 3),
            ] {
                let dist = run_alg3(&g, k, EngineConfig::default()).unwrap();
                let reference = reference_alg3(&g, k).unwrap();
                assert_eq!(
                    dist.x.values(),
                    reference.values(),
                    "k={k} mismatch on {g:?}"
                );
            }
        }
    }

    #[test]
    fn objective_respects_theorem5_bound_against_lp() {
        let mut rng = SmallRng::seed_from_u64(16);
        for k in [1u32, 2, 3] {
            for g in [
                generators::gnp(36, 0.12, &mut rng),
                generators::cycle(21),
                generators::star_of_cliques(3, 4),
            ] {
                let lp = kw_lp::domset::solve_lp_mds(&g).unwrap();
                let val = reference_alg3(&g, k).unwrap().objective();
                let bound = math::alg3_lp_bound(k, g.max_degree());
                assert!(
                    val <= bound * lp.value + 1e-6,
                    "k={k}: {val} > {bound} × {} on {g:?}",
                    lp.value
                );
            }
        }
    }

    #[test]
    fn delta2_output_matches_graph() {
        let g = generators::star_of_cliques(3, 4);
        let run = check_graph(&g, 2);
        for v in g.node_ids() {
            assert_eq!(run.delta2[v.index()], g.delta2(v) as u64);
        }
    }

    #[test]
    fn alg3_never_beats_alg2_by_definition_gap_only() {
        // Algorithm 3's x-values dominate Algorithm 2's in the worst case;
        // sanity: both feasible, alg3 objective within its (larger) bound.
        let g = generators::gnp(40, 0.15, &mut SmallRng::seed_from_u64(17));
        let a2 = crate::alg2::reference_alg2(&g, 3).unwrap().objective();
        let a3 = reference_alg3(&g, 3).unwrap().objective();
        let lp = kw_lp::domset::solve_lp_mds(&g).unwrap().value;
        assert!(a2 <= math::alg2_lp_bound(3, g.max_degree()) * lp + 1e-6);
        assert!(a3 <= math::alg3_lp_bound(3, g.max_degree()) * lp + 1e-6);
    }

    #[test]
    fn parallel_engine_identical() {
        let g = generators::gnp(70, 0.1, &mut SmallRng::seed_from_u64(18));
        let seq = run_alg3(
            &g,
            2,
            EngineConfig {
                threads: 1,
                ..Default::default()
            },
        )
        .unwrap();
        let par = run_alg3(
            &g,
            2,
            EngineConfig {
                threads: 4,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(seq.x.values(), par.x.values());
        assert_eq!(seq.metrics, par.metrics);
    }

    #[test]
    fn message_size_is_logarithmic() {
        let g = generators::star(200); // Δ = 199
        let run = check_graph(&g, 3);
        // Largest message: Uint(γ-scale value ≤ 200) ≈ 2 + 2·8+1 bits.
        assert!(
            run.metrics.max_message_bits <= 2 + 2 * 9 + 1,
            "max bits {}",
            run.metrics.max_message_bits
        );
    }

    mod proptests {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(24))]
            #[test]
            fn always_feasible(
                n in 1usize..32,
                p in 0.0f64..1.0,
                k in 1u32..5,
                seed in any::<u64>(),
            ) {
                let mut rng = SmallRng::seed_from_u64(seed);
                let g = generators::gnp(n, p, &mut rng);
                let x = reference_alg3(&g, k).unwrap();
                prop_assert!(x.is_feasible(&g));
                prop_assert!(x.values().iter().all(|&v| v <= 1.0 + 1e-12));
            }
        }
    }
}
