//! The paper's algorithms: constant-time distributed dominating set
//! approximation (Kuhn & Wattenhofer, PODC 2003).
//!
//! This crate implements the paper's entire algorithmic content as node
//! programs for the [`kw_sim`] LOCAL-model simulator, plus centralized
//! lockstep reference implementations used as test oracles:
//!
//! * [`alg2`] — `LP_MDS` approximation with known `Δ`:
//!   `k(Δ+1)^{2/k}`-approximation in `2k²` rounds (Theorem 4);
//! * [`alg3`] — `LP_MDS` approximation with **no global knowledge**:
//!   `k((Δ+1)^{1/k}+(Δ+1)^{2/k})`-approximation in `4k²+2k` rounds
//!   (Theorem 5);
//! * [`rounding`] — distributed randomized rounding with deterministic
//!   fallback: expected `(1+α·ln(Δ+1))`-factor blowup (Theorem 3), plus
//!   the remark's alternative multiplier;
//! * [`weighted`] — the weighted fractional dominating set variant
//!   (remark after Theorem 4);
//! * [`pipeline`] — the composed algorithm of Theorem 6: expected
//!   `O(k·Δ^{2/k}·log Δ)`-approximate dominating sets in `O(k²)` rounds;
//! * [`composite`] — the same algorithm as a *single* node program on a
//!   single engine run (`4k² + 2k + 2` rounds), for uninterrupted
//!   end-to-end metrics;
//! * [`invariants`] — runtime checkers for the proofs' loop invariants
//!   (Lemmas 2–7) and the Figure-1 covering cascade;
//! * [`math`] — the bound formulas, one function per theorem;
//! * [`solver`] — the unified [`DsSolver`], [`SolverRegistry`], and
//!   [`ExperimentRunner`] every algorithm (and every baseline in
//!   `kw_baselines`) is reachable through.
//!
//! # Example
//!
//! ```
//! use kw_graph::generators;
//! use kw_core::{math, Pipeline, PipelineConfig};
//!
//! let g = generators::star_of_cliques(5, 6);
//! let outcome = Pipeline::new(PipelineConfig { k: 2, ..Default::default() }).run(&g, 1)?;
//! assert!(outcome.dominating_set.is_dominating(&g));
//! // O(k²) rounds: 4k² + 2k for Algorithm 3, plus 2 for the rounding.
//! assert_eq!(outcome.total_rounds(), math::alg3_rounds(2) + 2);
//! # Ok::<(), kw_core::CoreError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod alg2;
pub mod alg3;
pub mod composite;
mod error;
pub mod invariants;
pub mod math;
pub mod pipeline;
pub mod rounding;
pub mod solver;
pub mod weighted;

pub use error::CoreError;
pub use pipeline::{FractionalSolver, Pipeline, PipelineConfig, PipelineOutcome};
pub use solver::{
    DsSolver, ExperimentRunner, SolveContext, SolveError, SolveReport, SolverRegistry,
};
