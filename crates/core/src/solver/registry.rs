//! String-keyed solver construction.

use std::collections::BTreeMap;
use std::sync::Arc;

use crate::pipeline::FractionalSolver;
use crate::solver::{CompositeSolver, DsSolver, PipelineSolver, SolveError, SolverSpec};

/// A factory building a solver from its parsed spec. The registry passes
/// itself back in so combinator solvers can resolve their inner spec.
pub type SolverFactory = Arc<
    dyn Fn(&SolverSpec, &SolverRegistry) -> Result<Box<dyn DsSolver>, SolveError> + Send + Sync,
>;

/// Maps solver names to factories; the single place experiment drivers,
/// examples, and tests construct algorithms from.
///
/// [`SolverRegistry::with_core_solvers`] registers the paper's own
/// algorithms; `kw_baselines::solvers::register_baselines` adds the five
/// baselines, and the umbrella crate's `default_registry()` combines
/// both. Registered names and their parameter grammar are documented in
/// the umbrella crate's root docs.
#[derive(Clone, Default)]
pub struct SolverRegistry {
    factories: BTreeMap<String, SolverFactory>,
}

impl SolverRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// A registry with the paper's solvers registered: `kw` (Algorithm 3 +
    /// rounding), `alg2` (Algorithm 2 + rounding), and `composite` (the
    /// fused single-protocol variant).
    pub fn with_core_solvers() -> Self {
        let mut registry = Self::new();
        register_core_solvers(&mut registry);
        registry
    }

    /// Registers (or replaces) a factory under `name`.
    pub fn register(
        &mut self,
        name: impl Into<String>,
        factory: impl Fn(&SolverSpec, &SolverRegistry) -> Result<Box<dyn DsSolver>, SolveError>
            + Send
            + Sync
            + 'static,
    ) {
        self.factories.insert(name.into(), Arc::new(factory));
    }

    /// Builds a solver from a spec string (see [`SolverSpec`] for the
    /// grammar).
    ///
    /// # Errors
    ///
    /// [`SolveError::InvalidSpec`] on parse failure,
    /// [`SolveError::UnknownSolver`] for unregistered names.
    pub fn build(&self, spec_text: &str) -> Result<Box<dyn DsSolver>, SolveError> {
        self.build_spec(&SolverSpec::parse(spec_text)?)
    }

    /// Builds a solver from an already-parsed spec.
    ///
    /// # Errors
    ///
    /// Same as [`build`](Self::build).
    pub fn build_spec(&self, spec: &SolverSpec) -> Result<Box<dyn DsSolver>, SolveError> {
        let factory = self
            .factories
            .get(&spec.name)
            .ok_or_else(|| SolveError::UnknownSolver {
                name: spec.name.clone(),
                known: self.names().map(str::to_string).collect(),
            })?;
        factory(spec, self)
    }

    /// Builds one solver per spec, preserving order.
    ///
    /// # Errors
    ///
    /// Fails on the first bad spec.
    pub fn build_all<'a, I>(&self, specs: I) -> Result<Vec<Box<dyn DsSolver>>, SolveError>
    where
        I: IntoIterator<Item = &'a str>,
    {
        specs.into_iter().map(|s| self.build(s)).collect()
    }

    /// Registered names, sorted.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.factories.keys().map(String::as_str)
    }

    /// Whether `name` is registered.
    pub fn contains(&self, name: &str) -> bool {
        self.factories.contains_key(name)
    }
}

impl std::fmt::Debug for SolverRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SolverRegistry")
            .field("names", &self.names().collect::<Vec<_>>())
            .finish()
    }
}

/// Registers the paper's own solvers (`kw`, `alg2`, `composite`) into an
/// existing registry.
pub fn register_core_solvers(registry: &mut SolverRegistry) {
    registry.register("kw", |spec, _| {
        Ok(Box::new(PipelineSolver::from_spec(
            spec,
            FractionalSolver::Alg3,
        )?))
    });
    registry.register("alg2", |spec, _| {
        Ok(Box::new(PipelineSolver::from_spec(
            spec,
            FractionalSolver::Alg2DeltaKnown,
        )?))
    });
    registry.register("composite", |spec, _| {
        Ok(Box::new(CompositeSolver::from_spec(spec)?))
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::SolveContext;
    use kw_graph::generators;

    #[test]
    fn core_names_registered() {
        let registry = SolverRegistry::with_core_solvers();
        assert_eq!(
            registry.names().collect::<Vec<_>>(),
            vec!["alg2", "composite", "kw"]
        );
        assert!(registry.contains("kw") && !registry.contains("greedy"));
    }

    #[test]
    fn builds_and_solves_by_name() {
        let registry = SolverRegistry::with_core_solvers();
        let g = generators::star_of_cliques(3, 4);
        for spec in ["kw", "kw:k=3", "alg2:k=2", "composite"] {
            let solver = registry.build(spec).unwrap();
            let report = solver.solve(&g, &SolveContext::seeded(2)).unwrap();
            assert!(report.certificate.unwrap().dominates, "{spec}");
        }
    }

    #[test]
    fn unknown_name_lists_known() {
        let registry = SolverRegistry::with_core_solvers();
        match registry.build("nope").map(|s| s.spec()) {
            Err(SolveError::UnknownSolver { name, known }) => {
                assert_eq!(name, "nope");
                assert!(known.contains(&"kw".to_string()));
            }
            other => panic!("expected UnknownSolver, got {other:?}"),
        }
    }

    #[test]
    fn build_all_preserves_order_and_fails_fast() {
        let registry = SolverRegistry::with_core_solvers();
        let solvers = registry.build_all(["kw:k=2", "alg2:k=3"]).unwrap();
        assert_eq!(solvers[0].spec(), "kw:k=2");
        assert_eq!(solvers[1].spec(), "alg2:k=3");
        assert!(registry.build_all(["kw", "bogus"]).is_err());
    }

    #[test]
    fn custom_registration_overrides() {
        let mut registry = SolverRegistry::with_core_solvers();
        registry.register("kw", |_, _| {
            Err(SolveError::InvalidSpec {
                spec: "kw".into(),
                reason: "shadowed".into(),
            })
        });
        assert!(registry.build("kw").is_err());
    }
}
