//! Batched experiment execution over a solver × workload × seed matrix,
//! with an optional `(workload, seed)`-keyed cell cache and a streaming
//! mode that reports progress cell-by-cell over a bounded channel.

use std::collections::{HashMap, HashSet};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::SyncSender;
use std::sync::{Arc, Mutex};
use std::time::Instant;

use kw_graph::CsrGraph;

use crate::solver::events::{RunEvent, RunRecord};
use crate::solver::{traced_solve, DsSolver, SolveContext, SolveError};

/// The numbers a [`CellSummary`] aggregates from one `(solver, workload,
/// seed)` run — everything the runner (and the `kw_results` run store)
/// needs to re-summarize a cell without re-solving it.
///
/// `wall_ms` is measurement metadata, not part of the deterministic
/// outcome: a cache hit or store replay reports the *original* solve's
/// wall time.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RunOutcome {
    /// Whether the output set dominated the graph (can be false only
    /// under message loss).
    pub dominates: bool,
    /// Dominating-set size.
    pub size: f64,
    /// Synchronous rounds.
    pub rounds: f64,
    /// Total messages.
    pub messages: f64,
    /// Total payload bits.
    pub bits: f64,
    /// Set size over the Lemma-1 lower bound.
    pub ratio_vs_lemma1: f64,
    /// Wall-clock solve time in milliseconds (of the original solve).
    pub wall_ms: f64,
}

/// Cache key of one run outcome: `(solver spec, workload label, seed,
/// canonical chaos spec, engine threads)`. Deterministic outcomes are
/// thread-invariant, but `wall_ms` is a measurement of one thread count —
/// keying by threads keeps a 4T sweep from reporting 1T wall times (and
/// vice versa), which the scaling gate depends on.
type OutcomeKey = (String, String, u64, String, usize);

/// Memoization shared across [`ExperimentRunner`] sweeps (ROADMAP item
/// (b)): generated workload graphs keyed by `(workload, seed)`, and run
/// outcomes keyed by `(solver spec, workload, seed)`.
///
/// Experiment binaries routinely sweep overlapping matrices (the same
/// workloads against growing solver lists, or the same cells with more
/// seeds); attaching one cache makes every repeated cell free. Workloads
/// are keyed by *label*, so two different graphs must not share a
/// workload label within one cache — [`ExperimentRunner`] enforces this
/// per matrix ([`SolveError::DuplicateWorkload`]), and sweeps sharing a
/// cache across matrices must keep labels unique themselves (the
/// `kw_results` sweep session additionally shape-checks labels against
/// its store). Outcomes are additionally keyed by the context's fault
/// plan (the only context knob besides the seed that changes results)
/// and its engine thread count (which changes only `wall_ms`, but that
/// is exactly what scaling comparisons read), so runners with different
/// loss models or thread counts can share one cache safely.
///
/// Cloning the handle is cheap and shares the underlying cache; it is
/// thread-safe and deterministic (a hit returns exactly what the original
/// run produced).
///
/// # Example
///
/// ```
/// use kw_core::solver::{ExperimentCache, ExperimentRunner, SolverRegistry};
/// use kw_graph::generators;
///
/// let registry = SolverRegistry::with_core_solvers();
/// let solvers = registry.build_all(["kw:k=2"])?;
/// let cache = ExperimentCache::new();
/// let runner = ExperimentRunner::new().cache(cache.clone());
/// let workloads = vec![("grid4".to_string(), generators::grid(4, 4))];
/// let first = runner.run_matrix(&solvers, &workloads, 0..3)?;
/// let again = runner.run_matrix(&solvers, &workloads, 0..3)?;
/// assert_eq!(first[0].size, again[0].size);
/// assert_eq!(cache.hits(), 3); // the second sweep re-solved nothing
/// # Ok::<(), kw_core::solver::SolveError>(())
/// ```
#[derive(Debug, Default)]
pub struct ExperimentCache {
    graphs: Mutex<HashMap<(String, u64), Arc<CsrGraph>>>,
    /// Keyed by `(solver spec, workload, seed, canonical chaos spec,
    /// engine threads)` — the chaos plan is the one piece of
    /// [`SolveContext`] besides the seed that changes results, and the
    /// thread count is the one knob that changes the `wall_ms`
    /// measurement, so runners with different loss/chaos models or
    /// thread counts can safely share one cache.
    outcomes: Mutex<HashMap<OutcomeKey, RunOutcome>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl ExperimentCache {
    /// Creates an empty shared cache.
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Returns the graph for `(workload, seed)`, generating it with
    /// `build` on first use and reusing the stored copy afterwards.
    pub fn graph(
        &self,
        workload: &str,
        seed: u64,
        build: impl FnOnce() -> CsrGraph,
    ) -> Arc<CsrGraph> {
        let mut graphs = self.graphs.lock().unwrap();
        graphs
            .entry((workload.to_string(), seed))
            .or_insert_with(|| Arc::new(build()))
            .clone()
    }

    /// Number of run outcomes served from the cache.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Number of run outcomes that had to be solved and were then stored.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// The part of a context that (together with the per-run seed) can
    /// change a run's outcome: the chaos plan, as its canonical spec.
    fn context_fingerprint(ctx: &SolveContext) -> String {
        ctx.faults.spec()
    }

    /// Seeds the cache with an already-known outcome, keyed exactly like
    /// a live run under the chaos plan whose canonical spec is `chaos`
    /// (`""` = reliable). This is the resume hook the `kw_results` run
    /// store uses: replaying persisted [`RunRecord`]s into a cache makes
    /// a re-launched sweep solve only missing cells.
    ///
    /// Replayed entries count as neither hits nor misses until a sweep
    /// looks them up. Non-canonical specs (e.g. a raw `"chaos:..."`
    /// clause) should be normalized via [`kw_sim::ChaosPlan::parse`]
    /// before insertion, or the live sweep will miss them.
    pub fn insert_outcome(
        &self,
        solver: &str,
        workload: &str,
        seed: u64,
        chaos: &str,
        threads: usize,
        outcome: RunOutcome,
    ) {
        let key = (
            solver.to_string(),
            workload.to_string(),
            seed,
            chaos.to_string(),
            threads,
        );
        self.outcomes.lock().unwrap().insert(key, outcome);
    }

    /// Looks up the outcome of one `(solver, workload, seed)` cell under
    /// `ctx`'s fault plan, counting a hit or a miss exactly like a sweep
    /// would. This is the single-request serving path: where a sweep
    /// goes through [`ExperimentRunner`], a daemon answering one request
    /// at a time asks the cache directly and solves only on `None`.
    pub fn outcome(
        &self,
        solver: &str,
        workload: &str,
        seed: u64,
        ctx: &SolveContext,
    ) -> Option<RunOutcome> {
        self.lookup(solver, workload, seed, ctx)
    }

    /// Number of memoized outcomes — e.g. how many answers a restarted
    /// daemon warmed from its run store before serving traffic.
    pub fn outcome_count(&self) -> usize {
        self.outcomes.lock().unwrap().len()
    }

    /// Returns the already-memoized graph for `(workload, seed)` without
    /// building anything. Lets callers with *fallible* graph builders
    /// (e.g. a workload naming an instance file) run the build outside
    /// the cache lock — a panicking builder inside [`Self::graph`] would
    /// poison the graph memo for every later caller.
    pub fn cached_graph(&self, workload: &str, seed: u64) -> Option<Arc<CsrGraph>> {
        self.graphs
            .lock()
            .unwrap()
            .get(&(workload.to_string(), seed))
            .cloned()
    }

    fn lookup(
        &self,
        solver: &str,
        workload: &str,
        seed: u64,
        ctx: &SolveContext,
    ) -> Option<RunOutcome> {
        let key = (
            solver.to_string(),
            workload.to_string(),
            seed,
            Self::context_fingerprint(ctx),
            ctx.threads,
        );
        let found = self.outcomes.lock().unwrap().get(&key).copied();
        match found {
            Some(o) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(o)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    fn store(
        &self,
        solver: &str,
        workload: &str,
        seed: u64,
        ctx: &SolveContext,
        outcome: RunOutcome,
    ) {
        let key = (
            solver.to_string(),
            workload.to_string(),
            seed,
            Self::context_fingerprint(ctx),
            ctx.threads,
        );
        self.outcomes.lock().unwrap().insert(key, outcome);
    }
}

/// Five-number summary of a sample set.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct SummaryStats {
    /// Number of samples.
    pub count: usize,
    /// Arithmetic mean (0 when empty).
    pub mean: f64,
    /// Population standard deviation (0 when empty).
    pub std_dev: f64,
    /// Minimum (0 when empty).
    pub min: f64,
    /// Maximum (0 when empty).
    pub max: f64,
}

impl SummaryStats {
    /// Summarizes `samples`.
    pub fn from_samples(samples: &[f64]) -> Self {
        if samples.is_empty() {
            return Self::default();
        }
        let count = samples.len();
        let mean = samples.iter().sum::<f64>() / count as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / count as f64;
        SummaryStats {
            count,
            mean,
            std_dev: var.sqrt(),
            min: samples.iter().copied().fold(f64::INFINITY, f64::min),
            max: samples.iter().copied().fold(f64::NEG_INFINITY, f64::max),
        }
    }
}

/// Aggregated results of one (solver, workload) cell across seeds.
#[derive(Clone, Debug)]
pub struct CellSummary {
    /// Canonical spec of the solver.
    pub solver: String,
    /// Workload label.
    pub workload: String,
    /// Node count of the workload graph.
    pub n: usize,
    /// Maximum degree `Δ` of the workload graph.
    pub max_degree: usize,
    /// Number of seeds run.
    pub runs: usize,
    /// Runs whose output failed to dominate (possible only under message
    /// loss; always 0 on reliable networks).
    pub failures: usize,
    /// Dominating-set sizes.
    pub size: SummaryStats,
    /// Synchronous round counts (identical across seeds for the paper's
    /// constant-round algorithms).
    pub rounds: SummaryStats,
    /// Total message counts.
    pub messages: SummaryStats,
    /// Ratio of set size to the Lemma-1 lower bound.
    pub ratio_vs_lemma1: SummaryStats,
}

/// Runs solver × workload × seed matrices, optionally spreading cells
/// over worker threads.
///
/// Results are deterministic and thread-count-independent: each cell's
/// seeds run in order, and cells are returned in solver-major order
/// (`solvers[0]` over all workloads first) regardless of scheduling.
///
/// # Example
///
/// ```
/// use kw_core::solver::{ExperimentRunner, SolveContext, SolverRegistry};
/// use kw_graph::generators;
///
/// let registry = SolverRegistry::with_core_solvers();
/// let solvers = registry.build_all(["kw:k=2", "alg2:k=2"])?;
/// let workloads = vec![("grid5".to_string(), generators::grid(5, 5))];
/// let cells = ExperimentRunner::new()
///     .run_matrix(&solvers, &workloads, 0..4)?;
/// assert_eq!(cells.len(), 2);
/// assert_eq!(cells[0].runs, 4);
/// assert_eq!(cells[0].failures, 0);
/// # Ok::<(), kw_core::solver::SolveError>(())
/// ```
#[derive(Clone, Debug, Default)]
pub struct ExperimentRunner {
    base: SolveContext,
    workers: usize,
    cache: Option<Arc<ExperimentCache>>,
}

impl ExperimentRunner {
    /// A sequential runner with the default context.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the base context (per-run seeds override its `seed`).
    pub fn context(mut self, ctx: SolveContext) -> Self {
        self.base = ctx;
        self
    }

    /// Sets the number of worker threads over cells (`<= 1` sequential,
    /// `0` = all available cores). Does not affect results.
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Attaches a shared [`ExperimentCache`]: `(solver, workload, seed)`
    /// runs already in the cache are served from it instead of re-solved.
    /// Does not affect results.
    pub fn cache(mut self, cache: Arc<ExperimentCache>) -> Self {
        self.cache = Some(cache);
        self
    }

    /// The base context cells run under (per-run seeds override its
    /// `seed`). Run stores persist its chaos plan in sweep manifests.
    pub fn base_context(&self) -> SolveContext {
        self.base.clone()
    }

    /// Runs every solver on every workload for every seed, aggregating
    /// each (solver, workload) cell.
    ///
    /// # Errors
    ///
    /// The first [`SolveError`] aborts the sweep. Outputs that fail to
    /// dominate are *not* errors; they are counted per cell in
    /// [`CellSummary::failures`] (and excluded from the quality stats).
    pub fn run_matrix<S: DsSolver>(
        &self,
        solvers: &[S],
        workloads: &[(String, CsrGraph)],
        seeds: impl IntoIterator<Item = u64>,
    ) -> Result<Vec<CellSummary>, SolveError> {
        let seeds: Vec<u64> = seeds.into_iter().collect();
        self.run_matrix_inner(solvers, workloads, &seeds, None, &SweepCounters::default())
    }

    /// Like [`run_matrix`](Self::run_matrix), but reports progress while
    /// the matrix executes: every `(solver, workload, seed)` cell emits a
    /// [`RunEvent::CellStarted`] and exactly one terminal event
    /// (`CellFinished` for fresh solves, `CellCached` for cache hits,
    /// `CellFailed` for errors or panicking workers), bracketed by one
    /// `SweepStarted`/`SweepFinished` pair. See [`events`](super::events)
    /// for the ordering guarantees.
    ///
    /// `events` should come from a **bounded** channel
    /// ([`std::sync::mpsc::sync_channel`]); a full channel backpressures
    /// the workers, so drain it from another thread (the `kw_results`
    /// crate's `stream_sweep`/`SweepSession` helpers do this). A closed
    /// channel never fails the sweep — events are simply discarded.
    ///
    /// A worker that panics mid-solve surfaces as a `CellFailed` event
    /// and a [`SolveError::Panicked`] result rather than a hang or an
    /// unwinding scope.
    pub fn run_matrix_streaming<S: DsSolver>(
        &self,
        solvers: &[S],
        workloads: &[(String, CsrGraph)],
        seeds: impl IntoIterator<Item = u64>,
        events: SyncSender<RunEvent>,
    ) -> Result<Vec<CellSummary>, SolveError> {
        let seeds: Vec<u64> = seeds.into_iter().collect();
        let _ = events.send(RunEvent::SweepStarted {
            solvers: solvers.len(),
            workloads: workloads.len(),
            seeds: seeds.len(),
            runs: solvers.len() * workloads.len() * seeds.len(),
        });
        let counters = SweepCounters::default();
        let result = self.run_matrix_inner(solvers, workloads, &seeds, Some(&events), &counters);
        let _ = events.send(RunEvent::SweepFinished {
            solved: counters.solved.load(Ordering::Relaxed),
            cached: counters.cached.load(Ordering::Relaxed),
            failed: counters.failed.load(Ordering::Relaxed),
        });
        result
    }

    fn run_matrix_inner<S: DsSolver>(
        &self,
        solvers: &[S],
        workloads: &[(String, CsrGraph)],
        seeds: &[u64],
        events: Option<&SyncSender<RunEvent>>,
        counters: &SweepCounters,
    ) -> Result<Vec<CellSummary>, SolveError> {
        // Labels key the cell cache and the run store; a duplicate label
        // would silently serve one workload the other's cached results,
        // so the matrix fails fast before any cell runs.
        let mut labels = HashSet::with_capacity(workloads.len());
        for (label, _) in workloads {
            if !labels.insert(label.as_str()) {
                return Err(SolveError::DuplicateWorkload {
                    label: label.clone(),
                });
            }
        }
        let cells: Vec<(usize, usize)> = (0..solvers.len())
            .flat_map(|s| (0..workloads.len()).map(move |w| (s, w)))
            .collect();
        let results = Mutex::new(vec![None; cells.len()]);
        let first_error = Mutex::new(None::<SolveError>);
        let next = AtomicUsize::new(0);
        let workers = match self.workers {
            0 => std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1),
            w => w,
        }
        .min(cells.len().max(1));
        let work = |worker: usize, events: Option<SyncSender<RunEvent>>| {
            let mut emitter = events.map(|tx| Emitter { tx, worker, seq: 0 });
            loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= cells.len() || first_error.lock().unwrap().is_some() {
                    break;
                }
                let (s, w) = cells[i];
                let (label, graph) = &workloads[w];
                match self.run_cell(&solvers[s], label, graph, seeds, emitter.as_mut(), counters) {
                    Ok(summary) => results.lock().unwrap()[i] = Some(summary),
                    Err(e) => {
                        first_error.lock().unwrap().get_or_insert(e);
                        break;
                    }
                }
            }
        };
        if workers <= 1 {
            work(0, events.cloned());
        } else {
            std::thread::scope(|scope| {
                for worker in 0..workers {
                    let tx = events.cloned();
                    scope.spawn(move || work(worker, tx));
                }
            });
        }
        if let Some(e) = first_error.into_inner().unwrap() {
            return Err(e);
        }
        Ok(results
            .into_inner()
            .unwrap()
            .into_iter()
            .map(|c| c.expect("all cells completed"))
            .collect())
    }

    fn run_cell<S: DsSolver>(
        &self,
        solver: &S,
        label: &str,
        graph: &CsrGraph,
        seeds: &[u64],
        mut emitter: Option<&mut Emitter>,
        counters: &SweepCounters,
    ) -> Result<CellSummary, SolveError> {
        // Certificates drive the ratio column and failure detection; the
        // sweep needs them regardless of the base context's preference.
        let ctx = SolveContext {
            check_certificates: true,
            ..self.base.clone()
        };
        let chaos = ctx.faults.spec();
        let spec = solver.spec();
        let mut sizes = Vec::new();
        let mut rounds = Vec::new();
        let mut messages = Vec::new();
        let mut ratios = Vec::new();
        let mut runs = 0usize;
        let mut failures = 0usize;
        for &seed in seeds {
            if let Some(e) = emitter.as_deref_mut() {
                e.emit(|worker, seq| RunEvent::CellStarted {
                    worker,
                    seq,
                    solver: spec.clone(),
                    workload: label.to_string(),
                    seed,
                });
            }
            let cached = self
                .cache
                .as_deref()
                .and_then(|c| c.lookup(&spec, label, seed, &ctx));
            let was_cached = cached.is_some();
            let outcome = match cached {
                Some(outcome) => {
                    counters.cached.fetch_add(1, Ordering::Relaxed);
                    outcome
                }
                None => {
                    // Human-readable run identity, prefixed onto failure
                    // messages so a panic deep in a parallel sweep names
                    // the exact cell to replay (chaos only when active).
                    let run_id = if chaos == "none" {
                        format!("{spec} on {label} (seed {seed})")
                    } else {
                        format!("{spec} on {label} (seed {seed}, chaos {chaos})")
                    };
                    let start = Instant::now();
                    let report = match catch_unwind(AssertUnwindSafe(|| {
                        traced_solve(solver, graph, &ctx.with_seed(seed))
                    })) {
                        Ok(Ok(report)) => report,
                        Ok(Err(e)) => {
                            counters.failed.fetch_add(1, Ordering::Relaxed);
                            if let Some(em) = emitter.as_deref_mut() {
                                em.emit(|worker, seq| RunEvent::CellFailed {
                                    worker,
                                    seq,
                                    solver: spec.clone(),
                                    workload: label.to_string(),
                                    seed,
                                    error: format!("{run_id}: {e}"),
                                });
                            }
                            return Err(e);
                        }
                        Err(panic) => {
                            counters.failed.fetch_add(1, Ordering::Relaxed);
                            let reason = format!("{run_id}: {}", panic_message(panic));
                            if let Some(em) = emitter.as_deref_mut() {
                                em.emit(|worker, seq| RunEvent::CellFailed {
                                    worker,
                                    seq,
                                    solver: spec.clone(),
                                    workload: label.to_string(),
                                    seed,
                                    error: format!("worker panicked: {reason}"),
                                });
                            }
                            return Err(SolveError::Panicked { reason });
                        }
                    };
                    let wall_ms = start.elapsed().as_secs_f64() * 1e3;
                    let cert = report.certificate.as_ref().expect("certificates forced on");
                    let outcome = RunOutcome {
                        dominates: cert.dominates,
                        size: report.size() as f64,
                        rounds: report.rounds() as f64,
                        messages: report.messages() as f64,
                        bits: report.metrics.bits as f64,
                        ratio_vs_lemma1: cert.ratio_vs_lemma1,
                        wall_ms,
                    };
                    if let Some(cache) = self.cache.as_deref() {
                        cache.store(&spec, label, seed, &ctx, outcome);
                    }
                    counters.solved.fetch_add(1, Ordering::Relaxed);
                    outcome
                }
            };
            if let Some(e) = emitter.as_deref_mut() {
                let record = RunRecord {
                    solver: spec.clone(),
                    workload: label.to_string(),
                    n: graph.len(),
                    max_degree: graph.max_degree(),
                    seed,
                    chaos: chaos.clone(),
                    threads: ctx.threads,
                    outcome,
                };
                e.emit(|worker, seq| {
                    if was_cached {
                        RunEvent::CellCached {
                            worker,
                            seq,
                            record,
                        }
                    } else {
                        RunEvent::CellFinished {
                            worker,
                            seq,
                            record,
                        }
                    }
                });
            }
            runs += 1;
            if !outcome.dominates {
                failures += 1;
                continue;
            }
            sizes.push(outcome.size);
            rounds.push(outcome.rounds);
            messages.push(outcome.messages);
            ratios.push(outcome.ratio_vs_lemma1);
        }
        Ok(CellSummary {
            solver: spec,
            workload: label.to_string(),
            n: graph.len(),
            max_degree: graph.max_degree(),
            runs,
            failures,
            size: SummaryStats::from_samples(&sizes),
            rounds: SummaryStats::from_samples(&rounds),
            messages: SummaryStats::from_samples(&messages),
            ratio_vs_lemma1: SummaryStats::from_samples(&ratios),
        })
    }
}

/// Per-sweep tallies backing [`RunEvent::SweepFinished`].
#[derive(Debug, Default)]
struct SweepCounters {
    solved: AtomicU64,
    cached: AtomicU64,
    failed: AtomicU64,
}

/// One worker's event-sending state: the per-worker sequence number that
/// makes its event stream monotonic.
struct Emitter {
    tx: SyncSender<RunEvent>,
    worker: usize,
    seq: u64,
}

impl Emitter {
    fn emit(&mut self, make: impl FnOnce(usize, u64) -> RunEvent) {
        let ev = make(self.worker, self.seq);
        self.seq += 1;
        // A closed channel means the consumer is gone; the sweep's own
        // result still reaches the caller, so events are best-effort.
        let _ = self.tx.send(ev);
    }
}

/// Best-effort extraction of a panic payload's message.
fn panic_message(panic: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::SolverRegistry;
    use kw_graph::generators;

    fn workloads() -> Vec<(String, CsrGraph)> {
        vec![
            ("grid4".to_string(), generators::grid(4, 4)),
            ("petersen".to_string(), generators::petersen()),
        ]
    }

    #[test]
    fn summary_stats_basics() {
        let s = SummaryStats::from_samples(&[1.0, 2.0, 3.0]);
        assert_eq!(s.count, 3);
        assert!((s.mean - 2.0).abs() < 1e-12);
        assert!((s.std_dev - (2.0f64 / 3.0).sqrt()).abs() < 1e-12);
        assert_eq!((s.min, s.max), (1.0, 3.0));
        assert_eq!(SummaryStats::from_samples(&[]), SummaryStats::default());
    }

    #[test]
    fn matrix_covers_all_cells_in_solver_major_order() {
        let registry = SolverRegistry::with_core_solvers();
        let solvers = registry.build_all(["kw:k=2", "composite:k=2"]).unwrap();
        let cells = ExperimentRunner::new()
            .run_matrix(&solvers, &workloads(), 0..3)
            .unwrap();
        assert_eq!(cells.len(), 4);
        assert_eq!(
            cells
                .iter()
                .map(|c| (c.solver.as_str(), c.workload.as_str()))
                .collect::<Vec<_>>(),
            vec![
                ("kw:k=2", "grid4"),
                ("kw:k=2", "petersen"),
                ("composite:k=2", "grid4"),
                ("composite:k=2", "petersen"),
            ]
        );
        for cell in &cells {
            assert_eq!(cell.runs, 3);
            assert_eq!(cell.failures, 0);
            assert_eq!(cell.size.count, 3);
            assert!(cell.size.mean >= 1.0);
            assert!(cell.ratio_vs_lemma1.mean >= 1.0 - 1e-9);
            // Constant-round algorithms: identical rounds across seeds.
            assert_eq!(cell.rounds.min, cell.rounds.max);
        }
    }

    #[test]
    fn parallel_matches_sequential() {
        let registry = SolverRegistry::with_core_solvers();
        let solvers = registry
            .build_all(["kw:k=2", "alg2:k=2", "composite:k=3"])
            .unwrap();
        let seq = ExperimentRunner::new()
            .run_matrix(&solvers, &workloads(), 0..2)
            .unwrap();
        let par = ExperimentRunner::new()
            .workers(4)
            .run_matrix(&solvers, &workloads(), 0..2)
            .unwrap();
        assert_eq!(seq.len(), par.len());
        for (a, b) in seq.iter().zip(&par) {
            assert_eq!(
                (a.solver.as_str(), a.workload.as_str()),
                (b.solver.as_str(), b.workload.as_str())
            );
            assert_eq!(a.size, b.size);
            assert_eq!(a.messages, b.messages);
        }
    }

    #[test]
    fn solve_errors_abort_the_sweep() {
        let registry = SolverRegistry::with_core_solvers();
        let solvers = registry.build_all(["kw:k=0"]).unwrap();
        let err = ExperimentRunner::new().run_matrix(&solvers, &workloads(), 0..2);
        assert!(matches!(err, Err(SolveError::Core(_))));
    }

    /// Two workloads sharing a label would silently alias each other's
    /// cache and store cells; the matrix must refuse to start.
    #[test]
    fn duplicate_workload_labels_fail_fast() {
        let registry = SolverRegistry::with_core_solvers();
        let solvers = registry.build_all(["kw:k=2"]).unwrap();
        let dup = vec![
            ("grid".to_string(), generators::grid(4, 4)),
            ("petersen".to_string(), generators::petersen()),
            ("grid".to_string(), generators::grid(5, 5)),
        ];
        match ExperimentRunner::new().run_matrix(&solvers, &dup, 0..2) {
            Err(SolveError::DuplicateWorkload { label }) => assert_eq!(label, "grid"),
            other => panic!("expected DuplicateWorkload, got {other:?}"),
        }
        // The streaming API refuses identically (and still brackets the
        // sweep with started/finished events).
        use std::sync::mpsc::sync_channel;
        let (tx, rx) = sync_channel(64);
        let (result, events) = std::thread::scope(|scope| {
            let consumer = scope.spawn(move || rx.iter().collect::<Vec<RunEvent>>());
            let result = ExperimentRunner::new().run_matrix_streaming(&solvers, &dup, 0..2, tx);
            (result, consumer.join().unwrap())
        });
        assert!(matches!(result, Err(SolveError::DuplicateWorkload { .. })));
        assert!(
            !events.iter().any(|e| e.cell().is_some()),
            "no cell may run on a duplicate-label matrix"
        );
    }

    #[test]
    fn empty_matrix_is_empty() {
        let registry = SolverRegistry::with_core_solvers();
        let solvers = registry.build_all(["kw"]).unwrap();
        let cells = ExperimentRunner::new()
            .run_matrix(&solvers, &[], 0..2)
            .unwrap();
        assert!(cells.is_empty());
    }

    #[test]
    fn cache_serves_repeated_cells_without_resolving() {
        let registry = SolverRegistry::with_core_solvers();
        let solvers = registry.build_all(["kw:k=2", "composite:k=2"]).unwrap();
        let cache = ExperimentCache::new();
        let runner = ExperimentRunner::new().cache(cache.clone());
        let first = runner.run_matrix(&solvers, &workloads(), 0..3).unwrap();
        let triples = solvers.len() * workloads().len() * 3;
        assert_eq!(cache.misses(), triples as u64);
        assert_eq!(cache.hits(), 0);
        let second = runner.run_matrix(&solvers, &workloads(), 0..3).unwrap();
        assert_eq!(
            cache.hits(),
            triples as u64,
            "second sweep must be all hits"
        );
        assert_eq!(
            cache.misses(),
            triples as u64,
            "second sweep must not solve"
        );
        for (a, b) in first.iter().zip(&second) {
            assert_eq!(a.size, b.size);
            assert_eq!(a.rounds, b.rounds);
            assert_eq!(a.messages, b.messages);
            assert_eq!(a.ratio_vs_lemma1, b.ratio_vs_lemma1);
            assert_eq!(a.failures, b.failures);
        }
    }

    #[test]
    fn cache_extends_to_new_seeds_incrementally() {
        let registry = SolverRegistry::with_core_solvers();
        let solvers = registry.build_all(["kw:k=2"]).unwrap();
        let cache = ExperimentCache::new();
        let runner = ExperimentRunner::new().cache(cache.clone());
        let narrow = runner.run_matrix(&solvers, &workloads(), 0..2).unwrap();
        // Widening the seed range re-solves only the new seeds.
        let wide = runner.run_matrix(&solvers, &workloads(), 0..4).unwrap();
        assert_eq!(cache.hits(), (solvers.len() * workloads().len() * 2) as u64);
        assert_eq!(
            cache.misses(),
            (solvers.len() * workloads().len() * 4) as u64
        );
        assert_eq!(wide[0].runs, 4);
        // And matches an uncached run bit for bit.
        let uncached = ExperimentRunner::new()
            .run_matrix(&solvers, &workloads(), 0..4)
            .unwrap();
        for (a, b) in wide.iter().zip(&uncached) {
            assert_eq!(a.size, b.size);
            assert_eq!(a.messages, b.messages);
        }
        assert_eq!(narrow[0].runs, 2);
    }

    #[test]
    fn cached_and_uncached_parallel_sweeps_agree() {
        let registry = SolverRegistry::with_core_solvers();
        let solvers = registry.build_all(["kw:k=2", "alg2:k=2"]).unwrap();
        let cache = ExperimentCache::new();
        let cached_runner = ExperimentRunner::new().workers(4).cache(cache);
        let warm = cached_runner
            .run_matrix(&solvers, &workloads(), 0..2)
            .unwrap();
        let replay = cached_runner
            .run_matrix(&solvers, &workloads(), 0..2)
            .unwrap();
        for (a, b) in warm.iter().zip(&replay) {
            assert_eq!(a.size, b.size);
            assert_eq!(a.messages, b.messages);
            assert_eq!(a.ratio_vs_lemma1, b.ratio_vs_lemma1);
        }
    }

    #[test]
    fn cache_distinguishes_fault_plans() {
        use kw_sim::FaultPlan;
        let registry = SolverRegistry::with_core_solvers();
        let solvers = registry.build_all(["kw:k=2"]).unwrap();
        let cache = ExperimentCache::new();
        let reliable = ExperimentRunner::new().cache(cache.clone());
        let lossy = ExperimentRunner::new()
            .context(SolveContext {
                faults: FaultPlan::drop_with_probability(0.4, 5).into(),
                ..Default::default()
            })
            .cache(cache.clone());
        let clean = reliable.run_matrix(&solvers, &workloads(), 0..2).unwrap();
        let noisy = lossy.run_matrix(&solvers, &workloads(), 0..2).unwrap();
        // The lossy sweep must not be served the reliable outcomes.
        assert_eq!(cache.hits(), 0);
        assert_eq!(cache.misses(), (2 * workloads().len() * 2) as u64);
        // And a lossy re-run hits only the lossy entries.
        let noisy_again = lossy.run_matrix(&solvers, &workloads(), 0..2).unwrap();
        assert_eq!(cache.hits(), (workloads().len() * 2) as u64);
        for (a, b) in noisy.iter().zip(&noisy_again) {
            assert_eq!(a.size, b.size);
            assert_eq!(a.failures, b.failures);
        }
        // Sanity: lossy messages differ from reliable only via outcomes,
        // both summaries exist independently.
        assert_eq!(clean[0].runs, 2);
    }

    /// Satellite coverage for outcome keying: two *lossy* plans that
    /// differ only in their fault seed must not share cached outcomes
    /// (the fingerprint covers both the probability and the seed).
    #[test]
    fn cache_distinguishes_fault_seeds_of_equal_drop_rates() {
        use kw_sim::FaultPlan;
        let registry = SolverRegistry::with_core_solvers();
        let solvers = registry.build_all(["kw:k=2"]).unwrap();
        let cache = ExperimentCache::new();
        let lossy = |fault_seed: u64| {
            ExperimentRunner::new()
                .context(SolveContext {
                    faults: FaultPlan::drop_with_probability(0.3, fault_seed).into(),
                    ..Default::default()
                })
                .cache(cache.clone())
        };
        let a = lossy(1).run_matrix(&solvers, &workloads(), 0..3).unwrap();
        let misses_after_a = cache.misses();
        let b = lossy(2).run_matrix(&solvers, &workloads(), 0..3).unwrap();
        // Same drop probability, different loss process: nothing shared.
        assert_eq!(cache.hits(), 0, "distinct fault seeds must not share");
        assert_eq!(cache.misses(), 2 * misses_after_a);
        // Each plan still hits its own entries on replay.
        let a2 = lossy(1).run_matrix(&solvers, &workloads(), 0..3).unwrap();
        assert_eq!(cache.hits(), misses_after_a);
        for (x, y) in a.iter().zip(&a2) {
            assert_eq!(x.size, y.size);
            assert_eq!(x.failures, y.failures);
        }
        let _ = b;
    }

    #[test]
    fn streaming_emits_each_cell_exactly_once_with_monotonic_worker_seqs() {
        use std::collections::HashMap as Map;
        use std::sync::mpsc::sync_channel;
        let registry = SolverRegistry::with_core_solvers();
        let solvers = registry.build_all(["kw:k=2", "composite:k=2"]).unwrap();
        let cache = ExperimentCache::new();
        let runner = ExperimentRunner::new().workers(4).cache(cache.clone());
        let run = |runner: &ExperimentRunner| {
            let (tx, rx) = sync_channel(4); // deliberately tight: exercises backpressure
            let (cells, events) = std::thread::scope(|scope| {
                let consumer = scope.spawn(move || rx.iter().collect::<Vec<RunEvent>>());
                let cells = runner
                    .run_matrix_streaming(&solvers, &workloads(), 0..3, tx)
                    .unwrap();
                (cells, consumer.join().unwrap())
            });
            (cells, events)
        };
        let (cells, events) = run(&runner);
        // The streamed summaries equal the batch API's.
        let batch = ExperimentRunner::new()
            .run_matrix(&solvers, &workloads(), 0..3)
            .unwrap();
        for (a, b) in cells.iter().zip(&batch) {
            assert_eq!(a.size, b.size);
            assert_eq!(a.messages, b.messages);
        }
        // Bracketing events frame the sweep.
        assert!(matches!(
            events.first(),
            Some(RunEvent::SweepStarted { runs: 12, .. })
        ));
        match events.last() {
            Some(RunEvent::SweepFinished {
                solved,
                cached,
                failed,
            }) => {
                assert_eq!((*solved, *cached, *failed), (12, 0, 0));
            }
            other => panic!("expected SweepFinished, got {other:?}"),
        }
        // Every cell: exactly one CellStarted and one terminal event.
        let mut started: Map<(String, String, u64), usize> = Map::new();
        let mut finished: Map<(String, String, u64), usize> = Map::new();
        for ev in &events {
            if let Some((s, w, seed)) = ev.cell() {
                let key = (s.to_string(), w.to_string(), seed);
                if ev.is_terminal() {
                    *finished.entry(key).or_default() += 1;
                } else {
                    *started.entry(key).or_default() += 1;
                }
            }
        }
        assert_eq!(started.len(), 12);
        assert_eq!(finished.len(), 12);
        assert!(started.values().all(|&c| c == 1));
        assert!(finished.values().all(|&c| c == 1));
        // Per-worker sequence numbers are strictly increasing in arrival
        // order (the channel preserves per-sender order).
        let mut last_seq: Map<usize, u64> = Map::new();
        for ev in &events {
            if let Some((worker, seq)) = ev.worker_seq() {
                if let Some(&prev) = last_seq.get(&worker) {
                    assert!(seq > prev, "worker {worker}: seq {seq} after {prev}");
                }
                last_seq.insert(worker, seq);
            }
        }
        // A second streaming sweep over the same matrix is all cache hits,
        // reported as CellCached events carrying the original outcomes.
        let (_, replay_events) = run(&runner);
        let cached_count = replay_events
            .iter()
            .filter(|e| matches!(e, RunEvent::CellCached { .. }))
            .count();
        assert_eq!(cached_count, 12);
        match replay_events.last() {
            Some(RunEvent::SweepFinished { solved, cached, .. }) => {
                assert_eq!((*solved, *cached), (0, 12));
            }
            other => panic!("expected SweepFinished, got {other:?}"),
        }
    }

    #[test]
    fn streaming_surfaces_solve_errors_as_failed_events() {
        use std::sync::mpsc::sync_channel;
        let registry = SolverRegistry::with_core_solvers();
        let solvers = registry.build_all(["kw:k=0"]).unwrap();
        let runner = ExperimentRunner::new().workers(2);
        let (tx, rx) = sync_channel(64);
        let (result, events) = std::thread::scope(|scope| {
            let consumer = scope.spawn(move || rx.iter().collect::<Vec<RunEvent>>());
            let result = runner.run_matrix_streaming(&solvers, &workloads(), 0..2, tx);
            (result, consumer.join().unwrap())
        });
        assert!(matches!(result, Err(SolveError::Core(_))));
        assert!(
            events
                .iter()
                .any(|e| matches!(e, RunEvent::CellFailed { .. })),
            "a solve error must surface as a CellFailed event"
        );
        match events.last() {
            Some(RunEvent::SweepFinished { failed, .. }) => assert!(*failed >= 1),
            other => panic!("expected SweepFinished, got {other:?}"),
        }
    }

    #[test]
    fn streaming_converts_worker_panics_into_failed_events_not_hangs() {
        use std::sync::mpsc::sync_channel;

        /// A solver that panics on one specific seed.
        struct Poisoned;
        impl DsSolver for Poisoned {
            fn spec(&self) -> String {
                "poisoned".to_string()
            }
            fn solve(
                &self,
                g: &CsrGraph,
                ctx: &SolveContext,
            ) -> Result<crate::solver::SolveReport, SolveError> {
                if ctx.seed == 1 {
                    panic!("poisoned at seed 1");
                }
                let ds = kw_graph::DominatingSet::all(g);
                Ok(crate::solver::ReportBuilder::new("poisoned", ds).finish(g, ctx))
            }
        }

        // Sequential: exactly one cell reaches the poisoned seed before
        // the abort (parallel workers may each fail their own cell).
        let runner = ExperimentRunner::new().workers(1);
        let (tx, rx) = sync_channel(64);
        let (result, events) = std::thread::scope(|scope| {
            let consumer = scope.spawn(move || rx.iter().collect::<Vec<RunEvent>>());
            let result = runner.run_matrix_streaming(&[Poisoned], &workloads(), 0..3, tx);
            (result, consumer.join().unwrap())
        });
        match result {
            Err(SolveError::Panicked { reason }) => assert!(reason.contains("poisoned")),
            other => panic!("expected Panicked, got {other:?}"),
        }
        let failed: Vec<_> = events
            .iter()
            .filter_map(|e| match e {
                RunEvent::CellFailed { seed, error, .. } => Some((*seed, error.clone())),
                _ => None,
            })
            .collect();
        assert_eq!(failed.len(), 1);
        assert_eq!(failed[0].0, 1);
        assert!(failed[0].1.contains("panicked"));
    }

    /// A panic raised by a *pool worker thread* inside the engine (not
    /// the solver's own thread) must still surface as a `CellFailed`
    /// event naming the exact run — not a hung barrier or leaked pool.
    #[test]
    fn pooled_engine_panic_surfaces_as_cell_failed_with_run_id() {
        use std::sync::mpsc::sync_channel;

        struct Bomb {
            me: usize,
        }
        impl kw_sim::Protocol for Bomb {
            type Msg = u64;
            type Output = u64;
            fn on_round(&mut self, ctx: &mut kw_sim::Ctx<'_, u64>) -> kw_sim::Status {
                // The highest node id lands in the last chunk, which a
                // pool worker (not the driving thread) executes at 4T.
                if ctx.round() == 1 && self.me == 15 {
                    panic!("pooled phase exploded");
                }
                ctx.broadcast(1);
                kw_sim::Status::Running
            }
            fn finish(self) -> u64 {
                0
            }
        }

        struct PoolBomb;
        impl DsSolver for PoolBomb {
            fn spec(&self) -> String {
                "poolbomb".to_string()
            }
            fn solve(
                &self,
                g: &CsrGraph,
                ctx: &SolveContext,
            ) -> Result<crate::solver::SolveReport, SolveError> {
                let report = kw_sim::Engine::new(
                    g,
                    kw_sim::EngineConfig {
                        threads: ctx.threads,
                        ..Default::default()
                    },
                    |info| Bomb {
                        me: info.id.raw() as usize,
                    },
                )
                .run();
                unreachable!("the engine panics before returning: {report:?}")
            }
        }

        let runner = ExperimentRunner::new().context(SolveContext {
            threads: 4,
            ..Default::default()
        });
        let grid = vec![("grid4".to_string(), generators::grid(4, 4))];
        let (tx, rx) = sync_channel(64);
        let (result, events) = std::thread::scope(|scope| {
            let consumer = scope.spawn(move || rx.iter().collect::<Vec<RunEvent>>());
            let result = runner.run_matrix_streaming(&[PoolBomb], &grid, 0..1, tx);
            (result, consumer.join().unwrap())
        });
        match result {
            Err(SolveError::Panicked { reason }) => {
                assert!(reason.contains("poolbomb on grid4 (seed 0"), "{reason}");
                assert!(reason.contains("pooled phase exploded"), "{reason}");
            }
            other => panic!("expected Panicked, got {other:?}"),
        }
        let failed: Vec<_> = events
            .iter()
            .filter_map(|e| match e {
                RunEvent::CellFailed { error, .. } => Some(error.clone()),
                _ => None,
            })
            .collect();
        assert_eq!(failed.len(), 1);
        assert!(
            failed[0].contains("poolbomb on grid4 (seed 0"),
            "{}",
            failed[0]
        );
    }

    #[test]
    fn insert_outcome_replays_like_a_live_run() {
        let registry = SolverRegistry::with_core_solvers();
        let solvers = registry.build_all(["kw:k=2"]).unwrap();
        // Solve once to learn the true outcomes.
        let warm_cache = ExperimentCache::new();
        let runner = ExperimentRunner::new().cache(warm_cache.clone());
        let live = runner.run_matrix(&solvers, &workloads(), 0..2).unwrap();
        // Replay them into a *fresh* cache through the resume hook.
        let replayed = ExperimentCache::new();
        {
            let outcomes = warm_cache.outcomes.lock().unwrap();
            for ((solver, workload, seed, chaos, threads), outcome) in outcomes.iter() {
                replayed.insert_outcome(solver, workload, *seed, chaos, *threads, *outcome);
            }
        }
        let resumed = ExperimentRunner::new()
            .cache(replayed.clone())
            .run_matrix(&solvers, &workloads(), 0..2)
            .unwrap();
        assert_eq!(replayed.misses(), 0, "resume must re-solve nothing");
        assert_eq!(
            replayed.hits(),
            (solvers.len() * workloads().len() * 2) as u64
        );
        for (a, b) in live.iter().zip(&resumed) {
            assert_eq!(a.size, b.size);
            assert_eq!(a.messages, b.messages);
            assert_eq!(a.ratio_vs_lemma1, b.ratio_vs_lemma1);
        }
    }

    #[test]
    fn graph_cache_builds_each_workload_once() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let cache = ExperimentCache::new();
        let builds = AtomicUsize::new(0);
        let build = || {
            builds.fetch_add(1, Ordering::Relaxed);
            generators::grid(3, 3)
        };
        let a = cache.graph("grid3", 7, build);
        let b = cache.graph("grid3", 7, || unreachable!("must reuse the stored graph"));
        assert_eq!(builds.load(Ordering::Relaxed), 1);
        assert_eq!(*a, *b);
        // A different seed is a different cell.
        let _ = cache.graph("grid3", 8, || generators::grid(3, 3));
        assert_eq!(cache.graph("grid3", 8, || unreachable!()).len(), 9);
        // Peeking never builds: a present cell is returned, an absent
        // one is just `None`.
        assert_eq!(cache.cached_graph("grid3", 7).unwrap().len(), 9);
        assert!(cache.cached_graph("grid3", 99).is_none());
        assert!(cache.cached_graph("other", 7).is_none());
    }

    /// The serving path: `outcome()` observes exactly what a sweep
    /// stored, counts hits/misses like a sweep lookup, and
    /// `outcome_count()` reports the memo size (what a daemon logs after
    /// warming from its store).
    #[test]
    fn direct_outcome_lookup_serves_sweep_results() {
        let registry = SolverRegistry::with_core_solvers();
        let solvers = registry.build_all(["kw:k=2"]).unwrap();
        let cache = ExperimentCache::new();
        let runner = ExperimentRunner::new().cache(cache.clone());
        let ctx = runner.base_context();
        assert_eq!(cache.outcome_count(), 0);
        assert!(cache.outcome("kw:k=2", "grid4", 0, &ctx).is_none());
        assert_eq!((cache.hits(), cache.misses()), (0, 1));
        runner.run_matrix(&solvers, &workloads(), 0..2).unwrap();
        assert_eq!(cache.outcome_count(), 2 * workloads().len());
        let hits_before = cache.hits();
        let outcome = cache
            .outcome("kw:k=2", "grid4", 0, &ctx)
            .expect("solved cell is served");
        assert!(outcome.dominates);
        assert_eq!(cache.hits(), hits_before + 1);
        // A different fault plan is a different cell.
        let faulty = SolveContext {
            faults: kw_sim::FaultPlan::drop_with_probability(0.5, 7).into(),
            ..ctx.clone()
        };
        assert!(cache.outcome("kw:k=2", "grid4", 0, &faulty).is_none());
    }
}
