//! Batched experiment execution over a solver × workload × seed matrix,
//! with an optional `(workload, seed)`-keyed cell cache.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use kw_graph::CsrGraph;

use crate::solver::{DsSolver, SolveContext, SolveError};

/// The numbers a [`CellSummary`] aggregates from one `(solver, workload,
/// seed)` run — everything the runner needs to re-summarize a cell without
/// re-solving it.
#[derive(Clone, Copy, Debug, PartialEq)]
struct RunOutcome {
    dominates: bool,
    size: f64,
    rounds: f64,
    messages: f64,
    ratio_vs_lemma1: f64,
}

/// Cache key of one run outcome: `(solver spec, workload label, seed,
/// fault-plan fingerprint)`.
type OutcomeKey = (String, String, u64, (u64, u64));

/// Memoization shared across [`ExperimentRunner`] sweeps (ROADMAP item
/// (b)): generated workload graphs keyed by `(workload, seed)`, and run
/// outcomes keyed by `(solver spec, workload, seed)`.
///
/// Experiment binaries routinely sweep overlapping matrices (the same
/// workloads against growing solver lists, or the same cells with more
/// seeds); attaching one cache makes every repeated cell free. Workloads
/// are keyed by *label*, so two different graphs must not share a
/// workload label within one cache — the same requirement run output
/// tables already impose. Outcomes are additionally keyed by the
/// context's fault plan (the only context knob besides the seed that
/// changes results), so runners with different loss models can share one
/// cache safely.
///
/// Cloning the handle is cheap and shares the underlying cache; it is
/// thread-safe and deterministic (a hit returns exactly what the original
/// run produced).
///
/// # Example
///
/// ```
/// use kw_core::solver::{ExperimentCache, ExperimentRunner, SolverRegistry};
/// use kw_graph::generators;
///
/// let registry = SolverRegistry::with_core_solvers();
/// let solvers = registry.build_all(["kw:k=2"])?;
/// let cache = ExperimentCache::new();
/// let runner = ExperimentRunner::new().cache(cache.clone());
/// let workloads = vec![("grid4".to_string(), generators::grid(4, 4))];
/// let first = runner.run_matrix(&solvers, &workloads, 0..3)?;
/// let again = runner.run_matrix(&solvers, &workloads, 0..3)?;
/// assert_eq!(first[0].size, again[0].size);
/// assert_eq!(cache.hits(), 3); // the second sweep re-solved nothing
/// # Ok::<(), kw_core::solver::SolveError>(())
/// ```
#[derive(Debug, Default)]
pub struct ExperimentCache {
    graphs: Mutex<HashMap<(String, u64), Arc<CsrGraph>>>,
    /// Keyed by `(solver spec, workload, seed, fault fingerprint)` — the
    /// fault plan is the one piece of [`SolveContext`] besides the seed
    /// that changes results, so runners with different loss models can
    /// safely share one cache.
    outcomes: Mutex<HashMap<OutcomeKey, RunOutcome>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl ExperimentCache {
    /// Creates an empty shared cache.
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Returns the graph for `(workload, seed)`, generating it with
    /// `build` on first use and reusing the stored copy afterwards.
    pub fn graph(
        &self,
        workload: &str,
        seed: u64,
        build: impl FnOnce() -> CsrGraph,
    ) -> Arc<CsrGraph> {
        let mut graphs = self.graphs.lock().unwrap();
        graphs
            .entry((workload.to_string(), seed))
            .or_insert_with(|| Arc::new(build()))
            .clone()
    }

    /// Number of run outcomes served from the cache.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Number of run outcomes that had to be solved and were then stored.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// The part of a context that (together with the per-run seed) can
    /// change a run's outcome: the fault plan.
    fn context_fingerprint(ctx: &SolveContext) -> (u64, u64) {
        (ctx.faults.drop_probability().to_bits(), ctx.faults.seed())
    }

    fn lookup(
        &self,
        solver: &str,
        workload: &str,
        seed: u64,
        ctx: &SolveContext,
    ) -> Option<RunOutcome> {
        let key = (
            solver.to_string(),
            workload.to_string(),
            seed,
            Self::context_fingerprint(ctx),
        );
        let found = self.outcomes.lock().unwrap().get(&key).copied();
        match found {
            Some(o) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(o)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    fn store(
        &self,
        solver: &str,
        workload: &str,
        seed: u64,
        ctx: &SolveContext,
        outcome: RunOutcome,
    ) {
        let key = (
            solver.to_string(),
            workload.to_string(),
            seed,
            Self::context_fingerprint(ctx),
        );
        self.outcomes.lock().unwrap().insert(key, outcome);
    }
}

/// Five-number summary of a sample set.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct SummaryStats {
    /// Number of samples.
    pub count: usize,
    /// Arithmetic mean (0 when empty).
    pub mean: f64,
    /// Population standard deviation (0 when empty).
    pub std_dev: f64,
    /// Minimum (0 when empty).
    pub min: f64,
    /// Maximum (0 when empty).
    pub max: f64,
}

impl SummaryStats {
    /// Summarizes `samples`.
    pub fn from_samples(samples: &[f64]) -> Self {
        if samples.is_empty() {
            return Self::default();
        }
        let count = samples.len();
        let mean = samples.iter().sum::<f64>() / count as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / count as f64;
        SummaryStats {
            count,
            mean,
            std_dev: var.sqrt(),
            min: samples.iter().copied().fold(f64::INFINITY, f64::min),
            max: samples.iter().copied().fold(f64::NEG_INFINITY, f64::max),
        }
    }
}

/// Aggregated results of one (solver, workload) cell across seeds.
#[derive(Clone, Debug)]
pub struct CellSummary {
    /// Canonical spec of the solver.
    pub solver: String,
    /// Workload label.
    pub workload: String,
    /// Node count of the workload graph.
    pub n: usize,
    /// Maximum degree `Δ` of the workload graph.
    pub max_degree: usize,
    /// Number of seeds run.
    pub runs: usize,
    /// Runs whose output failed to dominate (possible only under message
    /// loss; always 0 on reliable networks).
    pub failures: usize,
    /// Dominating-set sizes.
    pub size: SummaryStats,
    /// Synchronous round counts (identical across seeds for the paper's
    /// constant-round algorithms).
    pub rounds: SummaryStats,
    /// Total message counts.
    pub messages: SummaryStats,
    /// Ratio of set size to the Lemma-1 lower bound.
    pub ratio_vs_lemma1: SummaryStats,
}

/// Runs solver × workload × seed matrices, optionally spreading cells
/// over worker threads.
///
/// Results are deterministic and thread-count-independent: each cell's
/// seeds run in order, and cells are returned in solver-major order
/// (`solvers[0]` over all workloads first) regardless of scheduling.
///
/// # Example
///
/// ```
/// use kw_core::solver::{ExperimentRunner, SolveContext, SolverRegistry};
/// use kw_graph::generators;
///
/// let registry = SolverRegistry::with_core_solvers();
/// let solvers = registry.build_all(["kw:k=2", "alg2:k=2"])?;
/// let workloads = vec![("grid5".to_string(), generators::grid(5, 5))];
/// let cells = ExperimentRunner::new()
///     .run_matrix(&solvers, &workloads, 0..4)?;
/// assert_eq!(cells.len(), 2);
/// assert_eq!(cells[0].runs, 4);
/// assert_eq!(cells[0].failures, 0);
/// # Ok::<(), kw_core::solver::SolveError>(())
/// ```
#[derive(Clone, Debug, Default)]
pub struct ExperimentRunner {
    base: SolveContext,
    workers: usize,
    cache: Option<Arc<ExperimentCache>>,
}

impl ExperimentRunner {
    /// A sequential runner with the default context.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the base context (per-run seeds override its `seed`).
    pub fn context(mut self, ctx: SolveContext) -> Self {
        self.base = ctx;
        self
    }

    /// Sets the number of worker threads over cells (`<= 1` sequential,
    /// `0` = all available cores). Does not affect results.
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Attaches a shared [`ExperimentCache`]: `(solver, workload, seed)`
    /// runs already in the cache are served from it instead of re-solved.
    /// Does not affect results.
    pub fn cache(mut self, cache: Arc<ExperimentCache>) -> Self {
        self.cache = Some(cache);
        self
    }

    /// Runs every solver on every workload for every seed, aggregating
    /// each (solver, workload) cell.
    ///
    /// # Errors
    ///
    /// The first [`SolveError`] aborts the sweep. Outputs that fail to
    /// dominate are *not* errors; they are counted per cell in
    /// [`CellSummary::failures`] (and excluded from the quality stats).
    pub fn run_matrix<S: DsSolver>(
        &self,
        solvers: &[S],
        workloads: &[(String, CsrGraph)],
        seeds: impl IntoIterator<Item = u64>,
    ) -> Result<Vec<CellSummary>, SolveError> {
        let seeds: Vec<u64> = seeds.into_iter().collect();
        let cells: Vec<(usize, usize)> = (0..solvers.len())
            .flat_map(|s| (0..workloads.len()).map(move |w| (s, w)))
            .collect();
        let results = Mutex::new(vec![None; cells.len()]);
        let first_error = Mutex::new(None::<SolveError>);
        let next = AtomicUsize::new(0);
        let workers = match self.workers {
            0 => std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1),
            w => w,
        }
        .min(cells.len().max(1));
        let work = |_worker: usize| loop {
            let i = next.fetch_add(1, Ordering::Relaxed);
            if i >= cells.len() || first_error.lock().unwrap().is_some() {
                break;
            }
            let (s, w) = cells[i];
            let (label, graph) = &workloads[w];
            match self.run_cell(&solvers[s], label, graph, &seeds) {
                Ok(summary) => results.lock().unwrap()[i] = Some(summary),
                Err(e) => {
                    first_error.lock().unwrap().get_or_insert(e);
                    break;
                }
            }
        };
        if workers <= 1 {
            work(0);
        } else {
            std::thread::scope(|scope| {
                for worker in 0..workers {
                    scope.spawn(move || work(worker));
                }
            });
        }
        if let Some(e) = first_error.into_inner().unwrap() {
            return Err(e);
        }
        Ok(results
            .into_inner()
            .unwrap()
            .into_iter()
            .map(|c| c.expect("all cells completed"))
            .collect())
    }

    fn run_cell<S: DsSolver>(
        &self,
        solver: &S,
        label: &str,
        graph: &CsrGraph,
        seeds: &[u64],
    ) -> Result<CellSummary, SolveError> {
        // Certificates drive the ratio column and failure detection; the
        // sweep needs them regardless of the base context's preference.
        let ctx = SolveContext {
            check_certificates: true,
            ..self.base
        };
        let spec = solver.spec();
        let mut sizes = Vec::new();
        let mut rounds = Vec::new();
        let mut messages = Vec::new();
        let mut ratios = Vec::new();
        let mut runs = 0usize;
        let mut failures = 0usize;
        for &seed in seeds {
            let outcome = match self
                .cache
                .as_deref()
                .and_then(|c| c.lookup(&spec, label, seed, &ctx))
            {
                Some(outcome) => outcome,
                None => {
                    let report = solver.solve(graph, &ctx.with_seed(seed))?;
                    let cert = report.certificate.as_ref().expect("certificates forced on");
                    let outcome = RunOutcome {
                        dominates: cert.dominates,
                        size: report.size() as f64,
                        rounds: report.rounds() as f64,
                        messages: report.messages() as f64,
                        ratio_vs_lemma1: cert.ratio_vs_lemma1,
                    };
                    if let Some(cache) = self.cache.as_deref() {
                        cache.store(&spec, label, seed, &ctx, outcome);
                    }
                    outcome
                }
            };
            runs += 1;
            if !outcome.dominates {
                failures += 1;
                continue;
            }
            sizes.push(outcome.size);
            rounds.push(outcome.rounds);
            messages.push(outcome.messages);
            ratios.push(outcome.ratio_vs_lemma1);
        }
        Ok(CellSummary {
            solver: spec,
            workload: label.to_string(),
            n: graph.len(),
            max_degree: graph.max_degree(),
            runs,
            failures,
            size: SummaryStats::from_samples(&sizes),
            rounds: SummaryStats::from_samples(&rounds),
            messages: SummaryStats::from_samples(&messages),
            ratio_vs_lemma1: SummaryStats::from_samples(&ratios),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::SolverRegistry;
    use kw_graph::generators;

    fn workloads() -> Vec<(String, CsrGraph)> {
        vec![
            ("grid4".to_string(), generators::grid(4, 4)),
            ("petersen".to_string(), generators::petersen()),
        ]
    }

    #[test]
    fn summary_stats_basics() {
        let s = SummaryStats::from_samples(&[1.0, 2.0, 3.0]);
        assert_eq!(s.count, 3);
        assert!((s.mean - 2.0).abs() < 1e-12);
        assert!((s.std_dev - (2.0f64 / 3.0).sqrt()).abs() < 1e-12);
        assert_eq!((s.min, s.max), (1.0, 3.0));
        assert_eq!(SummaryStats::from_samples(&[]), SummaryStats::default());
    }

    #[test]
    fn matrix_covers_all_cells_in_solver_major_order() {
        let registry = SolverRegistry::with_core_solvers();
        let solvers = registry.build_all(["kw:k=2", "composite:k=2"]).unwrap();
        let cells = ExperimentRunner::new()
            .run_matrix(&solvers, &workloads(), 0..3)
            .unwrap();
        assert_eq!(cells.len(), 4);
        assert_eq!(
            cells
                .iter()
                .map(|c| (c.solver.as_str(), c.workload.as_str()))
                .collect::<Vec<_>>(),
            vec![
                ("kw:k=2", "grid4"),
                ("kw:k=2", "petersen"),
                ("composite:k=2", "grid4"),
                ("composite:k=2", "petersen"),
            ]
        );
        for cell in &cells {
            assert_eq!(cell.runs, 3);
            assert_eq!(cell.failures, 0);
            assert_eq!(cell.size.count, 3);
            assert!(cell.size.mean >= 1.0);
            assert!(cell.ratio_vs_lemma1.mean >= 1.0 - 1e-9);
            // Constant-round algorithms: identical rounds across seeds.
            assert_eq!(cell.rounds.min, cell.rounds.max);
        }
    }

    #[test]
    fn parallel_matches_sequential() {
        let registry = SolverRegistry::with_core_solvers();
        let solvers = registry
            .build_all(["kw:k=2", "alg2:k=2", "composite:k=3"])
            .unwrap();
        let seq = ExperimentRunner::new()
            .run_matrix(&solvers, &workloads(), 0..2)
            .unwrap();
        let par = ExperimentRunner::new()
            .workers(4)
            .run_matrix(&solvers, &workloads(), 0..2)
            .unwrap();
        assert_eq!(seq.len(), par.len());
        for (a, b) in seq.iter().zip(&par) {
            assert_eq!(
                (a.solver.as_str(), a.workload.as_str()),
                (b.solver.as_str(), b.workload.as_str())
            );
            assert_eq!(a.size, b.size);
            assert_eq!(a.messages, b.messages);
        }
    }

    #[test]
    fn solve_errors_abort_the_sweep() {
        let registry = SolverRegistry::with_core_solvers();
        let solvers = registry.build_all(["kw:k=0"]).unwrap();
        let err = ExperimentRunner::new().run_matrix(&solvers, &workloads(), 0..2);
        assert!(matches!(err, Err(SolveError::Core(_))));
    }

    #[test]
    fn empty_matrix_is_empty() {
        let registry = SolverRegistry::with_core_solvers();
        let solvers = registry.build_all(["kw"]).unwrap();
        let cells = ExperimentRunner::new()
            .run_matrix(&solvers, &[], 0..2)
            .unwrap();
        assert!(cells.is_empty());
    }

    #[test]
    fn cache_serves_repeated_cells_without_resolving() {
        let registry = SolverRegistry::with_core_solvers();
        let solvers = registry.build_all(["kw:k=2", "composite:k=2"]).unwrap();
        let cache = ExperimentCache::new();
        let runner = ExperimentRunner::new().cache(cache.clone());
        let first = runner.run_matrix(&solvers, &workloads(), 0..3).unwrap();
        let triples = solvers.len() * workloads().len() * 3;
        assert_eq!(cache.misses(), triples as u64);
        assert_eq!(cache.hits(), 0);
        let second = runner.run_matrix(&solvers, &workloads(), 0..3).unwrap();
        assert_eq!(
            cache.hits(),
            triples as u64,
            "second sweep must be all hits"
        );
        assert_eq!(
            cache.misses(),
            triples as u64,
            "second sweep must not solve"
        );
        for (a, b) in first.iter().zip(&second) {
            assert_eq!(a.size, b.size);
            assert_eq!(a.rounds, b.rounds);
            assert_eq!(a.messages, b.messages);
            assert_eq!(a.ratio_vs_lemma1, b.ratio_vs_lemma1);
            assert_eq!(a.failures, b.failures);
        }
    }

    #[test]
    fn cache_extends_to_new_seeds_incrementally() {
        let registry = SolverRegistry::with_core_solvers();
        let solvers = registry.build_all(["kw:k=2"]).unwrap();
        let cache = ExperimentCache::new();
        let runner = ExperimentRunner::new().cache(cache.clone());
        let narrow = runner.run_matrix(&solvers, &workloads(), 0..2).unwrap();
        // Widening the seed range re-solves only the new seeds.
        let wide = runner.run_matrix(&solvers, &workloads(), 0..4).unwrap();
        assert_eq!(cache.hits(), (solvers.len() * workloads().len() * 2) as u64);
        assert_eq!(
            cache.misses(),
            (solvers.len() * workloads().len() * 4) as u64
        );
        assert_eq!(wide[0].runs, 4);
        // And matches an uncached run bit for bit.
        let uncached = ExperimentRunner::new()
            .run_matrix(&solvers, &workloads(), 0..4)
            .unwrap();
        for (a, b) in wide.iter().zip(&uncached) {
            assert_eq!(a.size, b.size);
            assert_eq!(a.messages, b.messages);
        }
        assert_eq!(narrow[0].runs, 2);
    }

    #[test]
    fn cached_and_uncached_parallel_sweeps_agree() {
        let registry = SolverRegistry::with_core_solvers();
        let solvers = registry.build_all(["kw:k=2", "alg2:k=2"]).unwrap();
        let cache = ExperimentCache::new();
        let cached_runner = ExperimentRunner::new().workers(4).cache(cache);
        let warm = cached_runner
            .run_matrix(&solvers, &workloads(), 0..2)
            .unwrap();
        let replay = cached_runner
            .run_matrix(&solvers, &workloads(), 0..2)
            .unwrap();
        for (a, b) in warm.iter().zip(&replay) {
            assert_eq!(a.size, b.size);
            assert_eq!(a.messages, b.messages);
            assert_eq!(a.ratio_vs_lemma1, b.ratio_vs_lemma1);
        }
    }

    #[test]
    fn cache_distinguishes_fault_plans() {
        use kw_sim::FaultPlan;
        let registry = SolverRegistry::with_core_solvers();
        let solvers = registry.build_all(["kw:k=2"]).unwrap();
        let cache = ExperimentCache::new();
        let reliable = ExperimentRunner::new().cache(cache.clone());
        let lossy = ExperimentRunner::new()
            .context(SolveContext {
                faults: FaultPlan::drop_with_probability(0.4, 5),
                ..Default::default()
            })
            .cache(cache.clone());
        let clean = reliable.run_matrix(&solvers, &workloads(), 0..2).unwrap();
        let noisy = lossy.run_matrix(&solvers, &workloads(), 0..2).unwrap();
        // The lossy sweep must not be served the reliable outcomes.
        assert_eq!(cache.hits(), 0);
        assert_eq!(cache.misses(), (2 * workloads().len() * 2) as u64);
        // And a lossy re-run hits only the lossy entries.
        let noisy_again = lossy.run_matrix(&solvers, &workloads(), 0..2).unwrap();
        assert_eq!(cache.hits(), (workloads().len() * 2) as u64);
        for (a, b) in noisy.iter().zip(&noisy_again) {
            assert_eq!(a.size, b.size);
            assert_eq!(a.failures, b.failures);
        }
        // Sanity: lossy messages differ from reliable only via outcomes,
        // both summaries exist independently.
        assert_eq!(clean[0].runs, 2);
    }

    #[test]
    fn graph_cache_builds_each_workload_once() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let cache = ExperimentCache::new();
        let builds = AtomicUsize::new(0);
        let build = || {
            builds.fetch_add(1, Ordering::Relaxed);
            generators::grid(3, 3)
        };
        let a = cache.graph("grid3", 7, build);
        let b = cache.graph("grid3", 7, || unreachable!("must reuse the stored graph"));
        assert_eq!(builds.load(Ordering::Relaxed), 1);
        assert_eq!(*a, *b);
        // A different seed is a different cell.
        let _ = cache.graph("grid3", 8, || generators::grid(3, 3));
        assert_eq!(cache.graph("grid3", 8, || unreachable!()).len(), 9);
    }
}
