//! Batched experiment execution over a solver × workload × seed matrix.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use kw_graph::CsrGraph;

use crate::solver::{DsSolver, SolveContext, SolveError};

/// Five-number summary of a sample set.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct SummaryStats {
    /// Number of samples.
    pub count: usize,
    /// Arithmetic mean (0 when empty).
    pub mean: f64,
    /// Population standard deviation (0 when empty).
    pub std_dev: f64,
    /// Minimum (0 when empty).
    pub min: f64,
    /// Maximum (0 when empty).
    pub max: f64,
}

impl SummaryStats {
    /// Summarizes `samples`.
    pub fn from_samples(samples: &[f64]) -> Self {
        if samples.is_empty() {
            return Self::default();
        }
        let count = samples.len();
        let mean = samples.iter().sum::<f64>() / count as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / count as f64;
        SummaryStats {
            count,
            mean,
            std_dev: var.sqrt(),
            min: samples.iter().copied().fold(f64::INFINITY, f64::min),
            max: samples.iter().copied().fold(f64::NEG_INFINITY, f64::max),
        }
    }
}

/// Aggregated results of one (solver, workload) cell across seeds.
#[derive(Clone, Debug)]
pub struct CellSummary {
    /// Canonical spec of the solver.
    pub solver: String,
    /// Workload label.
    pub workload: String,
    /// Node count of the workload graph.
    pub n: usize,
    /// Maximum degree `Δ` of the workload graph.
    pub max_degree: usize,
    /// Number of seeds run.
    pub runs: usize,
    /// Runs whose output failed to dominate (possible only under message
    /// loss; always 0 on reliable networks).
    pub failures: usize,
    /// Dominating-set sizes.
    pub size: SummaryStats,
    /// Synchronous round counts (identical across seeds for the paper's
    /// constant-round algorithms).
    pub rounds: SummaryStats,
    /// Total message counts.
    pub messages: SummaryStats,
    /// Ratio of set size to the Lemma-1 lower bound.
    pub ratio_vs_lemma1: SummaryStats,
}

/// Runs solver × workload × seed matrices, optionally spreading cells
/// over worker threads.
///
/// Results are deterministic and thread-count-independent: each cell's
/// seeds run in order, and cells are returned in solver-major order
/// (`solvers[0]` over all workloads first) regardless of scheduling.
///
/// # Example
///
/// ```
/// use kw_core::solver::{ExperimentRunner, SolveContext, SolverRegistry};
/// use kw_graph::generators;
///
/// let registry = SolverRegistry::with_core_solvers();
/// let solvers = registry.build_all(["kw:k=2", "alg2:k=2"])?;
/// let workloads = vec![("grid5".to_string(), generators::grid(5, 5))];
/// let cells = ExperimentRunner::new()
///     .run_matrix(&solvers, &workloads, 0..4)?;
/// assert_eq!(cells.len(), 2);
/// assert_eq!(cells[0].runs, 4);
/// assert_eq!(cells[0].failures, 0);
/// # Ok::<(), kw_core::solver::SolveError>(())
/// ```
#[derive(Clone, Debug, Default)]
pub struct ExperimentRunner {
    base: SolveContext,
    workers: usize,
}

impl ExperimentRunner {
    /// A sequential runner with the default context.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the base context (per-run seeds override its `seed`).
    pub fn context(mut self, ctx: SolveContext) -> Self {
        self.base = ctx;
        self
    }

    /// Sets the number of worker threads over cells (`<= 1` sequential,
    /// `0` = all available cores). Does not affect results.
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Runs every solver on every workload for every seed, aggregating
    /// each (solver, workload) cell.
    ///
    /// # Errors
    ///
    /// The first [`SolveError`] aborts the sweep. Outputs that fail to
    /// dominate are *not* errors; they are counted per cell in
    /// [`CellSummary::failures`] (and excluded from the quality stats).
    pub fn run_matrix<S: DsSolver>(
        &self,
        solvers: &[S],
        workloads: &[(String, CsrGraph)],
        seeds: impl IntoIterator<Item = u64>,
    ) -> Result<Vec<CellSummary>, SolveError> {
        let seeds: Vec<u64> = seeds.into_iter().collect();
        let cells: Vec<(usize, usize)> = (0..solvers.len())
            .flat_map(|s| (0..workloads.len()).map(move |w| (s, w)))
            .collect();
        let results = Mutex::new(vec![None; cells.len()]);
        let first_error = Mutex::new(None::<SolveError>);
        let next = AtomicUsize::new(0);
        let workers = match self.workers {
            0 => std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1),
            w => w,
        }
        .min(cells.len().max(1));
        let work = |_worker: usize| loop {
            let i = next.fetch_add(1, Ordering::Relaxed);
            if i >= cells.len() || first_error.lock().unwrap().is_some() {
                break;
            }
            let (s, w) = cells[i];
            let (label, graph) = &workloads[w];
            match self.run_cell(&solvers[s], label, graph, &seeds) {
                Ok(summary) => results.lock().unwrap()[i] = Some(summary),
                Err(e) => {
                    first_error.lock().unwrap().get_or_insert(e);
                    break;
                }
            }
        };
        if workers <= 1 {
            work(0);
        } else {
            std::thread::scope(|scope| {
                for worker in 0..workers {
                    scope.spawn(move || work(worker));
                }
            });
        }
        if let Some(e) = first_error.into_inner().unwrap() {
            return Err(e);
        }
        Ok(results
            .into_inner()
            .unwrap()
            .into_iter()
            .map(|c| c.expect("all cells completed"))
            .collect())
    }

    fn run_cell<S: DsSolver>(
        &self,
        solver: &S,
        label: &str,
        graph: &CsrGraph,
        seeds: &[u64],
    ) -> Result<CellSummary, SolveError> {
        // Certificates drive the ratio column and failure detection; the
        // sweep needs them regardless of the base context's preference.
        let ctx = SolveContext {
            check_certificates: true,
            ..self.base
        };
        let mut sizes = Vec::new();
        let mut rounds = Vec::new();
        let mut messages = Vec::new();
        let mut ratios = Vec::new();
        let mut runs = 0usize;
        let mut failures = 0usize;
        for &seed in seeds {
            let report = solver.solve(graph, &ctx.with_seed(seed))?;
            runs += 1;
            let cert = report.certificate.as_ref().expect("certificates forced on");
            if !cert.dominates {
                failures += 1;
                continue;
            }
            sizes.push(report.size() as f64);
            rounds.push(report.rounds() as f64);
            messages.push(report.messages() as f64);
            ratios.push(cert.ratio_vs_lemma1);
        }
        Ok(CellSummary {
            solver: solver.spec(),
            workload: label.to_string(),
            n: graph.len(),
            max_degree: graph.max_degree(),
            runs,
            failures,
            size: SummaryStats::from_samples(&sizes),
            rounds: SummaryStats::from_samples(&rounds),
            messages: SummaryStats::from_samples(&messages),
            ratio_vs_lemma1: SummaryStats::from_samples(&ratios),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::SolverRegistry;
    use kw_graph::generators;

    fn workloads() -> Vec<(String, CsrGraph)> {
        vec![
            ("grid4".to_string(), generators::grid(4, 4)),
            ("petersen".to_string(), generators::petersen()),
        ]
    }

    #[test]
    fn summary_stats_basics() {
        let s = SummaryStats::from_samples(&[1.0, 2.0, 3.0]);
        assert_eq!(s.count, 3);
        assert!((s.mean - 2.0).abs() < 1e-12);
        assert!((s.std_dev - (2.0f64 / 3.0).sqrt()).abs() < 1e-12);
        assert_eq!((s.min, s.max), (1.0, 3.0));
        assert_eq!(SummaryStats::from_samples(&[]), SummaryStats::default());
    }

    #[test]
    fn matrix_covers_all_cells_in_solver_major_order() {
        let registry = SolverRegistry::with_core_solvers();
        let solvers = registry.build_all(["kw:k=2", "composite:k=2"]).unwrap();
        let cells = ExperimentRunner::new()
            .run_matrix(&solvers, &workloads(), 0..3)
            .unwrap();
        assert_eq!(cells.len(), 4);
        assert_eq!(
            cells
                .iter()
                .map(|c| (c.solver.as_str(), c.workload.as_str()))
                .collect::<Vec<_>>(),
            vec![
                ("kw:k=2", "grid4"),
                ("kw:k=2", "petersen"),
                ("composite:k=2", "grid4"),
                ("composite:k=2", "petersen"),
            ]
        );
        for cell in &cells {
            assert_eq!(cell.runs, 3);
            assert_eq!(cell.failures, 0);
            assert_eq!(cell.size.count, 3);
            assert!(cell.size.mean >= 1.0);
            assert!(cell.ratio_vs_lemma1.mean >= 1.0 - 1e-9);
            // Constant-round algorithms: identical rounds across seeds.
            assert_eq!(cell.rounds.min, cell.rounds.max);
        }
    }

    #[test]
    fn parallel_matches_sequential() {
        let registry = SolverRegistry::with_core_solvers();
        let solvers = registry
            .build_all(["kw:k=2", "alg2:k=2", "composite:k=3"])
            .unwrap();
        let seq = ExperimentRunner::new()
            .run_matrix(&solvers, &workloads(), 0..2)
            .unwrap();
        let par = ExperimentRunner::new()
            .workers(4)
            .run_matrix(&solvers, &workloads(), 0..2)
            .unwrap();
        assert_eq!(seq.len(), par.len());
        for (a, b) in seq.iter().zip(&par) {
            assert_eq!(
                (a.solver.as_str(), a.workload.as_str()),
                (b.solver.as_str(), b.workload.as_str())
            );
            assert_eq!(a.size, b.size);
            assert_eq!(a.messages, b.messages);
        }
    }

    #[test]
    fn solve_errors_abort_the_sweep() {
        let registry = SolverRegistry::with_core_solvers();
        let solvers = registry.build_all(["kw:k=0"]).unwrap();
        let err = ExperimentRunner::new().run_matrix(&solvers, &workloads(), 0..2);
        assert!(matches!(err, Err(SolveError::Core(_))));
    }

    #[test]
    fn empty_matrix_is_empty() {
        let registry = SolverRegistry::with_core_solvers();
        let solvers = registry.build_all(["kw"]).unwrap();
        let cells = ExperimentRunner::new()
            .run_matrix(&solvers, &[], 0..2)
            .unwrap();
        assert!(cells.is_empty());
    }
}
