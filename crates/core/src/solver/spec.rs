//! Solver spec strings: the registry's configuration grammar.
//!
//! ```text
//! spec     := name                     e.g. "greedy"
//!           | name ":" params         e.g. "kw:k=2,multiplier=ln"
//!           | name "(" spec ")"       e.g. "connected(kw:k=2)"
//! params   := key "=" value ("," key "=" value)*
//! ```
//!
//! Names and keys are lowercase identifiers (letters, digits, `-`, `_`).
//! Wrapper solvers (the `connected` CDS combinator) take their inner
//! solver as a parenthesized spec and may not also take `:` params.

use std::collections::BTreeMap;
use std::fmt;

use super::SolveError;

/// A parsed solver spec: a name, flat `key=value` parameters, and an
/// optional inner spec for combinators.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SolverSpec {
    /// The registry key.
    pub name: String,
    /// `key=value` parameters, sorted by key.
    pub params: BTreeMap<String, String>,
    /// The wrapped spec for combinator solvers (`name(inner)` form).
    pub inner: Option<Box<SolverSpec>>,
}

fn valid_name(s: &str) -> bool {
    !s.is_empty()
        && s.chars()
            .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || "-_".contains(c))
}

impl SolverSpec {
    /// Parses a spec string.
    ///
    /// # Errors
    ///
    /// [`SolveError::InvalidSpec`] on grammar violations (empty name,
    /// unbalanced parentheses, malformed `key=value` pairs).
    pub fn parse(text: &str) -> Result<Self, SolveError> {
        let bad = |reason: &str| SolveError::InvalidSpec {
            spec: text.to_string(),
            reason: reason.to_string(),
        };
        let trimmed = text.trim();
        if let Some(open) = trimmed.find('(') {
            let name = &trimmed[..open];
            if !valid_name(name) {
                return Err(bad("combinator name must be a lowercase identifier"));
            }
            let Some(rest) = trimmed[open + 1..].strip_suffix(')') else {
                return Err(bad("expected closing ')'"));
            };
            let inner = SolverSpec::parse(rest)?;
            return Ok(SolverSpec {
                name: name.to_string(),
                params: BTreeMap::new(),
                inner: Some(Box::new(inner)),
            });
        }
        let (name, params_text) = match trimmed.split_once(':') {
            Some((n, p)) => (n, Some(p)),
            None => (trimmed, None),
        };
        if !valid_name(name) {
            return Err(bad("solver name must be a nonempty lowercase identifier"));
        }
        let mut params = BTreeMap::new();
        if let Some(params_text) = params_text {
            for pair in params_text.split(',') {
                let Some((k, v)) = pair.split_once('=') else {
                    return Err(bad("parameters must be comma-separated key=value pairs"));
                };
                let (k, v) = (k.trim(), v.trim());
                if !valid_name(k) || v.is_empty() {
                    return Err(bad(
                        "parameter keys must be identifiers with nonempty values",
                    ));
                }
                if params.insert(k.to_string(), v.to_string()).is_some() {
                    return Err(bad("duplicate parameter key"));
                }
            }
        }
        Ok(SolverSpec {
            name: name.to_string(),
            params,
            inner: None,
        })
    }

    /// Fetches a parameter parsed as `T`, or `default` when absent.
    ///
    /// # Errors
    ///
    /// [`SolveError::InvalidSpec`] when present but unparseable.
    pub fn param<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, SolveError> {
        match self.params.get(key) {
            None => Ok(default),
            Some(raw) => raw.parse().map_err(|_| SolveError::InvalidSpec {
                spec: self.to_string(),
                reason: format!("parameter {key}={raw} is not a valid value"),
            }),
        }
    }

    /// Rejects parameters outside `allowed` (catches typos like `kk=2`).
    ///
    /// # Errors
    ///
    /// [`SolveError::InvalidSpec`] naming the first unknown key.
    pub fn expect_params(&self, allowed: &[&str]) -> Result<(), SolveError> {
        for key in self.params.keys() {
            if !allowed.contains(&key.as_str()) {
                return Err(SolveError::InvalidSpec {
                    spec: self.to_string(),
                    reason: format!(
                        "unknown parameter {key:?}; allowed: {}",
                        if allowed.is_empty() {
                            "(none)".to_string()
                        } else {
                            allowed.join(", ")
                        }
                    ),
                });
            }
        }
        Ok(())
    }

    /// The canonical spec string: parses back to an equal value
    /// (`SolverSpec::parse(&s.spec()) == Ok(s)`). Keys print sorted, so
    /// differently-ordered inputs canonicalize identically — this is
    /// the form manifests, cache keys, and store lines use.
    pub fn spec(&self) -> String {
        self.to_string()
    }

    /// The inner spec of a combinator.
    ///
    /// # Errors
    ///
    /// [`SolveError::InvalidSpec`] when the spec has no `(inner)` part.
    pub fn require_inner(&self) -> Result<&SolverSpec, SolveError> {
        self.inner
            .as_deref()
            .ok_or_else(|| SolveError::InvalidSpec {
                spec: self.to_string(),
                reason: format!(
                    "{} requires an inner solver, e.g. {}(greedy)",
                    self.name, self.name
                ),
            })
    }
}

impl fmt::Display for SolverSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name)?;
        if let Some(inner) = &self.inner {
            return write!(f, "({inner})");
        }
        for (i, (k, v)) in self.params.iter().enumerate() {
            f.write_str(if i == 0 { ":" } else { "," })?;
            write!(f, "{k}={v}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_bare_name() {
        let s = SolverSpec::parse("greedy").unwrap();
        assert_eq!(s.name, "greedy");
        assert!(s.params.is_empty() && s.inner.is_none());
    }

    #[test]
    fn parses_params() {
        let s = SolverSpec::parse("kw:k=3,multiplier=ln").unwrap();
        assert_eq!(s.name, "kw");
        assert_eq!(s.params["k"], "3");
        assert_eq!(s.params["multiplier"], "ln");
        assert_eq!(s.to_string(), "kw:k=3,multiplier=ln");
    }

    #[test]
    fn parses_nested_combinators() {
        let s = SolverSpec::parse("connected(kw:k=2)").unwrap();
        assert_eq!(s.name, "connected");
        let inner = s.require_inner().unwrap();
        assert_eq!(inner.name, "kw");
        assert_eq!(s.to_string(), "connected(kw:k=2)");
        let deep = SolverSpec::parse("connected(connected(trivial))").unwrap();
        assert_eq!(
            deep.require_inner().unwrap().require_inner().unwrap().name,
            "trivial"
        );
    }

    #[test]
    fn typed_param_access() {
        let s = SolverSpec::parse("kw:k=4").unwrap();
        assert_eq!(s.param("k", 2u32).unwrap(), 4);
        assert_eq!(s.param("missing", 9usize).unwrap(), 9);
        assert!(SolverSpec::parse("kw:k=banana")
            .unwrap()
            .param("k", 2u32)
            .is_err());
    }

    #[test]
    fn expect_params_catches_typos() {
        let s = SolverSpec::parse("kw:kk=2").unwrap();
        assert!(s.expect_params(&["k"]).is_err());
        assert!(s.expect_params(&["k", "kk"]).is_ok());
    }

    #[test]
    fn rejects_malformed_specs() {
        for bad in [
            "",
            ":",
            "kw:",
            "kw:k",
            "kw:k=",
            "KW",
            "connected(",
            "connected)",
            "connected()",
            "kw:k=1,k=2",
            "wrap(a)(b)",
            "na me",
        ] {
            assert!(SolverSpec::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn display_roundtrips_through_parse() {
        for text in [
            "greedy",
            "kw:k=2",
            "connected(kw:k=3)",
            "alg2:k=5,multiplier=ln-lnln",
        ] {
            let s = SolverSpec::parse(text).unwrap();
            assert_eq!(SolverSpec::parse(&s.spec()).unwrap(), s);
        }
        // Canonicalization: parameter order normalizes away.
        let a = SolverSpec::parse("kw:multiplier=ln,k=2").unwrap();
        assert_eq!(a.spec(), "kw:k=2,multiplier=ln");
    }
}
