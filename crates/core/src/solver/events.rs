//! Streaming sweep events (ROADMAP item (c)).
//!
//! [`ExperimentRunner::run_matrix_streaming`] reports progress *while* a
//! solver × workload × seed matrix executes, instead of staying silent
//! until the final barrier: every `(solver, workload, seed)` run — a
//! *cell* in store terminology — produces a [`RunEvent::CellStarted`]
//! followed by exactly one terminal event (`CellFinished`, `CellCached`,
//! or `CellFailed`), bracketed by one `SweepStarted`/`SweepFinished`
//! pair. Events travel over a caller-supplied **bounded** MPSC channel
//! ([`std::sync::mpsc::sync_channel`]), so a slow consumer backpressures
//! the sweep rather than buffering unboundedly.
//!
//! The `kw_results` crate consumes these events to drive progress
//! display, append durable [`RunRecord`]s to its JSONL run store, and
//! resume interrupted sweeps (replayed records surface as `CellCached`).
//!
//! # Ordering guarantees
//!
//! Each event carries the id of the worker that emitted it and a
//! per-worker sequence number: within one worker the sequence is
//! strictly increasing and the channel preserves send order, so
//! per-worker event streams are monotonic. No ordering is promised
//! *between* workers (cells are work-stolen).
//!
//! [`ExperimentRunner::run_matrix_streaming`]: super::ExperimentRunner::run_matrix_streaming

use super::runner::RunOutcome;

/// Durable description of one `(solver, workload, seed)` run: the cache
/// key (including the chaos-plan fingerprint, the one context knob
/// besides the seed that changes results) plus the [`RunOutcome`].
///
/// This is exactly the information the `kw_results` run store persists
/// per line, and exactly what [`ExperimentCache::insert_outcome`] needs
/// to replay a run without re-solving it.
///
/// [`ExperimentCache::insert_outcome`]: super::ExperimentCache::insert_outcome
#[derive(Clone, Debug, PartialEq)]
pub struct RunRecord {
    /// Canonical solver spec (e.g. `"kw:k=2"`).
    pub solver: String,
    /// Workload label (unique per graph within one cache/store).
    pub workload: String,
    /// Node count of the workload graph (store metadata; not part of
    /// the cache key).
    pub n: usize,
    /// Maximum degree `Δ` of the workload graph (store metadata).
    pub max_degree: usize,
    /// Run seed.
    pub seed: u64,
    /// Canonical chaos spec of the context's [`ChaosPlan`] (`""` =
    /// reliable network) — the fingerprint the cache keys outcomes by.
    ///
    /// [`ChaosPlan`]: kw_sim::ChaosPlan
    pub chaos: String,
    /// Engine worker threads the run executed with (`1` = sequential).
    /// Part of the cache key: outcomes are bit-identical across thread
    /// counts, but `wall_ms` is not, and the scaling gate compares
    /// same-key cells across exactly this field.
    pub threads: usize,
    /// What the run produced.
    pub outcome: RunOutcome,
}

/// One progress event of a streaming sweep.
///
/// `worker` is the index of the runner worker that executed the cell and
/// `seq` its per-worker sequence number (see the module docs for the
/// ordering guarantees).
#[derive(Clone, Debug)]
pub enum RunEvent {
    /// The sweep's matrix has been laid out; `runs` cells will execute.
    SweepStarted {
        /// Number of solvers in the matrix.
        solvers: usize,
        /// Number of workloads in the matrix.
        workloads: usize,
        /// Number of seeds per (solver, workload) cell.
        seeds: usize,
        /// Total `(solver, workload, seed)` cells.
        runs: usize,
    },
    /// A cell is about to run (or be served from the cache).
    CellStarted {
        /// Emitting worker.
        worker: usize,
        /// Per-worker sequence number.
        seq: u64,
        /// Solver spec of the cell.
        solver: String,
        /// Workload label of the cell.
        workload: String,
        /// Seed of the cell.
        seed: u64,
    },
    /// A cell was solved fresh; its record is durable-store-ready.
    CellFinished {
        /// Emitting worker.
        worker: usize,
        /// Per-worker sequence number.
        seq: u64,
        /// The run's durable record.
        record: RunRecord,
    },
    /// A cell was served from the [`ExperimentCache`] (hit counts in the
    /// record reflect the *original* solve, including its wall time).
    ///
    /// [`ExperimentCache`]: super::ExperimentCache
    CellCached {
        /// Emitting worker.
        worker: usize,
        /// Per-worker sequence number.
        seq: u64,
        /// The originally solved record, replayed.
        record: RunRecord,
    },
    /// A cell errored or its worker panicked; the sweep aborts after
    /// this event (it is the last cell event its worker emits).
    CellFailed {
        /// Emitting worker.
        worker: usize,
        /// Per-worker sequence number.
        seq: u64,
        /// Solver spec of the failing cell.
        solver: String,
        /// Workload label of the failing cell.
        workload: String,
        /// Seed of the failing cell.
        seed: u64,
        /// Human-readable failure description.
        error: String,
    },
    /// The sweep is over; totals partition the cells that ran.
    SweepFinished {
        /// Cells solved fresh.
        solved: u64,
        /// Cells served from the cache.
        cached: u64,
        /// Cells that failed. The first failure aborts the sweep, but
        /// workers already mid-cell may each record their own failure,
        /// so this can reach the worker count (it is 0 iff the sweep
        /// succeeded).
        failed: u64,
    },
}

impl RunEvent {
    /// The `(solver, workload, seed)` identity of a cell event (`None`
    /// for the sweep bracket events).
    pub fn cell(&self) -> Option<(&str, &str, u64)> {
        match self {
            RunEvent::CellStarted {
                solver,
                workload,
                seed,
                ..
            }
            | RunEvent::CellFailed {
                solver,
                workload,
                seed,
                ..
            } => Some((solver, workload, *seed)),
            RunEvent::CellFinished { record, .. } | RunEvent::CellCached { record, .. } => {
                Some((&record.solver, &record.workload, record.seed))
            }
            _ => None,
        }
    }

    /// Worker id and per-worker sequence number (`None` for the sweep
    /// bracket events, which the calling thread emits).
    pub fn worker_seq(&self) -> Option<(usize, u64)> {
        match *self {
            RunEvent::CellStarted { worker, seq, .. }
            | RunEvent::CellFinished { worker, seq, .. }
            | RunEvent::CellCached { worker, seq, .. }
            | RunEvent::CellFailed { worker, seq, .. } => Some((worker, seq)),
            _ => None,
        }
    }

    /// Whether this is a cell's terminal event (finished/cached/failed).
    pub fn is_terminal(&self) -> bool {
        matches!(
            self,
            RunEvent::CellFinished { .. }
                | RunEvent::CellCached { .. }
                | RunEvent::CellFailed { .. }
        )
    }
}
