//! The unified dominating-set solver API.
//!
//! The paper's central claim is a *comparison* — its constant-round
//! pipeline versus greedy, JRS-LRG, MIS-based, and trivial baselines — so
//! every algorithm in this workspace is reachable through one polymorphic
//! interface:
//!
//! * [`DsSolver`] — the trait: `solve(&self, graph, context)` produces a
//!   uniform [`SolveReport`];
//! * [`SolveContext`] — execution environment (seed, threads, fault model,
//!   certificate checking), kept separate from algorithm configuration;
//! * [`SolveReport`] — dominating set, optional fractional solution,
//!   merged and per-stage [`RunMetrics`], and a quality [`Certificate`]
//!   against the Lemma-1 LP lower bound;
//! * [`SolverRegistry`] — string-keyed construction from specs such as
//!   `"kw:k=2"` or `"connected(greedy)"` ([`spec::SolverSpec`] documents
//!   the grammar);
//! * [`ExperimentRunner`] — fans a solver × workload × seed matrix into
//!   batched, optionally multi-threaded runs with aggregated statistics.
//!
//! The paper pipeline lives here ([`registry::register_core_solvers`]);
//! the five baselines register themselves from `kw_baselines` and the
//! umbrella crate's `default_registry()` combines both.
//!
//! # Example
//!
//! ```
//! use kw_core::solver::{SolveContext, SolverRegistry};
//! use kw_graph::generators;
//!
//! let registry = SolverRegistry::with_core_solvers();
//! let solver = registry.build("kw:k=3")?;
//! let g = generators::grid(6, 6);
//! let report = solver.solve(&g, &SolveContext::seeded(7))?;
//! assert!(report.dominating_set.is_dominating(&g));
//! assert!(report.certificate.as_ref().unwrap().dominates);
//! # Ok::<(), kw_core::solver::SolveError>(())
//! ```

pub mod events;
mod pipeline_solvers;
pub mod registry;
pub mod runner;
pub mod spec;

use std::error::Error;
use std::fmt;

use kw_graph::{CsrGraph, DominatingSet, FractionalAssignment};
use kw_sim::{ChaosPlan, RunMetrics, SimError};

use crate::CoreError;

pub use events::{RunEvent, RunRecord};
pub use pipeline_solvers::{CompositeSolver, PipelineSolver};
pub use registry::SolverRegistry;
pub use runner::{CellSummary, ExperimentCache, ExperimentRunner, RunOutcome, SummaryStats};
pub use spec::SolverSpec;

/// Execution environment of a solve call.
///
/// Everything here is about *how* to run, never about *which* algorithm —
/// algorithm parameters belong to the solver itself (configured through
/// its [`SolverSpec`]). One context can therefore drive any solver, which
/// is what makes solver × workload × seed matrices well-defined.
#[derive(Clone, Debug)]
pub struct SolveContext {
    /// Run seed; all randomness any solver consumes derives from it.
    pub seed: u64,
    /// Worker threads for the simulation engine (`<= 1` = sequential,
    /// `0` = all available cores). Never affects results.
    pub threads: usize,
    /// Chaos model — iid losses, drop bursts, crashes, byzantine senders,
    /// churn (defaults to the paper's reliable network). A plain
    /// [`kw_sim::FaultPlan`] converts via `.into()`.
    pub faults: ChaosPlan,
    /// Whether to attach a quality [`Certificate`] to reports
    /// (verification + Lemma-1 ratio; costs one `is_dominating` pass).
    pub check_certificates: bool,
    /// Whether to profile the solve with the `kw_trace` span plane and
    /// attach the rollup to [`SolveReport::trace`]. Off by default; an
    /// untraced run pays one thread-local read per engine drive and
    /// nothing per round. Tracing never affects results — only the
    /// report's `trace` field.
    pub trace: bool,
}

impl Default for SolveContext {
    fn default() -> Self {
        SolveContext {
            seed: 0,
            threads: 1,
            faults: ChaosPlan::reliable(),
            check_certificates: true,
            trace: false,
        }
    }
}

impl SolveContext {
    /// A default context with the given seed.
    pub fn seeded(seed: u64) -> Self {
        SolveContext {
            seed,
            ..Self::default()
        }
    }

    /// Returns a copy of the context with a different seed (used by the
    /// [`ExperimentRunner`] to sweep seeds).
    pub fn with_seed(&self, seed: u64) -> Self {
        SolveContext {
            seed,
            ..self.clone()
        }
    }
}

/// Solution-quality evidence attached to a [`SolveReport`].
#[derive(Clone, Debug)]
pub struct Certificate {
    /// Whether the output set actually dominates the graph (verified, not
    /// assumed — under message loss the theorems' guarantees lapse).
    pub dominates: bool,
    /// The Lemma-1 lower bound `n / (Δ + 1) ≤ |DS_OPT|` family value from
    /// [`kw_lp::bounds::lemma1_bound`].
    pub lemma1_bound: f64,
    /// `|DS| / lemma1_bound` — an upper bound on the true approximation
    /// ratio (1.0 for an empty graph).
    pub ratio_vs_lemma1: f64,
    /// Whether the intermediate fractional solution is LP-feasible
    /// (`None` when the solver has no fractional stage).
    pub fractional_feasible: Option<bool>,
    /// Objective value of the fractional solution, if any.
    pub fractional_objective: Option<f64>,
}

/// Metrics of one stage of a composed algorithm.
#[derive(Clone, Debug)]
pub struct StageMetrics {
    /// Stage label (e.g. `"fractional"`, `"rounding"`, `"stitch"`).
    pub stage: String,
    /// Communication metrics of that stage. All-zero metrics mean the
    /// stage is centralized/sequential (e.g. greedy, the CDS stitch).
    pub metrics: RunMetrics,
}

/// Everything a [`DsSolver::solve`] call produces, uniform across
/// algorithms.
#[derive(Clone, Debug)]
pub struct SolveReport {
    /// Canonical spec of the solver that produced this report.
    pub solver: String,
    /// The computed dominating set (verification status is in
    /// [`certificate`](Self::certificate)).
    pub dominating_set: DominatingSet,
    /// The intermediate fractional `LP_MDS` solution, for solvers that
    /// compute one.
    pub fractional: Option<FractionalAssignment>,
    /// Communication metrics merged across all stages.
    pub metrics: RunMetrics,
    /// Per-stage metrics, in execution order.
    pub stages: Vec<StageMetrics>,
    /// Quality certificate (present unless the context disabled it).
    pub certificate: Option<Certificate>,
    /// Where-does-time-go rollup of the solve's span/counter trace.
    /// Present only when the run was traced ([`SolveContext::trace`] via
    /// [`traced_solve`], or an externally installed tracer harvested by
    /// the caller).
    pub trace: Option<kw_trace::TraceSummary>,
}

impl SolveReport {
    /// Size of the dominating set.
    pub fn size(&self) -> usize {
        self.dominating_set.len()
    }

    /// Total synchronous rounds across all distributed stages (0 for
    /// purely centralized solvers).
    pub fn rounds(&self) -> usize {
        self.metrics.rounds
    }

    /// Total messages across all stages.
    pub fn messages(&self) -> u64 {
        self.metrics.messages
    }

    /// Approximation-ratio upper bound vs the Lemma-1 lower bound, if a
    /// certificate was computed.
    pub fn ratio_vs_lemma1(&self) -> Option<f64> {
        self.certificate.as_ref().map(|c| c.ratio_vs_lemma1)
    }
}

/// Incremental [`SolveReport`] construction shared by all trait
/// implementations, so certificate computation stays in one place.
#[derive(Clone, Debug)]
pub struct ReportBuilder {
    solver: String,
    dominating_set: DominatingSet,
    fractional: Option<FractionalAssignment>,
    stages: Vec<StageMetrics>,
}

impl ReportBuilder {
    /// Starts a report for `solver`'s output set.
    pub fn new(solver: impl Into<String>, dominating_set: DominatingSet) -> Self {
        ReportBuilder {
            solver: solver.into(),
            dominating_set,
            fractional: None,
            stages: Vec::new(),
        }
    }

    /// Attaches the fractional stage output.
    pub fn fractional(mut self, x: FractionalAssignment) -> Self {
        self.fractional = Some(x);
        self
    }

    /// Appends a stage's metrics (stages merge in insertion order).
    pub fn stage(mut self, name: impl Into<String>, metrics: RunMetrics) -> Self {
        self.stages.push(StageMetrics {
            stage: name.into(),
            metrics,
        });
        self
    }

    /// Finishes the report, computing the certificate if the context asks
    /// for one.
    pub fn finish(self, g: &CsrGraph, ctx: &SolveContext) -> SolveReport {
        let metrics = self
            .stages
            .iter()
            .fold(RunMetrics::default(), |acc, s| acc.merged(&s.metrics));
        let certificate = ctx.check_certificates.then(|| {
            // Under churn the run ends on a different topology than it
            // started from; quality is judged against the final graph the
            // chaos script produced.
            let churned = ctx.faults.churned_graph(g);
            let g = churned.as_ref().unwrap_or(g);
            let size = self.dominating_set.len() as f64;
            let lemma1 = kw_lp::bounds::lemma1_bound(g);
            let ratio_vs_lemma1 = if lemma1 > 0.0 {
                size / lemma1
            } else if size == 0.0 {
                1.0
            } else {
                f64::INFINITY
            };
            Certificate {
                dominates: self.dominating_set.is_dominating(g),
                lemma1_bound: lemma1,
                ratio_vs_lemma1,
                fractional_feasible: self.fractional.as_ref().map(|x| x.is_feasible(g)),
                fractional_objective: self.fractional.as_ref().map(|x| x.objective()),
            }
        });
        SolveReport {
            solver: self.solver,
            dominating_set: self.dominating_set,
            fractional: self.fractional,
            metrics,
            stages: self.stages,
            certificate,
            trace: None,
        }
    }
}

/// Runs `solver` with the span/profiling plane active when the context
/// asks for it ([`SolveContext::trace`]), harvesting the trace into
/// [`SolveReport::trace`]; with tracing off this is exactly
/// `solver.solve(g, ctx)`.
///
/// A [`kw_trace::Tracer`] is installed in this thread's slot around the
/// solve (wrapped in a root `solve` span), so the engine rounds the
/// solver drives — on this thread — record phase spans and round
/// samples. The slot is cleared even when the solver errors or panics;
/// a pre-installed tracer is replaced (traced solves don't nest).
///
/// # Errors
///
/// Whatever `solver.solve` returns; the trace of a failed solve is
/// discarded with the error.
pub fn traced_solve(
    solver: &dyn DsSolver,
    g: &CsrGraph,
    ctx: &SolveContext,
) -> Result<SolveReport, SolveError> {
    if !ctx.trace {
        return solver.solve(g, ctx);
    }
    // Clears the thread-local slot on every exit path, including a
    // panicking solver unwinding through this frame (the runner converts
    // such panics into `CellFailed` events and reuses the worker).
    struct ClearSlot;
    impl Drop for ClearSlot {
        fn drop(&mut self) {
            let _ = kw_trace::take();
        }
    }
    kw_trace::install(kw_trace::Tracer::new());
    let _clear = ClearSlot;
    kw_trace::with_active(|t| t.begin("solve"));
    let result = solver.solve(g, ctx);
    let summary = kw_trace::take().map(|mut t| {
        t.finish();
        t.summarize()
    });
    result.map(|mut report| {
        report.trace = summary;
        report
    })
}

/// Errors produced by solver construction and solve calls.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum SolveError {
    /// A spec string failed to parse or carried invalid parameters.
    InvalidSpec {
        /// The offending spec text.
        spec: String,
        /// Human-readable reason.
        reason: String,
    },
    /// The registry has no solver under the requested name.
    UnknownSolver {
        /// The requested name.
        name: String,
        /// Registered names, for the error message.
        known: Vec<String>,
    },
    /// An algorithm-level failure from the paper implementations.
    Core(CoreError),
    /// A simulation-level failure.
    Sim(SimError),
    /// A solver panicked inside an [`ExperimentRunner`] worker; the
    /// runner converts the unwind into this error (and a `CellFailed`
    /// event in streaming mode) instead of poisoning the sweep.
    Panicked {
        /// The panic payload's message, when it was a string.
        reason: String,
    },
    /// Two workloads in one matrix share a label. Labels key the
    /// experiment cache and the run store, so a duplicate would silently
    /// serve one workload the other's cached results; the runner detects
    /// this at matrix start and refuses to sweep.
    DuplicateWorkload {
        /// The label both workloads carry.
        label: String,
    },
}

impl fmt::Display for SolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolveError::InvalidSpec { spec, reason } => {
                write!(f, "invalid solver spec {spec:?}: {reason}")
            }
            SolveError::UnknownSolver { name, known } => {
                write!(
                    f,
                    "unknown solver {name:?}; registered: {}",
                    known.join(", ")
                )
            }
            SolveError::Core(e) => write!(f, "solver failed: {e}"),
            SolveError::Sim(e) => write!(f, "simulation failed: {e}"),
            SolveError::Panicked { reason } => write!(f, "solver panicked: {reason}"),
            SolveError::DuplicateWorkload { label } => write!(
                f,
                "duplicate workload label {label:?} in one matrix: labels key the \
                 experiment cache and the run store, so every workload in a sweep \
                 must carry a unique label"
            ),
        }
    }
}

impl Error for SolveError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SolveError::Core(e) => Some(e),
            SolveError::Sim(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CoreError> for SolveError {
    fn from(e: CoreError) -> Self {
        SolveError::Core(e)
    }
}

impl From<SimError> for SolveError {
    fn from(e: SimError) -> Self {
        SolveError::Sim(e)
    }
}

/// A dominating-set algorithm behind the uniform interface.
///
/// Implementations must be deterministic in `(graph, context.seed)`: the
/// same graph and seed produce the identical set, metrics, and
/// certificate, regardless of `context.threads`. The conformance suite
/// (`tests/solver_conformance.rs` in the umbrella crate) enforces this for
/// every registered solver.
pub trait DsSolver: Send + Sync {
    /// Canonical spec of this solver instance (parseable by the registry
    /// that created it, e.g. `"kw:k=2"` or `"connected(greedy)"`).
    fn spec(&self) -> String;

    /// Computes a dominating set of `g`.
    ///
    /// # Errors
    ///
    /// [`SolveError`] on invalid configuration or simulation failure.
    /// An output that fails to dominate under message loss is *not* an
    /// error; it is reported through the certificate.
    fn solve(&self, g: &CsrGraph, ctx: &SolveContext) -> Result<SolveReport, SolveError>;

    /// Whether the algorithm consumes randomness. Deterministic solvers
    /// (greedy, trivial) ignore `ctx.seed` entirely.
    fn randomized(&self) -> bool {
        true
    }
}

// Consumers routinely hold `Result<Box<dyn DsSolver>, SolveError>`;
// without this, `unwrap`/`unwrap_err` on it won't compile.
impl fmt::Debug for dyn DsSolver + '_ {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("DsSolver").field(&self.spec()).finish()
    }
}

impl DsSolver for Box<dyn DsSolver> {
    fn spec(&self) -> String {
        (**self).spec()
    }

    fn solve(&self, g: &CsrGraph, ctx: &SolveContext) -> Result<SolveReport, SolveError> {
        (**self).solve(g, ctx)
    }

    fn randomized(&self) -> bool {
        (**self).randomized()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kw_graph::generators;

    #[test]
    fn report_builder_merges_stages_and_certifies() {
        let g = generators::star(6);
        let ds = DominatingSet::from_indices(&g, [0usize]);
        let m1 = RunMetrics {
            rounds: 3,
            messages: 10,
            bits: 50,
            ..Default::default()
        };
        let m2 = RunMetrics {
            rounds: 2,
            messages: 4,
            bits: 8,
            ..Default::default()
        };
        let report = ReportBuilder::new("test", ds)
            .stage("a", m1)
            .stage("b", m2)
            .finish(&g, &SolveContext::default());
        assert_eq!(report.rounds(), 5);
        assert_eq!(report.messages(), 14);
        assert_eq!(report.stages.len(), 2);
        let cert = report.certificate.expect("certificates default on");
        assert!(cert.dominates);
        assert!(cert.lemma1_bound >= 1.0 - 1e-9);
        assert!(cert.ratio_vs_lemma1 >= 1.0 - 1e-9);
        assert_eq!(cert.fractional_feasible, None);
    }

    #[test]
    fn certificate_flags_non_dominating_output() {
        let g = generators::path(4);
        let not_ds = DominatingSet::from_indices(&g, [0usize]);
        let report = ReportBuilder::new("bad", not_ds).finish(&g, &SolveContext::default());
        assert!(!report.certificate.unwrap().dominates);
    }

    #[test]
    fn certificates_can_be_disabled() {
        let g = generators::path(3);
        let ds = DominatingSet::from_indices(&g, [1usize]);
        let ctx = SolveContext {
            check_certificates: false,
            ..Default::default()
        };
        let report = ReportBuilder::new("x", ds).finish(&g, &ctx);
        assert!(report.certificate.is_none());
    }

    #[test]
    fn empty_graph_certificate_is_sane() {
        let g = kw_graph::CsrGraph::empty(0);
        let ds = DominatingSet::new(&g);
        let report = ReportBuilder::new("x", ds).finish(&g, &SolveContext::default());
        let cert = report.certificate.unwrap();
        assert!(cert.dominates);
        assert_eq!(cert.ratio_vs_lemma1, 1.0);
    }

    #[test]
    fn error_display_and_conversions() {
        let e = SolveError::UnknownSolver {
            name: "nope".into(),
            known: vec!["kw".into(), "greedy".into()],
        };
        assert!(e.to_string().contains("nope") && e.to_string().contains("kw"));
        let e: SolveError = CoreError::InvalidConfig { reason: "k".into() }.into();
        assert!(matches!(e, SolveError::Core(_)));
        assert!(Error::source(&e).is_some());
        let e: SolveError = SimError::MaxRoundsExceeded { limit: 1 }.into();
        assert!(matches!(e, SolveError::Sim(_)));
    }
}
