//! [`DsSolver`] implementations for the paper's own algorithms.

use kw_graph::CsrGraph;
use kw_sim::EngineConfig;

use crate::composite::run_composite;
use crate::pipeline::{FractionalSolver, Pipeline, PipelineConfig};
use crate::rounding::{Multiplier, RoundingConfig};
use crate::solver::{DsSolver, ReportBuilder, SolveContext, SolveError, SolveReport, SolverSpec};

fn multiplier_name(m: Multiplier) -> &'static str {
    match m {
        Multiplier::Ln => "ln",
        Multiplier::LnMinusLnLn => "ln-lnln",
    }
}

fn parse_multiplier(spec: &SolverSpec) -> Result<Multiplier, SolveError> {
    match spec.params.get("multiplier").map(String::as_str) {
        None | Some("ln") => Ok(Multiplier::Ln),
        Some("ln-lnln") => Ok(Multiplier::LnMinusLnLn),
        Some(other) => Err(SolveError::InvalidSpec {
            spec: spec.to_string(),
            reason: format!("multiplier must be \"ln\" or \"ln-lnln\", got {other:?}"),
        }),
    }
}

/// The paper's two-stage pipeline (Theorem 6) as a solver: a fractional
/// stage (Algorithm 3, or Algorithm 2 under the known-`Δ` assumption)
/// followed by Algorithm 1 randomized rounding.
///
/// Registry names: `"kw"` (Algorithm 3, the headline configuration) and
/// `"alg2"` (Algorithm 2). Parameters: `k=<u32 ≥ 1>` (default 2) and
/// `multiplier=ln|ln-lnln` (default `ln`).
#[derive(Clone, Copy, Debug)]
pub struct PipelineSolver {
    k: u32,
    fractional: FractionalSolver,
    multiplier: Multiplier,
}

impl PipelineSolver {
    /// A pipeline solver with the given trade-off parameter and
    /// fractional stage.
    pub fn new(k: u32, fractional: FractionalSolver) -> Self {
        PipelineSolver {
            k,
            fractional,
            multiplier: Multiplier::default(),
        }
    }

    /// Builds from a parsed registry spec (`kw` or `alg2`).
    ///
    /// # Errors
    ///
    /// [`SolveError::InvalidSpec`] on unknown or unparseable parameters.
    pub fn from_spec(spec: &SolverSpec, fractional: FractionalSolver) -> Result<Self, SolveError> {
        spec.expect_params(&["k", "multiplier"])?;
        Ok(PipelineSolver {
            k: spec.param("k", 2u32)?,
            fractional,
            multiplier: parse_multiplier(spec)?,
        })
    }

    fn config(&self, ctx: &SolveContext) -> PipelineConfig {
        PipelineConfig {
            k: self.k,
            solver: self.fractional,
            rounding: RoundingConfig {
                multiplier: self.multiplier,
                skip_fallback: false,
            },
            threads: ctx.threads,
        }
    }
}

impl DsSolver for PipelineSolver {
    fn spec(&self) -> String {
        let name = match self.fractional {
            FractionalSolver::Alg3 => "kw",
            FractionalSolver::Alg2DeltaKnown => "alg2",
        };
        match self.multiplier {
            Multiplier::Ln => format!("{name}:k={}", self.k),
            m => format!("{name}:k={},multiplier={}", self.k, multiplier_name(m)),
        }
    }

    fn solve(&self, g: &CsrGraph, ctx: &SolveContext) -> Result<SolveReport, SolveError> {
        let outcome =
            Pipeline::new(self.config(ctx)).run_with_faults(g, ctx.seed, ctx.faults.clone())?;
        Ok(
            ReportBuilder::new(self.spec(), outcome.dominating_set.clone())
                .fractional(outcome.fractional.clone())
                .stage("fractional", outcome.fractional_metrics)
                .stage("rounding", outcome.rounding_metrics)
                .finish(g, ctx),
        )
    }
}

/// The same Theorem-6 algorithm fused into a single node program on a
/// single engine run (`4k² + 2k + 2` rounds), for uninterrupted metrics.
///
/// Registry name: `"composite"`. Parameters: `k=<u32 ≥ 1>` (default 2)
/// and `multiplier=ln|ln-lnln`.
#[derive(Clone, Copy, Debug)]
pub struct CompositeSolver {
    k: u32,
    multiplier: Multiplier,
}

impl CompositeSolver {
    /// A composite solver with the given trade-off parameter.
    pub fn new(k: u32) -> Self {
        CompositeSolver {
            k,
            multiplier: Multiplier::default(),
        }
    }

    /// Builds from a parsed registry spec.
    ///
    /// # Errors
    ///
    /// [`SolveError::InvalidSpec`] on unknown or unparseable parameters.
    pub fn from_spec(spec: &SolverSpec) -> Result<Self, SolveError> {
        spec.expect_params(&["k", "multiplier"])?;
        Ok(CompositeSolver {
            k: spec.param("k", 2u32)?,
            multiplier: parse_multiplier(spec)?,
        })
    }
}

impl DsSolver for CompositeSolver {
    fn spec(&self) -> String {
        match self.multiplier {
            Multiplier::Ln => format!("composite:k={}", self.k),
            m => format!("composite:k={},multiplier={}", self.k, multiplier_name(m)),
        }
    }

    fn solve(&self, g: &CsrGraph, ctx: &SolveContext) -> Result<SolveReport, SolveError> {
        let engine = EngineConfig {
            seed: ctx.seed,
            threads: ctx.threads,
            faults: ctx.faults.clone(),
            ..EngineConfig::default()
        };
        let rounding = RoundingConfig {
            multiplier: self.multiplier,
            skip_fallback: false,
        };
        kw_trace::with_active(|t| t.begin("stage:composite"));
        let run = run_composite(g, self.k, rounding, engine)?;
        kw_trace::with_active(|t| t.end());
        Ok(ReportBuilder::new(self.spec(), run.set.clone())
            .fractional(run.fractional.clone())
            .stage("composite", run.metrics)
            .finish(g, ctx))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::math;
    use kw_graph::generators;

    #[test]
    fn kw_solver_matches_pipeline_round_structure() {
        let g = generators::grid(6, 6);
        let solver = PipelineSolver::new(3, FractionalSolver::Alg3);
        let report = solver.solve(&g, &SolveContext::seeded(1)).unwrap();
        assert_eq!(report.rounds(), math::alg3_rounds(3) + 2);
        assert_eq!(report.stages.len(), 2);
        assert!(report.certificate.unwrap().dominates);
        assert!(report.fractional.unwrap().is_feasible(&g));
    }

    #[test]
    fn alg2_solver_uses_delta_known_rounds() {
        let g = generators::grid(5, 5);
        let solver = PipelineSolver::new(2, FractionalSolver::Alg2DeltaKnown);
        let report = solver.solve(&g, &SolveContext::seeded(1)).unwrap();
        assert_eq!(report.rounds(), math::alg2_rounds(2) + 4);
        assert_eq!(report.solver, "alg2:k=2");
    }

    #[test]
    fn composite_solver_round_count() {
        let g = generators::petersen();
        let k = 2;
        let report = CompositeSolver::new(k)
            .solve(&g, &SolveContext::seeded(4))
            .unwrap();
        assert_eq!(report.rounds(), math::alg3_rounds(k) + 2);
        assert!(report.certificate.unwrap().dominates);
    }

    #[test]
    fn traced_solve_attaches_stage_spans_without_changing_output() {
        let g = generators::grid(6, 6);
        let solver = PipelineSolver::new(3, FractionalSolver::Alg3);
        let plain = solver.solve(&g, &SolveContext::seeded(7)).unwrap();
        assert!(plain.trace.is_none());
        let ctx = SolveContext {
            trace: true,
            ..SolveContext::seeded(7)
        };
        let traced = crate::solver::traced_solve(&solver, &g, &ctx).unwrap();
        assert_eq!(traced.dominating_set, plain.dominating_set);
        assert_eq!(traced.metrics, plain.metrics);
        let summary = traced.trace.clone().expect("trace requested");
        let labels: Vec<&str> = summary
            .phase_us
            .iter()
            .map(|(label, _)| label.as_str())
            .collect();
        for phase in ["compute", "plan", "send", "deliver", "barrier"] {
            assert!(labels.contains(&phase), "missing phase {phase}");
        }
        assert_eq!(summary.rounds as usize, traced.rounds());
        assert_eq!(summary.samples.len(), traced.rounds());
        // The tracer slot must not leak into later, untraced solves.
        assert!(!kw_trace::is_active());
        let after = solver.solve(&g, &SolveContext::seeded(7)).unwrap();
        assert!(after.trace.is_none());
        assert_eq!(after.dominating_set, plain.dominating_set);
    }

    #[test]
    fn spec_roundtrip() {
        let spec = SolverSpec::parse("kw:k=4,multiplier=ln-lnln").unwrap();
        let solver = PipelineSolver::from_spec(&spec, FractionalSolver::Alg3).unwrap();
        assert_eq!(solver.spec(), "kw:k=4,multiplier=ln-lnln");
        let spec = SolverSpec::parse("composite:k=3").unwrap();
        assert_eq!(
            CompositeSolver::from_spec(&spec).unwrap().spec(),
            "composite:k=3"
        );
    }

    #[test]
    fn invalid_k_surfaces_as_core_error() {
        let g = generators::path(3);
        let solver = PipelineSolver::new(0, FractionalSolver::Alg3);
        assert!(matches!(
            solver.solve(&g, &SolveContext::default()),
            Err(SolveError::Core(_))
        ));
    }

    #[test]
    fn bad_params_rejected() {
        let spec = SolverSpec::parse("kw:k=0x2").unwrap();
        assert!(PipelineSolver::from_spec(&spec, FractionalSolver::Alg3).is_err());
        let spec = SolverSpec::parse("kw:multiplier=log").unwrap();
        assert!(PipelineSolver::from_spec(&spec, FractionalSolver::Alg3).is_err());
        let spec = SolverSpec::parse("kw:threads=2").unwrap();
        assert!(PipelineSolver::from_spec(&spec, FractionalSolver::Alg3).is_err());
    }
}
