//! Algorithm 1: distributed randomized rounding `LP_MDS → IP_MDS`.
//!
//! Given any feasible fractional solution `x^(α)`, every node computes
//! `δ⁽²⁾` (two rounds), joins the dominating set with probability
//! `p_i = min(1, x_i · ln(δ⁽²⁾_i + 1))`, announces its decision (one
//! round), and finally joins anyway if nobody in its closed neighborhood
//! did (the deterministic fallback of lines 5–6, which makes the output a
//! dominating set with probability 1). Four rounds total.
//!
//! Theorem 3: if `x^(α)` is an `α`-approximation of `LP_MDS`, the expected
//! size is at most `(1 + α·ln(Δ+1))·|DS_OPT|`. The remark after Theorem 3
//! offers the multiplier `ln(δ⁽²⁾+1) − ln ln(δ⁽²⁾+1)` instead, for an
//! expected `2α(ln(Δ+1) − ln ln(Δ+1))` ratio; both are implemented
//! ([`Multiplier`]), as is disabling the fallback for the failure-rate
//! ablation (experiment A1).
//!
//! # Example
//!
//! ```
//! use kw_graph::{generators, FractionalAssignment};
//! use kw_core::rounding::{run_rounding, RoundingConfig};
//! use kw_sim::EngineConfig;
//!
//! let g = generators::cycle(9);
//! // The LP optimum on C9 assigns 1/3 everywhere.
//! let x = FractionalAssignment::uniform(&g, 1.0 / 3.0);
//! let run = run_rounding(&g, &x, RoundingConfig::default(), EngineConfig::seeded(1))?;
//! assert!(run.set.is_dominating(&g));
//! assert_eq!(run.metrics.rounds, 4);
//! # Ok::<(), kw_core::CoreError>(())
//! ```

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use kw_graph::{CsrGraph, DominatingSet, FractionalAssignment};
use kw_sim::rng::node_seed;
use kw_sim::wire::{self, BitReader, BitWriter, WireEncode};
use kw_sim::{Ctx, Engine, EngineConfig, Protocol, RunMetrics, Status};

use crate::CoreError;

/// The probability multiplier applied to `x_i` (line 2 of Algorithm 1).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Multiplier {
    /// `ln(δ⁽²⁾ + 1)` — the paper's main choice (Theorem 3).
    #[default]
    Ln,
    /// `ln(δ⁽²⁾+1) − ln ln(δ⁽²⁾+1)` — the remark's variant; falls back to
    /// plain `ln` when `ln(δ⁽²⁾+1) ≤ 1` (degenerate tiny degrees where the
    /// correction is meaningless).
    LnMinusLnLn,
}

impl Multiplier {
    /// Evaluates the multiplier for a given `δ⁽²⁾`.
    pub fn eval(self, delta2: u64) -> f64 {
        let l = (delta2 as f64 + 1.0).ln();
        match self {
            Multiplier::Ln => l,
            Multiplier::LnMinusLnLn => {
                if l > 1.0 {
                    l - l.ln()
                } else {
                    l
                }
            }
        }
    }
}

/// Configuration of the rounding stage.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RoundingConfig {
    /// Probability multiplier (line 2).
    pub multiplier: Multiplier,
    /// Whether to run the deterministic fallback (lines 5–6). Disabling it
    /// exists only for the coverage-failure ablation; real deployments must
    /// keep it on.
    pub skip_fallback: bool,
}

/// Messages of Algorithm 1.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RoundingMsg {
    /// A degree or `δ⁽¹⁾` value (setup rounds).
    Degree(u64),
    /// The sender's membership decision.
    InSet(bool),
}

impl WireEncode for RoundingMsg {
    fn encode(&self, w: &mut BitWriter) {
        match self {
            RoundingMsg::Degree(d) => {
                w.write_bit(false);
                w.write_gamma(*d);
            }
            RoundingMsg::InSet(b) => {
                w.write_bit(true);
                w.write_bit(*b);
            }
        }
    }

    fn decode(r: &mut BitReader<'_>) -> Option<Self> {
        Some(if r.read_bit()? {
            RoundingMsg::InSet(r.read_bit()?)
        } else {
            RoundingMsg::Degree(r.read_gamma()?)
        })
    }

    fn encoded_bits(&self) -> usize {
        match self {
            RoundingMsg::Degree(d) => 1 + wire::gamma_len(*d),
            RoundingMsg::InSet(_) => 2,
        }
    }
}

/// Per-node output of the rounding stage.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RoundingOutput {
    /// Whether the node joined the dominating set.
    pub in_set: bool,
    /// Whether membership came from the fallback (lines 5–6) rather than
    /// the random draw.
    pub via_fallback: bool,
    /// The sampling probability `p_i` the node used.
    pub probability: f64,
}

/// The Algorithm 1 node program.
#[derive(Clone, Debug)]
pub struct Alg1Protocol {
    config: RoundingConfig,
    x: f64,
    degree: u64,
    delta1: u64,
    delta2: u64,
    /// When set, skip the setup rounds and use this as `δ⁽²⁾` (the
    /// pipeline reuses Algorithm 3's setup).
    preset_delta2: Option<u64>,
    probability: f64,
    in_set: bool,
    via_fallback: bool,
}

impl Alg1Protocol {
    /// Creates the program for a node with fractional value `x` and degree
    /// `degree`.
    pub fn new(config: RoundingConfig, x: f64, degree: usize) -> Self {
        Alg1Protocol {
            config,
            x,
            degree: degree as u64,
            delta1: degree as u64,
            delta2: degree as u64,
            preset_delta2: None,
            probability: 0.0,
            in_set: false,
            via_fallback: false,
        }
    }

    /// Like [`new`](Self::new), but `δ⁽²⁾` is already known (e.g. computed
    /// by Algorithm 3's setup rounds), skipping the two degree-exchange
    /// rounds.
    pub fn with_known_delta2(config: RoundingConfig, x: f64, degree: usize, delta2: u64) -> Self {
        let mut p = Self::new(config, x, degree);
        p.preset_delta2 = Some(delta2);
        p
    }

    fn draw_and_announce(&mut self, ctx: &mut Ctx<'_, RoundingMsg>) {
        self.probability = (self.x * self.config.multiplier.eval(self.delta2)).min(1.0);
        self.in_set = ctx.rng().gen::<f64>() < self.probability;
        ctx.broadcast(RoundingMsg::InSet(self.in_set));
    }
}

/// Broadcast-only: every round stages at most one `Ctx::broadcast`
/// (membership or degree announcements), so the engine's arena send
/// plane serves this protocol through its solo-broadcast fast path.
impl Protocol for Alg1Protocol {
    type Msg = RoundingMsg;
    type Output = RoundingOutput;

    fn on_round(&mut self, ctx: &mut Ctx<'_, RoundingMsg>) -> Status {
        let offset = if self.preset_delta2.is_some() { 2 } else { 0 };
        match ctx.round() + offset {
            0 => {
                ctx.broadcast(RoundingMsg::Degree(self.degree));
                Status::Running
            }
            1 => {
                let mut best = self.degree;
                for (_, msg) in ctx.inbox() {
                    if let RoundingMsg::Degree(d) = msg {
                        best = best.max(*d);
                    }
                }
                self.delta1 = best;
                ctx.broadcast(RoundingMsg::Degree(self.delta1));
                Status::Running
            }
            2 => {
                if let Some(d2) = self.preset_delta2 {
                    self.delta2 = d2;
                } else {
                    let mut best = self.delta1;
                    for (_, msg) in ctx.inbox() {
                        if let RoundingMsg::Degree(d) = msg {
                            best = best.max(*d);
                        }
                    }
                    self.delta2 = best;
                }
                self.draw_and_announce(ctx);
                Status::Running
            }
            _ => {
                let neighbor_in_set = ctx
                    .inbox()
                    .iter()
                    .any(|(_, msg)| matches!(msg, RoundingMsg::InSet(true)));
                if !self.in_set && !neighbor_in_set && !self.config.skip_fallback {
                    self.in_set = true;
                    self.via_fallback = true;
                }
                Status::Halted
            }
        }
    }

    fn finish(self) -> RoundingOutput {
        RoundingOutput {
            in_set: self.in_set,
            via_fallback: self.via_fallback,
            probability: self.probability,
        }
    }
}

/// Result of a distributed rounding run.
#[derive(Clone, Debug)]
pub struct RoundingRun {
    /// The rounded set (a dominating set unless the fallback was skipped).
    pub set: DominatingSet,
    /// Which members joined via the fallback.
    pub fallback_members: Vec<bool>,
    /// Sampling probabilities used by each node.
    pub probabilities: Vec<f64>,
    /// Communication metrics (4 rounds).
    pub metrics: RunMetrics,
}

/// Runs Algorithm 1 on `g` with fractional input `x`.
///
/// Randomness comes from the engine seed (`engine.seed`), so runs are fully
/// reproducible.
///
/// # Errors
///
/// [`CoreError::InputMismatch`] if `x` does not match `g`; simulation
/// errors are propagated.
pub fn run_rounding(
    g: &CsrGraph,
    x: &FractionalAssignment,
    config: RoundingConfig,
    engine: EngineConfig,
) -> Result<RoundingRun, CoreError> {
    if x.len() != g.len() {
        return Err(CoreError::InputMismatch {
            expected: g.len(),
            got: x.len(),
        });
    }
    let report = Engine::new(g, engine, |info| {
        Alg1Protocol::new(config, x.get(info.id), info.degree)
    })
    .run()
    .map_err(CoreError::Sim)?;
    Ok(collect(g, report))
}

/// Runs the rounding stage with per-node `δ⁽²⁾` already known (two rounds
/// instead of four); used by the pipeline.
///
/// # Errors
///
/// [`CoreError::InputMismatch`] if `x` or `delta2` do not match `g`.
pub fn run_rounding_with_delta2(
    g: &CsrGraph,
    x: &FractionalAssignment,
    delta2: &[u64],
    config: RoundingConfig,
    engine: EngineConfig,
) -> Result<RoundingRun, CoreError> {
    if x.len() != g.len() {
        return Err(CoreError::InputMismatch {
            expected: g.len(),
            got: x.len(),
        });
    }
    if delta2.len() != g.len() {
        return Err(CoreError::InputMismatch {
            expected: g.len(),
            got: delta2.len(),
        });
    }
    let report = Engine::new(g, engine, |info| {
        Alg1Protocol::with_known_delta2(
            config,
            x.get(info.id),
            info.degree,
            delta2[info.id.index()],
        )
    })
    .run()
    .map_err(CoreError::Sim)?;
    Ok(collect(g, report))
}

fn collect(g: &CsrGraph, report: kw_sim::RunReport<RoundingOutput>) -> RoundingRun {
    let mut set = DominatingSet::new(g);
    let mut fallback_members = Vec::with_capacity(g.len());
    let mut probabilities = Vec::with_capacity(g.len());
    for (i, out) in report.outputs.iter().enumerate() {
        if out.in_set {
            set.add(kw_graph::NodeId::new(i));
        }
        fallback_members.push(out.via_fallback);
        probabilities.push(out.probability);
    }
    RoundingRun {
        set,
        fallback_members,
        probabilities,
        metrics: report.metrics,
    }
}

/// Centralized reference implementation, reproducing the distributed run
/// bit-for-bit for the same seed (it derives the identical per-node RNG
/// streams).
///
/// # Errors
///
/// [`CoreError::InputMismatch`] if `x` does not match `g`.
pub fn reference_rounding(
    g: &CsrGraph,
    x: &FractionalAssignment,
    config: RoundingConfig,
    seed: u64,
) -> Result<DominatingSet, CoreError> {
    if x.len() != g.len() {
        return Err(CoreError::InputMismatch {
            expected: g.len(),
            got: x.len(),
        });
    }
    let mut set = DominatingSet::new(g);
    for v in g.node_ids() {
        let d2 = g.delta2(v) as u64;
        let p = (x.get(v) * config.multiplier.eval(d2)).min(1.0);
        let mut rng = SmallRng::seed_from_u64(node_seed(seed, v.raw()));
        if rng.gen::<f64>() < p {
            set.add(v);
        }
    }
    if !config.skip_fallback {
        let drawn = set.clone();
        for v in g.node_ids() {
            if !drawn.dominates(g, v) {
                set.add(v);
            }
        }
    }
    Ok(set)
}

#[cfg(test)]
mod tests {
    use super::*;
    use kw_graph::generators;
    use kw_sim::wire::roundtrip;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn message_roundtrip() {
        for msg in [
            RoundingMsg::Degree(0),
            RoundingMsg::Degree(255),
            RoundingMsg::InSet(true),
            RoundingMsg::InSet(false),
        ] {
            assert_eq!(roundtrip(&msg), Some(msg.clone()));
        }
        assert_eq!(RoundingMsg::InSet(true).encoded_bits(), 2);
    }

    #[test]
    fn multiplier_values() {
        assert_eq!(Multiplier::Ln.eval(0), 0.0);
        assert!((Multiplier::Ln.eval(9) - 10f64.ln()).abs() < 1e-12);
        // Alternative is smaller for large degrees, equal for tiny ones.
        assert!(Multiplier::LnMinusLnLn.eval(1000) < Multiplier::Ln.eval(1000));
        assert_eq!(Multiplier::LnMinusLnLn.eval(0), Multiplier::Ln.eval(0));
        assert_eq!(Multiplier::LnMinusLnLn.eval(1), Multiplier::Ln.eval(1));
    }

    #[test]
    fn always_dominating_with_fallback() {
        let mut rng = SmallRng::seed_from_u64(0);
        for seed in 0..20u64 {
            let g = generators::gnp(40, 0.08, &mut rng);
            // Even the all-zeros "solution" (infeasible!) must produce a
            // dominating set thanks to the fallback.
            let x = FractionalAssignment::zeros(&g);
            let run = run_rounding(
                &g,
                &x,
                RoundingConfig::default(),
                EngineConfig::seeded(seed),
            )
            .unwrap();
            assert!(run.set.is_dominating(&g));
            assert_eq!(run.metrics.rounds, 4);
        }
    }

    #[test]
    fn zero_input_uses_only_fallback() {
        let g = generators::cycle(9);
        let x = FractionalAssignment::zeros(&g);
        let run = run_rounding(&g, &x, RoundingConfig::default(), EngineConfig::seeded(3)).unwrap();
        assert!(run.probabilities.iter().all(|&p| p == 0.0));
        assert!(run.set.iter().all(|v| run.fallback_members[v.index()]));
    }

    #[test]
    fn skip_fallback_can_fail_coverage() {
        // With x = 0 and no fallback, nothing is selected.
        let g = generators::cycle(6);
        let x = FractionalAssignment::zeros(&g);
        let config = RoundingConfig {
            skip_fallback: true,
            ..Default::default()
        };
        let run = run_rounding(&g, &x, config, EngineConfig::seeded(1)).unwrap();
        assert!(run.set.is_empty());
        assert!(!run.set.is_dominating(&g));
    }

    #[test]
    fn input_validation() {
        let g = generators::path(3);
        let x = FractionalAssignment::from_values(vec![0.5; 2]);
        assert!(matches!(
            run_rounding(&g, &x, RoundingConfig::default(), EngineConfig::default()),
            Err(CoreError::InputMismatch {
                expected: 3,
                got: 2
            })
        ));
        assert!(reference_rounding(&g, &x, RoundingConfig::default(), 0).is_err());
    }

    #[test]
    fn distributed_matches_reference_for_same_seed() {
        let mut rng = SmallRng::seed_from_u64(4);
        let g = generators::gnp(50, 0.12, &mut rng);
        let x = FractionalAssignment::uniform(&g, 0.3);
        for seed in [0u64, 7, 123] {
            let dist = run_rounding(
                &g,
                &x,
                RoundingConfig::default(),
                EngineConfig::seeded(seed),
            )
            .unwrap();
            let refr = reference_rounding(&g, &x, RoundingConfig::default(), seed).unwrap();
            let dist_vec: Vec<bool> = g.node_ids().map(|v| dist.set.contains(v)).collect();
            let ref_vec: Vec<bool> = g.node_ids().map(|v| refr.contains(v)).collect();
            assert_eq!(dist_vec, ref_vec, "seed {seed}");
        }
    }

    #[test]
    fn probability_saturates_at_one() {
        let g = generators::star(50);
        let x = FractionalAssignment::uniform(&g, 1.0);
        let run = run_rounding(&g, &x, RoundingConfig::default(), EngineConfig::seeded(9)).unwrap();
        assert!(run.probabilities.iter().all(|&p| p == 1.0));
        // Everyone joins deterministically.
        assert_eq!(run.set.len(), 50);
    }

    #[test]
    fn expected_size_respects_theorem3() {
        // C12: DS_OPT = 4, LP optimum = 4 (x = 1/3). α = 1. Theorem 3:
        // E|DS| ≤ (1 + ln(Δ+1))·4 = (1 + ln 3)·4 ≈ 8.39.
        let g = generators::cycle(12);
        let x = FractionalAssignment::uniform(&g, 1.0 / 3.0);
        let trials = 400;
        let mut total = 0usize;
        for seed in 0..trials {
            let ds = reference_rounding(&g, &x, RoundingConfig::default(), seed).unwrap();
            assert!(ds.is_dominating(&g));
            total += ds.len();
        }
        let mean = total as f64 / trials as f64;
        let bound = crate::math::rounding_bound(1.0, g.max_degree()) * 4.0;
        // Allow 3σ-ish statistical slack; the mean is typically well below.
        assert!(
            mean <= bound * 1.15,
            "mean {mean} exceeds Theorem 3 bound {bound}"
        );
    }

    #[test]
    fn isolated_nodes_join_via_fallback() {
        let g = CsrGraph::empty(3);
        let x = FractionalAssignment::uniform(&g, 0.0);
        let run = run_rounding(&g, &x, RoundingConfig::default(), EngineConfig::seeded(2)).unwrap();
        assert_eq!(run.set.len(), 3);
        assert!(run.set.is_dominating(&g));
    }

    #[test]
    fn preset_delta2_skips_setup_rounds() {
        let g = generators::petersen();
        let x = FractionalAssignment::uniform(&g, 0.25);
        let d2: Vec<u64> = g.node_ids().map(|v| g.delta2(v) as u64).collect();
        let fast = run_rounding_with_delta2(
            &g,
            &x,
            &d2,
            RoundingConfig::default(),
            EngineConfig::seeded(5),
        )
        .unwrap();
        assert_eq!(fast.metrics.rounds, 2);
        let slow =
            run_rounding(&g, &x, RoundingConfig::default(), EngineConfig::seeded(5)).unwrap();
        // Same seed, same δ², same draws → same set.
        let a: Vec<bool> = g.node_ids().map(|v| fast.set.contains(v)).collect();
        let b: Vec<bool> = g.node_ids().map(|v| slow.set.contains(v)).collect();
        assert_eq!(a, b);
    }

    mod proptests {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(32))]
            #[test]
            fn rounding_always_dominates(
                n in 1usize..30,
                p in 0.0f64..1.0,
                seed in any::<u64>(),
                xval in 0.0f64..1.0,
            ) {
                let mut rng = SmallRng::seed_from_u64(seed);
                let g = generators::gnp(n, p, &mut rng);
                let x = FractionalAssignment::uniform(&g, xval);
                let ds = reference_rounding(&g, &x, RoundingConfig::default(), seed).unwrap();
                prop_assert!(ds.is_dominating(&g));
            }
        }
    }
}
